//! `ovlsim` — a simulation environment for studying overlap of communication
//! and computation.
//!
//! This is the facade crate of the workspace: it re-exports the public API of
//! every sub-crate so applications can depend on a single crate. The
//! environment reproduces the system described in *Subotic, Labarta, Valero,
//! "Simulation Environment for Studying Overlap of Communication and
//! Computation", ISPASS 2010*:
//!
//! 1. an application model executes under a virtual tracing tool
//!    ([`tracer`], with memory instrumentation from [`memtrace`]),
//! 2. the tool emits the original trace plus *overlapped* traces in which
//!    every message is split into chunks sent as soon as they are produced
//!    and waited for when first consumed,
//! 3. the [`dimemas`] replay simulator reconstructs each execution's
//!    time-behavior on a configurable platform,
//! 4. [`paraver`] renders and compares the resulting timelines, and
//! 5. [`lab`] sweeps platform parameters to quantify speedup and bandwidth
//!    relaxation, and
//! 6. [`session`] fronts the whole stack with a content-addressed artifact
//!    cache shared by the `ovlsim` CLI and the `ovlsim serve` HTTP API.
//!
//! # Quickstart
//!
//! ```
//! use ovlsim::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Pick an application model and trace it.
//! let app = ovlsim::apps::Sweep3d::builder().ranks(4).build()?;
//! let bundle = TracingSession::new(&app).run()?;
//!
//! // 2. Replay original and overlapped executions on the same platform.
//! let platform = Platform::builder().bandwidth_bytes_per_sec(100.0e6)?.build();
//! let original = Simulator::new(platform.clone()).run(bundle.original())?;
//! let overlapped = Simulator::new(platform).run(&bundle.overlapped_linear())?;
//!
//! // 3. Compare.
//! assert!(overlapped.total_time() <= original.total_time());
//! # Ok(())
//! # }
//! ```

pub use ovlsim_apps as apps;
pub use ovlsim_core as core;
pub use ovlsim_dimemas as dimemas;
pub use ovlsim_engine as engine;
pub use ovlsim_lab as lab;
pub use ovlsim_memtrace as memtrace;
pub use ovlsim_paraver as paraver;
pub use ovlsim_session as session;
pub use ovlsim_tracer as tracer;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use ovlsim_core::{
        Bandwidth, Instr, MipsRate, NodeTopology, Platform, Rank, Record, Tag, Time, TraceSet,
    };
    pub use ovlsim_dimemas::{ReplayResult, Simulator};
    pub use ovlsim_tracer::{
        Application, ChunkingPolicy, OverlapMode, TraceBundle, TraceContext, TracingSession,
    };
}
