//! `ovlsim` — the environment's single command-line entry point.
//!
//! ```text
//! ovlsim campaign run <spec.campaign> [--out <dir>] [--csv]
//!                                          expand + replay the grid, write
//!                                          <dir>/<name>.report.json (and
//!                                          .csv), print a summary table
//! ovlsim campaign list <spec.campaign>     print the expanded grid points
//! ovlsim campaign diff <golden> <actual>   exit 1 (with per-line diffs)
//!                                          if the reports drifted
//!
//! ovlsim trace gen <app> <out-prefix> [class] [ranks] [iters]
//!                                          write <prefix>.original.dim,
//!                                          <prefix>.ovl-real.dim and
//!                                          <prefix>.ovl-linear.dim
//! ovlsim trace stats <file.dim>            validate + per-rank summary
//! ovlsim trace validate <file.dim>         exit 1 if structurally invalid
//! ovlsim trace replay <file.dim> [bw] [lat] replay (bytes/s, us) + Gantt
//!
//! ovlsim analyze <file.dim> [bw] [lat] [--out <dir>] [--csv] [--prv]
//!                                          time attribution + critical
//!                                          path: write
//!                                          <dir>/<name>.analysis.json
//!                                          (and .csv, and a Paraver
//!                                          cause timeline), print the
//!                                          per-channel gain ranking
//! ```
//!
//! Campaign specs are the declarative replacement for one-off experiment
//! binaries; see `ovlsim_lab::campaign` for the grammar and
//! `examples/campaigns/` for the committed corpus.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ovlsim::apps::registry;
use ovlsim::apps::ProblemClass;
use ovlsim::core::{
    format_bytes, format_time, validate_trace_set, Platform, Rank, Time, TraceIndex, TraceSet,
};
use ovlsim::dimemas::{emit_trace_set, parse_trace_set, Simulator};
use ovlsim::lab::campaign::{diff_reports, run_campaign, CampaignSpec};
use ovlsim::lab::{Attribution, AttributionRecorder};
use ovlsim::paraver::{render_gantt, to_cause_pcf, to_cause_prv, to_row, GanttOptions, Timeline};
use ovlsim::tracer::TracingSession;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  ovlsim campaign run <spec.campaign> [--out <dir>] [--csv]\n  \
         ovlsim campaign list <spec.campaign>\n  \
         ovlsim campaign diff <golden.json> <actual.json>\n  \
         ovlsim trace gen <app> <out-prefix> [class] [ranks] [iterations]\n  \
         ovlsim trace stats <file.dim>\n  \
         ovlsim trace validate <file.dim>\n  \
         ovlsim trace replay <file.dim> [bytes-per-sec] [latency-us]\n  \
         ovlsim analyze <file.dim> [bytes-per-sec] [latency-us] [--out <dir>] [--csv] [--prv]"
    );
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

// ---------------------------------------------------------------- campaign

fn load_spec(path: &str) -> Result<CampaignSpec, String> {
    CampaignSpec::parse(&read(path)?).map_err(|e| format!("{path}: {e}"))
}

fn cmd_campaign_run(spec_path: &str, out_dir: &Path, csv: bool) -> Result<(), String> {
    let spec = load_spec(spec_path)?;
    let report = run_campaign(&spec).map_err(|e| format!("{spec_path}: {e}"))?;
    fs::create_dir_all(out_dir).map_err(|e| format!("create {}: {e}", out_dir.display()))?;
    let json_path = out_dir.join(format!("{}.report.json", report.campaign));
    fs::write(&json_path, report.to_json())
        .map_err(|e| format!("write {}: {e}", json_path.display()))?;
    println!(
        "campaign {}: {} points -> {}",
        report.campaign,
        report.rows.len(),
        json_path.display()
    );
    if csv {
        let csv_path = out_dir.join(format!("{}.report.csv", report.campaign));
        fs::write(&csv_path, report.to_csv())
            .map_err(|e| format!("write {}: {e}", csv_path.display()))?;
        println!("              csv -> {}", csv_path.display());
    }
    // Per app×class×mode summary: the peak speedup over the platform grid
    // (the number every figure in the paper reports per scenario).
    println!(
        "\n{:<10} {:>5} {:<20} {:>10}",
        "app", "class", "mode", "peak"
    );
    let mut seen: Vec<(String, String, String)> = Vec::new();
    for row in &report.rows {
        let key = (row.app.clone(), row.class.to_string(), row.mode.clone());
        if seen.contains(&key) {
            continue;
        }
        let peak = report
            .rows
            .iter()
            .filter(|r| r.app == key.0 && r.class.to_string() == key.1 && r.mode == key.2)
            .map(|r| r.speedup())
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{:<10} {:>5} {:<20} {:>+9.1}%",
            key.0,
            key.1,
            key.2,
            (peak - 1.0) * 100.0
        );
        seen.push(key);
    }
    Ok(())
}

fn cmd_campaign_list(spec_path: &str) -> Result<(), String> {
    let spec = load_spec(spec_path)?;
    let points = spec.expand();
    println!(
        "campaign {}: {} apps x {} classes x {} modes x {} engines x {} packings x {} bandwidths = {} points",
        spec.name,
        spec.apps.len(),
        spec.classes.len(),
        spec.modes.len(),
        spec.engines.len(),
        spec.ranks_per_node.len(),
        spec.bandwidths.len(),
        points.len()
    );
    for p in &points {
        println!(
            "  {} class={} {} engine={} rpn={} bw={}",
            p.app,
            p.class,
            p.mode,
            p.engine,
            p.ranks_per_node,
            format_bytes(p.bandwidth.bytes_per_sec() as u64)
        );
    }
    Ok(())
}

fn cmd_campaign_diff(golden_path: &str, actual_path: &str) -> Result<(), String> {
    let golden = read(golden_path)?;
    let actual = read(actual_path)?;
    let diffs = diff_reports(&golden, &actual);
    if diffs.is_empty() {
        println!("reports identical ({golden_path} vs {actual_path})");
        return Ok(());
    }
    const SHOWN: usize = 20;
    for d in diffs.iter().take(SHOWN) {
        eprintln!(
            "line {}:\n  golden: {}\n  actual: {}",
            d.line, d.expected, d.actual
        );
    }
    if diffs.len() > SHOWN {
        eprintln!("... and {} more differing lines", diffs.len() - SHOWN);
    }
    Err(format!(
        "{} differing lines between {golden_path} and {actual_path}",
        diffs.len()
    ))
}

// ------------------------------------------------------------------- trace

fn load_trace(path: &str) -> Result<TraceSet, String> {
    parse_trace_set(&read(path)?).map_err(|e| format!("{path}: {e}"))
}

fn parse_class(s: &str) -> Result<ProblemClass, String> {
    match s {
        "S" => Ok(ProblemClass::S),
        "W" => Ok(ProblemClass::W),
        "A" => Ok(ProblemClass::A),
        "B" => Ok(ProblemClass::B),
        other => Err(format!(
            "unknown problem class `{other}` (want S, W, A or B)"
        )),
    }
}

fn cmd_trace_gen(
    app_name: &str,
    prefix: &str,
    class: Option<&str>,
    ranks: Option<&str>,
    iterations: Option<&str>,
) -> Result<(), String> {
    let class = class.map_or(Ok(ProblemClass::A), parse_class)?;
    let parse_count = |what: &str, v: Option<&str>| -> Result<Option<usize>, String> {
        v.map(|s| {
            s.parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("bad {what} `{s}`: want a positive integer"))
        })
        .transpose()
    };
    let overrides = ovlsim::apps::registry::AppOverrides {
        ranks: parse_count("rank count", ranks)?,
        iterations: parse_count("iteration count", iterations)?,
    };
    let app = registry::build_app(app_name, class, overrides)
        .map_err(|e| format!("unknown or invalid app `{app_name}`: {e}"))?;
    let bundle = TracingSession::new(app.as_ref())
        .run()
        .map_err(|e| e.to_string())?;
    let variants = [
        ("original", bundle.original().clone()),
        ("ovl-real", bundle.overlapped_real()),
        ("ovl-linear", bundle.overlapped_linear()),
    ];
    for (label, trace) in variants {
        let path = format!("{prefix}.{label}.dim");
        fs::write(&path, emit_trace_set(&trace)).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path} ({} records)", trace.total_records());
    }
    Ok(())
}

fn cmd_trace_stats(path: &str) -> Result<(), String> {
    let trace = load_trace(path)?;
    let issues = validate_trace_set(&trace);
    println!("{trace}");
    println!(
        "total: {} instr, {} p2p",
        trace.total_instr().get(),
        format_bytes(trace.total_p2p_send_bytes())
    );
    for (r, rank_trace) in trace.ranks().iter().enumerate() {
        let sends = rank_trace
            .iter()
            .filter(|rec| {
                matches!(
                    rec,
                    ovlsim::core::Record::Send { .. } | ovlsim::core::Record::ISend { .. }
                )
            })
            .count();
        let collectives = rank_trace.iter().filter(|rec| rec.is_collective()).count();
        println!(
            "  rank {r}: {} records, {} instr, {} sends ({}), {} collectives",
            rank_trace.len(),
            rank_trace.total_instr().get(),
            sends,
            format_bytes(rank_trace.total_p2p_send_bytes()),
            collectives
        );
    }
    if issues.is_empty() {
        println!("validation: ok");
        Ok(())
    } else {
        for issue in &issues {
            eprintln!("issue: {issue}");
        }
        Err(format!("{} validation issues", issues.len()))
    }
}

fn cmd_trace_validate(path: &str) -> Result<(), String> {
    let trace = load_trace(path)?;
    let issues = validate_trace_set(&trace);
    if issues.is_empty() {
        println!("{path}: ok");
        Ok(())
    } else {
        for issue in &issues {
            eprintln!("{path}: {issue}");
        }
        Err(format!("{} issues", issues.len()))
    }
}

/// Builds the platform shared by `trace replay` and `analyze` from their
/// optional `[bytes-per-sec] [latency-us]` arguments (defaults: 250e6,
/// 5 us) — one parser so the two subcommands can never simulate
/// different platforms for the same arguments.
fn parse_platform(bw: Option<&str>, lat: Option<&str>) -> Result<Platform, String> {
    let bw: f64 = bw.unwrap_or("250e6").parse().map_err(|_| "bad bandwidth")?;
    let lat: u64 = lat.unwrap_or("5").parse().map_err(|_| "bad latency")?;
    let mut b = Platform::builder();
    b.latency(Time::from_us(lat))
        .bandwidth_bytes_per_sec(bw)
        .map_err(|e| e.to_string())?;
    Ok(b.build())
}

fn cmd_trace_replay(path: &str, bw: Option<&str>, lat: Option<&str>) -> Result<(), String> {
    let trace = load_trace(path)?;
    let platform = parse_platform(bw, lat)?;
    let (timeline, result) = Timeline::capture(&platform, &trace).map_err(|e| e.to_string())?;
    println!("{result}");
    for r in 0..result.rank_finish().len() {
        println!(
            "  rank {r}: finish {}, compute {}",
            format_time(result.rank_finish()[r]),
            format_time(result.rank_compute()[Rank::new(r as u32).index()])
        );
    }
    println!(
        "\n{}",
        render_gantt(
            &timeline,
            &GanttOptions {
                width: 72,
                legend: true
            }
        )
    );
    Ok(())
}

// ----------------------------------------------------------------- analyze

fn cmd_analyze(
    path: &str,
    bw: Option<&str>,
    lat: Option<&str>,
    out_dir: &Path,
    csv: bool,
    prv: bool,
) -> Result<(), String> {
    let trace = load_trace(path)?;
    let platform = parse_platform(bw, lat)?;
    let index = TraceIndex::build(&trace).map_err(|issues| {
        for issue in &issues {
            eprintln!("{path}: {issue}");
        }
        format!("{path}: {} validation issues", issues.len())
    })?;
    let mut recorder = AttributionRecorder::new(trace.rank_count());
    let result = Simulator::new(platform.clone())
        .run_prepared_observed(&trace, &index, &mut recorder)
        .map_err(|e| e.to_string())?;
    let attr = Attribution::from_recorded(&recorder, &result, &trace, &index, &platform);

    fs::create_dir_all(out_dir).map_err(|e| format!("create {}: {e}", out_dir.display()))?;
    let write_out = |name: String, content: String| -> Result<PathBuf, String> {
        let p = out_dir.join(name);
        fs::write(&p, content).map_err(|e| format!("write {}: {e}", p.display()))?;
        Ok(p)
    };
    let json_path = write_out(
        format!("{}.analysis.json", attr.trace_name()),
        attr.to_json(),
    )?;
    println!(
        "analysis {}: {} ranks, {} channels -> {}",
        attr.trace_name(),
        trace.rank_count(),
        attr.channels().len(),
        json_path.display()
    );
    if csv {
        let p = write_out(format!("{}.analysis.csv", attr.trace_name()), attr.to_csv())?;
        println!("              csv -> {}", p.display());
    }
    if prv {
        let intervals = (0..trace.rank_count()).flat_map(|r| {
            recorder
                .intervals(r)
                .iter()
                .map(move |iv| (Rank::new(r as u32), iv.start, iv.end, iv.cause))
        });
        let prv_body = to_cause_prv(trace.rank_count(), attr.makespan(), intervals);
        let p = write_out(format!("{}.cause.prv", attr.trace_name()), prv_body)?;
        write_out(format!("{}.cause.pcf", attr.trace_name()), to_cause_pcf())?;
        write_out(
            format!("{}.cause.row", attr.trace_name()),
            to_row(trace.rank_count()),
        )?;
        println!("              paraver cause timeline -> {}", p.display());
    }

    println!(
        "\nmakespan {}  bound {}  critical path {} segments",
        format_time(attr.makespan()),
        format_time(attr.makespan_bound()),
        attr.critical_path().len()
    );
    println!(
        "\n{:<6} {:>4} {:>4} {:>12} {:>12} {:>12}",
        "chan", "src", "dst", "wait", "critical", "gain"
    );
    const SHOWN: usize = 10;
    let ranked = attr.ranked_channels();
    for c in ranked.iter().take(SHOWN) {
        println!(
            "{:<6} {:>4} {:>4} {:>12} {:>12} {:>12}",
            c.chan,
            c.src.get(),
            c.dst.get(),
            format_time(c.total_wait()),
            format_time(c.critical),
            format_time(c.gain_potential)
        );
    }
    if ranked.len() > SHOWN {
        println!("... and {} more channels", ranked.len() - SHOWN);
    }
    Ok(())
}

// -------------------------------------------------------------------- main

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut out_dir = PathBuf::from(".");
    let mut csv = false;
    let mut prv = false;
    let mut flags_given = false;
    let mut it = args.iter().map(String::as_str);
    while let Some(arg) = it.next() {
        match arg {
            "--csv" => {
                csv = true;
                flags_given = true;
            }
            "--prv" => {
                prv = true;
                flags_given = true;
            }
            "--out" => match it.next() {
                Some(dir) => {
                    out_dir = PathBuf::from(dir);
                    flags_given = true;
                }
                None => return usage(),
            },
            _ if arg.starts_with("--") => return usage(),
            _ => positional.push(arg),
        }
    }
    // Flags only mean something to `campaign run` and `analyze`; silently
    // swallowing them elsewhere would misplace the user's output. `--prv`
    // is analyze-only.
    let takes_flags =
        positional.get(..2) == Some(&["campaign", "run"]) || positional.first() == Some(&"analyze");
    if flags_given && !takes_flags {
        return usage();
    }
    if prv && positional.first() != Some(&"analyze") {
        return usage();
    }
    let result = match positional[..] {
        ["campaign", "run", spec] => cmd_campaign_run(spec, &out_dir, csv),
        ["campaign", "list", spec] => cmd_campaign_list(spec),
        ["campaign", "diff", golden, actual] => cmd_campaign_diff(golden, actual),
        ["trace", "gen", app, prefix] => cmd_trace_gen(app, prefix, None, None, None),
        ["trace", "gen", app, prefix, class] => cmd_trace_gen(app, prefix, Some(class), None, None),
        ["trace", "gen", app, prefix, class, ranks] => {
            cmd_trace_gen(app, prefix, Some(class), Some(ranks), None)
        }
        ["trace", "gen", app, prefix, class, ranks, iters] => {
            cmd_trace_gen(app, prefix, Some(class), Some(ranks), Some(iters))
        }
        ["trace", "stats", path] => cmd_trace_stats(path),
        ["trace", "validate", path] => cmd_trace_validate(path),
        ["trace", "replay", path] => cmd_trace_replay(path, None, None),
        ["trace", "replay", path, bw] => cmd_trace_replay(path, Some(bw), None),
        ["trace", "replay", path, bw, lat] => cmd_trace_replay(path, Some(bw), Some(lat)),
        ["analyze", path] => cmd_analyze(path, None, None, &out_dir, csv, prv),
        ["analyze", path, bw] => cmd_analyze(path, Some(bw), None, &out_dir, csv, prv),
        ["analyze", path, bw, lat] => cmd_analyze(path, Some(bw), Some(lat), &out_dir, csv, prv),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
