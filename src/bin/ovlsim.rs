//! `ovlsim` — the environment's single command-line entry point.
//!
//! ```text
//! ovlsim campaign run <spec.campaign> [--out <dir>] [--csv]
//!                                          expand + replay the grid, write
//!                                          <dir>/<name>.report.json (and
//!                                          .csv), print a summary table
//! ovlsim campaign list <spec.campaign>     print the expanded grid points
//! ovlsim campaign diff <golden> <actual>   exit 1 (with per-line diffs)
//!                                          if the reports drifted
//!
//! ovlsim trace gen <app> <out-prefix> [class] [ranks] [iters]
//!                                          write <prefix>.original.dim,
//!                                          <prefix>.ovl-real.dim and
//!                                          <prefix>.ovl-linear.dim
//! ovlsim trace stats <file>                validate + per-rank summary
//! ovlsim trace validate <file>             exit 1 if structurally invalid
//! ovlsim trace replay <file> [bw] [lat]    replay (bytes/s, us) + Gantt
//! ovlsim trace convert <in> <out>          re-encode between the text
//!                                          format (`.dim`) and the
//!                                          checksummed binary format
//!                                          (`.ovlb`), either direction
//! ```
//!
//! Trace-consuming subcommands dispatch on the file extension: `.ovlb`
//! files decode through the verified binary codec (any corruption is a
//! typed error), everything else parses as the text format. A file whose
//! *contents* are binary but whose extension is not `.ovlb` is rejected
//! with a pointer to `trace convert` rather than a parse-noise error.
//!
//! ```text
//!
//! ovlsim analyze <file.dim> [bw] [lat] [--out <dir>] [--csv] [--prv]
//!                                          time attribution + critical
//!                                          path: write
//!                                          <dir>/<name>.analysis.json
//!                                          (and .csv, and a Paraver
//!                                          cause timeline), print the
//!                                          per-channel gain ranking
//!
//! ovlsim serve [--port <n>]                loopback HTTP/JSON API over one
//!                                          shared session (see
//!                                          `ovlsim_session::serve`);
//!                                          --port 0 (the default) picks an
//!                                          ephemeral port
//! ovlsim --version                         print the version and exit
//! ```
//!
//! `campaign run`, `analyze` and `serve` accept `--cache-dir <dir>`: a
//! persistent, integrity-checked artifact cache of `.ovlb` files. Traces
//! and compiled replay programs are written through on build and served
//! back on any later invocation pointed at the same directory, so a warm
//! restart rebuilds nothing; corrupt entries are quarantined and rebuilt
//! transparently.
//!
//! `campaign run`, `trace replay` and `analyze` additionally accept
//! deterministic perturbation flags (see `ovlsim_core::PerturbationModel`):
//!
//! ```text
//! --seed <n>                 perturbation seed (campaign: overrides the
//!                            spec's `noise seed`)
//! --noise <level>            OS-noise level (campaign: replaces the
//!                            spec's `noise level` axis)
//! --stragglers <slow>:<r0>,<r1>,...   straggler ranks at a slowdown
//! --faults <period-us>:<down-us>      transient link outages
//! ```
//!
//! Campaign specs are the declarative replacement for one-off experiment
//! binaries; see `ovlsim_lab::campaign` for the grammar and
//! `examples/campaigns/` for the committed corpus.
//!
//! Every replaying subcommand runs through one `ovlsim_session::Session`,
//! so all intermediate artifacts (traces, indexes, compiled replay
//! programs) are content-addressed and built at most once per invocation.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use ovlsim::apps::registry;
use ovlsim::apps::ProblemClass;
use ovlsim::core::codec;
use ovlsim::core::{
    format_bytes, format_time, validate_trace_set, PerturbationModel, Platform, Rank, Time,
    TraceSet,
};
use ovlsim::dimemas::{emit_trace_set, parse_trace_set, SimError};
use ovlsim::lab::campaign::{diff_reports, CampaignSpec, Engine};
use ovlsim::lab::{
    run_tune, run_tune_baseline, ArtifactPipeline, Attribution, DirectPipeline, EngineInput,
    LabError, TuneOptions,
};
use ovlsim::paraver::{render_gantt, to_cause_pcf, to_cause_prv, to_row, GanttOptions, Timeline};
use ovlsim::session::{Server, Session, TraceSource};
use ovlsim::tracer::TracingSession;

/// The one version string: `--version` prints it and `serve` reports it
/// from `/status`, so the two can never disagree.
const VERSION: &str = env!("CARGO_PKG_VERSION");

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  ovlsim campaign run <spec.campaign> [--out <dir>] [--csv] [--cache-dir <dir>] [--force-engine <engine>]\n  \
         ovlsim campaign list <spec.campaign>\n  \
         ovlsim campaign diff <golden.json> <actual.json>\n  \
         ovlsim trace gen <app> <out-prefix> [class] [ranks] [iterations]\n  \
         ovlsim trace stats <file.dim|file.ovlb>\n  \
         ovlsim trace validate <file.dim|file.ovlb>\n  \
         ovlsim trace replay <file.dim|file.ovlb> [bytes-per-sec] [latency-us] [--engine <engine>]\n  \
         ovlsim trace convert <in.dim|in.ovlb> <out.dim|out.ovlb>\n  \
         ovlsim analyze <file.dim|file.ovlb> [bytes-per-sec] [latency-us] [--out <dir>] [--csv] [--prv] [--cache-dir <dir>]\n  \
         ovlsim tune <app|file.dim|file.ovlb> [bytes-per-sec] [latency-us] [--budget <n>] [--seed <n>] [--out <dir>] [--csv] [--cache-dir <dir>]\n  \
         ovlsim serve [--port <n>] [--cache-dir <dir>]\n  \
         ovlsim --version\n\
         perturbation flags (campaign run, trace replay, analyze):\n  \
         --seed <n>  --noise <level>  --stragglers <slow>:<r0>,<r1>,...  \
         --faults <period-us>:<down-us>\n\
         engines: compiled (default), prepared, naive, fastforward"
    );
    ExitCode::from(2)
}

/// Builds the one session an invocation shares across its work,
/// optionally backed by a persistent `--cache-dir`.
fn open_session(cache_dir: Option<&Path>) -> Result<Session, String> {
    let session = Session::new().map_err(|e| e.to_string())?;
    match cache_dir {
        Some(dir) => session.with_cache_dir(dir).map_err(|e| e.to_string()),
        None => Ok(session),
    }
}

/// Deterministic perturbation flags shared by `campaign run`,
/// `trace replay` and `analyze`.
#[derive(Default)]
struct PerturbFlags {
    seed: Option<u64>,
    noise: Option<f64>,
    stragglers: Option<(f64, Vec<u32>)>,
    faults: Option<(u64, u64)>,
}

impl PerturbFlags {
    fn given(&self) -> bool {
        self.seed.is_some()
            || self.noise.is_some()
            || self.stragglers.is_some()
            || self.faults.is_some()
    }

    fn parse_stragglers(v: &str) -> Result<(f64, Vec<u32>), String> {
        let bad = || format!("bad --stragglers `{v}`: want <slowdown>:<rank>,<rank>,...");
        let (slow, ranks) = v.split_once(':').ok_or_else(bad)?;
        let slowdown: f64 = slow.parse().map_err(|_| bad())?;
        let ranks: Vec<u32> = ranks
            .split(',')
            .map(|r| r.parse::<u32>().map_err(|_| bad()))
            .collect::<Result<_, _>>()?;
        if ranks.is_empty() {
            return Err(bad());
        }
        Ok((slowdown, ranks))
    }

    fn parse_faults(v: &str) -> Result<(u64, u64), String> {
        let bad = || format!("bad --faults `{v}`: want <period-us>:<downtime-us>");
        let (period, down) = v.split_once(':').ok_or_else(bad)?;
        Ok((
            period.parse().map_err(|_| bad())?,
            down.parse().map_err(|_| bad())?,
        ))
    }

    /// Builds the model the flags describe (the identity when none were
    /// given), surfacing the core domain errors as CLI messages.
    fn model(&self) -> Result<PerturbationModel, String> {
        let mut m = PerturbationModel::new(self.seed.unwrap_or(0));
        if let Some(level) = self.noise {
            m = m.with_noise(level).map_err(|e| e.to_string())?;
        }
        if let Some((slowdown, ranks)) = &self.stragglers {
            m = m
                .with_stragglers(ranks, *slowdown)
                .map_err(|e| e.to_string())?;
        }
        if let Some((period, down)) = self.faults {
            m = m
                .with_faults(Time::from_us(period), Time::from_us(down))
                .map_err(|e| e.to_string())?;
        }
        Ok(m)
    }

    /// Applies the flag model to a platform (no-op for the identity).
    fn perturb(&self, platform: Platform) -> Result<Platform, String> {
        let model = self.model()?;
        if model.is_identity() {
            Ok(platform)
        } else {
            Ok(platform.with_perturbation(model))
        }
    }
}

fn read(path: &str) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

// ---------------------------------------------------------------- campaign

fn load_spec(path: &str) -> Result<CampaignSpec, String> {
    CampaignSpec::parse(&read(path)?).map_err(|e| format!("{path}: {e}"))
}

fn cmd_campaign_run(
    spec_path: &str,
    out_dir: &Path,
    csv: bool,
    perturb: &PerturbFlags,
    cache_dir: Option<&Path>,
    force_engine: Option<Engine>,
) -> Result<(), String> {
    let mut spec = load_spec(spec_path)?;
    spec.force_engine = force_engine;
    // Domain-check the flag values through the model builders before
    // splicing them into the spec's perturbation axes.
    perturb.model()?;
    if let Some(seed) = perturb.seed {
        spec.noise_seed = seed;
    }
    if let Some(level) = perturb.noise {
        spec.noise_levels = vec![level];
    }
    if let Some(stragglers) = &perturb.stragglers {
        spec.stragglers = Some(stragglers.clone());
    }
    if let Some((period, down)) = perturb.faults {
        spec.faults = Some((Time::from_us(period), Time::from_us(down)));
    }
    let session = open_session(cache_dir)?;
    let report = session
        .run_campaign(&spec)
        .map_err(|e| format!("{spec_path}: {e}"))?;
    fs::create_dir_all(out_dir).map_err(|e| format!("create {}: {e}", out_dir.display()))?;
    let json_path = out_dir.join(format!("{}.report.json", report.campaign));
    fs::write(&json_path, report.to_json())
        .map_err(|e| format!("write {}: {e}", json_path.display()))?;
    println!(
        "campaign {}: {} points -> {}",
        report.campaign,
        report.rows.len(),
        json_path.display()
    );
    if csv {
        let csv_path = out_dir.join(format!("{}.report.csv", report.campaign));
        fs::write(&csv_path, report.to_csv())
            .map_err(|e| format!("write {}: {e}", csv_path.display()))?;
        println!("              csv -> {}", csv_path.display());
    }
    // The persistent-cache summary is a stable stdout hook for scripts
    // (the CI corruption smoke asserts on these counters).
    if let Some(d) = session.disk_stats() {
        println!(
            "cache: {} loads, {} stores, {} quarantined",
            d.loads, d.stores, d.quarantined
        );
    }
    // Per app×class×mode summary: the peak speedup over the platform grid
    // (the number every figure in the paper reports per scenario).
    println!(
        "\n{:<10} {:>5} {:<20} {:>10}",
        "app", "class", "mode", "peak"
    );
    let mut seen: Vec<(String, String, String)> = Vec::new();
    for row in &report.rows {
        let key = (row.app.clone(), row.class.to_string(), row.mode.clone());
        if seen.contains(&key) {
            continue;
        }
        let peak = report
            .rows
            .iter()
            .filter(|r| r.app == key.0 && r.class.to_string() == key.1 && r.mode == key.2)
            .map(|r| r.speedup())
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{:<10} {:>5} {:<20} {:>+9.1}%",
            key.0,
            key.1,
            key.2,
            (peak - 1.0) * 100.0
        );
        seen.push(key);
    }
    // Perturbed campaigns additionally answer the robustness question:
    // how much of the clean overlap gain survives at each noise level?
    if report.perturbed {
        println!("\n{:<12} {:>10}", "noise", "retention");
        for (level, retention) in report.retention_by_level() {
            match retention {
                Some(r) => println!("{level:<12} {:>9.1}%", r * 100.0),
                // No scenario at this level has a positive clean-gain
                // baseline — there is nothing to retain.
                None => println!("{level:<12} {:>10}", "n/a"),
            }
        }
    }
    Ok(())
}

fn cmd_campaign_list(spec_path: &str) -> Result<(), String> {
    let spec = load_spec(spec_path)?;
    let points = spec.expand();
    println!(
        "campaign {}: {} apps x {} classes x {} modes x {} engines x {} packings x {} noise levels x {} bandwidths = {} points",
        spec.name,
        spec.apps.len(),
        spec.classes.len(),
        spec.modes.len(),
        spec.engines.len(),
        spec.ranks_per_node.len(),
        spec.noise_levels.len(),
        spec.bandwidths.len(),
        points.len()
    );
    for p in &points {
        let noise = if spec.perturbed() {
            format!(" noise={}", p.noise_level)
        } else {
            String::new()
        };
        println!(
            "  {} class={} {} engine={} rpn={}{noise} bw={}",
            p.app,
            p.class,
            p.mode,
            p.engine,
            p.ranks_per_node,
            format_bytes(p.bandwidth.bytes_per_sec() as u64)
        );
    }
    Ok(())
}

fn cmd_campaign_diff(golden_path: &str, actual_path: &str) -> Result<(), String> {
    let golden = read(golden_path)?;
    let actual = read(actual_path)?;
    let diffs = diff_reports(&golden, &actual);
    if diffs.is_empty() {
        println!("reports identical ({golden_path} vs {actual_path})");
        return Ok(());
    }
    const SHOWN: usize = 20;
    for d in diffs.iter().take(SHOWN) {
        eprintln!(
            "line {}:\n  golden: {}\n  actual: {}",
            d.line, d.expected, d.actual
        );
    }
    if diffs.len() > SHOWN {
        eprintln!("... and {} more differing lines", diffs.len() - SHOWN);
    }
    Err(format!(
        "{} differing lines between {golden_path} and {actual_path}",
        diffs.len()
    ))
}

// ------------------------------------------------------------------- trace

/// Classifies a trace file by extension (and contents) into the session's
/// source vocabulary: `.ovlb` files are binary artifacts, everything else
/// is the text format. Binary *contents* under a non-`.ovlb` name are
/// rejected with a pointer to `trace convert` instead of drowning the
/// user in line-1 parse noise.
fn load_source(path: &str) -> Result<TraceSource, String> {
    let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if Path::new(path).extension().and_then(|e| e.to_str()) == Some(codec::EXTENSION) {
        return Ok(TraceSource::Binary { bytes });
    }
    if let Some(kind) = codec::sniff(&bytes) {
        return Err(format!(
            "{path}: contents are a binary .ovlb artifact ({kind}) but the extension is not \
             `.{}`; rename it, or convert with `ovlsim trace convert`",
            codec::EXTENSION
        ));
    }
    let dim = String::from_utf8(bytes)
        .map_err(|_| format!("{path}: not UTF-8 text and not an .ovlb artifact"))?;
    Ok(TraceSource::Text { dim })
}

fn load_trace(path: &str) -> Result<TraceSet, String> {
    match load_source(path)? {
        TraceSource::Text { dim } => parse_trace_set(&dim).map_err(|e| format!("{path}: {e}")),
        TraceSource::Binary { bytes } => {
            codec::decode_trace_set(&bytes).map_err(|e| format!("{path}: {e}"))
        }
        // `load_source` only produces file-backed sources.
        _ => unreachable!(),
    }
}

fn parse_class(s: &str) -> Result<ProblemClass, String> {
    s.parse()
        .map_err(|e: ovlsim::apps::UnknownClassError| e.to_string())
}

fn cmd_trace_gen(
    app_name: &str,
    prefix: &str,
    class: Option<&str>,
    ranks: Option<&str>,
    iterations: Option<&str>,
) -> Result<(), String> {
    let class = class.map_or(Ok(ProblemClass::A), parse_class)?;
    let parse_count = |what: &str, v: Option<&str>| -> Result<Option<usize>, String> {
        v.map(|s| {
            s.parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| format!("bad {what} `{s}`: want a positive integer"))
        })
        .transpose()
    };
    let overrides = ovlsim::apps::registry::AppOverrides {
        ranks: parse_count("rank count", ranks)?,
        iterations: parse_count("iteration count", iterations)?,
    };
    let app = registry::build_app(app_name, class, overrides)
        .map_err(|e| format!("unknown or invalid app `{app_name}`: {e}"))?;
    let bundle = TracingSession::new(app.as_ref())
        .run()
        .map_err(|e| e.to_string())?;
    let variants = [
        ("original", bundle.original().clone()),
        ("ovl-real", bundle.overlapped_real()),
        ("ovl-linear", bundle.overlapped_linear()),
    ];
    for (label, trace) in variants {
        let path = format!("{prefix}.{label}.dim");
        fs::write(&path, emit_trace_set(&trace)).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path} ({} records)", trace.total_records());
    }
    Ok(())
}

/// `trace convert <in> <out>`: round-trips a trace between the text and
/// binary formats, direction chosen by the output extension. Either
/// direction is lossless (the codec round-trip is bit-identical and the
/// text round-trip is value-identical), so `a.dim -> b.ovlb -> c.dim`
/// reproduces `a.dim` byte for byte on canonically-emitted inputs.
fn cmd_trace_convert(input: &str, output: &str) -> Result<(), String> {
    let trace = load_trace(input)?;
    let out_ext = Path::new(output).extension().and_then(|e| e.to_str());
    let bytes = match out_ext {
        Some(e) if e == codec::EXTENSION => codec::encode_trace_set(&trace),
        Some("dim") => emit_trace_set(&trace).into_bytes(),
        _ => {
            return Err(format!(
                "cannot infer output format of `{output}`: use a `.dim` or `.{}` extension",
                codec::EXTENSION
            ))
        }
    };
    fs::write(output, &bytes).map_err(|e| format!("write {output}: {e}"))?;
    println!(
        "wrote {output} ({} ranks, {} records, {} bytes)",
        trace.rank_count(),
        trace.total_records(),
        bytes.len()
    );
    Ok(())
}

fn cmd_trace_stats(path: &str) -> Result<(), String> {
    let trace = load_trace(path)?;
    let issues = validate_trace_set(&trace);
    println!("{trace}");
    println!(
        "total: {} instr, {} p2p",
        trace.total_instr().get(),
        format_bytes(trace.total_p2p_send_bytes())
    );
    for (r, rank_trace) in trace.ranks().iter().enumerate() {
        let sends = rank_trace
            .iter()
            .filter(|rec| {
                matches!(
                    rec,
                    ovlsim::core::Record::Send { .. } | ovlsim::core::Record::ISend { .. }
                )
            })
            .count();
        let collectives = rank_trace.iter().filter(|rec| rec.is_collective()).count();
        println!(
            "  rank {r}: {} records, {} instr, {} sends ({}), {} collectives",
            rank_trace.len(),
            rank_trace.total_instr().get(),
            sends,
            format_bytes(rank_trace.total_p2p_send_bytes()),
            collectives
        );
    }
    if issues.is_empty() {
        println!("validation: ok");
        Ok(())
    } else {
        for issue in &issues {
            eprintln!("issue: {issue}");
        }
        Err(format!("{} validation issues", issues.len()))
    }
}

fn cmd_trace_validate(path: &str) -> Result<(), String> {
    let trace = load_trace(path)?;
    let issues = validate_trace_set(&trace);
    if issues.is_empty() {
        println!("{path}: ok");
        Ok(())
    } else {
        for issue in &issues {
            eprintln!("{path}: {issue}");
        }
        Err(format!("{} issues", issues.len()))
    }
}

/// Builds the platform shared by `trace replay` and `analyze` from their
/// optional `[bytes-per-sec] [latency-us]` arguments (defaults: 250e6,
/// 5 us) — one parser so the two subcommands can never simulate
/// different platforms for the same arguments.
fn parse_platform(bw: Option<&str>, lat: Option<&str>) -> Result<Platform, String> {
    let bw: f64 = bw.unwrap_or("250e6").parse().map_err(|_| "bad bandwidth")?;
    let lat: u64 = lat.unwrap_or("5").parse().map_err(|_| "bad latency")?;
    let mut b = Platform::builder();
    b.latency(Time::from_us(lat))
        .bandwidth_bytes_per_sec(bw)
        .map_err(|e| e.to_string())?;
    Ok(b.build())
}

fn cmd_trace_replay(
    path: &str,
    bw: Option<&str>,
    lat: Option<&str>,
    perturb: &PerturbFlags,
    engine: Option<Engine>,
) -> Result<(), String> {
    let trace = load_trace(path)?;
    let platform = perturb.perturb(parse_platform(bw, lat)?)?;
    let (timeline, result) = Timeline::capture(&platform, &trace).map_err(|e| e.to_string())?;
    // `--engine` reruns the replay on the named engine and prints *its*
    // result. The engines are bit-identical by contract, so the output is
    // byte-for-byte the default path's — which is exactly what makes the
    // flag useful: diffing `trace replay --engine X` outputs across
    // engines is a one-line cross-check.
    let result = match engine {
        None => result,
        Some(eng) => {
            let input = EngineInput::build(&DirectPipeline, Arc::new(trace), &[eng], false)
                .map_err(|e| e.to_string())?;
            input.replay(eng, &platform).map_err(|e| e.to_string())?
        }
    };
    println!("{result}");
    for r in 0..result.rank_finish().len() {
        println!(
            "  rank {r}: finish {}, compute {}",
            format_time(result.rank_finish()[r]),
            format_time(result.rank_compute()[Rank::new(r as u32).index()])
        );
    }
    println!(
        "\n{}",
        render_gantt(
            &timeline,
            &GanttOptions {
                width: 72,
                legend: true
            }
        )
    );
    Ok(())
}

// ----------------------------------------------------------------- analyze

#[allow(clippy::too_many_arguments)]
fn cmd_analyze(
    path: &str,
    bw: Option<&str>,
    lat: Option<&str>,
    out_dir: &Path,
    csv: bool,
    prv: bool,
    perturb: &PerturbFlags,
    cache_dir: Option<&Path>,
) -> Result<(), String> {
    let session = open_session(cache_dir)?;
    let trace = session.trace(&load_source(path)?).map_err(|e| match e {
        // Same message shape as `load_trace` for parse/decode failures.
        ovlsim::session::SessionError::TraceParse(pe) => format!("{path}: {pe}"),
        ovlsim::session::SessionError::Decode(de) => format!("{path}: {de}"),
        other => format!("{path}: {other}"),
    })?;
    let platform = perturb.perturb(parse_platform(bw, lat)?)?;
    let index = ArtifactPipeline::index(&session, &trace).map_err(|e| match e {
        LabError::Sim(SimError::InvalidTrace { issues }) => {
            for issue in &issues {
                eprintln!("{path}: {issue}");
            }
            format!("{path}: {} validation issues", issues.len())
        }
        other => other.to_string(),
    })?;
    let (attr, recorder) =
        Attribution::analyze_with_recorder(&platform, &trace, &index).map_err(|e| e.to_string())?;

    fs::create_dir_all(out_dir).map_err(|e| format!("create {}: {e}", out_dir.display()))?;
    let write_out = |name: String, content: String| -> Result<PathBuf, String> {
        let p = out_dir.join(name);
        fs::write(&p, content).map_err(|e| format!("write {}: {e}", p.display()))?;
        Ok(p)
    };
    let json_path = write_out(
        format!("{}.analysis.json", attr.trace_name()),
        attr.to_json(),
    )?;
    println!(
        "analysis {}: {} ranks, {} channels -> {}",
        attr.trace_name(),
        trace.rank_count(),
        attr.channels().len(),
        json_path.display()
    );
    if csv {
        let p = write_out(format!("{}.analysis.csv", attr.trace_name()), attr.to_csv())?;
        println!("              csv -> {}", p.display());
    }
    if prv {
        let intervals = (0..trace.rank_count()).flat_map(|r| {
            recorder
                .intervals(r)
                .iter()
                .map(move |iv| (Rank::new(r as u32), iv.start, iv.end, iv.cause))
        });
        let prv_body = to_cause_prv(trace.rank_count(), attr.makespan(), intervals);
        let p = write_out(format!("{}.cause.prv", attr.trace_name()), prv_body)?;
        write_out(format!("{}.cause.pcf", attr.trace_name()), to_cause_pcf())?;
        write_out(
            format!("{}.cause.row", attr.trace_name()),
            to_row(trace.rank_count()),
        )?;
        println!("              paraver cause timeline -> {}", p.display());
    }

    println!(
        "\nmakespan {}  bound {}  critical path {} segments",
        format_time(attr.makespan()),
        format_time(attr.makespan_bound()),
        attr.critical_path().len()
    );
    println!(
        "\n{:<6} {:>4} {:>4} {:>12} {:>12} {:>12}",
        "chan", "src", "dst", "wait", "critical", "gain"
    );
    const SHOWN: usize = 10;
    let ranked = attr.ranked_channels();
    for c in ranked.iter().take(SHOWN) {
        println!(
            "{:<6} {:>4} {:>4} {:>12} {:>12} {:>12}",
            c.chan,
            c.src.get(),
            c.dst.get(),
            format_time(c.total_wait()),
            format_time(c.critical),
            format_time(c.gain_potential)
        );
    }
    if ranked.len() > SHOWN {
        println!("... and {} more channels", ranked.len() - SHOWN);
    }
    Ok(())
}

// -------------------------------------------------------------------- tune

/// Runs the attribution-guided overlap auto-tuner on a registered app
/// (traced at class S) or a trace file (baseline-only: raw traces carry no
/// transform metadata to synthesize candidates from). Writes the
/// byte-stable trajectory report next to the usual campaign outputs.
#[allow(clippy::too_many_arguments)]
fn cmd_tune(
    target: &str,
    bw: Option<&str>,
    lat: Option<&str>,
    out_dir: &Path,
    csv: bool,
    seed: Option<u64>,
    budget: Option<usize>,
    cache_dir: Option<&Path>,
) -> Result<(), String> {
    let session = open_session(cache_dir)?;
    let platform = parse_platform(bw, lat)?;
    let opts = TuneOptions {
        budget: budget.unwrap_or(ovlsim::lab::tune::DEFAULT_TUNE_BUDGET),
        seed: seed.unwrap_or(0),
        engine: Engine::Compiled,
    };
    let report = if registry::is_registered(target) {
        let bundle = ArtifactPipeline::bundle(
            &session,
            target,
            ProblemClass::S,
            registry::AppOverrides::default(),
        )
        .map_err(|e| e.to_string())?;
        run_tune(&session, &bundle, &platform, &opts).map_err(|e| e.to_string())?
    } else {
        let trace = session.trace(&load_source(target)?).map_err(|e| match e {
            ovlsim::session::SessionError::TraceParse(pe) => format!("{target}: {pe}"),
            ovlsim::session::SessionError::Decode(de) => format!("{target}: {de}"),
            other => format!("{target}: {other}"),
        })?;
        run_tune_baseline(&session, &trace, &platform, &opts).map_err(|e| e.to_string())?
    };
    fs::create_dir_all(out_dir).map_err(|e| format!("create {}: {e}", out_dir.display()))?;
    let json_path = out_dir.join(format!("{}.tune.json", report.app));
    fs::write(&json_path, report.to_json())
        .map_err(|e| format!("write {}: {e}", json_path.display()))?;
    println!(
        "tune {}: {} tunable channels, budget {} -> {}",
        report.app,
        report.channels,
        report.budget,
        json_path.display()
    );
    if csv {
        let csv_path = out_dir.join(format!("{}.tune.csv", report.app));
        fs::write(&csv_path, report.to_csv())
            .map_err(|e| format!("write {}: {e}", csv_path.display()))?;
        println!("              csv -> {}", csv_path.display());
    }
    println!(
        "\noriginal {}  uniform-linear {}  tuned {}  ({:+.2}% vs linear)",
        format_time(report.original),
        format_time(report.linear),
        format_time(report.best),
        (report.speedup_vs_linear() - 1.0) * 100.0
    );
    if let Some(plan) = &report.best_plan {
        println!("plan: {}", plan.render());
    }
    // The accepted trajectory: how the incumbent improved step by step.
    for s in report.steps.iter().filter(|s| s.accepted && s.iter > 0) {
        println!(
            "  [{}] {} -> {}",
            s.iter,
            s.mutation,
            format_time(s.makespan)
        );
    }
    Ok(())
}

// ------------------------------------------------------------------- serve

fn cmd_serve(port: u16, cache_dir: Option<&Path>) -> Result<(), String> {
    let session = Arc::new(open_session(cache_dir)?);
    let server = Server::bind(port, session, VERSION).map_err(|e| e.to_string())?;
    println!(
        "ovlsim {VERSION} serving on http://127.0.0.1:{} (POST /shutdown to stop)",
        server.port().map_err(|e| e.to_string())?
    );
    server.run().map_err(|e| e.to_string())
}

// -------------------------------------------------------------------- main

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut out_dir = PathBuf::from(".");
    let mut csv = false;
    let mut prv = false;
    let mut flags_given = false;
    let mut port: Option<u16> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut perturb = PerturbFlags::default();
    let mut engine: Option<Engine> = None;
    let mut force_engine: Option<Engine> = None;
    let mut budget: Option<usize> = None;
    // Both engine flags fail the same way: a single typed line on stderr
    // and the usage exit code, so scripts can distinguish "bad engine
    // name" from a failed replay without parsing the usage text.
    let parse_engine = |flag: &str, v: Option<&str>| -> Result<Engine, ExitCode> {
        match v.map(|s| (s, Engine::parse(s))) {
            Some((_, Some(e))) => Ok(e),
            Some((s, None)) => {
                eprintln!(
                    "error: unknown engine `{s}` for {flag} \
                     (expected compiled, prepared, naive or fastforward)"
                );
                Err(ExitCode::from(2))
            }
            None => Err(usage()),
        }
    };
    let mut it = args.iter().map(String::as_str);
    while let Some(arg) = it.next() {
        match arg {
            "--version" => {
                println!("ovlsim {VERSION}");
                return ExitCode::SUCCESS;
            }
            "--port" => match it.next().and_then(|v| v.parse().ok()) {
                Some(p) => port = Some(p),
                None => return usage(),
            },
            "--cache-dir" => match it.next() {
                Some(dir) => cache_dir = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--csv" => {
                csv = true;
                flags_given = true;
            }
            "--prv" => {
                prv = true;
                flags_given = true;
            }
            "--out" => match it.next() {
                Some(dir) => {
                    out_dir = PathBuf::from(dir);
                    flags_given = true;
                }
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(seed) => perturb.seed = Some(seed),
                None => return usage(),
            },
            "--budget" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => budget = Some(n),
                None => return usage(),
            },
            "--noise" => match it.next().and_then(|v| v.parse().ok()) {
                Some(level) => perturb.noise = Some(level),
                None => return usage(),
            },
            "--stragglers" => match it.next().map(PerturbFlags::parse_stragglers) {
                Some(Ok(stragglers)) => perturb.stragglers = Some(stragglers),
                Some(Err(e)) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
                None => return usage(),
            },
            "--engine" => match parse_engine("--engine", it.next()) {
                Ok(e) => engine = Some(e),
                Err(code) => return code,
            },
            "--force-engine" => match parse_engine("--force-engine", it.next()) {
                Ok(e) => force_engine = Some(e),
                Err(code) => return code,
            },
            "--faults" => match it.next().map(PerturbFlags::parse_faults) {
                Some(Ok(faults)) => perturb.faults = Some(faults),
                Some(Err(e)) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
                None => return usage(),
            },
            _ if arg.starts_with("--") => return usage(),
            _ => positional.push(arg),
        }
    }
    // Flags only mean something to `campaign run` and `analyze`; silently
    // swallowing them elsewhere would misplace the user's output. `--prv`
    // is analyze-only, and the perturbation flags belong to the three
    // replaying subcommands.
    let is_tune = positional.first() == Some(&"tune");
    let takes_flags = positional.get(..2) == Some(&["campaign", "run"])
        || positional.first() == Some(&"analyze")
        || is_tune;
    if flags_given && !takes_flags {
        return usage();
    }
    if prv && positional.first() != Some(&"analyze") {
        return usage();
    }
    let takes_perturb =
        (takes_flags && !is_tune) || positional.get(..2) == Some(&["trace", "replay"]);
    if is_tune {
        // `tune` reuses `--seed` as the *search* seed; the platform
        // perturbation flags don't apply to it.
        if perturb.noise.is_some() || perturb.stragglers.is_some() || perturb.faults.is_some() {
            return usage();
        }
    } else if perturb.given() && !takes_perturb {
        return usage();
    }
    // `--budget` is the tuner's evaluation budget and means nothing
    // elsewhere.
    if budget.is_some() && !is_tune {
        return usage();
    }
    // `--engine` selects the replay engine of `trace replay`;
    // `--force-engine` overrides campaign execution. Anywhere else the
    // flags would silently do nothing.
    if engine.is_some() && positional.get(..2) != Some(&["trace", "replay"]) {
        return usage();
    }
    if force_engine.is_some() && positional.get(..2) != Some(&["campaign", "run"]) {
        return usage();
    }
    if port.is_some() && positional.first() != Some(&"serve") {
        return usage();
    }
    // `--cache-dir` belongs to the session-backed subcommands.
    let takes_cache = takes_flags || positional.first() == Some(&"serve");
    if cache_dir.is_some() && !takes_cache {
        return usage();
    }
    let cache = cache_dir.as_deref();
    let result = match positional[..] {
        ["serve"] => cmd_serve(port.unwrap_or(0), cache),
        ["campaign", "run", spec] => {
            cmd_campaign_run(spec, &out_dir, csv, &perturb, cache, force_engine)
        }
        ["campaign", "list", spec] => cmd_campaign_list(spec),
        ["campaign", "diff", golden, actual] => cmd_campaign_diff(golden, actual),
        ["trace", "gen", app, prefix] => cmd_trace_gen(app, prefix, None, None, None),
        ["trace", "gen", app, prefix, class] => cmd_trace_gen(app, prefix, Some(class), None, None),
        ["trace", "gen", app, prefix, class, ranks] => {
            cmd_trace_gen(app, prefix, Some(class), Some(ranks), None)
        }
        ["trace", "gen", app, prefix, class, ranks, iters] => {
            cmd_trace_gen(app, prefix, Some(class), Some(ranks), Some(iters))
        }
        ["trace", "stats", path] => cmd_trace_stats(path),
        ["trace", "validate", path] => cmd_trace_validate(path),
        ["trace", "replay", path] => cmd_trace_replay(path, None, None, &perturb, engine),
        ["trace", "replay", path, bw] => cmd_trace_replay(path, Some(bw), None, &perturb, engine),
        ["trace", "replay", path, bw, lat] => {
            cmd_trace_replay(path, Some(bw), Some(lat), &perturb, engine)
        }
        ["trace", "convert", input, output] => cmd_trace_convert(input, output),
        ["analyze", path] => cmd_analyze(path, None, None, &out_dir, csv, prv, &perturb, cache),
        ["analyze", path, bw] => {
            cmd_analyze(path, Some(bw), None, &out_dir, csv, prv, &perturb, cache)
        }
        ["analyze", path, bw, lat] => cmd_analyze(
            path,
            Some(bw),
            Some(lat),
            &out_dir,
            csv,
            prv,
            &perturb,
            cache,
        ),
        ["tune", target] => cmd_tune(
            target,
            None,
            None,
            &out_dir,
            csv,
            perturb.seed,
            budget,
            cache,
        ),
        ["tune", target, bw] => cmd_tune(
            target,
            Some(bw),
            None,
            &out_dir,
            csv,
            perturb.seed,
            budget,
            cache,
        ),
        ["tune", target, bw, lat] => cmd_tune(
            target,
            Some(bw),
            Some(lat),
            &out_dir,
            csv,
            perturb.seed,
            budget,
            cache,
        ),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
