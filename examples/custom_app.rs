//! Writing your own application model and exporting Paraver traces.
//!
//! Implements a small producer/consumer pipeline directly against the
//! [`Application`] trait, runs the full environment on it, and writes
//! `.prv`/`.pcf`/`.row` files (loadable in BSC Paraver) for the original
//! and overlapped executions.
//!
//! Run with: `cargo run --example custom_app`

use ovlsim::memtrace::{AccessKind, IndexPattern, Kernel};
use ovlsim::prelude::*;
use ovlsim::tracer::TraceError;
use ovlsim_core::{BufferId, Instr, Rank, Tag};
use ovlsim_paraver::{to_pcf, to_prv, to_row, Timeline};
use std::fs;

/// A 4-stage software pipeline: rank r transforms a block and forwards it
/// to rank r+1, writing its output progressively (a good pattern).
struct Pipeline {
    stages: usize,
    blocks: usize,
}

impl Application for Pipeline {
    fn name(&self) -> &str {
        "pipeline"
    }

    fn ranks(&self) -> usize {
        self.stages
    }

    fn run(&self, rank: Rank, ctx: &mut TraceContext) -> Result<(), TraceError> {
        let inbox: Option<BufferId> =
            (rank.index() > 0).then(|| ctx.register_buffer("inbox", 65_536, 8));
        let outbox: Option<BufferId> =
            (rank.index() + 1 < self.stages).then(|| ctx.register_buffer("outbox", 65_536, 8));

        for block in 0..self.blocks {
            let tag = Tag::new(block as u64);
            if let Some(inbox) = inbox {
                ctx.recv(Rank::new(rank.get() - 1), inbox, tag)?;
            }
            // Transform the block: read the input as we go, write the
            // output as we go (spread production — overlap friendly).
            let mut k = Kernel::builder().phase(Instr::new(800_000));
            if let Some(inbox) = inbox {
                k = k.access(inbox, AccessKind::Read, IndexPattern::Sequential);
            }
            if let Some(outbox) = outbox {
                k = k.access(outbox, AccessKind::Write, IndexPattern::Sequential);
            }
            ctx.kernel(&k.build());
            if let Some(outbox) = outbox {
                ctx.send(Rank::new(rank.get() + 1), outbox, tag)?;
            }
        }
        Ok(())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = Pipeline {
        stages: 4,
        blocks: 6,
    };
    let bundle = TracingSession::new(&app)
        .policy(ChunkingPolicy::fixed_count(8))
        .run()?;

    let platform = Platform::builder()
        .latency(Time::from_us(5))
        .bandwidth_bytes_per_sec(50.0e6)?
        .build();

    let out_dir = std::env::temp_dir().join("ovlsim-custom-app");
    fs::create_dir_all(&out_dir)?;

    for (label, trace) in [
        ("original", bundle.original().clone()),
        ("overlapped", bundle.overlapped_linear()),
    ] {
        let (timeline, result) = Timeline::capture(&platform, &trace)?;
        let base = out_dir.join(label);
        fs::write(base.with_extension("prv"), to_prv(&timeline))?;
        fs::write(base.with_extension("pcf"), to_pcf())?;
        fs::write(base.with_extension("row"), to_row(trace.rank_count()))?;
        println!(
            "{label:>10}: {} -> wrote {}.prv/.pcf/.row",
            result.total_time(),
            base.display()
        );
    }
    Ok(())
}
