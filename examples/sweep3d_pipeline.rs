//! Visualizing how chunked overlap collapses a wavefront pipeline.
//!
//! Sweep3D is the paper's biggest winner (≈160% at intermediate
//! bandwidth): the sweep is a software pipeline whose fill time shrinks
//! when faces are forwarded plane by plane instead of block by block.
//! This example renders original vs overlapped timelines as ASCII Gantt
//! charts and shows the speedup as a function of the chunk count.
//!
//! Run with: `cargo run --example sweep3d_pipeline`

use ovlsim::prelude::*;
use ovlsim_paraver::{render_gantt, GanttOptions, Timeline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = ovlsim::apps::Sweep3d::builder()
        .ranks(16)
        .planes(16)
        .build()?;

    let platform = Platform::builder()
        .latency(Time::from_us(5))
        .bandwidth_bytes_per_sec(250.0e6)?
        .build();

    // Qualitative view: the wavefront staircase vs the collapsed fill.
    let bundle = TracingSession::new(&app).run()?;
    let (tl_orig, res_orig) = Timeline::capture(&platform, bundle.original())?;
    let (tl_ovl, res_ovl) = Timeline::capture(&platform, &bundle.overlapped_linear())?;
    let opts = GanttOptions {
        width: 76,
        legend: false,
    };
    println!("original (note the wavefront staircase):");
    println!("{}", render_gantt(&tl_orig, &opts));
    println!("overlapped, linear pattern (fill collapsed):");
    println!(
        "{}",
        render_gantt(
            &tl_ovl,
            &GanttOptions {
                width: 76,
                legend: true
            }
        )
    );
    println!(
        "makespan {} -> {}\n",
        res_orig.total_time(),
        res_ovl.total_time()
    );

    // Quantitative view: speedup vs chunk count.
    println!("{:>8}  {:>10}", "chunks", "speedup");
    for chunks in [1usize, 2, 4, 8, 16, 32] {
        let bundle = TracingSession::new(&app)
            .policy(ChunkingPolicy::fixed_count(chunks).with_min_chunk_bytes(512))
            .run()?;
        let sim = Simulator::new(platform.clone());
        let orig = sim.run(bundle.original())?.total_time();
        let ovl = sim.run(&bundle.overlapped_linear())?.total_time();
        println!(
            "{chunks:>8}  {:>9.3}x",
            orig.as_secs_f64() / ovl.as_secs_f64()
        );
    }
    Ok(())
}
