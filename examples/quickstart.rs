//! Quickstart: the whole environment in ~40 lines.
//!
//! Traces a small Sweep3D run, synthesizes the overlapped executions
//! (real and ideal patterns), replays everything on one platform and
//! prints the comparison — the paper's Figure 1 pipeline end to end.
//!
//! Run with: `cargo run --example quickstart`

use ovlsim::prelude::*;
use ovlsim_paraver::{compare, StateProfile, Timeline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An application model (one of the six codes from the paper).
    let app = ovlsim::apps::Sweep3d::builder()
        .ranks(9)
        .planes(8)
        .build()?;

    // 2. The tracing tool: one run produces the original trace plus
    //    everything needed to synthesize the overlapped variants.
    let bundle = TracingSession::new(&app)
        .policy(ChunkingPolicy::fixed_count(8))
        .run()?;
    println!("traced: {}", bundle.original());

    // 3. The configurable platform (latency, bandwidth, links, buses).
    let platform = Platform::builder()
        .latency(Time::from_us(5))
        .bandwidth_bytes_per_sec(250.0e6)?
        .build();

    // 4. Replay original and overlapped executions.
    let sim = Simulator::new(platform.clone());
    let original = sim.run(bundle.original())?;
    let real = sim.run(&bundle.overlapped_real())?;
    let linear = sim.run(&bundle.overlapped_linear())?;

    println!("original           : {}", original.total_time());
    println!(
        "overlapped (real)  : {}  ({:+.1}%)",
        real.total_time(),
        (original.total_time().as_secs_f64() / real.total_time().as_secs_f64() - 1.0) * 100.0
    );
    println!(
        "overlapped (linear): {}  ({:+.1}%)",
        linear.total_time(),
        (original.total_time().as_secs_f64() / linear.total_time().as_secs_f64() - 1.0) * 100.0
    );

    // 5. Quantitative comparison, Paraver-style.
    let (tl_orig, _) = Timeline::capture(&platform, bundle.original())?;
    let (tl_ovl, _) = Timeline::capture(&platform, &bundle.overlapped_linear())?;
    println!(
        "\n{}",
        compare(&StateProfile::of(&tl_orig), &StateProfile::of(&tl_ovl))
    );
    Ok(())
}
