//! The paper's central finding in miniature: the production pattern
//! decides everything.
//!
//! Three synthetic applications, identical in every respect except *when*
//! their send buffers receive their final values:
//!
//! * `spread` — values land as the loop progresses (the ideal Sancho
//!   assumption),
//! * `tail`   — a pack loop fills the buffer in the last 3% (the legacy
//!   pattern),
//! * plus the linear transform applied to the tail app (what restructured
//!   code could achieve).
//!
//! Run with: `cargo run --example pattern_study`

use ovlsim::apps::{ConsumptionShape, ProductionShape, Synthetic, Topology};
use ovlsim::prelude::*;

fn speedup(bundle: &TraceBundle, mode: OverlapMode, platform: &Platform) -> f64 {
    let sim = Simulator::new(platform.clone());
    let orig = sim
        .run(bundle.original())
        .expect("original replays")
        .total_time();
    let ovl = sim
        .run(&bundle.overlapped(mode).expect("transform validates"))
        .expect("overlapped replays")
        .total_time();
    orig.as_secs_f64() / ovl.as_secs_f64()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::builder()
        .latency(Time::from_us(5))
        .bandwidth_bytes_per_sec(100.0e6)?
        .build();

    let mut base = Synthetic::builder();
    base.ranks(8)
        .topology(Topology::Grid)
        .iterations(4)
        .compute_instr(2_000_000)
        .message_bytes(131_072)
        // Both variants unpack immediately (the legacy consumption
        // pattern); only the *production* side differs.
        .consumption(ConsumptionShape::Head { fraction: 0.03 });

    let spread = {
        let mut b = base.clone();
        b.production(ProductionShape::Spread);
        b.build()?
    };
    let tail = {
        let mut b = base.clone();
        b.production(ProductionShape::Tail { fraction: 0.03 });
        b.build()?
    };

    let bundle_spread = TracingSession::new(&spread).run()?;
    let bundle_tail = TracingSession::new(&tail).run()?;

    println!("identical apps, different production patterns, same platform:\n");
    println!("{:<44} {:>9}", "configuration", "speedup");
    println!("{}", "-".repeat(54));
    println!(
        "{:<44} {:>8.3}x",
        "spread production, real measured pattern",
        speedup(&bundle_spread, OverlapMode::real(), &platform)
    );
    println!(
        "{:<44} {:>8.3}x",
        "pack-at-end production, real measured pattern",
        speedup(&bundle_tail, OverlapMode::real(), &platform)
    );
    println!(
        "{:<44} {:>8.3}x",
        "pack-at-end production, linear (ideal) model",
        speedup(&bundle_tail, OverlapMode::linear(), &platform)
    );
    println!(
        "\nthe pack loop erases the overlap potential that the linear model\n\
         (and a restructured code) would enjoy — the paper's §III claim 1"
    );
    Ok(())
}
