//! The paper's third finding: overlap relaxes network requirements.
//!
//! For NAS-BT, finds the smallest bandwidth at which the overlapped
//! execution matches the original's performance at a range of reference
//! bandwidths — reproducing "the overlapped execution needs bandwidth that
//! is [a] couple of orders of magnitude lower".
//!
//! Run with: `cargo run --release --example bandwidth_relaxation`

use ovlsim::lab::bandwidth_relaxation;
use ovlsim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let app = ovlsim::apps::NasBt::builder()
        .ranks(16)
        .iterations(2)
        .build()?;
    let bundle = TracingSession::new(&app).run()?;
    let overlapped = bundle.overlapped_linear();
    let base = ovlsim::apps::calibration::reference_platform();

    println!(
        "{:>14}  {:>14}  {:>12}  {:>10}",
        "reference BW", "iso BW", "factor", "orders"
    );
    for reference in [1.0e9, 3.0e9, 1.0e10, 3.0e10] {
        let r = bandwidth_relaxation(bundle.original(), &overlapped, &base, reference, 1.0e3)?;
        println!(
            "{:>14}  {:>14}  {:>11.0}x  {:>10.2}",
            ovlsim_core::format_bandwidth(r.reference_bandwidth),
            ovlsim_core::format_bandwidth(r.iso_bandwidth),
            r.relaxation_factor(),
            r.orders_of_magnitude()
        );
    }
    println!(
        "\nat high reference bandwidths the original wastes the network on\n\
         bursty traffic; the overlapped execution spreads transfers out and\n\
         achieves the same makespan on a far slower network"
    );
    Ok(())
}
