#!/usr/bin/env python3
"""Sanity- and regression-check a perf_snapshot JSON file.

Usage:
    python3 ci/check_snapshot.py BENCH_ci.json BENCH_baseline.json [BENCH_trajectory.md]

Three layers of checking:

1. Structural sanity (always): every ``*speedup*`` field and every
   ``scaling_*`` field except ``scaling_note`` must be a finite positive
   number, and at least MIN_SPEEDUP_FIELDS of them must exist — a schema
   change that silently drops the speedup fields should fail loudly, not
   pass vacuously.

2. Absolute floors: engine-vs-engine speedups that the design guarantees
   must clear a floor even on the noisiest CI runner. Today that is the
   fast-forward engine: locally it clears 5x over compiled; CI gates at
   >= 3.5x so shared-runner noise cannot mask a collapse to 1x.

3. Baseline comparison (required): each speedup field present in *both*
   snapshots must not collapse below ``TOLERANCE * baseline``. The
   tolerance is deliberately generous — CI runners are noisy, shared, and
   differently-provisioned, so this gate only catches *gross* regressions
   (an engine accidentally falling back to a slow path), not few-percent
   drift. Absolute records/sec fields are never compared: they track host
   speed, not code quality. A missing or unparsable baseline is a hard
   failure: a gate that cannot load its reference is not a gate.

When a third path is given, a compact markdown table of every speedup
field (baseline vs. this run) is written there, so the uploaded CI
artifact carries the perf trajectory alongside the raw JSON.

Exit status: 0 ok, 1 check failed, 2 usage error.
"""

import json
import math
import sys

MIN_SPEEDUP_FIELDS = 4
# A speedup may shrink to a third of its recorded baseline before we call
# it a regression. Speedups are ratios of two measurements on the same
# host, so they are far more stable than raw throughput — but 3x headroom
# still absorbs the worst CI-runner noise observed in practice.
TOLERANCE = 1.0 / 3.0

# Absolute floors, independent of the baseline: these ratios are design
# guarantees, so even a stale baseline must not let them slide.
FLOORS = {
    "replay_fastforward.speedup_vs_compiled": 3.5,
}


def walk(prefix, node, out):
    """Collects {dotted.path: value} for every checkable numeric field."""
    for key, value in node.items():
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            walk(path, value, out)
        elif "speedup" in key or (key.startswith("scaling_") and key != "scaling_note"):
            out[path] = value


def check_sanity(snap):
    fields = {}
    walk("", snap, fields)
    failures = []
    for path, value in sorted(fields.items()):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            failures.append(f"{path} is not numeric: {value!r}")
        elif not (math.isfinite(value) and value > 0):
            failures.append(f"{path} = {value} (want finite and > 0)")
    if len(fields) < MIN_SPEEDUP_FIELDS:
        failures.append(
            f"only {len(fields)} speedup/scaling fields found "
            f"(want >= {MIN_SPEEDUP_FIELDS}); snapshot schema changed?"
        )
    return fields, failures


def check_floors(fields):
    failures = []
    for path, floor in sorted(FLOORS.items()):
        value = fields.get(path)
        if value is None:
            failures.append(f"{path} is missing but has a hard floor of {floor}")
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            if value < floor:
                failures.append(f"{path} = {value} is below the hard CI floor {floor}")
    return failures


def check_against_baseline(fields, baseline):
    base_fields = {}
    walk("", baseline, base_fields)
    failures = []
    compared = 0
    for path, base_value in sorted(base_fields.items()):
        if "speedup" not in path.rsplit(".", 1)[-1]:
            continue  # scaling_* wall-clock ratios are host-dependent
        if path not in fields:
            continue  # schema may gain/lose sections between PRs
        value = fields[path]
        if not isinstance(base_value, (int, float)) or base_value <= 0:
            continue
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue  # already reported by check_sanity; < would TypeError

        compared += 1
        floor = base_value * TOLERANCE
        if value < floor:
            failures.append(
                f"{path} = {value} is a gross regression vs baseline "
                f"{base_value} (floor {floor:.2f})"
            )
    if compared == 0:
        # A gate that compares nothing is not a gate: the baseline's
        # schema no longer overlaps the snapshot's (or the wrong file was
        # passed) — fail loudly instead of vacuously passing.
        failures.append(
            "no speedup fields overlap between snapshot and baseline; "
            "regenerate BENCH_baseline.json or fix the field names"
        )
    return compared, failures


def write_trajectory(path, fields, base_fields, snap_name, base_name):
    """Writes a markdown table of every speedup field: baseline vs. now."""

    def fmt(value):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return f"{value:.2f}"
        return "—"

    rows = []
    for key in sorted(set(fields) | set(base_fields)):
        if "speedup" not in key.rsplit(".", 1)[-1]:
            continue
        now = fields.get(key)
        base = base_fields.get(key)
        if isinstance(now, (int, float)) and isinstance(base, (int, float)) and base:
            ratio = f"{now / base:.2f}x"
        else:
            ratio = "—"
        rows.append(f"| `{key}` | {fmt(base)} | {fmt(now)} | {ratio} |")
    lines = [
        "# Perf trajectory",
        "",
        f"Speedup ratios: committed `{base_name}` vs. this run's `{snap_name}`.",
        "Speedups are same-host measurement pairs, so they are comparable",
        "across runners; absolute records/sec are not, and are omitted.",
        "",
        "| field | baseline | this run | vs baseline |",
        "|---|---:|---:|---:|",
        *rows,
        "",
    ]
    with open(path, "w") as f:
        f.write("\n".join(lines))
    print(f"ok: wrote {len(rows)}-row trajectory table to {path}")


def main(argv):
    if len(argv) not in (3, 4):
        print(__doc__, file=sys.stderr)
        return 2
    try:
        snap = json.load(open(argv[1]))
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot load snapshot {argv[1]}: {e}", file=sys.stderr)
        return 1

    fields, failures = check_sanity(snap)
    if not failures:
        print(f"ok: {len(fields)} speedup/scaling fields finite and positive")

    floor_failures = check_floors(fields)
    failures.extend(floor_failures)
    if not floor_failures:
        print(f"ok: {len(FLOORS)} hard engine floor(s) cleared")

    # The baseline is mandatory: silently skipping the regression gate when
    # the file is missing or corrupt would let any collapse through.
    try:
        baseline = json.load(open(argv[2]))
    except (OSError, json.JSONDecodeError) as e:
        failures.append(f"cannot load required baseline {argv[2]}: {e}")
        baseline = None

    if baseline is not None:
        compared, base_failures = check_against_baseline(fields, baseline)
        failures.extend(base_failures)
        if not base_failures:
            print(
                f"ok: {compared} speedup fields within {1 / TOLERANCE:.0f}x "
                f"of {argv[2]}"
            )
        if len(argv) == 4:
            base_fields = {}
            walk("", baseline, base_fields)
            write_trajectory(argv[3], fields, base_fields, argv[1], argv[2])

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
