#!/usr/bin/env python3
"""Smoke-test a running ``ovlsim serve`` instance over loopback HTTP.

Usage:
    python3 ci/serve_smoke.py PORT VERSION SPEC_FILE GOLDEN_REPORT [--expect-warm]

Checks, in order:

1. ``GET /status`` answers 200 within a startup deadline, identifies
   itself as the ``ovlsim`` service, and reports exactly VERSION (the
   string ``ovlsim --version`` printed — the CLI and the server must
   never disagree about what build is running).
2. ``POST /campaign`` with the spec file's text returns the campaign
   report **byte-identical** to the committed golden: the server path
   reuses the exact CLI report serialization, so goldens gate it too.
3. A second identical ``POST /campaign`` is byte-identical to the first
   and performs zero additional trace-cache builds (every artifact is
   served from the session's content-addressed store).
4. ``POST /shutdown`` answers ``{"ok":true}`` and the listener actually
   goes away.

With ``--expect-warm`` (a server restarted over a populated
``--cache-dir``), the first campaign must already be served entirely from
the persistent cache: every shelf's build counter stays at zero.

Exit status: 0 ok, 1 check failed, 2 usage/IO error.
"""

import http.client
import json
import sys
import time

STARTUP_DEADLINE_S = 30.0


def fail(msg):
    print(f"serve_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def request(port, method, path, body=None):
    """One round-trip; returns (status, raw body bytes)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request(method, path, body=body)
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def wait_for_status(port):
    deadline = time.monotonic() + STARTUP_DEADLINE_S
    while True:
        try:
            return request(port, "GET", "/status")
        except OSError:
            if time.monotonic() >= deadline:
                fail(f"server did not come up on port {port}")
            time.sleep(0.1)


def main():
    if len(sys.argv) not in (5, 6) or (len(sys.argv) == 6 and sys.argv[5] != "--expect-warm"):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    expect_warm = len(sys.argv) == 6
    port = int(sys.argv[1])
    version = sys.argv[2]
    with open(sys.argv[3], "rb") as f:
        spec = f.read().decode("utf-8")
    with open(sys.argv[4], "rb") as f:
        golden = f.read()

    status, body = wait_for_status(port)
    if status != 200:
        fail(f"/status answered {status}: {body!r}")
    info = json.loads(body)
    if info.get("service") != "ovlsim":
        fail(f"/status service field: {body!r}")
    if info.get("version") != version:
        fail(f"/status version {info.get('version')!r} != CLI version {version!r}")

    campaign_body = json.dumps({"spec": spec})
    status, first = request(port, "POST", "/campaign", campaign_body)
    if status != 200:
        fail(f"/campaign answered {status}: {first[:400]!r}")
    if first != golden:
        fail(
            "campaign response is not byte-identical to the golden "
            f"({len(first)} vs {len(golden)} bytes)"
        )
    _, mid = request(port, "GET", "/status")
    builds_before = json.loads(mid)["cache"]["traces"]["builds"]
    if expect_warm:
        rebuilt = {
            shelf: counters["builds"]
            for shelf, counters in json.loads(mid)["cache"].items()
            if isinstance(counters, dict) and counters["builds"]
        }
        if rebuilt:
            fail(
                f"warm restart rebuilt artifacts: {rebuilt}; a populated "
                "--cache-dir must serve every artifact from disk"
            )

    status, second = request(port, "POST", "/campaign", campaign_body)
    if status != 200 or second != first:
        fail("repeated campaign diverged from the first response")
    _, after = request(port, "GET", "/status")
    builds_after = json.loads(after)["cache"]["traces"]["builds"]
    if builds_after != builds_before:
        fail(
            f"repeat campaign rebuilt traces ({builds_before} -> {builds_after}); "
            "the content-addressed cache should have served every artifact"
        )

    status, body = request(port, "POST", "/shutdown")
    if status != 200 or body != b'{"ok":true}':
        fail(f"/shutdown answered {status}: {body!r}")
    deadline = time.monotonic() + STARTUP_DEADLINE_S
    while time.monotonic() < deadline:
        try:
            request(port, "GET", "/status")
            time.sleep(0.1)
        except OSError:
            warm = ", zero warm rebuilds" if expect_warm else ""
            print(
                "serve_smoke: ok (status, golden-byte campaign, "
                f"cache reuse{warm}, shutdown)"
            )
            return
    fail("listener still accepting connections after /shutdown")


if __name__ == "__main__":
    main()
