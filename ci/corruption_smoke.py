#!/usr/bin/env python3
"""Corruption-recovery smoke test for the persistent artifact cache.

Usage:
    python3 ci/corruption_smoke.py OVLSIM_BIN SPEC_FILE GOLDEN_REPORT

Exercises the full durability story end to end, against the same golden
bytes that gate the ordinary campaign run:

1. **Cold run** with ``--cache-dir``: every artifact is built and
   persisted (``cache:`` line reports 0 loads, >0 stores, 0 quarantined)
   and the report is byte-identical to the committed golden.
2. **Warm run** over the same cache: everything is served from disk
   (>0 loads, 0 stores, 0 quarantined) and the report is still
   byte-identical.
3. **Corruption**: one cached trace gets a bit flipped mid-file and one
   cached program is truncated (a torn write). The rerun must quarantine
   exactly those two entries (``2 quarantined`` on stdout, two
   ``*.quarantined`` files left for post-mortem), rebuild them
   transparently, and produce the golden bytes again.

Exit status: 0 ok, 1 check failed, 2 usage/IO error.
"""

import pathlib
import subprocess
import sys


def fail(msg: str) -> None:
    print(f"corruption_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_campaign(binary, spec, out_dir, cache_dir):
    proc = subprocess.run(
        [binary, "campaign", "run", spec, "--out", str(out_dir),
         "--cache-dir", str(cache_dir)],
        capture_output=True, text=True,
    )
    if proc.returncode != 0:
        fail(f"campaign run exited {proc.returncode}: {proc.stderr.strip()}")
    cache_lines = [l for l in proc.stdout.splitlines() if l.startswith("cache: ")]
    if len(cache_lines) != 1:
        fail(f"expected one `cache:` line on stdout, got: {proc.stdout!r}")
    # "cache: L loads, S stores, Q quarantined"
    words = cache_lines[0].split()
    loads, stores, quarantined = int(words[1]), int(words[3]), int(words[5])
    return loads, stores, quarantined, proc.stderr


def report_bytes(out_dir, golden):
    name = pathlib.Path(golden).name
    produced = out_dir / name
    if not produced.exists():
        fail(f"campaign produced no {name} in {out_dir}")
    return produced.read_bytes()


def main() -> None:
    if len(sys.argv) != 4:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    binary, spec, golden = sys.argv[1:4]
    golden_bytes = pathlib.Path(golden).read_bytes()

    scratch = pathlib.Path("corruption-smoke")
    cache = scratch / "cache"

    # 1. Cold run: builds everything, persists everything.
    loads, stores, quarantined, _ = run_campaign(binary, spec, scratch / "cold", cache)
    if loads != 0 or stores == 0 or quarantined != 0:
        fail(f"cold run: expected 0 loads / >0 stores / 0 quarantined, "
             f"got {loads}/{stores}/{quarantined}")
    if report_bytes(scratch / "cold", golden) != golden_bytes:
        fail("cold cached run diverged from the committed golden")
    print(f"corruption_smoke: cold run ok ({stores} artifacts persisted)")

    # 2. Warm run: everything comes back from disk, nothing is rebuilt.
    loads, warm_stores, quarantined, _ = run_campaign(
        binary, spec, scratch / "warm", cache)
    if loads == 0 or warm_stores != 0 or quarantined != 0:
        fail(f"warm run: expected >0 loads / 0 stores / 0 quarantined, "
             f"got {loads}/{warm_stores}/{quarantined}")
    if report_bytes(scratch / "warm", golden) != golden_bytes:
        fail("warm cached run diverged from the committed golden")
    print(f"corruption_smoke: warm run ok ({loads} artifacts loaded, 0 rebuilt)")

    # 3. Corrupt one trace (bit flip) and tear one program (truncation).
    entries = sorted(cache.glob("*.ovlb"))
    traces = [p for p in entries if p.name.startswith("trace-")]
    progs = [p for p in entries if p.name.startswith("prog-")]
    if not traces or not progs:
        fail(f"expected trace-*.ovlb and prog-*.ovlb entries in {cache}")
    victim_trace, victim_prog = traces[0], progs[0]
    blob = bytearray(victim_trace.read_bytes())
    blob[len(blob) // 2] ^= 0x40
    victim_trace.write_bytes(blob)
    torn = victim_prog.read_bytes()
    victim_prog.write_bytes(torn[: max(1, len(torn) // 3)])

    loads, stores, quarantined, stderr = run_campaign(
        binary, spec, scratch / "recovered", cache)
    if quarantined != 2:
        fail(f"expected exactly 2 quarantined entries, got {quarantined}")
    if stores != 2:
        fail(f"expected the 2 damaged artifacts re-persisted, got {stores} stores")
    if "quarantined" not in stderr:
        fail(f"recovery must warn about quarantined entries, stderr: {stderr!r}")
    if report_bytes(scratch / "recovered", golden) != golden_bytes:
        fail("recovery run diverged from the committed golden")
    leftovers = sorted(cache.glob("*.quarantined"))
    if len(leftovers) != 2:
        fail(f"expected 2 *.quarantined files for post-mortem, got {leftovers}")
    print("corruption_smoke: recovery ok "
          "(2 quarantined, 2 rebuilt, report byte-identical)")
    print("corruption_smoke: OK")


if __name__ == "__main__":
    main()
