//! Campaign-runner integration tests: the committed corpus parses, its
//! grid covers what the CI gate promises, and the paper campaign is
//! deterministic — byte-identical reports sequential vs parallel, driven
//! through the real CLI with `OVLSIM_THREADS` like CI does.

use std::path::{Path, PathBuf};
use std::process::Command;

use ovlsim::lab::campaign::{CampaignSpec, Engine};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn read_spec(rel: &str) -> CampaignSpec {
    let text = std::fs::read_to_string(repo_path(rel)).expect("spec file exists");
    CampaignSpec::parse(&text).expect("committed spec parses")
}

#[test]
fn committed_corpus_parses_and_covers_the_promised_grid() {
    let paper = read_spec("examples/campaigns/paper.campaign");
    assert_eq!(paper.name, "paper");
    assert!(paper.apps.len() >= 3, "paper campaign spans >= 3 apps");
    assert!(
        paper.classes.len() >= 2,
        "paper campaign spans >= 2 classes"
    );
    assert!(
        paper.ranks_per_node.contains(&1),
        "paper campaign includes the flat platform"
    );
    assert!(
        paper.ranks_per_node.iter().any(|&rpn| rpn > 1),
        "paper campaign includes a multicore platform"
    );
    assert!(paper.bandwidths.len() >= 2);

    let stress = read_spec("examples/campaigns/stress.campaign");
    assert!(stress.apps.len() >= 3);
    assert!(stress.classes.len() >= 2);
    assert_eq!(stress.engines.len(), 4, "stress cross-checks every engine");
    assert!(
        stress.engines.contains(&Engine::Fastforward),
        "stress corpus exercises the fast-forward engine"
    );
}

/// `engine fastforward` must survive the full spec round trip: parse,
/// grid expansion, and the human-facing `campaign list` output through
/// the real binary.
#[test]
fn engine_fastforward_round_trips_through_campaign_list() {
    let dir = std::env::temp_dir().join("ovlsim-campaign-ff-list");
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("ff.campaign");
    let text = "campaign ff-mini\napps sweep3d\nclasses S\nranks 4\n\
                iterations 1\nbandwidths list 1e8\nengines fastforward\n";
    std::fs::write(&spec_path, text).unwrap();

    let spec = CampaignSpec::parse(text).expect("spec parses");
    assert_eq!(spec.engines, vec![Engine::Fastforward]);
    assert_eq!(format!("{}", spec.engines[0]), "fastforward");

    let out = Command::new(env!("CARGO_BIN_EXE_ovlsim"))
        .args(["campaign", "list"])
        .arg(&spec_path)
        .output()
        .expect("ovlsim runs");
    assert!(out.status.success(), "campaign list failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("1 engines"),
        "grid header counts the single engine: {stdout}"
    );
    assert!(
        stdout.contains("engine=fastforward"),
        "points are listed under the fastforward engine: {stdout}"
    );
}

#[test]
fn golden_reports_match_their_specs_shape() {
    for name in ["paper", "stress"] {
        let spec = read_spec(&format!("examples/campaigns/{name}.campaign"));
        let golden = std::fs::read_to_string(repo_path(&format!(
            "examples/campaigns/golden/{name}.report.json"
        )))
        .expect("golden report is committed");
        assert!(
            golden.contains(&format!("\"campaign\": \"{}\"", spec.name)),
            "{name}: golden names the campaign"
        );
        assert!(
            golden.contains(&format!("\"points\": {}", spec.point_count())),
            "{name}: golden point count matches the spec grid"
        );
        let rows = golden.lines().filter(|l| l.contains("\"app\":")).count();
        assert_eq!(rows, spec.point_count(), "{name}: one row per grid point");
    }
}

/// The acceptance gate: the paper campaign, run through the real binary
/// exactly as CI runs it, produces byte-identical reports with one worker
/// and with `OVLSIM_THREADS` parallelism.
#[test]
fn paper_campaign_report_is_byte_identical_sequential_vs_parallel() {
    let spec = repo_path("examples/campaigns/paper.campaign");
    let base = std::env::temp_dir().join("ovlsim-campaign-determinism");
    let mut reports = Vec::new();
    for (label, threads) in [("seq", "1"), ("par", "4")] {
        let out_dir = base.join(label);
        let status = Command::new(env!("CARGO_BIN_EXE_ovlsim"))
            .args(["campaign", "run"])
            .arg(&spec)
            .arg("--out")
            .arg(&out_dir)
            .env("OVLSIM_THREADS", threads)
            .status()
            .expect("ovlsim runs");
        assert!(status.success(), "{label} campaign run failed");
        reports.push(std::fs::read(out_dir.join("paper.report.json")).expect("report written"));
    }
    assert!(
        reports[0] == reports[1],
        "sequential and parallel paper campaign reports differ"
    );
}
