//! Visualization-layer integration tests: Paraver export well-formedness
//! and Gantt/profile consistency for real application timelines.

use ovlsim::prelude::*;
use ovlsim_apps::{NasBt, Sweep3d};
use ovlsim_dimemas::ProcState;
use ovlsim_paraver::{
    compare, render_gantt, to_pcf, to_prv, to_row, GanttOptions, StateProfile, Timeline,
};

fn platform() -> Platform {
    Platform::builder()
        .latency(Time::from_us(5))
        .bandwidth_bytes_per_sec(100.0e6)
        .unwrap()
        .build()
}

#[test]
fn prv_export_is_wellformed_for_real_apps() {
    let app = NasBt::builder().ranks(4).iterations(2).build().unwrap();
    let bundle = TracingSession::new(&app).run().unwrap();
    for trace in [bundle.original().clone(), bundle.overlapped_linear()] {
        let (timeline, result) = Timeline::capture(&platform(), &trace).unwrap();
        let prv = to_prv(&timeline);
        let lines: Vec<&str> = prv.lines().collect();
        assert!(lines[0].starts_with("#Paraver"));
        // Every body line is a known record type with numeric fields.
        for line in &lines[1..] {
            let kind = line.split(':').next().unwrap();
            assert!(
                ["1", "2", "3"].contains(&kind),
                "unknown prv record `{line}`"
            );
            let fields: Vec<&str> = line.split(':').collect();
            match kind {
                "1" => assert_eq!(fields.len(), 8, "state record arity: {line}"),
                "2" => assert_eq!(fields.len(), 8, "event record arity: {line}"),
                "3" => assert_eq!(fields.len(), 15, "comm record arity: {line}"),
                _ => unreachable!(),
            }
            for f in &fields[1..] {
                assert!(
                    f.parse::<u64>().is_ok(),
                    "non-numeric field `{f}` in `{line}`"
                );
            }
        }
        // State intervals never exceed the makespan.
        let span_ns = result.total_time().as_ps() / 1000;
        for line in lines[1..].iter().filter(|l| l.starts_with("1:")) {
            let fields: Vec<u64> = line
                .split(':')
                .skip(1)
                .map(|f| f.parse().unwrap())
                .collect();
            assert!(fields[4] <= fields[5], "inverted interval: {line}");
            assert!(fields[5] <= span_ns, "interval beyond makespan: {line}");
        }
        assert!(!to_pcf().is_empty());
        assert!(to_row(trace.rank_count()).contains("rank 3"));
    }
}

#[test]
fn timeline_state_times_sum_to_busy_time() {
    // For each rank: compute + waits == finish time (our replay never has
    // unaccounted gaps except idle-at-end for early finishers).
    let app = Sweep3d::builder().ranks(4).planes(4).build().unwrap();
    let bundle = TracingSession::new(&app).run().unwrap();
    let (timeline, result) = Timeline::capture(&platform(), bundle.original()).unwrap();
    for r in 0..4u32 {
        let rank = ovlsim_core::Rank::new(r);
        let busy: Time = [
            ProcState::Compute,
            ProcState::WaitRecv,
            ProcState::WaitSend,
            ProcState::WaitRequest,
            ProcState::Collective,
        ]
        .iter()
        .map(|&s| timeline.time_in_state(rank, s))
        .sum();
        let finish = result.rank_finish()[rank.index()];
        assert_eq!(busy, finish, "rank {rank} busy {busy} != finish {finish}");
    }
}

#[test]
fn gantt_renders_all_paper_apps() {
    for app in ovlsim_apps::paper_apps() {
        let bundle = TracingSession::new(app.as_ref()).run().unwrap();
        let (timeline, _) = Timeline::capture(&platform(), bundle.original()).unwrap();
        let chart = render_gantt(
            &timeline,
            &GanttOptions {
                width: 60,
                legend: true,
            },
        );
        // One row per rank plus header and legend.
        assert_eq!(chart.lines().count(), timeline.rank_count() + 2);
        assert!(chart.contains('#'), "{}: no compute visible", app.name());
    }
}

#[test]
fn profile_comparison_reports_speedup() {
    let app = NasBt::builder().ranks(4).iterations(2).build().unwrap();
    let bundle = TracingSession::new(&app).run().unwrap();
    let (tl_a, _) = Timeline::capture(&platform(), bundle.original()).unwrap();
    let (tl_b, _) = Timeline::capture(&platform(), &bundle.overlapped_linear()).unwrap();
    let table = compare(&StateProfile::of(&tl_a), &StateProfile::of(&tl_b));
    assert!(table.contains("speedup"));
    assert!(table.contains("nas-bt.original"));
    assert!(table.contains("nas-bt.ovl-linear"));
}
