//! Quantitative reproduction tests: the paper's three findings, asserted
//! as golden bands on the calibrated default applications.
//!
//! These run the same configurations as the `exp_*` binaries but assert
//! bands instead of printing tables; EXPERIMENTS.md records the exact
//! measured values.

use ovlsim::prelude::*;
use ovlsim_apps::calibration::{reference_platform, target_for};
use ovlsim_lab::bandwidth_relaxation;

fn bundle_of(app: &dyn Application) -> TraceBundle {
    TracingSession::new(app)
        .policy(ChunkingPolicy::fixed_count(16).with_min_chunk_bytes(512))
        .run()
        .unwrap_or_else(|e| panic!("{} failed to trace: {e}", app.name()))
}

fn speedup(bundle: &TraceBundle, mode: OverlapMode, platform: &Platform) -> f64 {
    let sim = Simulator::new(platform.clone());
    let orig = sim
        .run(bundle.original())
        .unwrap()
        .total_time()
        .as_secs_f64();
    let ovl = sim
        .run(&bundle.overlapped(mode).unwrap())
        .unwrap()
        .total_time()
        .as_secs_f64();
    orig / ovl
}

/// §III claim 2: ideal-pattern speedups at the intermediate (realistic)
/// bandwidth land within each app's calibration band around the paper's
/// reported value.
#[test]
fn claim2_ideal_speedups_match_paper_bands() {
    let platform = reference_platform();
    for app in ovlsim_apps::paper_apps() {
        let target = target_for(app.name()).expect("every paper app has a target");
        let bundle = bundle_of(app.as_ref());
        let measured = speedup(&bundle, OverlapMode::linear(), &platform) - 1.0;
        assert!(
            (measured - target.paper).abs() <= target.tolerance,
            "{}: measured {:+.0}% vs paper {:+.0}% (tolerance ±{:.0} points)",
            app.name(),
            measured * 100.0,
            target.paper * 100.0,
            target.tolerance * 100.0,
        );
    }
}

/// §III claim 1: with real measured patterns the speedup is a small
/// fraction of the ideal-pattern speedup for every application.
#[test]
fn claim1_real_patterns_are_negligible() {
    let platform = reference_platform();
    for app in ovlsim_apps::paper_apps() {
        let bundle = bundle_of(app.as_ref());
        let real = speedup(&bundle, OverlapMode::real(), &platform) - 1.0;
        let linear = speedup(&bundle, OverlapMode::linear(), &platform) - 1.0;
        assert!(
            real <= 0.12,
            "{}: real-pattern speedup {:+.1}% is not negligible",
            app.name(),
            real * 100.0
        );
        assert!(
            linear >= 2.0 * real.max(0.0),
            "{}: linear ({:+.1}%) should dwarf real ({:+.1}%)",
            app.name(),
            linear * 100.0,
            real * 100.0
        );
    }
}

/// §III claim 3: at high bandwidth the overlapped execution needs on the
/// order of 1.5+ orders of magnitude less bandwidth for the original's
/// performance.
#[test]
fn claim3_bandwidth_relaxation_is_orders_of_magnitude() {
    let base = reference_platform();
    for app in ovlsim_apps::paper_apps() {
        let bundle = bundle_of(app.as_ref());
        let overlapped = bundle.overlapped(OverlapMode::linear()).unwrap();
        let r = bandwidth_relaxation(bundle.original(), &overlapped, &base, 1.0e10, 1.0e3)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
        assert!(
            r.orders_of_magnitude() >= 1.2,
            "{}: only {:.2} orders of magnitude relaxation",
            app.name(),
            r.orders_of_magnitude()
        );
        assert!(r.overlapped_time <= r.original_time);
    }
}

/// §II-B mechanism subsets: combining both mechanisms is at least as good
/// as either alone, for every app, at the realistic bandwidth.
#[test]
fn mechanisms_compose() {
    use ovlsim::tracer::{Mechanisms, PatternSource};
    let platform = reference_platform();
    for app in ovlsim_apps::paper_apps() {
        let bundle = bundle_of(app.as_ref());
        let at = |mechanisms| {
            speedup(
                &bundle,
                OverlapMode {
                    pattern: PatternSource::Linear,
                    mechanisms,
                },
                &platform,
            )
        };
        let both = at(Mechanisms::BOTH);
        let early = at(Mechanisms::EARLY_SEND_ONLY);
        let late = at(Mechanisms::LATE_WAIT_ONLY);
        let none = at(Mechanisms::NONE);
        assert!(
            both >= early.max(late) - 0.03,
            "{}: both ({both:.3}) < max(early {early:.3}, late {late:.3})",
            app.name()
        );
        assert!(
            none <= both + 0.03,
            "{}: chunking alone ({none:.3}) should not beat full overlap ({both:.3})",
            app.name()
        );
    }
}

/// The overlap benefit vanishes at both bandwidth extremes (E4's curve
/// shape): at very high bandwidth there is nothing to hide.
#[test]
fn speedup_vanishes_at_high_bandwidth() {
    let base = reference_platform();
    for app in ovlsim_apps::paper_apps() {
        if app.name() == "sweep3d" {
            // The wavefront keeps its pipeline benefit even on an
            // infinitely fast network (fill collapse is latency-free).
            continue;
        }
        let bundle = bundle_of(app.as_ref());
        let fast = base.with_bandwidth(Bandwidth::from_bytes_per_sec(1.0e11).unwrap());
        let s = speedup(&bundle, OverlapMode::linear(), &fast) - 1.0;
        assert!(
            s.abs() < 0.05,
            "{}: speedup {:+.1}% should vanish at 100 GB/s",
            app.name(),
            s * 100.0
        );
    }
}
