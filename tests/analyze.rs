//! End-to-end tests of `ovlsim analyze`: golden-file comparison on the
//! committed NAS-BT mini-trace, thread-count byte-identity (mirroring
//! `tests/campaign.rs`), and the acceptance reconciliation — per-channel
//! wait breakdowns must agree with `ReplayResult` makespans bit-exactly,
//! and the top-ranked channel's predicted gain must be consistent with
//! the measured overlap speedup direction.

use std::path::{Path, PathBuf};
use std::process::Command;

use ovlsim::apps::{registry, ProblemClass};
use ovlsim::core::{Platform, Time, TraceIndex};
use ovlsim::dimemas::{parse_trace_set, Simulator};
use ovlsim::lab::Attribution;
use ovlsim::tracer::{OverlapMode, TracingSession};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ovlsim-analyze-test").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The platform `ovlsim analyze` defaults to (250e6 bytes/s, 5 us).
fn default_platform() -> Platform {
    let mut b = Platform::builder();
    b.latency(Time::from_us(5))
        .bandwidth_bytes_per_sec(250e6)
        .unwrap();
    b.build()
}

#[test]
fn analyze_output_matches_committed_goldens() {
    let dir = scratch_dir("golden");
    let out = Command::new(env!("CARGO_BIN_EXE_ovlsim"))
        .arg("analyze")
        .arg(repo_path("examples/traces/nas-bt-mini.original.dim"))
        .arg("--out")
        .arg(&dir)
        .arg("--csv")
        .output()
        .expect("ovlsim runs");
    assert!(out.status.success(), "analyze failed: {out:?}");
    for name in [
        "nas-bt.original.analysis.json",
        "nas-bt.original.analysis.csv",
    ] {
        let golden = std::fs::read(repo_path(&format!("examples/analysis/golden/{name}")))
            .expect("golden is committed");
        let actual = std::fs::read(dir.join(name)).expect("report written");
        assert!(
            golden == actual,
            "{name} drifted from the committed golden (regenerate with \
             `ovlsim analyze examples/traces/nas-bt-mini.original.dim \
             --out examples/analysis/golden --csv` if the change is intended)"
        );
    }
}

/// Mirrors the campaign determinism gate: whatever `OVLSIM_THREADS` says,
/// the analysis bytes must not change.
#[test]
fn analyze_is_byte_identical_across_thread_counts() {
    let mut reports = Vec::new();
    for (label, threads) in [("seq", "1"), ("par", "4")] {
        let dir = scratch_dir(label);
        let out = Command::new(env!("CARGO_BIN_EXE_ovlsim"))
            .arg("analyze")
            .arg(repo_path("examples/traces/nas-bt-mini.original.dim"))
            .arg("--out")
            .arg(&dir)
            .arg("--csv")
            .env("OVLSIM_THREADS", threads)
            .output()
            .expect("ovlsim runs");
        assert!(out.status.success(), "{label} analyze failed: {out:?}");
        reports.push((
            std::fs::read(dir.join("nas-bt.original.analysis.json")).unwrap(),
            std::fs::read(dir.join("nas-bt.original.analysis.csv")).unwrap(),
        ));
    }
    assert!(
        reports[0] == reports[1],
        "analysis depends on OVLSIM_THREADS"
    );
}

#[test]
fn analyze_paraver_cause_export_is_written() {
    let dir = scratch_dir("prv");
    let out = Command::new(env!("CARGO_BIN_EXE_ovlsim"))
        .arg("analyze")
        .arg(repo_path("examples/traces/nas-bt-mini.original.dim"))
        .arg("--out")
        .arg(&dir)
        .arg("--prv")
        .output()
        .expect("ovlsim runs");
    assert!(out.status.success(), "analyze --prv failed: {out:?}");
    let prv = std::fs::read_to_string(dir.join("nas-bt.original.cause.prv")).unwrap();
    assert!(prv.starts_with("#Paraver"));
    assert!(prv.lines().skip(1).all(|l| l.starts_with("1:")));
    let pcf = std::fs::read_to_string(dir.join("nas-bt.original.cause.pcf")).unwrap();
    assert!(pcf.contains("BLOCKED-RECV") && pcf.contains("CONTENDED-INTER"));
    assert!(dir.join("nas-bt.original.cause.row").exists());
}

/// Acceptance: per-rank and per-channel breakdowns reconcile with the
/// `ReplayResult` bit-exactly on the committed mini-trace.
#[test]
fn analysis_reconciles_with_replay_bit_exactly() {
    let text =
        std::fs::read_to_string(repo_path("examples/traces/nas-bt-mini.original.dim")).unwrap();
    let trace = parse_trace_set(&text).expect("committed trace parses");
    let index = TraceIndex::build(&trace).expect("committed trace is valid");
    let platform = default_platform();
    let attr = Attribution::analyze(&platform, &trace, &index).expect("analyzes");
    let result = Simulator::new(platform)
        .run_prepared(&trace, &index)
        .expect("replays");

    assert_eq!(attr.makespan(), result.total_time());
    assert_eq!(attr.critical_path_len(), result.total_time());
    for (r, b) in attr.ranks().iter().enumerate() {
        assert_eq!(b.total, result.rank_finish()[r], "rank {r} total drifted");
        assert_eq!(
            b.compute,
            result.rank_compute()[r],
            "rank {r} compute drifted"
        );
        assert_eq!(b.compute + b.send_overhead + b.wait(), b.total);
    }
    // Every wait picosecond is charged to a channel or a collective.
    let rank_wait: Time = attr.ranks().iter().map(|b| b.wait()).sum();
    let collective: Time = attr.ranks().iter().map(|b| b.collective).sum();
    let chan_wait: Time = attr.channels().iter().map(|c| c.total_wait()).sum();
    assert_eq!(chan_wait + collective, rank_wait);
}

/// Acceptance: the top-ranked channel's predicted gain is consistent with
/// the measured overlap speedup direction, for both campaign classes (S
/// and A) of NAS-BT.
#[test]
fn top_channel_gain_consistent_with_measured_speedup() {
    let platform = default_platform();
    for class in [ProblemClass::S, ProblemClass::A] {
        let app = registry::build_app(
            "nas-bt",
            class,
            registry::AppOverrides {
                ranks: Some(4),
                iterations: Some(2),
            },
        )
        .expect("nas-bt builds");
        let bundle = TracingSession::new(app.as_ref()).run().expect("traces");
        let original = bundle.original().clone();
        let overlapped = bundle.overlapped(OverlapMode::real()).expect("overlaps");

        let index = TraceIndex::build(&original).expect("valid");
        let attr = Attribution::analyze(&platform, &original, &index).expect("analyzes");
        let sim = Simulator::new(platform.clone());
        let orig_time = sim.run(&original).expect("replays").total_time();
        let ovl_time = sim.run(&overlapped).expect("replays").total_time();

        let top_gain = attr
            .ranked_channels()
            .first()
            .map(|c| c.gain_potential)
            .unwrap_or(Time::ZERO);
        // NAS-BT exchanges boundary faces every iteration: attribution
        // must find an overlap opportunity, and the measured overlapped
        // replay must move in the promised direction (faster, and by no
        // more than the sum of what attribution said was recoverable).
        assert!(
            top_gain > Time::ZERO,
            "class {class:?}: no predicted gain on a communicating app"
        );
        assert!(
            ovl_time <= orig_time,
            "class {class:?}: predicted gain {top_gain} but overlap slowed \
             the app down ({orig_time} -> {ovl_time})"
        );
        let measured_gain = orig_time - ovl_time;
        let total_potential: Time = attr.channels().iter().map(|c| c.gain_potential).sum();
        assert!(
            measured_gain <= total_potential,
            "class {class:?}: overlap recovered {measured_gain} but attribution \
             promised at most {total_potential}"
        );
    }
}
