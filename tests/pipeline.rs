//! End-to-end pipeline tests: every paper application through trace →
//! transform → replay, checking structural invariants.

use ovlsim::prelude::*;
use ovlsim::tracer::{Mechanisms, PatternSource};
use ovlsim_apps::{Alya, NasBt, NasCg, Pop, Specfem, Sweep3d};

fn small_apps() -> Vec<Box<dyn Application>> {
    vec![
        Box::new(NasBt::builder().ranks(4).iterations(2).build().unwrap()),
        Box::new(NasCg::builder().ranks(4).iterations(2).build().unwrap()),
        Box::new(Pop::builder().ranks(4).iterations(1).build().unwrap()),
        Box::new(Alya::builder().ranks(4).iterations(2).build().unwrap()),
        Box::new(Specfem::builder().ranks(4).iterations(2).build().unwrap()),
        Box::new(Sweep3d::builder().ranks(4).planes(8).build().unwrap()),
    ]
}

fn platform() -> Platform {
    Platform::builder()
        .latency(Time::from_us(5))
        .bandwidth_bytes_per_sec(100.0e6)
        .unwrap()
        .build()
}

#[test]
fn every_app_traces_and_replays_in_every_mode() {
    for app in small_apps() {
        let bundle = TracingSession::new(app.as_ref())
            .policy(ChunkingPolicy::fixed_count(8).with_min_chunk_bytes(256))
            .run()
            .unwrap_or_else(|e| panic!("{} failed to trace: {e}", app.name()));
        let sim = Simulator::new(platform());
        let orig = sim
            .run(bundle.original())
            .unwrap_or_else(|e| panic!("{} original failed: {e}", app.name()));
        assert!(orig.total_time() > Time::ZERO);

        for pattern in [PatternSource::Real, PatternSource::Linear] {
            for mechanisms in [
                Mechanisms::BOTH,
                Mechanisms::EARLY_SEND_ONLY,
                Mechanisms::LATE_WAIT_ONLY,
                Mechanisms::NONE,
            ] {
                let mode = OverlapMode {
                    pattern,
                    mechanisms,
                };
                let ts = bundle
                    .overlapped(mode)
                    .unwrap_or_else(|e| panic!("{} {mode:?} invalid: {e}", app.name()));
                let res = sim
                    .run(&ts)
                    .unwrap_or_else(|e| panic!("{} {mode:?} failed: {e}", app.name()));
                assert!(res.total_time() > Time::ZERO);
                // Conservation: instructions and bytes survive the
                // transform exactly.
                assert_eq!(
                    bundle.original().total_instr(),
                    ts.total_instr(),
                    "{} {mode:?} lost instructions",
                    app.name()
                );
                assert_eq!(
                    bundle.original().total_p2p_send_bytes(),
                    ts.total_p2p_send_bytes(),
                    "{} {mode:?} lost bytes",
                    app.name()
                );
            }
        }
    }
}

#[test]
fn overlap_never_catastrophically_slower() {
    // Chunking has bounded overhead: the overlapped execution may lose a
    // little to chunk bookkeeping but never an order of magnitude.
    for app in small_apps() {
        let bundle = TracingSession::new(app.as_ref()).run().unwrap();
        let sim = Simulator::new(platform());
        let orig = sim.run(bundle.original()).unwrap().total_time();
        for ts in [bundle.overlapped_real(), bundle.overlapped_linear()] {
            let ovl = sim.run(&ts).unwrap().total_time();
            let ratio = ovl.as_secs_f64() / orig.as_secs_f64();
            assert!(
                ratio < 1.25,
                "{}: overlapped {ratio:.2}x slower than original",
                ts.name()
            );
        }
    }
}

#[test]
fn linear_beats_real_for_pack_heavy_apps() {
    // Apps whose production is pack-dominated must benefit much more from
    // the ideal pattern than from the measured one (§III claim 1).
    for app in small_apps() {
        let bundle = TracingSession::new(app.as_ref()).run().unwrap();
        let sim = Simulator::new(platform());
        let orig = sim
            .run(bundle.original())
            .unwrap()
            .total_time()
            .as_secs_f64();
        let real = sim
            .run(&bundle.overlapped_real())
            .unwrap()
            .total_time()
            .as_secs_f64();
        let linear = sim
            .run(&bundle.overlapped_linear())
            .unwrap()
            .total_time()
            .as_secs_f64();
        let speedup_real = orig / real;
        let speedup_linear = orig / linear;
        assert!(
            speedup_linear >= speedup_real - 0.02,
            "{}: linear ({speedup_linear:.3}) should not lose to real ({speedup_real:.3})",
            app.name()
        );
    }
}

#[test]
fn deterministic_end_to_end() {
    // Same app, same platform => bit-identical results.
    let app = Alya::builder()
        .ranks(6)
        .iterations(2)
        .seed(123)
        .build()
        .unwrap();
    let run = || {
        let bundle = TracingSession::new(&app).run().unwrap();
        let sim = Simulator::new(platform());
        (
            sim.run(bundle.original()).unwrap().total_time(),
            sim.run(&bundle.overlapped_linear()).unwrap().total_time(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn problem_classes_preserve_overlap_shape() {
    // Surface-to-volume scaling keeps the comm/comp balance similar
    // across classes, so the overlap speedup should be in the same
    // ballpark for class S and class A of the same code.
    use ovlsim_apps::ProblemClass;
    let speedup_of = |class: ProblemClass| {
        let app = NasBt::builder()
            .ranks(4)
            .iterations(2)
            .class(class)
            .build()
            .unwrap();
        let bundle = TracingSession::new(&app).run().unwrap();
        let sim = Simulator::new(ovlsim_apps::calibration::reference_platform());
        let orig = sim
            .run(bundle.original())
            .unwrap()
            .total_time()
            .as_secs_f64();
        let ovl = sim
            .run(&bundle.overlapped_linear())
            .unwrap()
            .total_time()
            .as_secs_f64();
        orig / ovl
    };
    let s = speedup_of(ProblemClass::S);
    let a = speedup_of(ProblemClass::A);
    let b = speedup_of(ProblemClass::B);
    assert!(
        (s - a).abs() < 0.25,
        "class S speedup {s:.3} far from A {a:.3}"
    );
    assert!(
        (b - a).abs() < 0.25,
        "class B speedup {b:.3} far from A {a:.3}"
    );
}

#[test]
fn trace_text_roundtrip_for_real_apps() {
    for app in small_apps() {
        let bundle = TracingSession::new(app.as_ref()).run().unwrap();
        for ts in [bundle.original().clone(), bundle.overlapped_linear()] {
            let text = ovlsim::dimemas::emit_trace_set(&ts);
            let back = ovlsim::dimemas::parse_trace_set(&text)
                .unwrap_or_else(|e| panic!("{} failed to parse: {e}", ts.name()));
            assert_eq!(ts, back, "roundtrip mismatch for {}", ts.name());
        }
    }
}
