//! End-to-end tests of the `ovlsim` command-line binary: the absorbed
//! trace pipeline (gen → stats → validate → replay) and the campaign
//! subcommands (run → diff, list).

use std::path::Path;
use std::process::Command;

fn ovlsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ovlsim"))
}

fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ovlsim-cli-test").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn trace_gen_stats_validate_replay_roundtrip() {
    let dir = scratch_dir("trace");
    let prefix = dir.join("cg");
    let prefix_str = prefix.to_str().unwrap();

    // gen
    let out = ovlsim()
        .args(["trace", "gen", "nas-cg", prefix_str])
        .output()
        .expect("ovlsim runs");
    assert!(out.status.success(), "gen failed: {out:?}");
    let original = format!("{prefix_str}.original.dim");
    let linear = format!("{prefix_str}.ovl-linear.dim");
    assert!(Path::new(&original).exists());
    assert!(Path::new(&linear).exists());

    // stats
    let out = ovlsim()
        .args(["trace", "stats", &original])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("validation: ok"));
    assert!(stdout.contains("rank 0"));

    // validate
    let out = ovlsim()
        .args(["trace", "validate", &linear])
        .output()
        .unwrap();
    assert!(out.status.success());

    // replay
    let out = ovlsim()
        .args(["trace", "replay", &linear, "100e6", "5"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("legend"), "replay should render a gantt");
}

#[test]
fn trace_validate_rejects_broken_trace() {
    let dir = scratch_dir("broken");
    let path = dir.join("broken.dim");
    // Unmatched send: structurally invalid.
    std::fs::write(
        &path,
        "name broken\nmips 1000\nranks 2\nrank 0\nsend r1 100 t0\nend\nrank 1\nend\n",
    )
    .unwrap();
    let out = ovlsim()
        .args(["trace", "validate", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success(), "broken trace must fail validation");
}

#[test]
fn trace_unknown_app_is_reported() {
    let out = ovlsim()
        .args(["trace", "gen", "no-such-app", "/tmp/x"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown or invalid app"));
}

#[test]
fn bad_usage_prints_help() {
    let out = ovlsim().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

const MINI_CAMPAIGN: &str = "\
campaign cli-mini
apps sweep3d
classes S
ranks 4
iterations 1
bandwidths list 1e8 1e9
ranks-per-node 1 2
";

#[test]
fn campaign_run_list_diff_roundtrip() {
    let dir = scratch_dir("campaign");
    let spec = dir.join("mini.campaign");
    std::fs::write(&spec, MINI_CAMPAIGN).unwrap();
    let spec_str = spec.to_str().unwrap();
    let out_dir = dir.join("out");
    let out_dir_str = out_dir.to_str().unwrap();

    // list
    let out = ovlsim()
        .args(["campaign", "list", spec_str])
        .output()
        .unwrap();
    assert!(out.status.success(), "list failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("= 4 points"), "got: {stdout}");
    assert!(stdout.contains("rpn=2"));

    // run (with csv)
    let out = ovlsim()
        .args(["campaign", "run", spec_str, "--out", out_dir_str, "--csv"])
        .output()
        .unwrap();
    assert!(out.status.success(), "run failed: {out:?}");
    let report = out_dir.join("cli-mini.report.json");
    let csv = out_dir.join("cli-mini.report.csv");
    assert!(report.exists());
    assert!(csv.exists());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("4 points"));
    assert!(stdout.contains("sweep3d"), "summary table names the app");

    // diff against itself: identical
    let report_str = report.to_str().unwrap();
    let out = ovlsim()
        .args(["campaign", "diff", report_str, report_str])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("identical"));

    // diff against a tampered copy: drift detected, named on stderr
    let tampered_path = dir.join("tampered.json");
    let tampered = std::fs::read_to_string(&report).unwrap().replacen(
        "\"ranks_per_node\":1",
        "\"ranks_per_node\":3",
        1,
    );
    std::fs::write(&tampered_path, tampered).unwrap();
    let out = ovlsim()
        .args([
            "campaign",
            "diff",
            report_str,
            tampered_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("golden:"), "diff lines on stderr: {stderr}");
    assert!(stderr.contains("differing line"));
}

#[test]
fn campaign_run_rejects_bad_spec_with_line_number() {
    let dir = scratch_dir("badspec");
    let spec = dir.join("bad.campaign");
    std::fs::write(&spec, "campaign x\napps warp-drive\nbandwidths list 1e8\n").unwrap();
    let out = ovlsim()
        .args(["campaign", "run", spec.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "error names the line: {stderr}");
    assert!(stderr.contains("warp-drive"));
}

#[test]
fn campaign_diff_missing_file_is_an_error() {
    let out = ovlsim()
        .args([
            "campaign",
            "diff",
            "/nonexistent/a.json",
            "/nonexistent/b.json",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn version_flag_prints_the_package_version() {
    let out = ovlsim().arg("--version").output().unwrap();
    assert!(out.status.success());
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        format!("ovlsim {}", env!("CARGO_PKG_VERSION"))
    );
}

/// Usage mistakes exit 2; runtime failures exit 1 with a single typed
/// `error:` line on stderr.
#[test]
fn exit_codes_distinguish_usage_from_runtime_failures() {
    // Unknown flag: usage error, exit 2.
    let out = ovlsim()
        .args(["campaign", "run", "x", "--frobnicate"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    // Valid flag on the wrong subcommand: usage error, exit 2.
    let out = ovlsim()
        .args(["trace", "stats", "x", "--prv"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = ovlsim()
        .args(["trace", "stats", "x", "--port", "1234"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));

    // Missing input file: runtime error, exit 1, one `error:` line.
    for args in [
        ["trace", "replay", "/nonexistent/trace.dim"],
        ["campaign", "run", "/nonexistent/spec.campaign"],
    ] {
        let out = ovlsim().args(args).output().unwrap();
        assert_eq!(out.status.code(), Some(1), "{args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.starts_with("error: "), "{args:?}: {stderr}");
        assert_eq!(
            stderr.trim_end().lines().count(),
            1,
            "{args:?} must fail with a single line: {stderr}"
        );
    }

    // Analyze on a missing file too (it routes through the session layer).
    let out = ovlsim()
        .args(["analyze", "/nonexistent/trace.dim"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.starts_with("error: "), "{stderr}");
}

/// Every replay engine is selectable from `trace replay --engine`, and —
/// because the engines are bit-identical by contract — the rendered
/// output must be byte-for-byte the same for all of them.
#[test]
fn trace_replay_engine_flag_selects_each_engine_byte_identically() {
    let dir = scratch_dir("engine-flag");
    let prefix = dir.join("cg");
    let prefix_str = prefix.to_str().unwrap();
    let out = ovlsim()
        .args(["trace", "gen", "nas-cg", prefix_str])
        .output()
        .unwrap();
    assert!(out.status.success(), "gen failed: {out:?}");
    let linear = format!("{prefix_str}.ovl-linear.dim");

    let default_out = ovlsim()
        .args(["trace", "replay", &linear, "100e6", "5"])
        .output()
        .unwrap();
    assert!(default_out.status.success());
    for engine in ["naive", "prepared", "compiled", "fastforward"] {
        let out = ovlsim()
            .args(["trace", "replay", &linear, "100e6", "5", "--engine", engine])
            .output()
            .unwrap();
        assert!(out.status.success(), "--engine {engine} failed: {out:?}");
        assert_eq!(
            out.stdout, default_out.stdout,
            "--engine {engine} output diverged from the default engine"
        );
    }
}

/// An unknown engine name is a usage error: exit 2 with a single typed
/// `error:` line naming the accepted engines.
#[test]
fn trace_replay_unknown_engine_exits_2_with_one_error_line() {
    let out = ovlsim()
        .args(["trace", "replay", "x.dim", "--engine", "warp"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.starts_with("error: unknown engine `warp`"),
        "stderr: {stderr}"
    );
    assert!(
        stderr.contains("compiled, prepared, naive or fastforward"),
        "stderr lists the accepted engines: {stderr}"
    );
    assert_eq!(
        stderr.trim_end().lines().count(),
        1,
        "must fail with a single line: {stderr}"
    );

    // `--engine` belongs to `trace replay` only.
    let out = ovlsim()
        .args(["campaign", "list", "x", "--engine", "compiled"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

/// `ovlsim trace convert` round-trips between `.dim` text and the `.ovlb`
/// binary format byte-identically, and every other subcommand accepts the
/// binary artifact by extension.
#[test]
fn trace_convert_roundtrips_between_dim_and_ovlb() {
    let dir = scratch_dir("convert");
    let prefix = dir.join("bt");
    let out = ovlsim()
        .args(["trace", "gen", "nas-bt", prefix.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "gen failed: {out:?}");
    let dim = dir.join("bt.original.dim");
    let ovlb = dir.join("bt.ovlb");
    let back = dir.join("bt.back.dim");

    // dim -> ovlb -> dim must reproduce the original text exactly.
    let out = ovlsim()
        .args([
            "trace",
            "convert",
            dim.to_str().unwrap(),
            ovlb.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "convert to ovlb failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wrote"), "{stdout}");
    assert!(stdout.contains("ranks"), "{stdout}");
    let out = ovlsim()
        .args([
            "trace",
            "convert",
            ovlb.to_str().unwrap(),
            back.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "convert back failed: {out:?}");
    assert_eq!(
        std::fs::read(&dim).unwrap(),
        std::fs::read(&back).unwrap(),
        "dim -> ovlb -> dim must be byte-identical"
    );

    // The binary artifact works everywhere a .dim does.
    let out = ovlsim()
        .args(["trace", "stats", ovlb.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "stats on .ovlb failed: {out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("validation: ok"));

    // A corrupted artifact is a typed error, not a panic.
    let mut bytes = std::fs::read(&ovlb).unwrap();
    bytes.extend_from_slice(b"garbage!");
    std::fs::write(&ovlb, bytes).unwrap();
    let out = ovlsim()
        .args(["trace", "stats", ovlb.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.starts_with("error: "), "{stderr}");
    assert!(stderr.contains("trailing"), "names the defect: {stderr}");
}

/// Binary bytes hiding under a text extension are diagnosed with a
/// pointer at `trace convert`, not fed to the `.dim` parser.
#[test]
fn binary_content_under_a_dim_name_suggests_convert() {
    let dir = scratch_dir("misnamed");
    let prefix = dir.join("cg");
    let out = ovlsim()
        .args(["trace", "gen", "nas-cg", prefix.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let dim = dir.join("cg.original.dim");
    let ovlb = dir.join("cg.ovlb");
    let out = ovlsim()
        .args([
            "trace",
            "convert",
            dim.to_str().unwrap(),
            ovlb.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    let misnamed = dir.join("mislabelled.dim");
    std::fs::copy(&ovlb, &misnamed).unwrap();
    let out = ovlsim()
        .args(["trace", "stats", misnamed.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("trace convert"), "{stderr}");
}

/// `campaign run --cache-dir`: a cold run persists artifacts, a warm run
/// loads them all back with zero stores and a byte-identical report.
#[test]
fn campaign_cache_dir_warm_run_is_all_loads_and_byte_identical() {
    let dir = scratch_dir("cachedir");
    let spec = dir.join("mini.campaign");
    std::fs::write(&spec, MINI_CAMPAIGN).unwrap();
    // The scratch directory survives between test runs: the cache must
    // start empty or the "cold" run below is already warm.
    let cache = dir.join("cache");
    let _ = std::fs::remove_dir_all(&cache);
    let run = |out_dir: &Path| {
        let out = ovlsim()
            .args([
                "campaign",
                "run",
                spec.to_str().unwrap(),
                "--out",
                out_dir.to_str().unwrap(),
                "--cache-dir",
                cache.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "run failed: {out:?}");
        String::from_utf8_lossy(&out.stdout).to_string()
    };

    let cold_dir = dir.join("cold");
    let warm_dir = dir.join("warm");
    let cold = run(&cold_dir);
    let warm = run(&warm_dir);

    let cache_line = |stdout: &str| -> String {
        stdout
            .lines()
            .find(|l| l.starts_with("cache: "))
            .unwrap_or_else(|| panic!("no cache line in: {stdout}"))
            .to_string()
    };
    assert!(
        cache_line(&cold).contains("0 loads"),
        "cold run loads nothing: {cold}"
    );
    assert!(
        cache_line(&warm).ends_with("0 stores, 0 quarantined"),
        "warm run stores nothing: {warm}"
    );
    assert!(
        !cache_line(&warm).contains("cache: 0 loads"),
        "warm run must load from the cache: {warm}"
    );
    assert_eq!(
        std::fs::read(cold_dir.join("cli-mini.report.json")).unwrap(),
        std::fs::read(warm_dir.join("cli-mini.report.json")).unwrap(),
        "cached replay must not change the report"
    );
}

/// `ovlsim serve` answers `/campaign` with exactly the bytes
/// `ovlsim campaign run` writes to disk, and `/status` reports the same
/// version string as `--version`.
#[test]
fn serve_campaign_response_matches_cli_report_bytes() {
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;

    let dir = scratch_dir("serve");
    let spec = dir.join("mini.campaign");
    std::fs::write(&spec, MINI_CAMPAIGN).unwrap();
    let out_dir = dir.join("out");

    // CLI run: the on-disk report is the golden bytes.
    let out = ovlsim()
        .args([
            "campaign",
            "run",
            spec.to_str().unwrap(),
            "--out",
            out_dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "campaign run failed: {out:?}");
    let report = std::fs::read_to_string(out_dir.join("cli-mini.report.json")).unwrap();

    // Server on an ephemeral port; the port is announced on stdout.
    let mut child = ovlsim()
        .arg("serve")
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut banner = String::new();
    BufReader::new(child.stdout.take().unwrap())
        .read_line(&mut banner)
        .unwrap();
    let port: u16 = banner
        .rsplit_once("127.0.0.1:")
        .expect("banner names the port")
        .1
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .unwrap()
        .parse()
        .unwrap();

    let request = |method: &str, path: &str, body: &str| -> (u16, String) {
        let mut stream = TcpStream::connect(("127.0.0.1", port)).unwrap();
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status = response.split_whitespace().nth(1).unwrap().parse().unwrap();
        (
            status,
            response.split_once("\r\n\r\n").unwrap().1.to_string(),
        )
    };

    // /status version == --version output.
    let (status, body) = request("GET", "/status", "");
    assert_eq!(status, 200);
    let expected = format!("\"version\":\"{}\"", env!("CARGO_PKG_VERSION"));
    assert!(body.contains(&expected), "status: {body}");

    // /campaign with the same spec text: byte-identical to the CLI file.
    let spec_json = MINI_CAMPAIGN.replace('\n', "\\n");
    let (status, body) = request(
        "POST",
        "/campaign",
        &format!("{{\"spec\":\"{spec_json}\"}}"),
    );
    assert_eq!(status, 200, "campaign over HTTP failed: {body}");
    assert_eq!(
        body, report,
        "serve response must be byte-identical to the CLI report file"
    );

    // Clean shutdown: acknowledged, process exits 0.
    let (status, _) = request("POST", "/shutdown", "");
    assert_eq!(status, 200);
    let exit = child.wait().unwrap();
    assert!(exit.success(), "serve should exit cleanly after /shutdown");
}
