//! End-to-end tests of the `ovlsim` command-line binary: the absorbed
//! trace pipeline (gen → stats → validate → replay) and the campaign
//! subcommands (run → diff, list).

use std::path::Path;
use std::process::Command;

fn ovlsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ovlsim"))
}

fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ovlsim-cli-test").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn trace_gen_stats_validate_replay_roundtrip() {
    let dir = scratch_dir("trace");
    let prefix = dir.join("cg");
    let prefix_str = prefix.to_str().unwrap();

    // gen
    let out = ovlsim()
        .args(["trace", "gen", "nas-cg", prefix_str])
        .output()
        .expect("ovlsim runs");
    assert!(out.status.success(), "gen failed: {out:?}");
    let original = format!("{prefix_str}.original.dim");
    let linear = format!("{prefix_str}.ovl-linear.dim");
    assert!(Path::new(&original).exists());
    assert!(Path::new(&linear).exists());

    // stats
    let out = ovlsim()
        .args(["trace", "stats", &original])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("validation: ok"));
    assert!(stdout.contains("rank 0"));

    // validate
    let out = ovlsim()
        .args(["trace", "validate", &linear])
        .output()
        .unwrap();
    assert!(out.status.success());

    // replay
    let out = ovlsim()
        .args(["trace", "replay", &linear, "100e6", "5"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("legend"), "replay should render a gantt");
}

#[test]
fn trace_validate_rejects_broken_trace() {
    let dir = scratch_dir("broken");
    let path = dir.join("broken.dim");
    // Unmatched send: structurally invalid.
    std::fs::write(
        &path,
        "name broken\nmips 1000\nranks 2\nrank 0\nsend r1 100 t0\nend\nrank 1\nend\n",
    )
    .unwrap();
    let out = ovlsim()
        .args(["trace", "validate", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success(), "broken trace must fail validation");
}

#[test]
fn trace_unknown_app_is_reported() {
    let out = ovlsim()
        .args(["trace", "gen", "no-such-app", "/tmp/x"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown or invalid app"));
}

#[test]
fn bad_usage_prints_help() {
    let out = ovlsim().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

const MINI_CAMPAIGN: &str = "\
campaign cli-mini
apps sweep3d
classes S
ranks 4
iterations 1
bandwidths list 1e8 1e9
ranks-per-node 1 2
";

#[test]
fn campaign_run_list_diff_roundtrip() {
    let dir = scratch_dir("campaign");
    let spec = dir.join("mini.campaign");
    std::fs::write(&spec, MINI_CAMPAIGN).unwrap();
    let spec_str = spec.to_str().unwrap();
    let out_dir = dir.join("out");
    let out_dir_str = out_dir.to_str().unwrap();

    // list
    let out = ovlsim()
        .args(["campaign", "list", spec_str])
        .output()
        .unwrap();
    assert!(out.status.success(), "list failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("= 4 points"), "got: {stdout}");
    assert!(stdout.contains("rpn=2"));

    // run (with csv)
    let out = ovlsim()
        .args(["campaign", "run", spec_str, "--out", out_dir_str, "--csv"])
        .output()
        .unwrap();
    assert!(out.status.success(), "run failed: {out:?}");
    let report = out_dir.join("cli-mini.report.json");
    let csv = out_dir.join("cli-mini.report.csv");
    assert!(report.exists());
    assert!(csv.exists());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("4 points"));
    assert!(stdout.contains("sweep3d"), "summary table names the app");

    // diff against itself: identical
    let report_str = report.to_str().unwrap();
    let out = ovlsim()
        .args(["campaign", "diff", report_str, report_str])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("identical"));

    // diff against a tampered copy: drift detected, named on stderr
    let tampered_path = dir.join("tampered.json");
    let tampered = std::fs::read_to_string(&report).unwrap().replacen(
        "\"ranks_per_node\":1",
        "\"ranks_per_node\":3",
        1,
    );
    std::fs::write(&tampered_path, tampered).unwrap();
    let out = ovlsim()
        .args([
            "campaign",
            "diff",
            report_str,
            tampered_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("golden:"), "diff lines on stderr: {stderr}");
    assert!(stderr.contains("differing line"));
}

#[test]
fn campaign_run_rejects_bad_spec_with_line_number() {
    let dir = scratch_dir("badspec");
    let spec = dir.join("bad.campaign");
    std::fs::write(&spec, "campaign x\napps warp-drive\nbandwidths list 1e8\n").unwrap();
    let out = ovlsim()
        .args(["campaign", "run", spec.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "error names the line: {stderr}");
    assert!(stderr.contains("warp-drive"));
}

#[test]
fn campaign_diff_missing_file_is_an_error() {
    let out = ovlsim()
        .args([
            "campaign",
            "diff",
            "/nonexistent/a.json",
            "/nonexistent/b.json",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}
