//! Property-based tests over the whole environment: random synthetic
//! applications and platforms, checking invariants that must hold for
//! *every* configuration.

use ovlsim::apps::{ConsumptionShape, ProductionShape, Synthetic, Topology};
use ovlsim::prelude::*;
use ovlsim::tracer::{Mechanisms, PatternSource};
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        Just(Topology::Ring),
        Just(Topology::Grid),
        Just(Topology::Pairs),
    ]
}

fn arb_production() -> impl Strategy<Value = ProductionShape> {
    prop_oneof![
        Just(ProductionShape::Spread),
        (0.01f64..0.5).prop_map(|fraction| ProductionShape::Tail { fraction }),
    ]
}

fn arb_consumption() -> impl Strategy<Value = ConsumptionShape> {
    prop_oneof![
        Just(ConsumptionShape::Spread),
        (0.01f64..0.5).prop_map(|fraction| ConsumptionShape::Head { fraction }),
    ]
}

#[derive(Debug, Clone)]
struct Config {
    ranks: usize,
    topology: Topology,
    iterations: usize,
    compute_instr: u64,
    message_bytes: u64,
    production: ProductionShape,
    consumption: ConsumptionShape,
    chunks: usize,
    bandwidth: f64,
    latency_us: u64,
    pattern: PatternSource,
    mechanisms: Mechanisms,
}

fn arb_config() -> impl Strategy<Value = Config> {
    (
        (1usize..5), // ranks/2 (ensures even for Pairs)
        arb_topology(),
        (1usize..4), // iterations
        (10_000u64..2_000_000),
        (1u64..2_000), // message_bytes/8
        arb_production(),
        arb_consumption(),
        (1usize..20), // chunks
        (1.0e6f64..1.0e10),
        (0u64..50),
        prop_oneof![Just(PatternSource::Real), Just(PatternSource::Linear)],
        prop_oneof![
            Just(Mechanisms::BOTH),
            Just(Mechanisms::EARLY_SEND_ONLY),
            Just(Mechanisms::LATE_WAIT_ONLY),
            Just(Mechanisms::NONE),
        ],
    )
        .prop_map(
            |(
                half_ranks,
                topology,
                iterations,
                compute_instr,
                msg8,
                production,
                consumption,
                chunks,
                bandwidth,
                latency_us,
                pattern,
                mechanisms,
            )| Config {
                ranks: half_ranks * 2,
                topology,
                iterations,
                compute_instr,
                message_bytes: msg8 * 8,
                production,
                consumption,
                chunks,
                bandwidth,
                latency_us,
                pattern,
                mechanisms,
            },
        )
}

fn build(config: &Config) -> (TraceBundle, Platform, OverlapMode) {
    let app = Synthetic::builder()
        .ranks(config.ranks)
        .topology(config.topology)
        .iterations(config.iterations)
        .compute_instr(config.compute_instr)
        .message_bytes(config.message_bytes)
        .production(config.production)
        .consumption(config.consumption)
        .build()
        .expect("generated configs are valid");
    let bundle = TracingSession::new(&app)
        .policy(ChunkingPolicy::fixed_count(config.chunks).with_min_chunk_bytes(8))
        .run()
        .expect("synthetic apps trace cleanly");
    let platform = Platform::builder()
        .latency(Time::from_us(config.latency_us))
        .bandwidth_bytes_per_sec(config.bandwidth)
        .expect("generated bandwidths are positive")
        .build();
    let mode = OverlapMode {
        pattern: config.pattern,
        mechanisms: config.mechanisms,
    };
    (bundle, platform, mode)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The transform always produces a structurally valid trace that
    /// conserves instructions and bytes exactly.
    #[test]
    fn transform_conserves(config in arb_config()) {
        let (bundle, _, mode) = build(&config);
        let ts = bundle.overlapped(mode).expect("transform validates");
        prop_assert_eq!(bundle.original().total_instr(), ts.total_instr());
        prop_assert_eq!(
            bundle.original().total_p2p_send_bytes(),
            ts.total_p2p_send_bytes()
        );
    }

    /// Both executions replay without deadlock and finish after spending
    /// at least their computation time.
    #[test]
    fn replay_terminates_and_bounds_hold(config in arb_config()) {
        let (bundle, platform, mode) = build(&config);
        let sim = Simulator::new(platform);
        let orig = sim.run(bundle.original()).expect("original replays");
        let ts = bundle.overlapped(mode).expect("transform validates");
        let ovl = sim.run(&ts).expect("overlapped replays");
        // A rank can never finish before its own compute time.
        for (finish, compute) in orig.rank_finish().iter().zip(orig.rank_compute()) {
            prop_assert!(finish >= compute);
        }
        for (finish, compute) in ovl.rank_finish().iter().zip(ovl.rank_compute()) {
            prop_assert!(finish >= compute);
        }
        // Critical-path lower bound: no execution beats the per-rank
        // compute maximum.
        let lower = orig.rank_compute().iter().copied().max().unwrap();
        prop_assert!(orig.total_time() >= lower);
        prop_assert!(ovl.total_time() >= lower);
    }

    /// Makespan is monotone: more bandwidth never hurts.
    #[test]
    fn bandwidth_monotonicity(config in arb_config(), factor in 2.0f64..100.0) {
        let (bundle, platform, mode) = build(&config);
        let slow = Simulator::new(platform.clone());
        let fast = Simulator::new(platform.with_bandwidth(
            Bandwidth::from_bytes_per_sec(config.bandwidth * factor).expect("positive"),
        ));
        let ts = bundle.overlapped(mode).expect("transform validates");
        for trace in [bundle.original(), &ts] {
            let t_slow = slow.run(trace).expect("replays").total_time();
            let t_fast = fast.run(trace).expect("replays").total_time();
            prop_assert!(
                t_fast <= t_slow,
                "faster network increased {} from {} to {}",
                trace.name(), t_slow, t_fast
            );
        }
    }

    /// The text format round-trips every trace the environment produces.
    #[test]
    fn dim_roundtrip(config in arb_config()) {
        let (bundle, _, mode) = build(&config);
        let ts = bundle.overlapped(mode).expect("transform validates");
        for trace in [bundle.original(), &ts] {
            let text = ovlsim::dimemas::emit_trace_set(trace);
            let back = ovlsim::dimemas::parse_trace_set(&text).expect("parses");
            prop_assert_eq!(trace, &back);
        }
    }

    /// Replay is deterministic: two runs give identical results.
    #[test]
    fn replay_deterministic(config in arb_config()) {
        let (bundle, platform, mode) = build(&config);
        let ts = bundle.overlapped(mode).expect("transform validates");
        let sim = Simulator::new(platform);
        let a = sim.run(&ts).expect("replays");
        let b = sim.run(&ts).expect("replays");
        prop_assert_eq!(a, b);
    }
}
