//! Message chunking policies.
//!
//! Automatic overlap "partitions every original message into independent
//! chunks". The [`ChunkingPolicy`] decides how: a fixed number of chunks per
//! message or fixed-size chunks, with a minimum chunk size guard so tiny
//! messages are not shredded into latency-dominated fragments.

use std::fmt;
use std::ops::Range;

/// How messages are partitioned into chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkKind {
    /// Split every message into (up to) this many equal chunks.
    FixedCount(usize),
    /// Split every message into chunks of this many bytes (last chunk may
    /// be smaller).
    FixedBytes(u64),
    /// Geometric doubling: the first chunk has this many bytes, each
    /// following chunk twice the previous (last chunk takes the
    /// remainder). Small leading chunks start the overlap pipeline early
    /// while large trailing chunks amortize per-message costs — the
    /// classic pipelining compromise.
    Doubling(u64),
}

/// A chunking policy: the partition rule plus a minimum chunk size.
///
/// # Example
///
/// ```
/// use ovlsim_tracer::ChunkingPolicy;
///
/// let policy = ChunkingPolicy::fixed_count(4);
/// let ranges = policy.chunk_ranges(4096);
/// assert_eq!(ranges, vec![0..1024, 1024..2048, 2048..3072, 3072..4096]);
///
/// // The minimum chunk size keeps tiny messages whole.
/// assert_eq!(policy.chunk_ranges(100), vec![0..100]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkingPolicy {
    kind: ChunkKind,
    min_chunk_bytes: u64,
}

impl ChunkingPolicy {
    /// Default number of chunks per message.
    pub const DEFAULT_CHUNKS: usize = 16;

    /// Default minimum chunk size in bytes.
    pub const DEFAULT_MIN_CHUNK_BYTES: u64 = 256;

    /// A policy splitting each message into (up to) `chunks` equal parts.
    ///
    /// # Panics
    ///
    /// Panics if `chunks == 0`.
    pub fn fixed_count(chunks: usize) -> Self {
        assert!(chunks > 0, "chunk count must be positive");
        ChunkingPolicy {
            kind: ChunkKind::FixedCount(chunks),
            min_chunk_bytes: Self::DEFAULT_MIN_CHUNK_BYTES,
        }
    }

    /// A policy splitting each message into `bytes`-sized chunks.
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    pub fn fixed_bytes(bytes: u64) -> Self {
        assert!(bytes > 0, "chunk size must be positive");
        ChunkingPolicy {
            kind: ChunkKind::FixedBytes(bytes),
            min_chunk_bytes: Self::DEFAULT_MIN_CHUNK_BYTES,
        }
    }

    /// A policy with geometrically doubling chunk sizes starting at
    /// `first_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `first_bytes == 0`.
    pub fn doubling(first_bytes: u64) -> Self {
        assert!(first_bytes > 0, "first chunk size must be positive");
        ChunkingPolicy {
            kind: ChunkKind::Doubling(first_bytes),
            min_chunk_bytes: Self::DEFAULT_MIN_CHUNK_BYTES,
        }
    }

    /// Overrides the minimum chunk size (messages are never split into
    /// chunks smaller than this, except a message smaller than the minimum
    /// forms a single chunk).
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    pub fn with_min_chunk_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes > 0, "minimum chunk size must be positive");
        self.min_chunk_bytes = bytes;
        self
    }

    /// The partition rule.
    pub fn kind(&self) -> &ChunkKind {
        &self.kind
    }

    /// The minimum chunk size in bytes.
    pub fn min_chunk_bytes(&self) -> u64 {
        self.min_chunk_bytes
    }

    /// Number of chunks a message of `total` bytes is split into.
    pub fn chunk_count(&self, total: u64) -> usize {
        if total == 0 {
            return 0;
        }
        let max_by_min = (total / self.min_chunk_bytes).max(1);
        match self.kind {
            ChunkKind::FixedCount(n) => (n as u64).min(max_by_min) as usize,
            ChunkKind::FixedBytes(b) => {
                let b = b.max(self.min_chunk_bytes);
                total.div_ceil(b).max(1) as usize
            }
            ChunkKind::Doubling(_) => self.chunk_ranges(total).len(),
        }
    }

    /// The byte ranges of each chunk of a `total`-byte message, in order,
    /// covering `0..total` exactly once.
    pub fn chunk_ranges(&self, total: u64) -> Vec<Range<u64>> {
        if total == 0 {
            return Vec::new();
        }
        match self.kind {
            ChunkKind::FixedCount(_) => {
                let n = self.chunk_count(total) as u64;
                (0..n)
                    .map(|i| {
                        let lo = total * i / n;
                        let hi = total * (i + 1) / n;
                        lo..hi
                    })
                    .filter(|r| !r.is_empty())
                    .collect()
            }
            ChunkKind::FixedBytes(b) => {
                let b = b.max(self.min_chunk_bytes);
                let mut out = Vec::new();
                let mut lo = 0;
                while lo < total {
                    let hi = (lo + b).min(total);
                    out.push(lo..hi);
                    lo = hi;
                }
                out
            }
            ChunkKind::Doubling(first) => {
                let mut size = first.max(self.min_chunk_bytes);
                let mut out = Vec::new();
                let mut lo = 0;
                while lo < total {
                    let hi = (lo + size).min(total);
                    // Absorb a tiny remainder into the final chunk rather
                    // than emitting a sub-minimum fragment.
                    let hi = if total - hi < self.min_chunk_bytes {
                        total
                    } else {
                        hi
                    };
                    out.push(lo..hi);
                    lo = hi;
                    size = size.saturating_mul(2);
                }
                out
            }
        }
    }
}

impl Default for ChunkingPolicy {
    fn default() -> Self {
        ChunkingPolicy::fixed_count(Self::DEFAULT_CHUNKS)
    }
}

impl fmt::Display for ChunkingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ChunkKind::FixedCount(n) => write!(f, "{} chunks (min {} B)", n, self.min_chunk_bytes),
            ChunkKind::FixedBytes(b) => {
                write!(f, "{} B chunks (min {} B)", b, self.min_chunk_bytes)
            }
            ChunkKind::Doubling(b) => {
                write!(f, "doubling from {} B (min {} B)", b, self.min_chunk_bytes)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn covers_exactly(ranges: &[Range<u64>], total: u64) -> bool {
        if total == 0 {
            return ranges.is_empty();
        }
        if ranges.first().map(|r| r.start) != Some(0) {
            return false;
        }
        if ranges.last().map(|r| r.end) != Some(total) {
            return false;
        }
        ranges.windows(2).all(|w| w[0].end == w[1].start)
    }

    #[test]
    fn fixed_count_even_split() {
        let p = ChunkingPolicy::fixed_count(4).with_min_chunk_bytes(1);
        assert_eq!(p.chunk_ranges(8), vec![0..2, 2..4, 4..6, 6..8]);
    }

    #[test]
    fn fixed_count_uneven_split_covers_total() {
        let p = ChunkingPolicy::fixed_count(3).with_min_chunk_bytes(1);
        let r = p.chunk_ranges(10);
        assert_eq!(r.len(), 3);
        assert!(covers_exactly(&r, 10));
    }

    #[test]
    fn min_chunk_size_limits_count() {
        let p = ChunkingPolicy::fixed_count(16).with_min_chunk_bytes(100);
        // 300 bytes can support at most 3 chunks of >= 100 bytes.
        assert_eq!(p.chunk_count(300), 3);
        assert!(covers_exactly(&p.chunk_ranges(300), 300));
        // A tiny message forms a single chunk.
        assert_eq!(p.chunk_ranges(50), vec![0..50]);
    }

    #[test]
    fn fixed_bytes_split() {
        let p = ChunkingPolicy::fixed_bytes(100).with_min_chunk_bytes(1);
        let r = p.chunk_ranges(250);
        assert_eq!(r, vec![0..100, 100..200, 200..250]);
        assert_eq!(p.chunk_count(250), 3);
    }

    #[test]
    fn fixed_bytes_respects_min() {
        let p = ChunkingPolicy::fixed_bytes(10).with_min_chunk_bytes(64);
        let r = p.chunk_ranges(200);
        // Chunk size raised to the 64-byte minimum.
        assert_eq!(r, vec![0..64, 64..128, 128..192, 192..200]);
    }

    #[test]
    fn zero_total_gives_no_chunks() {
        assert!(ChunkingPolicy::default().chunk_ranges(0).is_empty());
        assert_eq!(ChunkingPolicy::default().chunk_count(0), 0);
    }

    #[test]
    fn doubling_grows_geometrically() {
        let p = ChunkingPolicy::doubling(100).with_min_chunk_bytes(1);
        let r = p.chunk_ranges(1500);
        // 100, 200, 400, 800 would exceed; last chunk takes the rest.
        assert_eq!(r, vec![0..100, 100..300, 300..700, 700..1500]);
        assert_eq!(p.chunk_count(1500), 4);
    }

    #[test]
    fn doubling_absorbs_tiny_remainder() {
        let p = ChunkingPolicy::doubling(100).with_min_chunk_bytes(50);
        // 100 + 200 = 300, remainder 30 < min: absorbed into chunk 2.
        let r = p.chunk_ranges(330);
        assert_eq!(r, vec![0..100, 100..330]);
    }

    #[test]
    fn coverage_over_many_sizes() {
        for total in [1u64, 2, 7, 255, 256, 257, 4096, 1_000_003] {
            for p in [
                ChunkingPolicy::fixed_count(1),
                ChunkingPolicy::fixed_count(7),
                ChunkingPolicy::default(),
                ChunkingPolicy::fixed_bytes(777),
                ChunkingPolicy::doubling(64),
            ] {
                let r = p.chunk_ranges(total);
                assert!(covers_exactly(&r, total), "{p} total={total}");
                assert!(r.iter().all(|c| !c.is_empty()));
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_count_rejected() {
        ChunkingPolicy::fixed_count(0);
    }

    #[test]
    fn display_mentions_parameters() {
        assert!(format!("{}", ChunkingPolicy::fixed_count(8)).contains('8'));
        assert!(format!("{}", ChunkingPolicy::fixed_bytes(512)).contains("512"));
    }
}
