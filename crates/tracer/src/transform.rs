//! The overlap transform: synthesizing the *potential* (overlapped)
//! execution from the original trace plus production/consumption profiles.
//!
//! The paper's mechanism of automatic overlap is: "to partition every
//! original message into independent chunks; to send every chunk as soon as
//! it is produced; and to wait for every chunk in the moment when it is
//! needed for consumption". This module rewrites a rank's record sequence
//! accordingly:
//!
//! * every chunkable send becomes per-chunk `ISend`s injected at the
//!   instruction instants where each chunk's data is fully produced,
//! * every chunkable receive becomes per-chunk `IRecv`s posted at the
//!   original receive point, with per-chunk `Wait`s injected at the
//!   instants where each chunk is first consumed,
//! * computation bursts are split at the injection points, preserving the
//!   rank's total instruction count exactly.
//!
//! Two pattern sources are supported, mirroring the paper's two overlapped
//! traces: [`PatternSource::Real`] uses the measured profiles;
//! [`PatternSource::Linear`] redistributes chunk instants uniformly over
//! the adjacent computation burst, modeling the ideal sequential pattern
//! assumed by Sancho et al. Mechanism subsets ([`Mechanisms`]) allow the
//! early-send and late-wait halves of the mechanism to be studied
//! separately.

use std::collections::BTreeMap;
use std::ops::Range;

use ovlsim_core::{BufferId, Instr, Record, RequestId, Tag};

use crate::chunking::ChunkingPolicy;
use crate::context::RankMeta;

/// Where chunk readiness/need instants come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternSource {
    /// Measured production/consumption profiles (the application's real
    /// access pattern).
    Real,
    /// Uniform distribution over the adjacent computation burst (the ideal
    /// sequential pattern).
    Linear,
}

/// Which halves of the overlap mechanism are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mechanisms {
    /// Send each chunk as soon as it is produced (if false, all chunks are
    /// sent at the original send point).
    pub early_send: bool,
    /// Wait for each chunk only when first consumed (if false, all chunks
    /// are waited at the original receive point).
    pub late_wait: bool,
}

impl Mechanisms {
    /// Both mechanisms enabled (full automatic overlap).
    pub const BOTH: Mechanisms = Mechanisms {
        early_send: true,
        late_wait: true,
    };
    /// Only early sends.
    pub const EARLY_SEND_ONLY: Mechanisms = Mechanisms {
        early_send: true,
        late_wait: false,
    };
    /// Only late waits.
    pub const LATE_WAIT_ONLY: Mechanisms = Mechanisms {
        early_send: false,
        late_wait: true,
    };
    /// Neither (chunked transfer without repositioning — isolates pure
    /// chunking/pipelining effects).
    pub const NONE: Mechanisms = Mechanisms {
        early_send: false,
        late_wait: false,
    };
}

/// A complete overlap-transform configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlapMode {
    /// Chunk instant source.
    pub pattern: PatternSource,
    /// Enabled mechanism halves.
    pub mechanisms: Mechanisms,
}

impl OverlapMode {
    /// Full overlap with measured (real) patterns.
    pub fn real() -> Self {
        OverlapMode {
            pattern: PatternSource::Real,
            mechanisms: Mechanisms::BOTH,
        }
    }

    /// Full overlap with ideal (linear) patterns.
    pub fn linear() -> Self {
        OverlapMode {
            pattern: PatternSource::Linear,
            mechanisms: Mechanisms::BOTH,
        }
    }

    /// A short suffix identifying this mode in trace names,
    /// e.g. `"ovl-real"` or `"ovl-linear-earlysend"`.
    pub fn label(&self) -> String {
        let pat = match self.pattern {
            PatternSource::Real => "real",
            PatternSource::Linear => "linear",
        };
        let mech = match (self.mechanisms.early_send, self.mechanisms.late_wait) {
            (true, true) => "",
            (true, false) => "-earlysend",
            (false, true) => "-latewait",
            (false, false) => "-chunked",
        };
        format!("ovl-{pat}{mech}")
    }
}

/// Maximum application tag encodable in chunk tags.
pub const MAX_APP_TAG: u64 = 1 << 20;
/// Maximum per-channel message sequence encodable in chunk tags.
pub const MAX_CHANNEL_SEQ: u32 = 1 << 23;
/// Maximum chunks per message encodable in chunk tags.
pub const MAX_CHUNKS_PER_MESSAGE: usize = 1 << 16;

/// Derives the wire tag of chunk `chunk` of the `channel_seq`-th message
/// with application tag `app_tag` on its channel.
///
/// # Non-collision guarantee
///
/// The three components occupy **disjoint bit fields** of the 64-bit tag:
///
/// ```text
/// bit 63  | bits 40..59        | bits 16..38           | bits 0..15
/// chunk   | app_tag (20 bits)  | channel_seq (23 bits) | chunk (16 bits)
/// flag    |                    |                       |
/// ```
///
/// Within the asserted ranges the encoding is therefore **injective**:
/// two chunk tags are equal iff all three components are equal — in
/// particular, the last chunk of one message can never collide with the
/// first chunk of the next message on an adjacent `channel_seq`, and no
/// chunk count below [`MAX_CHUNKS_PER_MESSAGE`] can overflow into the
/// sequence field. The top bit is always set, so a chunk tag can never
/// collide with an application tag below [`MAX_APP_TAG`] either (bit 39
/// is deliberately left unused as a guard between the sequence and
/// application fields). `tracer::tests` and `tests/props.rs` assert the
/// guarantee on the boundaries.
///
/// # Panics
///
/// Panics if any component exceeds its encodable range (see
/// [`MAX_APP_TAG`], [`MAX_CHANNEL_SEQ`], [`MAX_CHUNKS_PER_MESSAGE`]).
pub fn chunk_tag(app_tag: Tag, channel_seq: u32, chunk: usize) -> Tag {
    assert!(
        app_tag.get() < MAX_APP_TAG,
        "application tag too large to chunk"
    );
    assert!(
        channel_seq < MAX_CHANNEL_SEQ,
        "channel sequence too large to chunk"
    );
    assert!(
        chunk < MAX_CHUNKS_PER_MESSAGE,
        "too many chunks per message"
    );
    Tag::new((1 << 63) | (app_tag.get() << 40) | ((channel_seq as u64) << 16) | chunk as u64)
}

/// One emission unit during reassembly.
#[derive(Debug)]
struct Item {
    instant: Instr,
    src: usize,
    sub: u32,
    records: Vec<Record>,
}

/// Computes the starting instruction position of every record (bursts are
/// the only records that advance the instruction clock).
fn record_positions(records: &[Record]) -> (Vec<Instr>, Instr) {
    let mut pos = Vec::with_capacity(records.len());
    let mut cur = Instr::ZERO;
    for r in records {
        pos.push(cur);
        if let Record::Burst { instr } = r {
            cur += *instr;
        }
    }
    (pos, cur)
}

/// True for records that are "transparent" when extending a located
/// computation run.
fn is_transparent(r: &Record) -> bool {
    matches!(r, Record::Burst { .. } | Record::Marker { .. })
}

/// Finds the start instant of the computation window ending at record
/// `idx`.
///
/// Only bursts have width in the instruction domain; every other record
/// (non-blocking posts, waits, collectives) is a zero-width point. The
/// window is the contiguous burst run *adjacent in the instruction
/// domain*: scan back over zero-width records to reach the nearest burst,
/// then extend across the whole burst run. This matches the paper's
/// "partial transfers … uniformly distributed throughout the original
/// computation burst" even for the common `irecv*/isend*/waitall` idiom,
/// where zero-width posts sit between the producing kernel and the send.
fn window_before(records: &[Record], pos: &[Instr], idx: usize) -> Instr {
    let mut i = idx;
    while i > 0 && !matches!(records[i - 1], Record::Burst { .. }) {
        i -= 1;
    }
    while i > 0 && is_transparent(&records[i - 1]) {
        i -= 1;
    }
    pos[i]
}

/// Finds the end instant of the computation window starting after record
/// `idx` (forward counterpart of [`window_before`]).
fn window_after(records: &[Record], pos: &[Instr], idx: usize, total: Instr) -> Instr {
    let mut i = idx + 1;
    while i < records.len() && !matches!(records[i], Record::Burst { .. }) {
        i += 1;
    }
    while i < records.len() && is_transparent(&records[i]) {
        i += 1;
    }
    if i < records.len() {
        pos[i]
    } else {
        total
    }
}

/// Linear interpolation of instant `k/n` of the way through
/// `[start, end]`.
fn lerp_instr(start: Instr, end: Instr, num: u64, den: u64) -> Instr {
    debug_assert!(end >= start && den > 0);
    let span = (end - start).get() as u128;
    start + Instr::new((span * num as u128 / den as u128) as u64)
}

/// Granularity of the per-channel `early` / `late` aggressiveness levels:
/// level `0` keeps the operation at its original point, level
/// [`TUNING_SCALE`] moves it all the way to the pattern-derived instant,
/// and intermediate levels interpolate linearly between the two.
pub const TUNING_SCALE: u8 = 4;

/// Fully-resolved overlap parameters of a single message.
///
/// This is the per-message unit the transform actually consumes: the
/// chunk byte ranges, the instant-pattern source, and how aggressively to
/// reposition sends (`early`) and waits (`late`) on the `0..=TUNING_SCALE`
/// scale. [`overlap_rank`] derives uniform tunings from an
/// [`OverlapMode`]; per-channel plans (`OverlapPlan`) derive heterogeneous
/// ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgTuning {
    /// Chunk byte ranges partitioning the message (empty = leave the
    /// message untransformed).
    pub ranges: Vec<Range<u64>>,
    /// Where chunk readiness/need instants come from.
    pub pattern: PatternSource,
    /// Early-send aggressiveness (`0` = all chunks at the original send
    /// point, [`TUNING_SCALE`] = each chunk the moment it is produced).
    pub early: u8,
    /// Late-wait aggressiveness (`0` = all chunks complete at the
    /// original receive point, [`TUNING_SCALE`] = each chunk at its first
    /// consumption).
    pub late: u8,
}

/// Interpolates between `origin` (level 0) and the fully-repositioned
/// instant `full` (level [`TUNING_SCALE`]). `full` is always at or before
/// `origin` on the send side and at or after the base on the wait side;
/// callers orient the span accordingly.
fn pull_toward(origin: Instr, full: Instr, level: u8) -> Instr {
    debug_assert!(origin >= full && level <= TUNING_SCALE);
    let span = (origin - full).get() as u128;
    origin - Instr::new((span * level as u128 / TUNING_SCALE as u128) as u64)
}

/// Transforms one rank's original records into the overlapped execution.
///
/// `send_chunkable[i]` / `recv_chunkable[i]` flag whether the `i`-th
/// send/recv of `meta` may be chunked (both endpoints must have registered
/// buffers — computed globally by the session so the two sides agree).
/// Every chunkable message receives the same uniform [`MsgTuning`] derived
/// from `policy` and `mode`; see [`overlap_rank_tuned`] for heterogeneous
/// per-message parameters.
///
/// The transform preserves the rank's total instruction count exactly and
/// produces a trace in which every injected request is waited exactly once.
///
/// # Panics
///
/// Panics if the chunkable flags disagree with `meta` lengths or if tags /
/// sequences exceed the chunk-tag encodable ranges.
pub fn overlap_rank(
    records: &[Record],
    meta: &RankMeta,
    send_chunkable: &[bool],
    recv_chunkable: &[bool],
    policy: &ChunkingPolicy,
    mode: OverlapMode,
) -> Vec<Record> {
    assert_eq!(send_chunkable.len(), meta.sends.len());
    assert_eq!(recv_chunkable.len(), meta.recvs.len());
    let uniform = |bytes: u64| MsgTuning {
        ranges: policy.chunk_ranges(bytes),
        pattern: mode.pattern,
        early: if mode.mechanisms.early_send {
            TUNING_SCALE
        } else {
            0
        },
        late: if mode.mechanisms.late_wait {
            TUNING_SCALE
        } else {
            0
        },
    };
    let send_tuning: Vec<Option<MsgTuning>> = meta
        .sends
        .iter()
        .zip(send_chunkable)
        .map(|(s, &chunkable)| chunkable.then(|| uniform(s.bytes)))
        .collect();
    let recv_tuning: Vec<Option<MsgTuning>> = meta
        .recvs
        .iter()
        .zip(recv_chunkable)
        .map(|(m, &chunkable)| chunkable.then(|| uniform(m.bytes)))
        .collect();
    overlap_rank_tuned(records, meta, &send_tuning, &recv_tuning)
}

/// [`overlap_rank`] with explicit per-message parameters: message `i` of
/// `meta.sends` / `meta.recvs` is transformed with `send_tuning[i]` /
/// `recv_tuning[i]` (`None` = pass through untransformed). The two sides
/// of one message must agree on the chunk ranges — per-channel plans
/// guarantee this by deriving both sides' tunings from the same channel
/// key.
///
/// # Panics
///
/// Panics if the tuning slices disagree with `meta` lengths, a level
/// exceeds [`TUNING_SCALE`], or tags / sequences exceed the chunk-tag
/// encodable ranges.
pub fn overlap_rank_tuned(
    records: &[Record],
    meta: &RankMeta,
    send_tuning: &[Option<MsgTuning>],
    recv_tuning: &[Option<MsgTuning>],
) -> Vec<Record> {
    assert_eq!(send_tuning.len(), meta.sends.len());
    assert_eq!(recv_tuning.len(), meta.recvs.len());

    let (pos, total) = record_positions(records);

    // Fresh request ids start above anything in the original trace.
    let mut next_req: u32 = records
        .iter()
        .filter_map(|r| match r {
            Record::ISend { req, .. } | Record::IRecv { req, .. } | Record::Wait { req } => {
                Some(req.get() + 1)
            }
            Record::WaitAll { reqs } => reqs.iter().map(|r| r.get() + 1).max(),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let mut fresh_req = move || {
        let r = RequestId::new(next_req);
        next_req += 1;
        r
    };

    // Record replacements and extra injected items.
    let mut replacements: BTreeMap<usize, Vec<Record>> = BTreeMap::new();
    // Per wait-record request rewrites: orig req -> substitute chunk reqs
    // (empty = the wait for this request moves elsewhere). A single WaitAll
    // may complete several transformed messages, so rewrites accumulate.
    let mut wait_mods: BTreeMap<usize, BTreeMap<u32, Vec<RequestId>>> = BTreeMap::new();
    let mut items: Vec<Item> = Vec::new();
    // Chunk-recv requests whose wait is deferred to the next receive on the
    // same buffer (or end of trace).
    let mut pending_by_buffer: BTreeMap<BufferId, Vec<RequestId>> = BTreeMap::new();
    // Requests to wait at the very end of the trace.
    let mut end_waits: Vec<RequestId> = Vec::new();

    // --- Send side -------------------------------------------------------
    for (send, tuning) in meta.sends.iter().zip(send_tuning) {
        let Some(t) = tuning else {
            continue;
        };
        assert!(t.early <= TUNING_SCALE, "send tuning level out of range");
        let ranges = &t.ranges;
        let n = ranges.len();
        if n == 0 {
            continue;
        }
        let send_instant = send.send_instant;
        let wstart = window_before(records, &pos, send.record_idx);
        let mut chunk_reqs = Vec::with_capacity(n);

        for (j, range) in ranges.iter().enumerate() {
            let ready = if t.early == 0 {
                send_instant
            } else {
                let full = match t.pattern {
                    PatternSource::Real => send
                        .production
                        .as_ref()
                        .expect("chunkable send must have a production profile")
                        .ready_at(range.clone())
                        .min(send_instant),
                    PatternSource::Linear => {
                        lerp_instr(wstart, send_instant, (j + 1) as u64, n as u64)
                    }
                };
                pull_toward(send_instant, full, t.early)
            };
            let req = fresh_req();
            chunk_reqs.push(req);
            items.push(Item {
                instant: ready,
                src: send.record_idx,
                sub: 1000 + j as u32,
                records: vec![Record::ISend {
                    to: send.to,
                    bytes: range.end - range.start,
                    tag: chunk_tag(send.tag, send.channel_seq, j),
                    req,
                }],
            });
        }

        // The original send (and its wait, for isend) disappears.
        replacements.insert(send.record_idx, Vec::new());
        match send.wait_record_idx {
            Some(wait_idx) => {
                // isend: the application's own wait completes the chunks.
                let orig_req = match &records[send.record_idx] {
                    Record::ISend { req, .. } => *req,
                    other => unreachable!("send meta with wait points at {other}"),
                };
                wait_mods
                    .entry(wait_idx)
                    .or_default()
                    .insert(orig_req.get(), chunk_reqs);
            }
            None => {
                // Blocking send: chunk completions are needed once the
                // buffer is rewritten; otherwise at end of trace.
                match send.reuse_write {
                    Some(at) => items.push(Item {
                        instant: at.min(total),
                        src: send.record_idx,
                        sub: 500,
                        records: vec![Record::WaitAll { reqs: chunk_reqs }],
                    }),
                    None => end_waits.extend(chunk_reqs),
                }
            }
        }
    }

    // --- Receive side ----------------------------------------------------
    for (recv, tuning) in meta.recvs.iter().zip(recv_tuning) {
        let Some(t) = tuning else {
            continue;
        };
        assert!(t.late <= TUNING_SCALE, "recv tuning level out of range");
        let ranges = &t.ranges;
        let n = ranges.len();
        if n == 0 {
            continue;
        }
        let buf = recv
            .buffer
            .expect("chunkable recv must have a registered buffer");
        let complete_idx = recv.wait_record_idx.unwrap_or(recv.post_record_idx);
        let complete = recv.complete_instant;
        let wend = window_after(records, &pos, complete_idx, total);

        // Posts: per-chunk IRecvs at the original posting point, prefixed
        // by any deferred waits for the previous message in this buffer.
        let mut posts: Vec<Record> = Vec::with_capacity(n + 1);
        if let Some(pending) = pending_by_buffer.remove(&buf) {
            if !pending.is_empty() {
                posts.push(Record::WaitAll { reqs: pending });
            }
        }

        let mut chunk_reqs = Vec::with_capacity(n);
        for (j, range) in ranges.iter().enumerate() {
            let req = fresh_req();
            chunk_reqs.push(req);
            posts.push(Record::IRecv {
                from: recv.from,
                bytes: range.end - range.start,
                tag: chunk_tag(recv.tag, recv.channel_seq, j),
                req,
            });
        }
        replacements.insert(recv.post_record_idx, posts);

        let orig_req = recv
            .wait_record_idx
            .map(|_| match &records[recv.post_record_idx] {
                Record::IRecv { req, .. } => *req,
                other => unreachable!("recv meta with wait points at {other}"),
            });

        if t.late == 0 {
            // All chunks complete where the original message completed.
            match (recv.wait_record_idx, orig_req) {
                (Some(wait_idx), Some(req)) => {
                    wait_mods
                        .entry(wait_idx)
                        .or_default()
                        .insert(req.get(), chunk_reqs);
                }
                _ => {
                    // Blocking recv: append to the posts.
                    replacements
                        .get_mut(&recv.post_record_idx)
                        .expect("posts were just inserted")
                        .push(Record::WaitAll { reqs: chunk_reqs });
                }
            }
            continue;
        }

        // Late waits: each chunk is waited where first consumed; the
        // application's own wait no longer covers this message.
        if let (Some(wait_idx), Some(req)) = (recv.wait_record_idx, orig_req) {
            wait_mods
                .entry(wait_idx)
                .or_default()
                .insert(req.get(), Vec::new());
        }
        let consumption = recv.consumption.as_ref();
        for (j, (range, req)) in ranges.iter().zip(&chunk_reqs).enumerate() {
            let needed = match t.pattern {
                PatternSource::Real => consumption.and_then(|c| c.needed_at(range.clone())),
                PatternSource::Linear => Some(lerp_instr(complete, wend, j as u64, n as u64)),
            };
            match needed {
                Some(at) => {
                    // Interpolate between the original completion point
                    // (level 0) and the first-consumption instant
                    // (level TUNING_SCALE).
                    let full = at.max(complete).min(total);
                    let span = (full - complete).get() as u128;
                    let at = complete
                        + Instr::new((span * t.late as u128 / TUNING_SCALE as u128) as u64);
                    items.push(Item {
                        instant: at,
                        src: complete_idx,
                        sub: 1000 + j as u32,
                        records: vec![Record::Wait { req: *req }],
                    });
                }
                None => {
                    // Never consumed: defer to the next receive in this
                    // buffer or the end of the trace.
                    pending_by_buffer.entry(buf).or_default().push(*req);
                }
            }
        }
    }

    // Remaining deferred waits land at the end.
    for (_, reqs) in std::mem::take(&mut pending_by_buffer) {
        end_waits.extend(reqs);
    }

    // --- Reassembly ------------------------------------------------------
    for (idx, rec) in records.iter().enumerate() {
        if matches!(rec, Record::Burst { .. }) {
            debug_assert!(
                !replacements.contains_key(&idx),
                "bursts are never replaced"
            );
            continue;
        }
        let recs = if let Some(mods) = wait_mods.remove(&idx) {
            // Rewrite the wait's request list: transformed messages
            // contribute their chunk requests (or nothing, for late
            // waits); untransformed requests are kept.
            let orig: Vec<RequestId> = match rec {
                Record::Wait { req } => vec![*req],
                Record::WaitAll { reqs } => reqs.clone(),
                other => unreachable!("wait mods on non-wait record {other}"),
            };
            let mut new_reqs: Vec<RequestId> = Vec::new();
            for req in orig {
                match mods.get(&req.get()) {
                    Some(subst) => new_reqs.extend(subst.iter().copied()),
                    None => new_reqs.push(req),
                }
            }
            match new_reqs.len() {
                0 => Vec::new(),
                1 => vec![Record::Wait { req: new_reqs[0] }],
                _ => vec![Record::WaitAll { reqs: new_reqs }],
            }
        } else {
            match replacements.remove(&idx) {
                Some(replacement) => replacement,
                None => vec![rec.clone()],
            }
        };
        items.push(Item {
            instant: pos[idx],
            src: idx,
            sub: 0,
            records: recs,
        });
    }

    items.sort_by_key(|it| (it.instant, it.src, it.sub));

    let mut out: Vec<Record> = Vec::with_capacity(records.len() + items.len());
    let mut cursor = Instr::ZERO;
    let push_burst = |out: &mut Vec<Record>, upto: Instr, cursor: &mut Instr| {
        if upto > *cursor {
            let instr = upto - *cursor;
            if let Some(Record::Burst { instr: prev }) = out.last_mut() {
                *prev += instr;
            } else {
                out.push(Record::Burst { instr });
            }
            *cursor = upto;
        }
    };
    for item in items {
        debug_assert!(item.instant >= cursor, "items must be time-sorted");
        push_burst(&mut out, item.instant, &mut cursor);
        out.extend(item.records);
    }
    push_burst(&mut out, total, &mut cursor);
    if !end_waits.is_empty() {
        out.push(Record::WaitAll { reqs: end_waits });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TraceContext;
    use ovlsim_core::{Rank, RecordKind};
    use ovlsim_memtrace::{AccessKind, IndexPattern, Kernel};

    /// Builds a 1-of-2 context, runs `f` on it, and returns records+meta.
    fn trace(f: impl FnOnce(&mut TraceContext)) -> (Vec<Record>, RankMeta) {
        let mut ctx = TraceContext::new(Rank::new(0), 2);
        f(&mut ctx);
        ctx.finish().unwrap()
    }

    fn total_instr(records: &[Record]) -> Instr {
        records
            .iter()
            .map(|r| match r {
                Record::Burst { instr } => *instr,
                _ => Instr::ZERO,
            })
            .sum()
    }

    #[test]
    fn chunk_tag_is_injective_and_flagged() {
        let a = chunk_tag(Tag::new(1), 0, 0);
        let b = chunk_tag(Tag::new(1), 0, 1);
        let c = chunk_tag(Tag::new(1), 1, 0);
        let d = chunk_tag(Tag::new(2), 0, 0);
        let all = [a, b, c, d];
        for (i, x) in all.iter().enumerate() {
            assert!(x.get() >> 63 == 1);
            for (j, y) in all.iter().enumerate() {
                assert_eq!(i == j, x == y);
            }
        }
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn chunk_tag_rejects_huge_app_tag() {
        chunk_tag(Tag::new(MAX_APP_TAG), 0, 0);
    }

    #[test]
    fn chunk_tag_adjacent_channels_never_collide() {
        // The classic carry hazard: the LAST chunk of message `seq` vs
        // the FIRST chunk of message `seq + 1`. Disjoint bit fields mean
        // the chunk count can never overflow into the sequence field.
        let last_chunk = MAX_CHUNKS_PER_MESSAGE - 1;
        for seq in [0u32, 1, 1000, MAX_CHANNEL_SEQ - 2] {
            let end_of_seq = chunk_tag(Tag::new(7), seq, last_chunk);
            let start_of_next = chunk_tag(Tag::new(7), seq + 1, 0);
            assert_ne!(
                end_of_seq, start_of_next,
                "carry from chunk field into sequence field at seq {seq}"
            );
            // And the difference is exactly what the layout predicts:
            // clearing the chunk bits of `end_of_seq` recovers `seq`.
            assert_eq!((end_of_seq.get() >> 16) & 0x7f_ffff, seq as u64);
            assert_eq!(end_of_seq.get() & 0xffff, last_chunk as u64);
        }
    }

    #[test]
    fn chunk_tag_boundary_values_stay_injective() {
        // Every component at its maximum simultaneously: fields must not
        // bleed into each other or the flag bit.
        let max = chunk_tag(
            Tag::new(MAX_APP_TAG - 1),
            MAX_CHANNEL_SEQ - 1,
            MAX_CHUNKS_PER_MESSAGE - 1,
        );
        assert_eq!(max.get() >> 63, 1, "flag bit survives max components");
        assert_eq!((max.get() >> 40) & 0xf_ffff, MAX_APP_TAG - 1);
        assert_eq!((max.get() >> 16) & 0x7f_ffff, (MAX_CHANNEL_SEQ - 1) as u64);
        assert_eq!(max.get() & 0xffff, (MAX_CHUNKS_PER_MESSAGE - 1) as u64);
        // High chunk counts on adjacent (app_tag, seq) pairs: pairwise
        // distinct across a dense block of the boundary region.
        let mut seen = std::collections::BTreeSet::new();
        for app in [0u64, 1, MAX_APP_TAG - 1] {
            for seq in [0u32, 1, MAX_CHANNEL_SEQ - 1] {
                for chunk in [0usize, 1, 255, MAX_CHUNKS_PER_MESSAGE - 1] {
                    assert!(
                        seen.insert(chunk_tag(Tag::new(app), seq, chunk)),
                        "collision at app={app} seq={seq} chunk={chunk}"
                    );
                }
            }
        }
    }

    #[test]
    fn chunk_tags_disjoint_from_application_tags() {
        // Application tags are < MAX_APP_TAG and the flag bit is always
        // set: no chunk tag can shadow any valid application tag.
        let smallest_chunk_tag = chunk_tag(Tag::new(0), 0, 0);
        assert!(smallest_chunk_tag.get() >= 1 << 63);
        for app_tag in [0, 1, MAX_APP_TAG - 1] {
            assert!(Tag::new(app_tag).get() < smallest_chunk_tag.get());
        }
    }

    #[test]
    fn sequential_production_spreads_isends() {
        let (records, meta) = trace(|ctx| {
            let buf = ctx.register_buffer("b", 1000, 10);
            let k = Kernel::builder()
                .phase(Instr::new(1000))
                .access(buf, AccessKind::Write, IndexPattern::Sequential)
                .build();
            ctx.kernel(&k);
            ctx.send(Rank::new(1), buf, Tag::new(0)).unwrap();
        });
        let policy = ChunkingPolicy::fixed_count(4).with_min_chunk_bytes(1);
        let out = overlap_rank(&records, &meta, &[true], &[], &policy, OverlapMode::real());
        // Expect bursts split at 250/500/750/1000 with ISends between.
        let kinds: Vec<RecordKind> = out.iter().map(Record::kind).collect();
        assert_eq!(
            kinds,
            vec![
                RecordKind::Burst,
                RecordKind::ISend,
                RecordKind::Burst,
                RecordKind::ISend,
                RecordKind::Burst,
                RecordKind::ISend,
                RecordKind::Burst,
                RecordKind::ISend,
                RecordKind::WaitAll,
            ]
        );
        assert_eq!(total_instr(&out), Instr::new(1000));
        // Each burst is a quarter.
        let bursts: Vec<u64> = out
            .iter()
            .filter_map(|r| match r {
                Record::Burst { instr } => Some(instr.get()),
                _ => None,
            })
            .collect();
        assert_eq!(bursts, vec![250, 250, 250, 250]);
    }

    #[test]
    fn packed_tail_production_defeats_early_send() {
        // All production in the last 1% of the burst (pack loop): chunks
        // are only ready at the end, so no burst splitting happens early.
        let (records, meta) = trace(|ctx| {
            let buf = ctx.register_buffer("b", 1000, 10);
            let k = Kernel::builder()
                .phase(Instr::new(990))
                .phase(Instr::new(10))
                .access(buf, AccessKind::Write, IndexPattern::Sequential)
                .build();
            ctx.kernel(&k);
            ctx.send(Rank::new(1), buf, Tag::new(0)).unwrap();
        });
        let policy = ChunkingPolicy::fixed_count(4).with_min_chunk_bytes(1);
        let out = overlap_rank(&records, &meta, &[true], &[], &policy, OverlapMode::real());
        // First burst must be at least 990 instructions long.
        if let Record::Burst { instr } = &out[0] {
            assert!(instr.get() >= 990, "burst was split early: {}", instr.get());
        } else {
            panic!("expected leading burst");
        }
    }

    #[test]
    fn linear_mode_ignores_real_pattern() {
        // Same packed-tail app, but linear pattern: uniform spread.
        let (records, meta) = trace(|ctx| {
            let buf = ctx.register_buffer("b", 1000, 10);
            let k = Kernel::builder()
                .phase(Instr::new(990))
                .phase(Instr::new(10))
                .access(buf, AccessKind::Write, IndexPattern::Sequential)
                .build();
            ctx.kernel(&k);
            ctx.send(Rank::new(1), buf, Tag::new(0)).unwrap();
        });
        let policy = ChunkingPolicy::fixed_count(4).with_min_chunk_bytes(1);
        let out = overlap_rank(
            &records,
            &meta,
            &[true],
            &[],
            &policy,
            OverlapMode::linear(),
        );
        let bursts: Vec<u64> = out
            .iter()
            .filter_map(|r| match r {
                Record::Burst { instr } => Some(instr.get()),
                _ => None,
            })
            .collect();
        assert_eq!(bursts, vec![250, 250, 250, 250]);
    }

    #[test]
    fn early_send_disabled_keeps_sends_at_origin() {
        let (records, meta) = trace(|ctx| {
            let buf = ctx.register_buffer("b", 1000, 10);
            let k = Kernel::builder()
                .phase(Instr::new(1000))
                .access(buf, AccessKind::Write, IndexPattern::Sequential)
                .build();
            ctx.kernel(&k);
            ctx.send(Rank::new(1), buf, Tag::new(0)).unwrap();
        });
        let policy = ChunkingPolicy::fixed_count(4).with_min_chunk_bytes(1);
        let mode = OverlapMode {
            pattern: PatternSource::Real,
            mechanisms: Mechanisms::LATE_WAIT_ONLY,
        };
        let out = overlap_rank(&records, &meta, &[true], &[], &policy, mode);
        // One unsplit burst, then 4 ISends.
        assert!(matches!(out[0], Record::Burst { instr } if instr.get() == 1000));
        assert_eq!(
            out[1..5]
                .iter()
                .filter(|r| r.kind() == RecordKind::ISend)
                .count(),
            4
        );
    }

    #[test]
    fn recv_late_waits_split_consuming_burst() {
        let (records, meta) = trace(|ctx| {
            let buf = ctx.register_buffer("b", 1000, 10);
            let k = Kernel::builder()
                .phase(Instr::new(1000))
                .access(buf, AccessKind::Read, IndexPattern::Sequential)
                .build();
            ctx.recv(Rank::new(1), buf, Tag::new(0)).unwrap();
            ctx.kernel(&k);
        });
        let policy = ChunkingPolicy::fixed_count(4).with_min_chunk_bytes(1);
        let out = overlap_rank(&records, &meta, &[], &[true], &policy, OverlapMode::real());
        let kinds: Vec<RecordKind> = out.iter().map(Record::kind).collect();
        // 4 posts, then for each chunk: Wait before its consuming sub-burst.
        assert_eq!(kinds[0..4], [RecordKind::IRecv; 4]);
        let waits = kinds.iter().filter(|k| **k == RecordKind::Wait).count();
        assert_eq!(waits, 4);
        assert_eq!(total_instr(&out), Instr::new(1000));
        // Chunk 0's wait must come within the first chunk's read span
        // (element 0 is first read at instr 10).
        let mut instr_seen = 0u64;
        for r in &out {
            match r {
                Record::Burst { instr } => instr_seen += instr.get(),
                Record::Wait { .. } => break,
                _ => {}
            }
        }
        assert!(instr_seen <= 10, "first wait too late: {instr_seen}");
    }

    #[test]
    fn recv_immediate_gather_defeats_late_wait() {
        // The consuming kernel reads the whole buffer in its first 1%
        // (unpack loop): all waits stay at the front.
        let (records, meta) = trace(|ctx| {
            let buf = ctx.register_buffer("b", 1000, 10);
            let k = Kernel::builder()
                .phase(Instr::new(10))
                .access(buf, AccessKind::Read, IndexPattern::Sequential)
                .phase(Instr::new(990))
                .build();
            ctx.recv(Rank::new(1), buf, Tag::new(0)).unwrap();
            ctx.kernel(&k);
        });
        let policy = ChunkingPolicy::fixed_count(4).with_min_chunk_bytes(1);
        let out = overlap_rank(&records, &meta, &[], &[true], &policy, OverlapMode::real());
        // All waits must appear within the first 10 instructions.
        let mut instr_seen = 0u64;
        let mut last_wait_at = 0u64;
        for r in &out {
            match r {
                Record::Burst { instr } => instr_seen += instr.get(),
                Record::Wait { .. } => last_wait_at = instr_seen,
                _ => {}
            }
        }
        assert!(last_wait_at <= 10, "a wait appeared at {last_wait_at}");
    }

    #[test]
    fn unconsumed_chunks_waited_at_end() {
        let (records, meta) = trace(|ctx| {
            let buf = ctx.register_buffer("b", 1000, 10);
            // Only the first half is ever read.
            let k = Kernel::builder()
                .phase(Instr::new(100))
                .access_range(buf, AccessKind::Read, IndexPattern::Sequential, Some(0..50))
                .build();
            ctx.recv(Rank::new(1), buf, Tag::new(0)).unwrap();
            ctx.kernel(&k);
        });
        let policy = ChunkingPolicy::fixed_count(2).with_min_chunk_bytes(1);
        let out = overlap_rank(&records, &meta, &[], &[true], &policy, OverlapMode::real());
        // The unread chunk's wait must be the final record.
        assert!(matches!(out.last(), Some(Record::WaitAll { reqs }) if reqs.len() == 1));
    }

    #[test]
    fn isend_wait_becomes_chunk_waitall() {
        let (records, meta) = trace(|ctx| {
            let buf = ctx.register_buffer("b", 1000, 10);
            let k = Kernel::builder()
                .phase(Instr::new(100))
                .access(buf, AccessKind::Write, IndexPattern::Sequential)
                .build();
            ctx.kernel(&k);
            let h = ctx.isend(Rank::new(1), buf, Tag::new(0)).unwrap();
            ctx.compute(Instr::new(50));
            ctx.wait_send(h).unwrap();
        });
        let policy = ChunkingPolicy::fixed_count(2).with_min_chunk_bytes(1);
        let out = overlap_rank(&records, &meta, &[true], &[], &policy, OverlapMode::real());
        assert!(out
            .iter()
            .any(|r| matches!(r, Record::WaitAll { reqs } if reqs.len() == 2)));
        assert_eq!(total_instr(&out), Instr::new(150));
    }

    #[test]
    fn non_chunkable_messages_pass_through() {
        let (records, meta) = trace(|ctx| {
            ctx.compute(Instr::new(100));
            ctx.send_bytes(Rank::new(1), 500, Tag::new(3)).unwrap();
            ctx.recv_bytes(Rank::new(1), 300, Tag::new(4)).unwrap();
        });
        let out = overlap_rank(
            &records,
            &meta,
            &[false],
            &[false],
            &ChunkingPolicy::default(),
            OverlapMode::real(),
        );
        assert_eq!(out, records);
    }

    #[test]
    fn collectives_and_markers_preserved_in_order() {
        let (records, meta) = trace(|ctx| {
            ctx.compute(Instr::new(10));
            ctx.barrier();
            ctx.marker(9);
            ctx.allreduce(64);
            ctx.compute(Instr::new(10));
        });
        let out = overlap_rank(
            &records,
            &meta,
            &[],
            &[],
            &ChunkingPolicy::default(),
            OverlapMode::linear(),
        );
        assert_eq!(out, records);
    }

    #[test]
    fn reuse_wait_lands_before_rewrite() {
        let (records, meta) = trace(|ctx| {
            let buf = ctx.register_buffer("b", 100, 10);
            let w = Kernel::builder()
                .phase(Instr::new(100))
                .access(buf, AccessKind::Write, IndexPattern::Sequential)
                .build();
            ctx.kernel(&w);
            ctx.send(Rank::new(1), buf, Tag::new(0)).unwrap();
            ctx.kernel(&w); // rewrite
            ctx.send(Rank::new(1), buf, Tag::new(0)).unwrap();
        });
        let policy = ChunkingPolicy::fixed_count(2).with_min_chunk_bytes(1);
        let out = overlap_rank(
            &records,
            &meta,
            &[true, true],
            &[],
            &policy,
            OverlapMode::real(),
        );
        // Find the WaitAll for message 1's chunks: it must appear before
        // the second message's ISends complete their production burst.
        let wait_pos = out
            .iter()
            .position(|r| matches!(r, Record::WaitAll { .. }))
            .expect("reuse waitall present");
        let second_msg_isend_pos = out
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, Record::ISend { .. }))
            .map(|(i, _)| i)
            .nth(2)
            .expect("four isends");
        assert!(
            wait_pos < second_msg_isend_pos,
            "reuse wait at {wait_pos} not before second message isends at {second_msg_isend_pos}"
        );
        // Total instructions preserved.
        assert_eq!(total_instr(&out), Instr::new(200));
    }

    #[test]
    fn instruction_conservation_across_modes() {
        let (records, meta) = trace(|ctx| {
            let buf = ctx.register_buffer("b", 4096, 8);
            let k = Kernel::builder()
                .phase(Instr::new(5000))
                .access(buf, AccessKind::Write, IndexPattern::Strided { stride: 16 })
                .build();
            ctx.kernel(&k);
            ctx.send(Rank::new(1), buf, Tag::new(0)).unwrap();
            ctx.recv(Rank::new(1), buf, Tag::new(1)).unwrap();
            let r = Kernel::builder()
                .phase(Instr::new(3000))
                .access(buf, AccessKind::Read, IndexPattern::Shuffled { seed: 1 })
                .build();
            ctx.kernel(&r);
        });
        for mode in [
            OverlapMode::real(),
            OverlapMode::linear(),
            OverlapMode {
                pattern: PatternSource::Real,
                mechanisms: Mechanisms::EARLY_SEND_ONLY,
            },
            OverlapMode {
                pattern: PatternSource::Linear,
                mechanisms: Mechanisms::NONE,
            },
        ] {
            let out = overlap_rank(
                &records,
                &meta,
                &[true],
                &[true],
                &ChunkingPolicy::default(),
                mode,
            );
            assert_eq!(
                total_instr(&out),
                Instr::new(8000),
                "instruction count changed in mode {mode:?}"
            );
        }
    }

    #[test]
    fn shared_waitall_covers_all_transformed_messages() {
        // Two isends and one irecv completed by a single WaitAll — the
        // rewritten wait must cover every chunk of every message.
        let mut ctx = TraceContext::new(Rank::new(0), 3);
        let (records, meta) = {
            let a = ctx.register_buffer("a", 1000, 10);
            let b = ctx.register_buffer("b", 1000, 10);
            let c = ctx.register_buffer("c", 1000, 10);
            let k = Kernel::builder()
                .phase(Instr::new(100))
                .access(a, AccessKind::Write, IndexPattern::Sequential)
                .access(b, AccessKind::Write, IndexPattern::Sequential)
                .build();
            ctx.kernel(&k);
            let h1 = ctx.isend(Rank::new(1), a, Tag::new(0)).unwrap();
            let h2 = ctx.isend(Rank::new(2), b, Tag::new(0)).unwrap();
            let h3 = ctx.irecv(Rank::new(1), c, Tag::new(1)).unwrap();
            ctx.compute(Instr::new(50));
            // Complete all three with individual waits in a row (the
            // context emits one Wait per handle; exercise shared record via
            // wait_send which reuses the same WaitAll? The context emits
            // separate Wait records, so construct sharing manually below.)
            ctx.wait_send(h1).unwrap();
            ctx.wait_send(h2).unwrap();
            ctx.wait_recv(h3).unwrap();
            let read = Kernel::builder()
                .phase(Instr::new(100))
                .access(c, AccessKind::Read, IndexPattern::Sequential)
                .build();
            ctx.kernel(&read);
            ctx.finish().unwrap()
        };
        // Merge the three Wait records into one WaitAll to model the
        // common `MPI_Waitall` idiom.
        let mut merged: Vec<Record> = Vec::new();
        let mut shared: Vec<ovlsim_core::RequestId> = Vec::new();
        let mut meta = meta;
        for (idx, r) in records.iter().enumerate() {
            match r {
                Record::Wait { req } => {
                    shared.push(*req);
                    if shared.len() == 3 {
                        // All three metas point at this merged record.
                        let new_idx = merged.len();
                        for s in &mut meta.sends {
                            s.wait_record_idx = Some(new_idx);
                        }
                        for m in &mut meta.recvs {
                            m.wait_record_idx = Some(new_idx);
                        }
                        merged.push(Record::WaitAll {
                            reqs: shared.clone(),
                        });
                    }
                    let _ = idx;
                }
                other => merged.push(other.clone()),
            }
        }
        // Fix post/record indices shifted by the merge: recompute by
        // matching records (sends/recv posts are before the waits, so
        // their indices are unchanged here).
        let policy = ChunkingPolicy::fixed_count(2).with_min_chunk_bytes(1);
        let out = overlap_rank(
            &merged,
            &meta,
            &[true, true],
            &[true],
            &policy,
            OverlapMode {
                pattern: PatternSource::Real,
                mechanisms: Mechanisms::EARLY_SEND_ONLY,
            },
        );
        // With early-send + eager waits (late_wait=false), the rewritten
        // WaitAll must contain 2+2+2 = 6 chunk requests.
        let wait_reqs: Vec<usize> = out
            .iter()
            .filter_map(|r| match r {
                Record::WaitAll { reqs } => Some(reqs.len()),
                _ => None,
            })
            .collect();
        assert_eq!(wait_reqs, vec![6]);
        // Every posted request is waited exactly once.
        use std::collections::BTreeSet;
        let mut posted = BTreeSet::new();
        let mut waited = BTreeSet::new();
        for r in &out {
            match r {
                Record::ISend { req, .. } | Record::IRecv { req, .. } => {
                    assert!(posted.insert(req.get()));
                }
                Record::Wait { req } => {
                    assert!(waited.insert(req.get()));
                }
                Record::WaitAll { reqs } => {
                    for req in reqs {
                        assert!(waited.insert(req.get()));
                    }
                }
                _ => {}
            }
        }
        assert_eq!(posted, waited);
    }

    #[test]
    fn labels_are_distinct() {
        use std::collections::BTreeSet;
        let labels: BTreeSet<String> = [
            OverlapMode::real(),
            OverlapMode::linear(),
            OverlapMode {
                pattern: PatternSource::Real,
                mechanisms: Mechanisms::EARLY_SEND_ONLY,
            },
            OverlapMode {
                pattern: PatternSource::Real,
                mechanisms: Mechanisms::LATE_WAIT_ONLY,
            },
            OverlapMode {
                pattern: PatternSource::Real,
                mechanisms: Mechanisms::NONE,
            },
        ]
        .iter()
        .map(OverlapMode::label)
        .collect();
        assert_eq!(labels.len(), 5);
    }
}
