//! Per-channel overlap plans: heterogeneous transform parameters.
//!
//! [`OverlapMode`](crate::transform::OverlapMode) applies one uniform
//! configuration to every chunkable message. An [`OverlapPlan`] instead
//! assigns each *channel* — a `(src, dst, tag)` triple — its own
//! [`ChannelTuning`]: whether to overlap it at all, how many chunks to
//! split its messages into, and how aggressively to reposition sends and
//! waits on the `0..=TUNING_SCALE` scale. This is the unit the auto-tuner
//! (`lab::tune`) mutates and scores.
//!
//! Plans are value types with a deterministic [fingerprint]
//! (`OverlapPlan::fingerprint`) so that synthesized trace variants get
//! stable, cacheable names, and a byte-stable [`OverlapPlan::render`] for
//! human-readable reports.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use ovlsim_core::rng::{mix64, GOLDEN_GAMMA};
use ovlsim_core::Tag;

use crate::chunking::ChunkingPolicy;
use crate::transform::{PatternSource, TUNING_SCALE};

/// Default chunk count for newly-enabled channels (matches
/// [`ChunkingPolicy::default`]).
pub const DEFAULT_PLAN_CHUNKS: u32 = 16;

/// How one channel's messages are overlapped under an [`OverlapPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelTuning {
    /// Whether this channel is overlapped at all (`false` = its messages
    /// pass through the transform untouched).
    pub enabled: bool,
    /// Chunks per message (clamped to at least 1; the effective count is
    /// still limited by the plan's `min_chunk_bytes`).
    pub chunks: u32,
    /// Early-send aggressiveness, `0..=TUNING_SCALE`.
    pub early: u8,
    /// Late-wait aggressiveness, `0..=TUNING_SCALE`.
    pub late: u8,
}

impl ChannelTuning {
    /// Fully-aggressive overlap with `chunks` chunks per message.
    pub fn full(chunks: u32) -> Self {
        ChannelTuning {
            enabled: true,
            chunks,
            early: TUNING_SCALE,
            late: TUNING_SCALE,
        }
    }

    /// Overlap disabled for this channel.
    pub fn off() -> Self {
        ChannelTuning {
            enabled: false,
            chunks: DEFAULT_PLAN_CHUNKS,
            early: 0,
            late: 0,
        }
    }

    /// The words this tuning contributes to a plan fingerprint.
    fn words(self) -> [u64; 4] {
        [
            u64::from(self.enabled),
            u64::from(self.chunks),
            u64::from(self.early),
            u64::from(self.late),
        ]
    }
}

impl fmt::Display for ChannelTuning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.enabled {
            write!(f, "{}c{}e{}l", self.chunks, self.early, self.late)
        } else {
            write!(f, "off")
        }
    }
}

/// A per-channel overlap plan.
///
/// The plan holds a `default` tuning applied to every chunkable channel
/// plus explicit per-channel overrides keyed by `(src, dst, tag)`.
/// Non-chunkable messages (either endpoint lacks a registered buffer)
/// always pass through untransformed, exactly as under uniform modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlapPlan {
    /// Where chunk readiness/need instants come from, plan-wide.
    pub pattern: PatternSource,
    /// Minimum bytes per chunk (clamped to at least 1), plan-wide.
    pub min_chunk_bytes: u64,
    /// Tuning for channels without an explicit override.
    pub default: ChannelTuning,
    /// Per-channel overrides keyed by `(src_rank, dst_rank, raw_tag)`.
    pub channels: BTreeMap<(u32, u32, u64), ChannelTuning>,
}

impl OverlapPlan {
    /// The plan equivalent of `OverlapMode::linear()` with the default
    /// chunking policy: every chunkable channel fully overlapped with
    /// ideal linear patterns, 16 chunks, 256-byte minimum chunks.
    pub fn uniform_linear() -> Self {
        OverlapPlan {
            pattern: PatternSource::Linear,
            min_chunk_bytes: ChunkingPolicy::DEFAULT_MIN_CHUNK_BYTES,
            default: ChannelTuning::full(DEFAULT_PLAN_CHUNKS),
            channels: BTreeMap::new(),
        }
    }

    /// The effective tuning of channel `(src, dst, tag)`.
    pub fn tuning_for(&self, src: u32, dst: u32, tag: Tag) -> ChannelTuning {
        self.channels
            .get(&(src, dst, tag.get()))
            .copied()
            .unwrap_or(self.default)
    }

    /// Sets an explicit override for channel `(src, dst, tag)`.
    pub fn set(&mut self, src: u32, dst: u32, tag: Tag, tuning: ChannelTuning) {
        self.channels.insert((src, dst, tag.get()), tuning);
    }

    /// The chunking policy a tuning resolves to under this plan.
    pub(crate) fn policy_for(&self, tuning: ChannelTuning) -> ChunkingPolicy {
        ChunkingPolicy::fixed_count(tuning.chunks.max(1) as usize)
            .with_min_chunk_bytes(self.min_chunk_bytes.max(1))
    }

    /// A deterministic 64-bit fingerprint of the full plan contents.
    ///
    /// Computed as a *sequential* splitmix64 fold over the plan's words in
    /// `BTreeMap` (sorted-key) order, so equal plans always fingerprint
    /// equal and the value is stable across platforms and runs.
    pub fn fingerprint(&self) -> u64 {
        let mut h = mix64(0x6f76_6c70_6c61_6e00 ^ GOLDEN_GAMMA); // "ovlplan\0"
        let mut absorb = |w: u64| h = mix64(h ^ w.wrapping_add(GOLDEN_GAMMA));
        absorb(match self.pattern {
            PatternSource::Real => 1,
            PatternSource::Linear => 2,
        });
        absorb(self.min_chunk_bytes);
        for w in self.default.words() {
            absorb(w);
        }
        for (&(src, dst, tag), t) in &self.channels {
            absorb(u64::from(src));
            absorb(u64::from(dst));
            absorb(tag);
            for w in t.words() {
                absorb(w);
            }
        }
        h
    }

    /// A short suffix identifying this plan in trace names, e.g.
    /// `"ovl-plan-1f3a…"`. Distinct plans get distinct labels (up to
    /// fingerprint collision), equal plans always the same one.
    pub fn label(&self) -> String {
        format!("ovl-plan-{:016x}", self.fingerprint())
    }

    /// A byte-stable human-readable rendering, e.g.
    /// `"linear/256 *=16c4e4l 0>1#5=off"` (pattern, min chunk bytes, the
    /// default tuning, then each override as `src>dst#tag=tuning` in
    /// sorted key order).
    pub fn render(&self) -> String {
        let pat = match self.pattern {
            PatternSource::Real => "real",
            PatternSource::Linear => "linear",
        };
        let mut s = format!("{pat}/{} *={}", self.min_chunk_bytes, self.default);
        for (&(src, dst, tag), t) in &self.channels {
            let _ = write!(s, " {src}>{dst}#{tag}={t}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_and_override_lookup() {
        let mut plan = OverlapPlan::uniform_linear();
        assert_eq!(
            plan.tuning_for(0, 1, Tag::new(5)),
            ChannelTuning::full(DEFAULT_PLAN_CHUNKS)
        );
        plan.set(0, 1, Tag::new(5), ChannelTuning::off());
        assert_eq!(plan.tuning_for(0, 1, Tag::new(5)), ChannelTuning::off());
        // Other channels keep the default.
        assert_eq!(
            plan.tuning_for(1, 0, Tag::new(5)),
            ChannelTuning::full(DEFAULT_PLAN_CHUNKS)
        );
    }

    #[test]
    fn fingerprint_distinguishes_plans_and_is_stable() {
        let base = OverlapPlan::uniform_linear();
        assert_eq!(base.fingerprint(), base.clone().fingerprint());

        let mut chunks = base.clone();
        chunks.default.chunks = 8;
        let mut disabled = base.clone();
        disabled.set(0, 1, Tag::new(0), ChannelTuning::off());
        let mut real = base.clone();
        real.pattern = PatternSource::Real;

        let fps = [
            base.fingerprint(),
            chunks.fingerprint(),
            disabled.fingerprint(),
            real.fingerprint(),
        ];
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(fps[i], fps[j], "plans {i} and {j} collide");
            }
        }
        assert_eq!(base.label(), format!("ovl-plan-{:016x}", fps[0]));
    }

    #[test]
    fn render_is_byte_stable_and_sorted() {
        let mut plan = OverlapPlan::uniform_linear();
        plan.set(2, 3, Tag::new(7), ChannelTuning::off());
        plan.set(
            0,
            1,
            Tag::new(5),
            ChannelTuning {
                enabled: true,
                chunks: 8,
                early: 2,
                late: 4,
            },
        );
        assert_eq!(plan.render(), "linear/256 *=16c4e4l 0>1#5=8c2e4l 2>3#7=off");
        assert_eq!(plan.render(), plan.clone().render());
    }

    #[test]
    fn policy_clamps_degenerate_parameters() {
        let mut plan = OverlapPlan::uniform_linear();
        plan.min_chunk_bytes = 0;
        let t = ChannelTuning {
            enabled: true,
            chunks: 0,
            early: 1,
            late: 1,
        };
        // Must not panic or divide by zero.
        let ranges = plan.policy_for(t).chunk_ranges(1024);
        assert!(!ranges.is_empty());
    }
}
