//! The tracing session: runs an application under instrumentation and
//! produces the full family of traces.
//!
//! Mirrors the paper's tool, which "from a single real run … generates
//! various Dimemas traces – one non-overlapped (original) and several
//! overlapped (potential), each of them addressing different overlapping
//! mechanism".

use std::collections::BTreeMap;

use ovlsim_core::{validate_trace_set, MipsRate, Rank, RankTrace, Record, Tag, TraceSet};

use crate::app::Application;
use crate::chunking::ChunkingPolicy;
use crate::context::{RankMeta, TraceContext};
use crate::error::TraceError;
use crate::plan::OverlapPlan;
use crate::transform::{overlap_rank, overlap_rank_tuned, MsgTuning, OverlapMode, TUNING_SCALE};

/// A traced application: the original trace plus everything needed to
/// synthesize overlapped variants.
#[derive(Debug, Clone)]
pub struct TraceBundle {
    name: String,
    mips: MipsRate,
    original: TraceSet,
    metas: Vec<RankMeta>,
    send_chunkable: Vec<Vec<bool>>,
    recv_chunkable: Vec<Vec<bool>>,
    policy: ChunkingPolicy,
}

impl TraceBundle {
    /// The application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The non-overlapped (original) trace.
    pub fn original(&self) -> &TraceSet {
        &self.original
    }

    /// Per-rank message metadata (production/consumption profiles).
    pub fn metas(&self) -> &[RankMeta] {
        &self.metas
    }

    /// The chunking policy used for overlapped variants.
    pub fn policy(&self) -> &ChunkingPolicy {
        &self.policy
    }

    /// Synthesizes the overlapped trace for `mode` with the bundle's
    /// chunking policy.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidTrace`] if the synthesized trace fails
    /// structural validation (indicates a transform bug; should not happen
    /// for traces produced by [`TracingSession`]).
    pub fn overlapped(&self, mode: OverlapMode) -> Result<TraceSet, TraceError> {
        self.overlapped_with(mode, &self.policy)
    }

    /// Synthesizes the overlapped trace for `mode` with an explicit
    /// chunking policy.
    ///
    /// # Errors
    ///
    /// Same as [`TraceBundle::overlapped`].
    pub fn overlapped_with(
        &self,
        mode: OverlapMode,
        policy: &ChunkingPolicy,
    ) -> Result<TraceSet, TraceError> {
        let ranks: Vec<RankTrace> = self
            .original
            .ranks()
            .iter()
            .enumerate()
            .map(|(r, trace)| {
                RankTrace::from_records(overlap_rank(
                    trace.records(),
                    &self.metas[r],
                    &self.send_chunkable[r],
                    &self.recv_chunkable[r],
                    policy,
                    mode,
                ))
            })
            .collect();
        let name = format!("{}.{}", self.name, mode.label());
        let ts = TraceSet::new(name.clone(), self.mips, ranks);
        let issues = validate_trace_set(&ts);
        if !issues.is_empty() {
            return Err(TraceError::InvalidTrace {
                variant: name,
                issues,
            });
        }
        Ok(ts)
    }

    /// Synthesizes the overlapped trace for a per-channel [`OverlapPlan`]:
    /// each chunkable message is transformed with the tuning its channel
    /// resolves to under the plan (disabled channels pass through), so
    /// heterogeneous chunk counts and early/late aggressiveness levels can
    /// coexist in one trace. The two sides of a message resolve the same
    /// channel key, so their chunk ranges always agree.
    ///
    /// # Errors
    ///
    /// Same as [`TraceBundle::overlapped`].
    pub fn overlapped_planned(&self, plan: &OverlapPlan) -> Result<TraceSet, TraceError> {
        let tuning_of = |src: u32, dst: u32, tag: Tag, bytes: u64| -> Option<MsgTuning> {
            let t = plan.tuning_for(src, dst, tag);
            if !t.enabled {
                return None;
            }
            Some(MsgTuning {
                ranges: plan.policy_for(t).chunk_ranges(bytes),
                pattern: plan.pattern,
                early: t.early.min(TUNING_SCALE),
                late: t.late.min(TUNING_SCALE),
            })
        };
        let ranks: Vec<RankTrace> = self
            .original
            .ranks()
            .iter()
            .enumerate()
            .map(|(r, trace)| {
                let meta = &self.metas[r];
                let send_tuning: Vec<Option<MsgTuning>> = meta
                    .sends
                    .iter()
                    .zip(&self.send_chunkable[r])
                    .map(|(s, &chunkable)| {
                        chunkable
                            .then(|| tuning_of(r as u32, s.to.get(), s.tag, s.bytes))
                            .flatten()
                    })
                    .collect();
                let recv_tuning: Vec<Option<MsgTuning>> = meta
                    .recvs
                    .iter()
                    .zip(&self.recv_chunkable[r])
                    .map(|(m, &chunkable)| {
                        chunkable
                            .then(|| tuning_of(m.from.get(), r as u32, m.tag, m.bytes))
                            .flatten()
                    })
                    .collect();
                RankTrace::from_records(overlap_rank_tuned(
                    trace.records(),
                    meta,
                    &send_tuning,
                    &recv_tuning,
                ))
            })
            .collect();
        let name = format!("{}.{}", self.name, plan.label());
        let ts = TraceSet::new(name.clone(), self.mips, ranks);
        let issues = validate_trace_set(&ts);
        if !issues.is_empty() {
            return Err(TraceError::InvalidTrace {
                variant: name,
                issues,
            });
        }
        Ok(ts)
    }

    /// The chunkable channels of this bundle as sorted, deduplicated
    /// `(src_rank, dst_rank, tag)` triples — the channels an
    /// [`OverlapPlan`] can meaningfully tune.
    pub fn chunkable_channels(&self) -> Vec<(u32, u32, Tag)> {
        let mut out: Vec<(u32, u32, Tag)> = Vec::new();
        for (r, meta) in self.metas.iter().enumerate() {
            for (s, &chunkable) in meta.sends.iter().zip(&self.send_chunkable[r]) {
                if chunkable {
                    out.push((r as u32, s.to.get(), s.tag));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Convenience: full overlap with real (measured) patterns.
    ///
    /// # Panics
    ///
    /// Panics if synthesis fails validation (transform bug).
    pub fn overlapped_real(&self) -> TraceSet {
        self.overlapped(OverlapMode::real())
            .expect("real-pattern overlap must validate")
    }

    /// Convenience: full overlap with linear (ideal) patterns.
    ///
    /// # Panics
    ///
    /// Panics if synthesis fails validation (transform bug).
    pub fn overlapped_linear(&self) -> TraceSet {
        self.overlapped(OverlapMode::linear())
            .expect("linear-pattern overlap must validate")
    }
}

/// Runs an [`Application`] under the tracing tool.
///
/// # Example
///
/// ```
/// use ovlsim_core::{Instr, Rank, Tag};
/// use ovlsim_tracer::{Application, TraceContext, TraceError, TracingSession};
///
/// struct OneShot;
/// impl Application for OneShot {
///     fn name(&self) -> &str { "one-shot" }
///     fn ranks(&self) -> usize { 2 }
///     fn run(&self, rank: Rank, ctx: &mut TraceContext) -> Result<(), TraceError> {
///         let buf = ctx.register_buffer("x", 4096, 8);
///         if rank.index() == 0 {
///             ctx.compute(Instr::new(1000));
///             ctx.send(Rank::new(1), buf, Tag::new(0))?;
///         } else {
///             ctx.recv(Rank::new(0), buf, Tag::new(0))?;
///             ctx.compute(Instr::new(1000));
///         }
///         Ok(())
///     }
/// }
///
/// # fn main() -> Result<(), TraceError> {
/// let bundle = TracingSession::new(&OneShot).run()?;
/// assert_eq!(bundle.original().rank_count(), 2);
/// let overlapped = bundle.overlapped_linear();
/// assert!(overlapped.total_records() >= bundle.original().total_records());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TracingSession<'a, A: Application + ?Sized> {
    app: &'a A,
    policy: ChunkingPolicy,
}

impl<'a, A: Application + ?Sized> TracingSession<'a, A> {
    /// Creates a session for `app` with the default chunking policy.
    pub fn new(app: &'a A) -> Self {
        TracingSession {
            app,
            policy: ChunkingPolicy::default(),
        }
    }

    /// Overrides the chunking policy.
    pub fn policy(mut self, policy: ChunkingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Runs every rank of the application under instrumentation and
    /// returns the trace bundle.
    ///
    /// # Errors
    ///
    /// Fails if the application issues invalid operations, leaks requests,
    /// or produces a structurally invalid original trace.
    pub fn run(&self) -> Result<TraceBundle, TraceError> {
        let n = self.app.ranks();
        if n == 0 {
            return Err(TraceError::InvalidRankCount(0));
        }
        let mut all_records: Vec<Vec<Record>> = Vec::with_capacity(n);
        let mut metas: Vec<RankMeta> = Vec::with_capacity(n);
        for r in 0..n {
            let rank = Rank::new(r as u32);
            let mut ctx = TraceContext::new(rank, n);
            self.app.run(rank, &mut ctx)?;
            let (records, meta) = ctx.finish()?;
            all_records.push(records);
            metas.push(meta);
        }

        // A message may be chunked only if the sender snapshotted a
        // production profile AND the receiver used a registered buffer —
        // both transforms must agree, so the plan is computed globally.
        type ChannelKey = (u32, u32, Tag, u32); // (src, dst, tag, seq)
        let mut recv_has_buffer: BTreeMap<ChannelKey, bool> = BTreeMap::new();
        for (r, meta) in metas.iter().enumerate() {
            for recv in &meta.recvs {
                recv_has_buffer.insert(
                    (recv.from.get(), r as u32, recv.tag, recv.channel_seq),
                    recv.buffer.is_some(),
                );
            }
        }
        let mut send_has_profile: BTreeMap<ChannelKey, bool> = BTreeMap::new();
        for (r, meta) in metas.iter().enumerate() {
            for send in &meta.sends {
                send_has_profile.insert(
                    (r as u32, send.to.get(), send.tag, send.channel_seq),
                    send.production.is_some(),
                );
            }
        }
        let send_chunkable: Vec<Vec<bool>> = metas
            .iter()
            .enumerate()
            .map(|(r, meta)| {
                meta.sends
                    .iter()
                    .map(|s| {
                        s.production.is_some()
                            && *recv_has_buffer
                                .get(&(r as u32, s.to.get(), s.tag, s.channel_seq))
                                .unwrap_or(&false)
                    })
                    .collect()
            })
            .collect();
        let recv_chunkable: Vec<Vec<bool>> = metas
            .iter()
            .enumerate()
            .map(|(r, meta)| {
                meta.recvs
                    .iter()
                    .map(|m| {
                        m.buffer.is_some()
                            && *send_has_profile
                                .get(&(m.from.get(), r as u32, m.tag, m.channel_seq))
                                .unwrap_or(&false)
                    })
                    .collect()
            })
            .collect();

        let name = self.app.name().to_string();
        let mips = self.app.mips();
        let original = TraceSet::new(
            format!("{name}.original"),
            mips,
            all_records
                .into_iter()
                .map(RankTrace::from_records)
                .collect(),
        );
        let issues = validate_trace_set(&original);
        if !issues.is_empty() {
            return Err(TraceError::InvalidTrace {
                variant: original.name().to_string(),
                issues,
            });
        }
        Ok(TraceBundle {
            name,
            mips,
            original,
            metas,
            send_chunkable,
            recv_chunkable,
            policy: self.policy.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ChannelTuning;
    use crate::transform::{Mechanisms, PatternSource};
    use ovlsim_core::Instr;
    use ovlsim_memtrace::{AccessKind, IndexPattern, Kernel};

    /// Simple 1D ring halo exchange with sequential production/consumption.
    struct Ring {
        ranks: usize,
        iterations: usize,
    }

    impl Application for Ring {
        fn name(&self) -> &str {
            "ring"
        }
        fn ranks(&self) -> usize {
            self.ranks
        }
        fn run(&self, rank: Rank, ctx: &mut TraceContext) -> Result<(), TraceError> {
            let n = self.ranks as u32;
            let right = Rank::new((rank.get() + 1) % n);
            let left = Rank::new((rank.get() + n - 1) % n);
            let out = ctx.register_buffer("out", 8192, 8);
            let inb = ctx.register_buffer("in", 8192, 8);
            for _ in 0..self.iterations {
                let produce = Kernel::builder()
                    .phase(Instr::new(10_000))
                    .access(out, AccessKind::Write, IndexPattern::Sequential)
                    .build();
                ctx.kernel(&produce);
                // Even ranks send first; odd ranks receive first.
                if rank.get().is_multiple_of(2) {
                    ctx.send(right, out, Tag::new(0))?;
                    ctx.recv(left, inb, Tag::new(0))?;
                } else {
                    ctx.recv(left, inb, Tag::new(0))?;
                    ctx.send(right, out, Tag::new(0))?;
                }
                let consume = Kernel::builder()
                    .phase(Instr::new(10_000))
                    .access(inb, AccessKind::Read, IndexPattern::Sequential)
                    .build();
                ctx.kernel(&consume);
            }
            ctx.barrier();
            Ok(())
        }
    }

    #[test]
    fn session_produces_valid_bundle() {
        let app = Ring {
            ranks: 4,
            iterations: 3,
        };
        let bundle = TracingSession::new(&app).run().unwrap();
        assert_eq!(bundle.original().rank_count(), 4);
        assert_eq!(bundle.name(), "ring");
        // All messages use registered buffers on both sides => chunkable.
        assert!(bundle.send_chunkable.iter().flatten().all(|&b| b));
        assert!(bundle.recv_chunkable.iter().flatten().all(|&b| b));
    }

    #[test]
    fn all_overlap_modes_validate() {
        let app = Ring {
            ranks: 4,
            iterations: 2,
        };
        let bundle = TracingSession::new(&app)
            .policy(ChunkingPolicy::fixed_count(8).with_min_chunk_bytes(64))
            .run()
            .unwrap();
        for pattern in [PatternSource::Real, PatternSource::Linear] {
            for mechanisms in [
                Mechanisms::BOTH,
                Mechanisms::EARLY_SEND_ONLY,
                Mechanisms::LATE_WAIT_ONLY,
                Mechanisms::NONE,
            ] {
                let mode = OverlapMode {
                    pattern,
                    mechanisms,
                };
                let ts = bundle.overlapped(mode).unwrap();
                assert!(ts.name().starts_with("ring.ovl-"));
                // Instruction counts preserved per rank.
                for (orig, ovl) in bundle.original().ranks().iter().zip(ts.ranks()) {
                    assert_eq!(orig.total_instr(), ovl.total_instr());
                }
                // Total bytes preserved.
                assert_eq!(
                    bundle.original().total_p2p_send_bytes(),
                    ts.total_p2p_send_bytes()
                );
            }
        }
    }

    #[test]
    fn uniform_plan_matches_linear_mode_exactly() {
        let app = Ring {
            ranks: 4,
            iterations: 2,
        };
        let bundle = TracingSession::new(&app).run().unwrap();
        let mode = bundle.overlapped_linear();
        let plan = bundle
            .overlapped_planned(&crate::plan::OverlapPlan::uniform_linear())
            .unwrap();
        // A uniform plan is the same transform as the uniform mode —
        // per-rank record streams must be identical (only names differ).
        for (m, p) in mode.ranks().iter().zip(plan.ranks()) {
            assert_eq!(m.records(), p.records());
        }
        assert!(plan.name().starts_with("ring.ovl-plan-"));
    }

    #[test]
    fn planned_overlap_respects_per_channel_tunings() {
        let app = Ring {
            ranks: 4,
            iterations: 2,
        };
        let bundle = TracingSession::new(&app).run().unwrap();
        let channels = bundle.chunkable_channels();
        assert!(!channels.is_empty());
        assert!(channels.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");

        // Disabling every channel reproduces the original trace exactly.
        let mut all_off = crate::plan::OverlapPlan::uniform_linear();
        all_off.default = ChannelTuning::off();
        let off = bundle.overlapped_planned(&all_off).unwrap();
        for (o, p) in bundle.original().ranks().iter().zip(off.ranks()) {
            assert_eq!(o.records(), p.records());
        }

        // Disabling a single channel still validates and produces fewer
        // records than the fully-overlapped plan.
        let mut one_off = crate::plan::OverlapPlan::uniform_linear();
        let &(src, dst, tag) = &channels[0];
        one_off.set(src, dst, tag, ChannelTuning::off());
        let partial = bundle.overlapped_planned(&one_off).unwrap();
        let full = bundle
            .overlapped_planned(&crate::plan::OverlapPlan::uniform_linear())
            .unwrap();
        assert!(partial.total_records() < full.total_records());
        assert!(partial.total_records() > bundle.original().total_records());
        // Instruction counts preserved per rank in all plan variants.
        for (orig, ovl) in bundle.original().ranks().iter().zip(partial.ranks()) {
            assert_eq!(orig.total_instr(), ovl.total_instr());
        }
    }

    #[test]
    fn overlapped_has_more_records_than_original() {
        let app = Ring {
            ranks: 2,
            iterations: 1,
        };
        let bundle = TracingSession::new(&app)
            .policy(ChunkingPolicy::fixed_count(8).with_min_chunk_bytes(64))
            .run()
            .unwrap();
        let overlapped = bundle.overlapped_linear();
        assert!(overlapped.total_records() > bundle.original().total_records());
    }

    #[test]
    fn zero_rank_app_rejected() {
        struct Empty;
        impl Application for Empty {
            fn name(&self) -> &str {
                "empty"
            }
            fn ranks(&self) -> usize {
                0
            }
            fn run(&self, _: Rank, _: &mut TraceContext) -> Result<(), TraceError> {
                Ok(())
            }
        }
        assert!(matches!(
            TracingSession::new(&Empty).run(),
            Err(TraceError::InvalidRankCount(0))
        ));
    }

    #[test]
    fn mixed_raw_and_buffered_messages() {
        /// Rank 0 sends a buffered message; rank 1 receives raw (size-only).
        struct Mixed;
        impl Application for Mixed {
            fn name(&self) -> &str {
                "mixed"
            }
            fn ranks(&self) -> usize {
                2
            }
            fn run(&self, rank: Rank, ctx: &mut TraceContext) -> Result<(), TraceError> {
                if rank.index() == 0 {
                    let buf = ctx.register_buffer("b", 1024, 8);
                    ctx.compute(Instr::new(100));
                    ctx.send(Rank::new(1), buf, Tag::new(0))?;
                } else {
                    ctx.recv_bytes(Rank::new(0), 1024, Tag::new(0))?;
                    ctx.compute(Instr::new(100));
                }
                Ok(())
            }
        }
        let bundle = TracingSession::new(&Mixed).run().unwrap();
        // The receiver has no buffer, so neither side may chunk.
        assert_eq!(bundle.send_chunkable[0], vec![false]);
        assert_eq!(bundle.recv_chunkable[1], vec![false]);
        // Overlapped trace equals original (message passes through).
        let ovl = bundle.overlapped_real();
        assert_eq!(
            ovl.ranks()[0].records(),
            bundle.original().ranks()[0].records()
        );
    }
}
