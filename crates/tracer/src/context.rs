//! The per-rank tracing context.
//!
//! [`TraceContext`] is the API an application model programs against. While
//! the model runs, the context simultaneously:
//!
//! 1. records the **original** (non-overlapped) trace — bursts and
//!    communication records exactly as the legacy code would execute them,
//! 2. drives the virtual instrumentation ([`MemTracer`]) that observes
//!    *when* each byte of every message is produced and first consumed —
//!    the raw material for synthesizing the overlapped traces.

use std::collections::BTreeMap;

use ovlsim_core::{BufferId, Instr, Rank, Record, RequestId, Tag};
use ovlsim_memtrace::{ConsumptionProfile, Kernel, MemTracer, ProductionProfile, WriteWatch};

use crate::error::TraceError;

/// Handle for an in-flight non-blocking send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "isend must be completed with wait_send"]
pub struct SendHandle(RequestId);

/// Handle for an in-flight non-blocking receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "irecv must be completed with wait_recv"]
pub struct RecvHandle(RequestId);

/// Metadata the tracer keeps for every sent message.
#[derive(Debug, Clone)]
pub struct SendMeta {
    /// Index of the `Send`/`ISend` record in the rank's trace.
    pub record_idx: usize,
    /// Destination rank.
    pub to: Rank,
    /// Message size in bytes.
    pub bytes: u64,
    /// Application tag.
    pub tag: Tag,
    /// FIFO sequence number on the `(self→to, tag)` channel.
    pub channel_seq: u32,
    /// The send buffer, if the message was sent from a registered buffer.
    pub buffer: Option<BufferId>,
    /// Per-element production instants snapshot at the send.
    pub production: Option<ProductionProfile>,
    /// Instruction instant of the send call.
    pub send_instant: Instr,
    /// Instant of the first write to the buffer *after* the send (where
    /// the overlapped execution must have completed the chunked sends).
    pub reuse_write: Option<Instr>,
    /// Index of the matching `Wait` record if this was an `isend`.
    pub wait_record_idx: Option<usize>,
    pub(crate) reuse_watch: Option<WriteWatch>,
}

/// Metadata the tracer keeps for every received message.
#[derive(Debug, Clone)]
pub struct RecvMeta {
    /// Index of the `Recv`/`IRecv` record in the rank's trace.
    pub post_record_idx: usize,
    /// Index of the matching `Wait` record if this was an `irecv`.
    pub wait_record_idx: Option<usize>,
    /// Source rank.
    pub from: Rank,
    /// Message size in bytes.
    pub bytes: u64,
    /// Application tag.
    pub tag: Tag,
    /// FIFO sequence number on the `(from→self, tag)` channel.
    pub channel_seq: u32,
    /// The receive buffer, if the message landed in a registered buffer.
    pub buffer: Option<BufferId>,
    /// Per-element first-read instants after message completion.
    pub consumption: Option<ConsumptionProfile>,
    /// Instruction instant at which the message is complete in the
    /// original execution (the blocking recv, or the wait of an irecv).
    pub complete_instant: Instr,
}

/// Everything the tracer learned about one rank: the original records plus
/// per-message production/consumption metadata.
#[derive(Debug, Clone, Default)]
pub struct RankMeta {
    /// Send-side message metadata, in issue order.
    pub sends: Vec<SendMeta>,
    /// Receive-side message metadata, in issue order.
    pub recvs: Vec<RecvMeta>,
    /// Total instructions executed by the rank.
    pub total_instr: Instr,
}

#[derive(Debug)]
enum Pending {
    Send { meta_idx: usize },
    Recv { meta_idx: usize },
}

/// The tracing context handed to [`Application::run`].
///
/// [`Application::run`]: crate::Application::run
#[derive(Debug)]
pub struct TraceContext {
    rank: Rank,
    nranks: usize,
    mem: MemTracer,
    records: Vec<Record>,
    sends: Vec<SendMeta>,
    recvs: Vec<RecvMeta>,
    /// Receive whose consumption window is currently open, per buffer.
    open_consumption: BTreeMap<BufferId, usize>,
    pending: BTreeMap<u32, Pending>,
    next_req: u32,
    out_seq: BTreeMap<(Rank, Tag), u32>,
    in_seq: BTreeMap<(Rank, Tag), u32>,
}

impl TraceContext {
    /// Creates a context for `rank` of `nranks`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is outside the communicator or `nranks == 0`
    /// (the session validates these before constructing contexts).
    pub fn new(rank: Rank, nranks: usize) -> Self {
        assert!(nranks >= 1, "communicator must have at least one rank");
        assert!(rank.index() < nranks, "rank outside communicator");
        TraceContext {
            rank,
            nranks,
            mem: MemTracer::new(),
            records: Vec::new(),
            sends: Vec::new(),
            recvs: Vec::new(),
            open_consumption: BTreeMap::new(),
            pending: BTreeMap::new(),
            next_req: 0,
            out_seq: BTreeMap::new(),
            in_seq: BTreeMap::new(),
        }
    }

    /// This context's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Communicator size.
    pub fn ranks(&self) -> usize {
        self.nranks
    }

    /// Current virtual instruction instant.
    pub fn now(&self) -> Instr {
        self.mem.now()
    }

    /// Registers a communication buffer (see [`MemTracer::register`]).
    ///
    /// # Panics
    ///
    /// Panics on zero sizes or misaligned element sizes.
    pub fn register_buffer(
        &mut self,
        name: impl Into<String>,
        bytes: u64,
        elem_bytes: u32,
    ) -> BufferId {
        self.mem.register(name, bytes, elem_bytes)
    }

    /// Size in bytes of a registered buffer.
    pub fn buffer_bytes(&self, buf: BufferId) -> u64 {
        self.mem.buffer_info(buf).bytes()
    }

    /// Executes `instr` instructions of opaque computation (no tracked
    /// buffer is touched).
    pub fn compute(&mut self, instr: Instr) {
        if instr.is_zero() {
            return;
        }
        self.mem.advance(instr);
        self.push_burst(instr);
    }

    /// Executes a compute kernel, recording its buffer accesses.
    ///
    /// # Panics
    ///
    /// Panics if the kernel touches an unregistered buffer.
    pub fn kernel(&mut self, kernel: &Kernel) {
        let instr = kernel.total_instr();
        self.mem.execute(kernel);
        if !instr.is_zero() {
            self.push_burst(instr);
        }
    }

    fn push_burst(&mut self, instr: Instr) {
        // Coalesce adjacent bursts so record positions stay canonical.
        if let Some(Record::Burst { instr: prev }) = self.records.last_mut() {
            *prev += instr;
        } else {
            self.records.push(Record::Burst { instr });
        }
    }

    fn check_peer(&self, peer: Rank) -> Result<(), TraceError> {
        if peer.index() >= self.nranks {
            return Err(TraceError::PeerOutOfRange {
                rank: self.rank,
                peer,
                size: self.nranks,
            });
        }
        if peer == self.rank {
            return Err(TraceError::SelfMessage { rank: self.rank });
        }
        Ok(())
    }

    fn next_out_seq(&mut self, to: Rank, tag: Tag) -> u32 {
        let c = self.out_seq.entry((to, tag)).or_insert(0);
        let seq = *c;
        *c += 1;
        seq
    }

    fn next_in_seq(&mut self, from: Rank, tag: Tag) -> u32 {
        let c = self.in_seq.entry((from, tag)).or_insert(0);
        let seq = *c;
        *c += 1;
        seq
    }

    fn fresh_req(&mut self) -> RequestId {
        let r = RequestId::new(self.next_req);
        self.next_req += 1;
        r
    }

    /// Blocking send of a registered buffer.
    ///
    /// # Errors
    ///
    /// Fails if `to` is out of range or equals this rank, or the buffer is
    /// empty.
    pub fn send(&mut self, to: Rank, buf: BufferId, tag: Tag) -> Result<(), TraceError> {
        self.check_peer(to)?;
        let bytes = self.mem.buffer_info(buf).bytes();
        if bytes == 0 {
            return Err(TraceError::EmptyMessage { rank: self.rank });
        }
        let channel_seq = self.next_out_seq(to, tag);
        let production = self.mem.snapshot_production(buf);
        let watch = self.mem.watch_first_write(buf);
        let record_idx = self.records.len();
        self.records.push(Record::Send { to, bytes, tag });
        self.sends.push(SendMeta {
            record_idx,
            to,
            bytes,
            tag,
            channel_seq,
            buffer: Some(buf),
            production: Some(production),
            send_instant: self.mem.now(),
            reuse_write: None,
            wait_record_idx: None,
            reuse_watch: Some(watch),
        });
        Ok(())
    }

    /// Blocking send of `bytes` raw bytes (no registered buffer). Raw
    /// messages have no production profile and are left unsplit by the
    /// overlap transform.
    ///
    /// # Errors
    ///
    /// Fails if `to` is invalid or `bytes == 0`.
    pub fn send_bytes(&mut self, to: Rank, bytes: u64, tag: Tag) -> Result<(), TraceError> {
        self.check_peer(to)?;
        if bytes == 0 {
            return Err(TraceError::EmptyMessage { rank: self.rank });
        }
        let channel_seq = self.next_out_seq(to, tag);
        let record_idx = self.records.len();
        self.records.push(Record::Send { to, bytes, tag });
        self.sends.push(SendMeta {
            record_idx,
            to,
            bytes,
            tag,
            channel_seq,
            buffer: None,
            production: None,
            send_instant: self.mem.now(),
            reuse_write: None,
            wait_record_idx: None,
            reuse_watch: None,
        });
        Ok(())
    }

    /// Non-blocking send of a registered buffer; complete with
    /// [`TraceContext::wait_send`].
    ///
    /// # Errors
    ///
    /// Same as [`TraceContext::send`].
    pub fn isend(&mut self, to: Rank, buf: BufferId, tag: Tag) -> Result<SendHandle, TraceError> {
        self.check_peer(to)?;
        let bytes = self.mem.buffer_info(buf).bytes();
        if bytes == 0 {
            return Err(TraceError::EmptyMessage { rank: self.rank });
        }
        let channel_seq = self.next_out_seq(to, tag);
        let production = self.mem.snapshot_production(buf);
        let watch = self.mem.watch_first_write(buf);
        let req = self.fresh_req();
        let record_idx = self.records.len();
        self.records.push(Record::ISend {
            to,
            bytes,
            tag,
            req,
        });
        let meta_idx = self.sends.len();
        self.sends.push(SendMeta {
            record_idx,
            to,
            bytes,
            tag,
            channel_seq,
            buffer: Some(buf),
            production: Some(production),
            send_instant: self.mem.now(),
            reuse_write: None,
            wait_record_idx: None,
            reuse_watch: Some(watch),
        });
        self.pending.insert(req.get(), Pending::Send { meta_idx });
        Ok(SendHandle(req))
    }

    /// Completes a non-blocking send.
    ///
    /// # Errors
    ///
    /// Fails if the handle is not outstanding.
    pub fn wait_send(&mut self, handle: SendHandle) -> Result<(), TraceError> {
        let req = handle.0;
        match self.pending.remove(&req.get()) {
            Some(Pending::Send { meta_idx }) => {
                self.sends[meta_idx].wait_record_idx = Some(self.records.len());
                self.records.push(Record::Wait { req });
                Ok(())
            }
            other => {
                if let Some(p) = other {
                    self.pending.insert(req.get(), p);
                }
                Err(TraceError::UnknownRequest { rank: self.rank })
            }
        }
    }

    /// Blocking receive into a registered buffer.
    ///
    /// # Errors
    ///
    /// Fails if `from` is invalid or the buffer is empty.
    pub fn recv(&mut self, from: Rank, buf: BufferId, tag: Tag) -> Result<(), TraceError> {
        self.check_peer(from)?;
        let bytes = self.mem.buffer_info(buf).bytes();
        if bytes == 0 {
            return Err(TraceError::EmptyMessage { rank: self.rank });
        }
        let channel_seq = self.next_in_seq(from, tag);
        let record_idx = self.records.len();
        self.records.push(Record::Recv { from, bytes, tag });
        let meta_idx = self.recvs.len();
        self.recvs.push(RecvMeta {
            post_record_idx: record_idx,
            wait_record_idx: None,
            from,
            bytes,
            tag,
            channel_seq,
            buffer: Some(buf),
            consumption: None,
            complete_instant: self.mem.now(),
        });
        self.open_consumption_window(buf, meta_idx);
        Ok(())
    }

    /// Blocking receive of raw bytes (no consumption tracking; left
    /// unsplit by the overlap transform).
    ///
    /// # Errors
    ///
    /// Fails if `from` is invalid or `bytes == 0`.
    pub fn recv_bytes(&mut self, from: Rank, bytes: u64, tag: Tag) -> Result<(), TraceError> {
        self.check_peer(from)?;
        if bytes == 0 {
            return Err(TraceError::EmptyMessage { rank: self.rank });
        }
        let channel_seq = self.next_in_seq(from, tag);
        let record_idx = self.records.len();
        self.records.push(Record::Recv { from, bytes, tag });
        self.recvs.push(RecvMeta {
            post_record_idx: record_idx,
            wait_record_idx: None,
            from,
            bytes,
            tag,
            channel_seq,
            buffer: None,
            consumption: None,
            complete_instant: self.mem.now(),
        });
        Ok(())
    }

    /// Non-blocking receive into a registered buffer; complete with
    /// [`TraceContext::wait_recv`].
    ///
    /// # Errors
    ///
    /// Same as [`TraceContext::recv`].
    pub fn irecv(&mut self, from: Rank, buf: BufferId, tag: Tag) -> Result<RecvHandle, TraceError> {
        self.check_peer(from)?;
        let bytes = self.mem.buffer_info(buf).bytes();
        if bytes == 0 {
            return Err(TraceError::EmptyMessage { rank: self.rank });
        }
        let channel_seq = self.next_in_seq(from, tag);
        let req = self.fresh_req();
        let record_idx = self.records.len();
        self.records.push(Record::IRecv {
            from,
            bytes,
            tag,
            req,
        });
        let meta_idx = self.recvs.len();
        self.recvs.push(RecvMeta {
            post_record_idx: record_idx,
            wait_record_idx: None,
            from,
            bytes,
            tag,
            channel_seq,
            buffer: Some(buf),
            consumption: None,
            complete_instant: self.mem.now(),
        });
        self.pending.insert(req.get(), Pending::Recv { meta_idx });
        Ok(RecvHandle(req))
    }

    /// Completes a non-blocking receive; the buffer's consumption window
    /// opens here (data is valid only after the wait).
    ///
    /// # Errors
    ///
    /// Fails if the handle is not outstanding.
    pub fn wait_recv(&mut self, handle: RecvHandle) -> Result<(), TraceError> {
        let req = handle.0;
        match self.pending.remove(&req.get()) {
            Some(Pending::Recv { meta_idx }) => {
                self.recvs[meta_idx].wait_record_idx = Some(self.records.len());
                self.recvs[meta_idx].complete_instant = self.mem.now();
                self.records.push(Record::Wait { req });
                if let Some(buf) = self.recvs[meta_idx].buffer {
                    self.open_consumption_window(buf, meta_idx);
                }
                Ok(())
            }
            other => {
                if let Some(p) = other {
                    self.pending.insert(req.get(), p);
                }
                Err(TraceError::UnknownRequest { rank: self.rank })
            }
        }
    }

    fn open_consumption_window(&mut self, buf: BufferId, meta_idx: usize) {
        // Close the previous window on this buffer first.
        if let Some(prev) = self.open_consumption.remove(&buf) {
            self.recvs[prev].consumption = Some(self.mem.snapshot_consumption(buf));
        }
        self.mem.reset_consumption(buf);
        self.open_consumption.insert(buf, meta_idx);
    }

    /// Barrier across all ranks.
    pub fn barrier(&mut self) {
        self.records.push(Record::Barrier);
    }

    /// All-reduce of `bytes` across all ranks.
    pub fn allreduce(&mut self, bytes: u64) {
        self.records.push(Record::AllReduce { bytes });
    }

    /// Broadcast of `bytes` from `root`.
    pub fn bcast(&mut self, root: Rank, bytes: u64) {
        self.records.push(Record::Bcast { root, bytes });
    }

    /// Reduce of `bytes` to `root`.
    pub fn reduce(&mut self, root: Rank, bytes: u64) {
        self.records.push(Record::Reduce { root, bytes });
    }

    /// All-to-all with `bytes` per rank pair.
    pub fn alltoall(&mut self, bytes: u64) {
        self.records.push(Record::AllToAll { bytes });
    }

    /// All-gather with `bytes` per rank.
    pub fn allgather(&mut self, bytes: u64) {
        self.records.push(Record::AllGather { bytes });
    }

    /// Emits a visualization marker (no timing effect).
    pub fn marker(&mut self, code: u32) {
        self.records.push(Record::Marker { code });
    }

    /// Finalizes the context: closes open consumption windows, resolves
    /// reuse watches and returns the original records plus metadata.
    ///
    /// # Errors
    ///
    /// Fails if any non-blocking request was never waited on.
    pub fn finish(mut self) -> Result<(Vec<Record>, RankMeta), TraceError> {
        if !self.pending.is_empty() {
            return Err(TraceError::DanglingRequests {
                rank: self.rank,
                count: self.pending.len(),
            });
        }
        let open: Vec<(BufferId, usize)> = self
            .open_consumption
            .iter()
            .map(|(b, i)| (*b, *i))
            .collect();
        for (buf, meta_idx) in open {
            self.recvs[meta_idx].consumption = Some(self.mem.snapshot_consumption(buf));
        }
        for send in &mut self.sends {
            if let Some(watch) = send.reuse_watch.take() {
                send.reuse_write = self.mem.watch_result(watch);
            }
        }
        let meta = RankMeta {
            sends: self.sends,
            recvs: self.recvs,
            total_instr: self.mem.now(),
        };
        Ok((self.records, meta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlsim_memtrace::{AccessKind, IndexPattern};

    fn ctx() -> TraceContext {
        TraceContext::new(Rank::new(0), 4)
    }

    #[test]
    fn compute_coalesces_bursts() {
        let mut c = ctx();
        c.compute(Instr::new(10));
        c.compute(Instr::new(20));
        let (records, meta) = c.finish().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(
            records[0],
            Record::Burst {
                instr: Instr::new(30)
            }
        );
        assert_eq!(meta.total_instr, Instr::new(30));
    }

    #[test]
    fn zero_compute_is_elided() {
        let mut c = ctx();
        c.compute(Instr::ZERO);
        let (records, _) = c.finish().unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn send_records_production_profile() {
        let mut c = ctx();
        let buf = c.register_buffer("b", 64, 8);
        let k = Kernel::builder()
            .phase(Instr::new(80))
            .access(buf, AccessKind::Write, IndexPattern::Sequential)
            .build();
        c.kernel(&k);
        c.send(Rank::new(1), buf, Tag::new(5)).unwrap();
        let (records, meta) = c.finish().unwrap();
        assert_eq!(records.len(), 2);
        let send = &meta.sends[0];
        assert_eq!(send.bytes, 64);
        assert_eq!(send.send_instant, Instr::new(80));
        let prof = send.production.as_ref().unwrap();
        assert_eq!(prof.fully_ready_at(), Instr::new(80));
        assert!(prof.ready_at(0..8) < Instr::new(80));
        assert_eq!(send.reuse_write, None);
    }

    #[test]
    fn reuse_write_resolved_at_finish() {
        let mut c = ctx();
        let buf = c.register_buffer("b", 8, 8);
        let k = Kernel::builder()
            .phase(Instr::new(10))
            .access(buf, AccessKind::Write, IndexPattern::Sequential)
            .build();
        c.kernel(&k);
        c.send(Rank::new(1), buf, Tag::new(0)).unwrap();
        c.kernel(&k); // rewrite the buffer => reuse
        let (_, meta) = c.finish().unwrap();
        assert_eq!(meta.sends[0].reuse_write, Some(Instr::new(20)));
    }

    #[test]
    fn recv_consumption_window_closes_on_next_recv() {
        let mut c = ctx();
        let buf = c.register_buffer("b", 8, 8);
        let read = Kernel::builder()
            .phase(Instr::new(10))
            .access(buf, AccessKind::Read, IndexPattern::Sequential)
            .build();
        c.recv(Rank::new(1), buf, Tag::new(0)).unwrap();
        c.kernel(&read);
        c.recv(Rank::new(1), buf, Tag::new(0)).unwrap();
        c.kernel(&read);
        let (_, meta) = c.finish().unwrap();
        // First recv consumed at t=10 (during first read kernel).
        let c0 = meta.recvs[0].consumption.as_ref().unwrap();
        assert_eq!(c0.first_needed_at(), Some(Instr::new(10)));
        // Second recv consumed at t=20.
        let c1 = meta.recvs[1].consumption.as_ref().unwrap();
        assert_eq!(c1.first_needed_at(), Some(Instr::new(20)));
    }

    #[test]
    fn isend_wait_pairs() {
        let mut c = ctx();
        let buf = c.register_buffer("b", 8, 8);
        let h = c.isend(Rank::new(2), buf, Tag::new(1)).unwrap();
        c.compute(Instr::new(5));
        c.wait_send(h).unwrap();
        let (records, meta) = c.finish().unwrap();
        assert!(matches!(records[0], Record::ISend { .. }));
        assert!(matches!(records[2], Record::Wait { .. }));
        assert_eq!(meta.sends[0].wait_record_idx, Some(2));
    }

    #[test]
    fn irecv_consumption_opens_at_wait() {
        let mut c = ctx();
        let buf = c.register_buffer("b", 8, 8);
        let read = Kernel::builder()
            .phase(Instr::new(10))
            .access(buf, AccessKind::Read, IndexPattern::Sequential)
            .build();
        let h = c.irecv(Rank::new(1), buf, Tag::new(0)).unwrap();
        c.compute(Instr::new(100));
        c.wait_recv(h).unwrap();
        c.kernel(&read);
        let (_, meta) = c.finish().unwrap();
        let m = &meta.recvs[0];
        assert_eq!(m.complete_instant, Instr::new(100));
        assert_eq!(m.wait_record_idx, Some(2));
        assert_eq!(
            m.consumption.as_ref().unwrap().first_needed_at(),
            Some(Instr::new(110))
        );
    }

    #[test]
    fn dangling_request_fails_finish() {
        let mut c = ctx();
        let buf = c.register_buffer("b", 8, 8);
        let _h = c.isend(Rank::new(1), buf, Tag::new(0)).unwrap();
        assert!(matches!(
            c.finish(),
            Err(TraceError::DanglingRequests { count: 1, .. })
        ));
    }

    #[test]
    fn double_wait_fails() {
        let mut c = ctx();
        let buf = c.register_buffer("b", 8, 8);
        let h = c.isend(Rank::new(1), buf, Tag::new(0)).unwrap();
        c.wait_send(h).unwrap();
        assert!(matches!(
            c.wait_send(h),
            Err(TraceError::UnknownRequest { .. })
        ));
    }

    #[test]
    fn peer_validation() {
        let mut c = ctx();
        let buf = c.register_buffer("b", 8, 8);
        assert!(matches!(
            c.send(Rank::new(9), buf, Tag::new(0)),
            Err(TraceError::PeerOutOfRange { .. })
        ));
        assert!(matches!(
            c.send(Rank::new(0), buf, Tag::new(0)),
            Err(TraceError::SelfMessage { .. })
        ));
        assert!(matches!(
            c.send_bytes(Rank::new(1), 0, Tag::new(0)),
            Err(TraceError::EmptyMessage { .. })
        ));
    }

    #[test]
    fn channel_seq_counts_per_peer_and_tag() {
        let mut c = ctx();
        let buf = c.register_buffer("b", 8, 8);
        c.send(Rank::new(1), buf, Tag::new(0)).unwrap();
        c.send(Rank::new(1), buf, Tag::new(0)).unwrap();
        c.send(Rank::new(1), buf, Tag::new(1)).unwrap();
        c.send(Rank::new(2), buf, Tag::new(0)).unwrap();
        let (_, meta) = c.finish().unwrap();
        let seqs: Vec<u32> = meta.sends.iter().map(|s| s.channel_seq).collect();
        assert_eq!(seqs, vec![0, 1, 0, 0]);
    }

    #[test]
    fn collectives_and_markers_record() {
        let mut c = ctx();
        c.barrier();
        c.allreduce(8);
        c.bcast(Rank::new(0), 100);
        c.reduce(Rank::new(1), 100);
        c.alltoall(64);
        c.allgather(32);
        c.marker(7);
        let (records, _) = c.finish().unwrap();
        assert_eq!(records.len(), 7);
        assert!(records[6] == Record::Marker { code: 7 });
    }
}
