//! The application-model interface.

use ovlsim_core::MipsRate;

use crate::context::TraceContext;
use crate::error::TraceError;

/// An application model traceable by the environment.
///
/// Implementations describe, per rank, the sequence of compute kernels and
/// MPI operations the application performs. The tracing tool executes
/// [`Application::run`] once per rank under virtual instrumentation — the
/// stand-in for "each process running on its own Valgrind virtual machine".
///
/// Implementations must be deterministic: the trace of rank `r` may depend
/// only on `r`, the communicator size and the model's own parameters.
///
/// # Example
///
/// A two-rank ping-pong:
///
/// ```
/// use ovlsim_core::{Instr, MipsRate, Rank, Tag};
/// use ovlsim_tracer::{Application, TraceContext, TraceError};
///
/// struct PingPong;
///
/// impl Application for PingPong {
///     fn name(&self) -> &str { "ping-pong" }
///     fn ranks(&self) -> usize { 2 }
///
///     fn run(&self, rank: Rank, ctx: &mut TraceContext) -> Result<(), TraceError> {
///         let buf = ctx.register_buffer("payload", 1024, 8);
///         if rank.index() == 0 {
///             ctx.compute(Instr::new(1000));
///             ctx.send(Rank::new(1), buf, Tag::new(0))?;
///             ctx.recv(Rank::new(1), buf, Tag::new(1))?;
///         } else {
///             ctx.recv(Rank::new(0), buf, Tag::new(0))?;
///             ctx.compute(Instr::new(1000));
///             ctx.send(Rank::new(0), buf, Tag::new(1))?;
///         }
///         Ok(())
///     }
/// }
///
/// assert_eq!(PingPong.ranks(), 2);
/// ```
///
/// `Sync` is a supertrait so the experiment harness (`ovlsim-lab`) can fan
/// app×platform combinations out across threads; models are parameter
/// structs read-only during tracing, so this costs implementations
/// nothing.
pub trait Application: Sync {
    /// A short machine-friendly name used in trace names and reports.
    fn name(&self) -> &str;

    /// Number of ranks the application runs on (must be ≥ 1).
    fn ranks(&self) -> usize;

    /// The average MIPS rate scaling instruction counts into time
    /// (defaults to 1000 MIPS, i.e. 1 ns per instruction).
    fn mips(&self) -> MipsRate {
        MipsRate::new(1000).expect("1000 MIPS is valid")
    }

    /// Executes the model for one rank, issuing compute and communication
    /// through the context.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] if the model issues an invalid operation
    /// (peer out of range, zero-byte message, unknown request, …).
    fn run(&self, rank: ovlsim_core::Rank, ctx: &mut TraceContext) -> Result<(), TraceError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;

    impl Application for Nop {
        fn name(&self) -> &str {
            "nop"
        }
        fn ranks(&self) -> usize {
            1
        }
        fn run(&self, _rank: ovlsim_core::Rank, _ctx: &mut TraceContext) -> Result<(), TraceError> {
            Ok(())
        }
    }

    #[test]
    fn default_mips_is_1000() {
        assert_eq!(Nop.mips().get(), 1000);
    }
}
