//! The tracing tool of `ovlsim`: runs an application model under virtual
//! instrumentation and generates the original plus overlapped traces.
//!
//! Mirrors the tool described in §II of the paper: "The tool traces the
//! original application and extracts the trace of the original
//! (non-overlapped) execution, while at the same time, it generates what
//! would be the trace of the potential (overlapped) execution."
//!
//! * [`Application`] — the model interface ("an MPI application executes in
//!   parallel, with each process running on its own Valgrind virtual
//!   machine" — here, each rank runs once under a [`TraceContext`]),
//! * [`TraceContext`] — records bursts, p2p and collective operations, and
//!   drives the memory instrumentation,
//! * [`ChunkingPolicy`] — how messages are partitioned into chunks,
//! * [`overlap_rank`]/[`OverlapMode`] — the transform that injects partial
//!   sends at production points and partial waits at consumption points,
//!   for real or linear patterns and for each mechanism subset,
//! * [`TracingSession`]/[`TraceBundle`] — one-call orchestration producing
//!   every trace variant from a single traced run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod app;
mod chunking;
mod context;
mod error;
mod plan;
mod session;
mod transform;

pub use app::Application;
pub use chunking::{ChunkKind, ChunkingPolicy};
pub use context::{RankMeta, RecvHandle, RecvMeta, SendHandle, SendMeta, TraceContext};
pub use error::TraceError;
pub use plan::{ChannelTuning, OverlapPlan, DEFAULT_PLAN_CHUNKS};
pub use session::{TraceBundle, TracingSession};
pub use transform::{
    chunk_tag, overlap_rank, overlap_rank_tuned, Mechanisms, MsgTuning, OverlapMode, PatternSource,
    MAX_APP_TAG, MAX_CHANNEL_SEQ, MAX_CHUNKS_PER_MESSAGE, TUNING_SCALE,
};
