//! Tracing errors.

use std::error::Error;
use std::fmt;

use ovlsim_core::{Rank, TraceIssue};

/// Errors produced while tracing an application or transforming its trace.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceError {
    /// The application declared an invalid rank count.
    InvalidRankCount(usize),
    /// A rank referenced a peer outside the communicator.
    PeerOutOfRange {
        /// The rank that issued the operation.
        rank: Rank,
        /// The referenced peer.
        peer: Rank,
        /// Communicator size.
        size: usize,
    },
    /// A rank attempted to communicate with itself.
    SelfMessage {
        /// The offending rank.
        rank: Rank,
    },
    /// A zero-byte message was issued (not supported by the model).
    EmptyMessage {
        /// The offending rank.
        rank: Rank,
    },
    /// A wait was issued for a request that is not outstanding.
    UnknownRequest {
        /// The offending rank.
        rank: Rank,
    },
    /// Some requests were still outstanding when the rank finished.
    DanglingRequests {
        /// The offending rank.
        rank: Rank,
        /// Number of unwaited requests.
        count: usize,
    },
    /// The generated trace set failed structural validation.
    InvalidTrace {
        /// Name of the trace variant that failed.
        variant: String,
        /// The first few issues found.
        issues: Vec<TraceIssue>,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::InvalidRankCount(n) => {
                write!(f, "application must declare at least one rank, got {n}")
            }
            TraceError::PeerOutOfRange { rank, peer, size } => {
                write!(
                    f,
                    "{rank} references peer {peer} outside communicator of {size}"
                )
            }
            TraceError::SelfMessage { rank } => {
                write!(f, "{rank} attempted to send a message to itself")
            }
            TraceError::EmptyMessage { rank } => {
                write!(f, "{rank} issued a zero-byte message")
            }
            TraceError::UnknownRequest { rank } => {
                write!(f, "{rank} waited on a request that is not outstanding")
            }
            TraceError::DanglingRequests { rank, count } => {
                write!(f, "{rank} finished with {count} unwaited requests")
            }
            TraceError::InvalidTrace { variant, issues } => {
                write!(f, "trace variant `{variant}` failed validation: ")?;
                for (i, issue) in issues.iter().take(3).enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{issue}")?;
                }
                if issues.len() > 3 {
                    write!(f, "; … and {} more", issues.len() - 3)?;
                }
                Ok(())
            }
        }
    }
}

impl Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TraceError::PeerOutOfRange {
            rank: Rank::new(1),
            peer: Rank::new(9),
            size: 4,
        };
        let s = format!("{e}");
        assert!(s.contains("r1") && s.contains("r9") && s.contains('4'));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<TraceError>();
    }
}
