//! Property tests for chunking and chunk-tag encoding.

use ovlsim_core::Tag;
use ovlsim_tracer::{chunk_tag, ChunkingPolicy, MAX_CHUNKS_PER_MESSAGE};
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = ChunkingPolicy> {
    prop_oneof![
        (1usize..200).prop_map(ChunkingPolicy::fixed_count),
        (1u64..1_000_000).prop_map(ChunkingPolicy::fixed_bytes),
        (1u64..1_000_000).prop_map(ChunkingPolicy::doubling),
    ]
    .prop_flat_map(|p| (Just(p), 1u64..100_000))
    .prop_map(|(p, min)| p.with_min_chunk_bytes(min))
}

proptest! {
    /// Chunk ranges partition `0..total` exactly: contiguous, non-empty,
    /// covering.
    #[test]
    fn chunks_partition_message(policy in arb_policy(), total in 0u64..100_000_000) {
        let ranges = policy.chunk_ranges(total);
        if total == 0 {
            prop_assert!(ranges.is_empty());
        } else {
            prop_assert_eq!(ranges.first().unwrap().start, 0);
            prop_assert_eq!(ranges.last().unwrap().end, total);
            for w in ranges.windows(2) {
                prop_assert_eq!(w[0].end, w[1].start);
            }
            for r in &ranges {
                prop_assert!(r.start < r.end);
            }
            prop_assert_eq!(ranges.len(), policy.chunk_count(total));
        }
    }

    /// The minimum chunk size is honoured by every chunk except possibly
    /// the last (fixed-bytes remainder), and a message below the minimum
    /// forms exactly one chunk.
    #[test]
    fn min_chunk_size_honoured(policy in arb_policy(), total in 1u64..10_000_000) {
        let min = policy.min_chunk_bytes();
        let ranges = policy.chunk_ranges(total);
        if total <= min {
            prop_assert_eq!(ranges.len(), 1);
        }
        for r in ranges.iter().take(ranges.len().saturating_sub(1)) {
            // Fixed-count splitting may undershoot by rounding, but never
            // below half the minimum (total/n >= min guarantees avg >= min;
            // per-chunk deviation is at most 1 byte for fixed-count).
            prop_assert!(
                r.end - r.start + 1 >= min.min(total) / 2,
                "chunk {r:?} far below minimum {min}"
            );
        }
    }

    /// Chunk tags are injective over (tag, seq, chunk) triples and always
    /// carry the chunk marker bit.
    #[test]
    fn chunk_tags_injective(
        a in (0u64..1 << 20, 0u32..1 << 23, 0usize..MAX_CHUNKS_PER_MESSAGE),
        b in (0u64..1 << 20, 0u32..1 << 23, 0usize..MAX_CHUNKS_PER_MESSAGE),
    ) {
        let ta = chunk_tag(Tag::new(a.0), a.1, a.2);
        let tb = chunk_tag(Tag::new(b.0), b.1, b.2);
        prop_assert_eq!(a == b, ta == tb);
        prop_assert!(ta.get() >> 63 == 1);
        // Chunk tags never collide with plain application tags.
        prop_assert!(ta.get() > (1 << 20));
    }
}
