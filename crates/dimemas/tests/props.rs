//! Property tests for the replay simulator and the text trace format.

use ovlsim_core::{
    Instr, MipsRate, PerturbationModel, Platform, Rank, RankTrace, Record, RequestId, Tag, Time,
    TraceSet,
};
use ovlsim_dimemas::{
    emit_trace_set, parse_trace_set, DepEdge, ReplayObserver, Simulator, WaitCause,
};
use proptest::prelude::*;

/// Generates an arbitrary *structurally valid* two-rank trace: rank 0
/// sends a stream of messages interleaved with bursts; rank 1 receives
/// them in order, interleaved with its own bursts.
fn arb_paired_trace() -> impl Strategy<Value = TraceSet> {
    (
        proptest::collection::vec((1u64..500_000, 1u64..200_000), 1..20),
        proptest::collection::vec(1u64..500_000, 1..20),
        1u64..5_000,
    )
        .prop_map(|(sends, recv_bursts, mips)| {
            let mut r0 = Vec::new();
            let mut r1 = Vec::new();
            for (i, (burst, bytes)) in sends.iter().enumerate() {
                r0.push(Record::Burst {
                    instr: Instr::new(*burst),
                });
                r0.push(Record::Send {
                    to: Rank::new(1),
                    bytes: *bytes,
                    tag: Tag::new(0),
                });
                if let Some(b) = recv_bursts.get(i % recv_bursts.len()) {
                    r1.push(Record::Burst {
                        instr: Instr::new(*b),
                    });
                }
                r1.push(Record::Recv {
                    from: Rank::new(0),
                    bytes: *bytes,
                    tag: Tag::new(0),
                });
            }
            r0.push(Record::Barrier);
            r1.push(Record::Barrier);
            TraceSet::new(
                "prop",
                MipsRate::new(mips).unwrap(),
                vec![RankTrace::from_records(r0), RankTrace::from_records(r1)],
            )
        })
}

/// A four-rank trace whose messages deliberately mix same-node and
/// cross-node channels under `ranks_per_node > 1`: neighbour exchanges
/// (0<->1, 2<->3, intra when packed two per node) interleaved with stride-2
/// traffic (0->2, 1->3, always inter-node), closed by a barrier.
fn arb_multinode_trace() -> impl Strategy<Value = TraceSet> {
    (
        proptest::collection::vec((1u64..300_000, 1u64..150_000), 1..12),
        1u64..5_000,
    )
        .prop_map(|(rounds, mips)| {
            let mut ranks: Vec<Vec<Record>> = vec![Vec::new(); 4];
            for (i, (burst, bytes)) in rounds.iter().enumerate() {
                let tag = Tag::new(i as u64);
                for (r, rank) in ranks.iter_mut().enumerate() {
                    rank.push(Record::Burst {
                        instr: Instr::new(*burst + r as u64),
                    });
                }
                // Neighbour pairs: 0->1 and 2->3 (intra-node at rpn=2).
                ranks[0].push(Record::Send {
                    to: Rank::new(1),
                    bytes: *bytes,
                    tag,
                });
                ranks[1].push(Record::Recv {
                    from: Rank::new(0),
                    bytes: *bytes,
                    tag,
                });
                ranks[2].push(Record::Send {
                    to: Rank::new(3),
                    bytes: *bytes,
                    tag,
                });
                ranks[3].push(Record::Recv {
                    from: Rank::new(2),
                    bytes: *bytes,
                    tag,
                });
                // Stride-2 pair: 0->2 (inter-node at every packing < 4).
                if i % 2 == 0 {
                    ranks[0].push(Record::Send {
                        to: Rank::new(2),
                        bytes: *bytes,
                        tag,
                    });
                    ranks[2].push(Record::Recv {
                        from: Rank::new(0),
                        bytes: *bytes,
                        tag,
                    });
                }
            }
            for r in &mut ranks {
                r.push(Record::Barrier);
            }
            TraceSet::new(
                "prop-multinode",
                MipsRate::new(mips).unwrap(),
                ranks.into_iter().map(RankTrace::from_records).collect(),
            )
        })
}

/// Hierarchical platforms: multicore nodes, intra-node parameters and an
/// optionally finite intra-node port count.
fn arb_hier_platform() -> impl Strategy<Value = Platform> {
    (
        0u64..50,         // latency us
        1.0e6f64..1.0e10, // bandwidth
        prop_oneof![Just(None), (1u32..4).prop_map(Some)],
        1u32..5,          // ranks per node (1..=4 over a 4-rank trace)
        1.0e8f64..1.0e11, // intra-node bandwidth
        prop_oneof![Just(None), (1u32..3).prop_map(Some)],
        0u64..500_000, // eager threshold
    )
        .prop_map(|(lat, bw, buses, rpn, intra_bw, intra_links, eager)| {
            let mut b = Platform::builder();
            b.latency(Time::from_us(lat))
                .bandwidth_bytes_per_sec(bw)
                .expect("positive")
                .buses(buses)
                .ranks_per_node(rpn)
                .expect("positive packing")
                .intra_node_latency(Time::from_ns(300))
                .intra_node_bandwidth(
                    ovlsim_core::Bandwidth::from_bytes_per_sec(intra_bw).expect("positive"),
                )
                .intra_node_links(intra_links)
                .eager_threshold(eager);
            b.build()
        })
}

/// An arbitrary perturbation model spanning every axis — seeded OS noise,
/// straggler ranks, heterogeneous node speeds, link degradation, latency
/// jitter and transient link faults — with each axis individually
/// switchable, so identity, single-axis and fully-stacked models are all
/// fuzzed.
fn arb_perturbation() -> impl Strategy<Value = PerturbationModel> {
    (
        any::<u64>(),                         // seed
        prop_oneof![Just(0.0), 0.01f64..0.5], // noise level
        prop_oneof![
            Just(None),
            (proptest::collection::vec(0u32..4, 1..3), 1.1f64..3.0).prop_map(Some)
        ],
        prop_oneof![
            Just(None),
            proptest::collection::vec(0.5f64..2.0, 1..3).prop_map(Some)
        ],
        prop_oneof![Just(0.0), 0.01f64..0.8], // link degradation
        0u64..3_000,                          // latency jitter ns
        prop_oneof![Just(None), (50u64..500, 1u64..40).prop_map(Some)], // fault period/down us
    )
        .prop_map(
            |(seed, noise, stragglers, speeds, degradation, jitter, faults)| {
                let mut m = PerturbationModel::new(seed);
                if noise > 0.0 {
                    m = m.with_noise(noise).expect("valid noise");
                }
                if let Some((ranks, slowdown)) = stragglers {
                    // Duplicates are fine: the model sorts and dedups.
                    m = m
                        .with_stragglers(&ranks, slowdown)
                        .expect("valid stragglers");
                }
                if let Some(speeds) = speeds {
                    m = m.with_node_speeds(&speeds).expect("valid speeds");
                }
                if degradation > 0.0 {
                    m = m
                        .with_link_degradation(degradation)
                        .expect("valid degradation");
                }
                if jitter > 0 {
                    m = m.with_latency_jitter(Time::from_ns(jitter));
                }
                if let Some((period, down)) = faults {
                    m = m
                        .with_faults(Time::from_us(period), Time::from_us(down))
                        .expect("valid faults");
                }
                m
            },
        )
}

fn arb_platform() -> impl Strategy<Value = Platform> {
    (
        0u64..100,        // latency us
        1.0e5f64..1.0e11, // bandwidth
        prop_oneof![Just(None), (1u32..8).prop_map(Some)],
        1u32..4,
        0u64..1_000_000, // eager threshold
        0u64..20,        // overheads us
    )
        .prop_map(|(lat, bw, buses, links, eager, oh)| {
            let mut b = Platform::builder();
            b.latency(Time::from_us(lat))
                .bandwidth_bytes_per_sec(bw)
                .expect("positive")
                .buses(buses)
                .input_links(links)
                .output_links(links)
                .eager_threshold(eager)
                .send_overhead(Time::from_us(oh))
                .recv_overhead(Time::from_us(oh));
            b.build()
        })
}

/// A two-rank trace built from non-blocking operations: rank 0 isends a
/// batch of messages on distinct tags and waits for all of them; rank 1
/// irecvs them (interleaved with bursts) and waits; both close with a
/// collective. Wait-sets larger than the inline request-group capacity are
/// common, exercising the spill path.
fn arb_nonblocking_trace() -> impl Strategy<Value = TraceSet> {
    (
        proptest::collection::vec((1u64..300_000, 1u64..150_000), 1..14),
        1u64..5_000,
    )
        .prop_map(|(msgs, mips)| {
            let mut r0 = Vec::new();
            let mut r1 = Vec::new();
            let mut reqs0 = Vec::new();
            let mut reqs1 = Vec::new();
            for (i, (burst, bytes)) in msgs.iter().enumerate() {
                let req = RequestId::new(i as u32);
                r0.push(Record::Burst {
                    instr: Instr::new(*burst),
                });
                r0.push(Record::ISend {
                    to: Rank::new(1),
                    bytes: *bytes,
                    tag: Tag::new(i as u64),
                    req,
                });
                reqs0.push(req);
                r1.push(Record::IRecv {
                    from: Rank::new(0),
                    bytes: *bytes,
                    tag: Tag::new(i as u64),
                    req,
                });
                reqs1.push(req);
                if i % 3 == 0 {
                    r1.push(Record::Burst {
                        instr: Instr::new(*burst / 2 + 1),
                    });
                }
            }
            r0.push(Record::WaitAll { reqs: reqs0 });
            r1.push(Record::WaitAll { reqs: reqs1 });
            r0.push(Record::AllReduce { bytes: 64 });
            r1.push(Record::AllReduce { bytes: 64 });
            TraceSet::new(
                "prop-nb",
                MipsRate::new(mips).unwrap(),
                vec![RankTrace::from_records(r0), RankTrace::from_records(r1)],
            )
        })
}

/// Splits `total` instructions into `parts` bursts whose counts sum to
/// `total` exactly.
fn split_instr(total: u64, parts: u64) -> Vec<Record> {
    let parts = parts.max(1).min(total.max(1));
    let each = total / parts;
    let mut out: Vec<Record> = (0..parts.saturating_sub(1))
        .map(|_| Record::Burst {
            instr: Instr::new(each),
        })
        .collect();
    out.push(Record::Burst {
        instr: Instr::new(total - each * parts.saturating_sub(1)),
    });
    out
}

/// A four-rank trace engineered to stress the compiled engine's burst
/// coalescing: every round gives all ranks the **same total compute** but
/// *different adjacent-burst splits* (so compiled runs coalesce where the
/// uncompiled engines step burst-by-burst, while message-readiness ties at
/// identical instants still abound), then exchanges messages on a mix of
/// neighbour (intra-node when packed) and stride-2 (inter-node) channels —
/// blocking on even rounds, isend/irecv + wait/waitall with *reused*
/// request ids on odd rounds (exercising compile-time slot reuse) — and
/// sprinkles markers and a rotating collective.
fn arb_bursty_trace() -> impl Strategy<Value = TraceSet> {
    (
        proptest::collection::vec((1u64..300_000, 1u64..150_000, 0u8..3), 1..8),
        1u64..5_000,
    )
        .prop_map(|(rounds, mips)| {
            let mut ranks: Vec<Vec<Record>> = vec![Vec::new(); 4];
            for (i, (total, bytes, coll)) in rounds.iter().enumerate() {
                let tag = Tag::new(i as u64);
                for (r, rank) in ranks.iter_mut().enumerate() {
                    // Same total, different split: ranks reach the round's
                    // sends at the same instant via different burst runs.
                    rank.extend(split_instr(*total, 1 + ((r + i) % 3) as u64));
                    if r == i % 4 {
                        rank.push(Record::Marker { code: i as u32 });
                    }
                }
                if i % 2 == 0 {
                    // Blocking neighbour exchange: 0->1 and 2->3.
                    for (s, d) in [(0usize, 1usize), (2, 3)] {
                        ranks[s].push(Record::Send {
                            to: Rank::new(d as u32),
                            bytes: *bytes,
                            tag,
                        });
                        ranks[d].push(Record::Recv {
                            from: Rank::new(s as u32),
                            bytes: *bytes,
                            tag,
                        });
                    }
                } else {
                    // Non-blocking stride-2 exchange with request ids
                    // reused every round (0 on the send side, 1 on the
                    // receive side): 0->2 and 1->3.
                    for (s, d) in [(0usize, 2usize), (1, 3)] {
                        ranks[s].push(Record::ISend {
                            to: Rank::new(d as u32),
                            bytes: *bytes,
                            tag,
                            req: RequestId::new(0),
                        });
                        ranks[d].push(Record::IRecv {
                            from: Rank::new(s as u32),
                            bytes: *bytes,
                            tag,
                            req: RequestId::new(1),
                        });
                        // A little compute between post and wait so the
                        // transfer can overlap.
                        ranks[s].push(Record::Burst {
                            instr: Instr::new(*total / 2 + 1),
                        });
                        ranks[d].push(Record::Burst {
                            instr: Instr::new(*total / 3 + 1),
                        });
                        ranks[s].push(Record::Wait {
                            req: RequestId::new(0),
                        });
                        ranks[d].push(Record::WaitAll {
                            reqs: vec![RequestId::new(1)],
                        });
                    }
                }
                if i % 3 == 2 {
                    let rec = match coll {
                        0 => Record::Barrier,
                        1 => Record::AllReduce { bytes: *bytes },
                        _ => Record::AllGather { bytes: *bytes },
                    };
                    for rank in &mut ranks {
                        rank.push(rec.clone());
                    }
                }
            }
            for rank in &mut ranks {
                rank.push(Record::Barrier);
            }
            TraceSet::new(
                "prop-bursty",
                MipsRate::new(mips).unwrap(),
                ranks.into_iter().map(RankTrace::from_records).collect(),
            )
        })
}

/// One recorded attribution callback: `(start, end, cause, edge)`.
type AttrEntry = (Time, Time, WaitCause, Option<DepEdge>);

/// Records every attributed interval per rank, plus finish times.
#[derive(Default, Debug, PartialEq, Eq)]
struct AttrCapture {
    per_rank: Vec<Vec<AttrEntry>>,
    finish: Vec<Time>,
}

impl AttrCapture {
    fn new(ranks: usize) -> Self {
        AttrCapture {
            per_rank: vec![Vec::new(); ranks],
            finish: vec![Time::ZERO; ranks],
        }
    }
}

impl ReplayObserver for AttrCapture {
    fn attributed(
        &mut self,
        rank: Rank,
        start: Time,
        end: Time,
        cause: WaitCause,
        edge: Option<DepEdge>,
    ) {
        self.per_rank[rank.index()].push((start, end, cause, edge));
    }
    fn finished(&mut self, rank: Rank, at: Time) {
        self.finish[rank.index()] = at;
    }
}

/// The conservation property: per rank, attributed intervals are
/// disjoint, gapless, in order, and their durations sum exactly to the
/// rank's finish time (and the makespan for the slowest rank).
fn assert_conserved(cap: &AttrCapture, trace: &TraceSet, total: Time) -> Result<(), TestCaseError> {
    let channel_count = ovlsim_core::TraceIndex::build(trace)
        .expect("valid")
        .channel_count() as u32;
    let mut max_finish = Time::ZERO;
    for (r, ivs) in cap.per_rank.iter().enumerate() {
        let finish = cap.finish[r];
        max_finish = max_finish.max(finish);
        let mut cursor = Time::ZERO;
        let mut sum = Time::ZERO;
        for &(start, end, cause, _) in ivs {
            prop_assert_eq!(
                start,
                cursor,
                "rank {} interval starts at {} but previous ended at {}",
                r,
                start,
                cursor
            );
            prop_assert!(end > start, "rank {r}: zero-length interval emitted");
            if let Some(chan) = cause.channel() {
                prop_assert!(chan < channel_count, "rank {r}: dangling channel {chan}");
            }
            sum += end - start;
            cursor = end;
        }
        prop_assert_eq!(
            cursor,
            finish,
            "rank {}'s intervals end at {} but it finished at {}",
            r,
            cursor,
            finish
        );
        prop_assert_eq!(sum, finish, "rank {}'s durations do not sum up", r);
    }
    prop_assert_eq!(max_finish, total, "finish times disagree with makespan");
    Ok(())
}

/// Captures attribution through the prepared and the observed-compiled
/// engines, asserts the conservation property on both, and asserts the
/// two streams are **identical** (same intervals, causes and edges).
fn assert_attribution_conserved(
    trace: &TraceSet,
    platform: &Platform,
) -> Result<(), TestCaseError> {
    let index = ovlsim_core::TraceIndex::build(trace).expect("valid");
    let sim = Simulator::new(platform.clone());

    let mut prepared_cap = AttrCapture::new(trace.rank_count());
    let prepared = sim
        .run_prepared_observed(trace, &index, &mut prepared_cap)
        .expect("replays");
    assert_conserved(&prepared_cap, trace, prepared.total_time())?;

    let prog = ovlsim_core::CompiledTrace::compile_observed(trace, &index).expect("compiles");
    let mut compiled_cap = AttrCapture::new(trace.rank_count());
    let compiled = sim
        .run_compiled_observed(&prog, &mut compiled_cap)
        .expect("replays");
    assert_conserved(&compiled_cap, trace, compiled.total_time())?;

    prop_assert_eq!(&prepared, &compiled, "engines disagree on the result");
    prop_assert_eq!(
        prepared_cap,
        compiled_cap,
        "prepared and compiled attribution streams diverged"
    );
    Ok(())
}

/// Runs all five replay engines and asserts bit-identical results.
fn assert_engines_agree(trace: &TraceSet, platform: &Platform) -> Result<(), TestCaseError> {
    let index = ovlsim_core::TraceIndex::build(trace).expect("valid");
    let prog = ovlsim_core::CompiledTrace::compile(trace, &index).expect("compiles");
    let sim = Simulator::new(platform.clone());
    let naive = ovlsim_dimemas::replay_naive(platform, trace).expect("replays");
    let validated = sim.run(trace).expect("replays");
    let prepared = sim.run_prepared(trace, &index).expect("replays");
    let compiled = sim.run_compiled(&prog).expect("replays");
    let fastforward = sim.run_fastforward(&prog).expect("replays");
    prop_assert_eq!(&naive, &validated, "validating engine diverged");
    prop_assert_eq!(&naive, &prepared, "prepared engine diverged");
    prop_assert_eq!(&naive, &compiled, "compiled engine diverged");
    prop_assert_eq!(&naive, &fastforward, "fastforward engine diverged");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any structurally valid paired trace replays to completion on any
    /// platform, is deterministic, and respects the compute lower bound.
    #[test]
    fn replay_total(trace in arb_paired_trace(), platform in arb_platform()) {
        let sim = Simulator::new(platform);
        let a = sim.run(&trace).expect("valid traces replay");
        let b = sim.run(&trace).expect("valid traces replay");
        prop_assert_eq!(&a, &b, "replay must be deterministic");
        for (finish, compute) in a.rank_finish().iter().zip(a.rank_compute()) {
            prop_assert!(finish >= compute);
        }
        prop_assert_eq!(a.p2p_messages() as usize,
            trace.ranks()[0].records().iter()
                .filter(|r| matches!(r, Record::Send { .. })).count());
    }

    /// The optimized hot path (interned channels, small-vec wait groups,
    /// slab event queue) produces results identical to the naive
    /// reference engine on blocking traces — makespan, per-rank times,
    /// message/byte counts, network statistics, everything.
    #[test]
    fn optimized_replay_matches_naive(
        trace in arb_paired_trace(),
        platform in arb_platform(),
    ) {
        let optimized = Simulator::new(platform.clone())
            .run(&trace)
            .expect("valid traces replay");
        let naive = ovlsim_dimemas::replay_naive(&platform, &trace)
            .expect("valid traces replay");
        prop_assert_eq!(optimized, naive);
    }

    /// Same differential check on non-blocking traces (isend/irecv with
    /// large wait-sets), which stress the request-group machinery.
    #[test]
    fn optimized_replay_matches_naive_nonblocking(
        trace in arb_nonblocking_trace(),
        platform in arb_platform(),
    ) {
        let optimized = Simulator::new(platform.clone())
            .run(&trace)
            .expect("valid traces replay");
        let naive = ovlsim_dimemas::replay_naive(&platform, &trace)
            .expect("valid traces replay");
        prop_assert_eq!(optimized, naive);
    }

    /// Node-aware routing: on hierarchical platforms (`ranks_per_node > 1`,
    /// intra-node parameters, optionally finite intra-node ports) the
    /// naive reference, the validating entry point and the prepared hot
    /// path produce bit-identical `ReplayResult`s — the per-channel
    /// intra/inter precomputation cannot drift from the per-transfer
    /// classification.
    #[test]
    fn multinode_replay_is_identical_across_all_engines(
        trace in arb_multinode_trace(),
        platform in arb_hier_platform(),
    ) {
        let index = ovlsim_core::TraceIndex::build(&trace).expect("valid");
        let sim = Simulator::new(platform.clone());
        let validated = sim.run(&trace).expect("replays");
        let prepared = sim.run_prepared(&trace, &index).expect("replays");
        let naive = ovlsim_dimemas::replay_naive(&platform, &trace)
            .expect("replays");
        prop_assert_eq!(&validated, &prepared, "prepared diverged");
        prop_assert_eq!(&validated, &naive, "naive diverged");
    }

    /// A prebuilt index replayed at any bandwidth matches the validating
    /// entry point bit for bit.
    #[test]
    fn prepared_replay_matches_validating_replay(
        trace in arb_nonblocking_trace(),
        platform in arb_platform(),
    ) {
        let index = ovlsim_core::TraceIndex::build(&trace).expect("valid");
        let sim = Simulator::new(platform);
        let validated = sim.run(&trace).expect("replays");
        let prepared = sim.run_prepared(&trace, &index).expect("replays");
        prop_assert_eq!(validated, prepared);
    }

    /// The compiled engine (flat SoA program, coalesced burst runs,
    /// pre-resolved request slots) is bit-identical to every other engine
    /// on traces full of adjacent-burst runs and same-instant ties, on
    /// flat platforms with finite buses/links and overheads.
    #[test]
    fn compiled_replay_matches_all_engines_flat(
        trace in arb_bursty_trace(),
        platform in arb_platform(),
    ) {
        assert_engines_agree(&trace, &platform)?;
    }

    /// Same four-way differential on hierarchical (multicore-node)
    /// platforms: mixed intra-/inter-node channels, finite intra-node
    /// ports, and node-aware collectives.
    #[test]
    fn compiled_replay_matches_all_engines_multicore(
        trace in arb_bursty_trace(),
        platform in arb_hier_platform(),
    ) {
        assert_engines_agree(&trace, &platform)?;
    }

    /// The multinode generator from PR 2, run through the compiled engine
    /// as well.
    #[test]
    fn compiled_replay_matches_on_multinode_traces(
        trace in arb_multinode_trace(),
        platform in arb_hier_platform(),
    ) {
        assert_engines_agree(&trace, &platform)?;
    }

    /// Non-blocking traces with large wait-sets (request-group spill paths)
    /// through the compiled engine.
    #[test]
    fn compiled_replay_matches_on_nonblocking_traces(
        trace in arb_nonblocking_trace(),
        platform in arb_platform(),
    ) {
        assert_engines_agree(&trace, &platform)?;
    }

    /// Conservation on flat platforms: every rank's cause-tagged intervals
    /// are disjoint, gapless and sum exactly to its finish time, with the
    /// prepared and observed-compiled engines emitting identical streams.
    /// Bursty traces cover blocking sends/recvs, request waits, reused
    /// request slots, markers, collectives and sender overheads.
    #[test]
    fn attribution_conserves_time_flat(
        trace in arb_bursty_trace(),
        platform in arb_platform(),
    ) {
        assert_attribution_conserved(&trace, &platform)?;
    }

    /// Conservation on hierarchical (multicore-node) platforms: mixed
    /// intra-/inter-node channels and finite intra-node ports, which
    /// exercise the contended-intra vs contended-inter cause split.
    #[test]
    fn attribution_conserves_time_multicore(
        trace in arb_bursty_trace(),
        platform in arb_hier_platform(),
    ) {
        assert_attribution_conserved(&trace, &platform)?;
    }

    /// Conservation on non-blocking traces with large wait-sets (the
    /// last-unblocker attribution path for `WaitAll`).
    #[test]
    fn attribution_conserves_time_nonblocking(
        trace in arb_nonblocking_trace(),
        platform in arb_platform(),
    ) {
        assert_attribution_conserved(&trace, &platform)?;
    }

    /// Tentpole guarantee: under any seeded perturbation (noise,
    /// stragglers, heterogeneous nodes, link degradation/jitter,
    /// transient link faults) all four engines stay bit-identical on
    /// flat platforms.
    #[test]
    fn perturbed_replay_is_identical_across_all_engines_flat(
        trace in arb_bursty_trace(),
        platform in arb_platform(),
        model in arb_perturbation(),
    ) {
        assert_engines_agree(&trace, &platform.with_perturbation(model))?;
    }

    /// Same four-way perturbed differential on hierarchical platforms,
    /// where intra-node channels must stay exempt from link perturbations
    /// in every engine.
    #[test]
    fn perturbed_replay_is_identical_across_all_engines_multicore(
        trace in arb_bursty_trace(),
        platform in arb_hier_platform(),
        model in arb_perturbation(),
    ) {
        assert_engines_agree(&trace, &platform.with_perturbation(model))?;
    }

    /// Attribution conservation survives perturbation: cause-tagged
    /// intervals (now including link-down holds) stay disjoint, gapless
    /// and sum to each rank's finish time, with the prepared and
    /// observed-compiled streams identical.
    #[test]
    fn perturbed_attribution_conserves_time(
        trace in arb_bursty_trace(),
        platform in arb_hier_platform(),
        model in arb_perturbation(),
    ) {
        assert_attribution_conserved(&trace, &platform.with_perturbation(model))?;
    }

    /// Latency monotonicity: increasing latency never speeds things up.
    #[test]
    fn latency_monotone(trace in arb_paired_trace(), extra_us in 1u64..1000) {
        let base = Platform::builder().latency(Time::from_us(1)).build();
        let slow = base.with_latency(Time::from_us(1 + extra_us));
        let t_base = Simulator::new(base).run(&trace).unwrap().total_time();
        let t_slow = Simulator::new(slow).run(&trace).unwrap().total_time();
        prop_assert!(t_slow >= t_base);
    }

    /// The text format round-trips arbitrary valid traces.
    #[test]
    fn format_roundtrip(trace in arb_paired_trace()) {
        let text = emit_trace_set(&trace);
        let back = parse_trace_set(&text).expect("emitted traces parse");
        prop_assert_eq!(trace, back);
    }

    /// Round-trip with the full record vocabulary (non-blocking ops,
    /// collectives, markers).
    #[test]
    fn format_roundtrip_full_vocabulary(
        bytes in 1u64..1_000_000,
        code in any::<u32>(),
        req in 0u32..1000,
    ) {
        let records = vec![
            Record::Burst { instr: Instr::new(bytes) },
            Record::ISend { to: Rank::new(1), bytes, tag: Tag::new(bytes), req: RequestId::new(req) },
            Record::Wait { req: RequestId::new(req) },
            Record::IRecv { from: Rank::new(1), bytes, tag: Tag::new(1), req: RequestId::new(req + 1) },
            Record::WaitAll { reqs: vec![RequestId::new(req + 1)] },
            Record::Barrier,
            Record::AllReduce { bytes },
            Record::Bcast { root: Rank::new(0), bytes },
            Record::Reduce { root: Rank::new(1), bytes },
            Record::AllToAll { bytes },
            Record::AllGather { bytes },
            Record::Marker { code },
        ];
        let ts = TraceSet::new(
            "vocab",
            MipsRate::new(1000).unwrap(),
            vec![RankTrace::from_records(records), RankTrace::new()],
        );
        let back = parse_trace_set(&emit_trace_set(&ts)).expect("parses");
        prop_assert_eq!(ts, back);
    }
}
