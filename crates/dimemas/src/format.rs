//! A line-oriented text format for trace sets (`.dim`-style).
//!
//! The paper's environment passes traces between the tracing tool and
//! Dimemas as files; this module provides the equivalent persistence with a
//! guaranteed round-trip (`parse(emit(t)) == t`).
//!
//! Format:
//!
//! ```text
//! # ovlsim trace v1
//! name nas-bt.original
//! mips 1000
//! ranks 2
//! rank 0
//! burst 12345
//! isend r1 4096 t7 req0
//! wait req0
//! end
//! rank 1
//! irecv r0 4096 t7 req0
//! wait req0
//! end
//! ```

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use ovlsim_core::{Instr, MipsRate, Rank, RankTrace, Record, RequestId, Tag, TraceSet};

/// Errors produced while parsing the text trace format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    line: usize,
    message: String,
}

impl ParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number of the error.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

/// Serializes a trace set to the text format.
pub fn emit_trace_set(ts: &TraceSet) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# ovlsim trace v1");
    let _ = writeln!(out, "name {}", ts.name());
    let _ = writeln!(out, "mips {}", ts.mips().get());
    let _ = writeln!(out, "ranks {}", ts.rank_count());
    for (r, trace) in ts.ranks().iter().enumerate() {
        let _ = writeln!(out, "rank {r}");
        for rec in trace.iter() {
            let _ = writeln!(out, "{rec}");
        }
        let _ = writeln!(out, "end");
    }
    out
}

fn parse_rank(tok: &str, line: usize) -> Result<Rank, ParseError> {
    tok.strip_prefix('r')
        .and_then(|s| s.parse::<u32>().ok())
        .map(Rank::new)
        .ok_or_else(|| ParseError::new(line, format!("expected rank like `r3`, got `{tok}`")))
}

fn parse_tag(tok: &str, line: usize) -> Result<Tag, ParseError> {
    tok.strip_prefix('t')
        .and_then(|s| s.parse::<u64>().ok())
        .map(Tag::new)
        .ok_or_else(|| ParseError::new(line, format!("expected tag like `t7`, got `{tok}`")))
}

fn parse_req(tok: &str, line: usize) -> Result<RequestId, ParseError> {
    tok.strip_prefix("req")
        .and_then(|s| s.parse::<u32>().ok())
        .map(RequestId::new)
        .ok_or_else(|| ParseError::new(line, format!("expected request like `req2`, got `{tok}`")))
}

fn parse_u64(tok: &str, line: usize, what: &str) -> Result<u64, ParseError> {
    tok.parse::<u64>()
        .map_err(|_| ParseError::new(line, format!("expected {what}, got `{tok}`")))
}

fn parse_record(line_no: usize, line: &str) -> Result<Record, ParseError> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    let err_arity = |n: usize| {
        ParseError::new(
            line_no,
            format!("`{}` expects {n} arguments: `{line}`", toks[0]),
        )
    };
    match toks.as_slice() {
        ["burst", n] => Ok(Record::Burst {
            instr: Instr::new(parse_u64(n, line_no, "instruction count")?),
        }),
        ["burst", ..] => Err(err_arity(1)),
        ["send", to, bytes, tag] => Ok(Record::Send {
            to: parse_rank(to, line_no)?,
            bytes: parse_u64(bytes, line_no, "byte count")?,
            tag: parse_tag(tag, line_no)?,
        }),
        ["send", ..] => Err(err_arity(3)),
        ["isend", to, bytes, tag, req] => Ok(Record::ISend {
            to: parse_rank(to, line_no)?,
            bytes: parse_u64(bytes, line_no, "byte count")?,
            tag: parse_tag(tag, line_no)?,
            req: parse_req(req, line_no)?,
        }),
        ["isend", ..] => Err(err_arity(4)),
        ["recv", from, bytes, tag] => Ok(Record::Recv {
            from: parse_rank(from, line_no)?,
            bytes: parse_u64(bytes, line_no, "byte count")?,
            tag: parse_tag(tag, line_no)?,
        }),
        ["recv", ..] => Err(err_arity(3)),
        ["irecv", from, bytes, tag, req] => Ok(Record::IRecv {
            from: parse_rank(from, line_no)?,
            bytes: parse_u64(bytes, line_no, "byte count")?,
            tag: parse_tag(tag, line_no)?,
            req: parse_req(req, line_no)?,
        }),
        ["irecv", ..] => Err(err_arity(4)),
        ["wait", req] => Ok(Record::Wait {
            req: parse_req(req, line_no)?,
        }),
        ["wait", ..] => Err(err_arity(1)),
        ["waitall", reqs @ ..] => Ok(Record::WaitAll {
            reqs: reqs
                .iter()
                .map(|r| parse_req(r, line_no))
                .collect::<Result<Vec<_>, _>>()?,
        }),
        ["barrier"] => Ok(Record::Barrier),
        ["allreduce", bytes] => Ok(Record::AllReduce {
            bytes: parse_u64(bytes, line_no, "byte count")?,
        }),
        ["bcast", root, bytes] => Ok(Record::Bcast {
            root: parse_rank(root, line_no)?,
            bytes: parse_u64(bytes, line_no, "byte count")?,
        }),
        ["reduce", root, bytes] => Ok(Record::Reduce {
            root: parse_rank(root, line_no)?,
            bytes: parse_u64(bytes, line_no, "byte count")?,
        }),
        ["alltoall", bytes] => Ok(Record::AllToAll {
            bytes: parse_u64(bytes, line_no, "byte count")?,
        }),
        ["allgather", bytes] => Ok(Record::AllGather {
            bytes: parse_u64(bytes, line_no, "byte count")?,
        }),
        ["marker", code] => {
            let code = parse_u64(code, line_no, "marker code")?;
            // Markers are u32 on the wire; a silent `as u32` here would
            // alias distinct codes.
            let code = u32::try_from(code).map_err(|_| {
                ParseError::new(line_no, format!("marker code {code} exceeds {}", u32::MAX))
            })?;
            Ok(Record::Marker { code })
        }
        [] => Err(ParseError::new(line_no, "empty record")),
        [op, ..] => Err(ParseError::new(line_no, format!("unknown record `{op}`"))),
    }
}

/// Parses the text format back into a trace set.
///
/// # Errors
///
/// Returns a [`ParseError`] with a 1-based line number on malformed input.
pub fn parse_trace_set(text: &str) -> Result<TraceSet, ParseError> {
    let mut name: Option<String> = None;
    let mut mips: Option<MipsRate> = None;
    let mut declared_ranks: Option<usize> = None;
    let mut ranks: Vec<RankTrace> = Vec::new();
    let mut current: Option<Vec<Record>> = None;

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Headers may appear once; a duplicate is corruption (e.g. two
        // files concatenated by a torn copy), not a value to silently
        // overwrite.
        let dup = |what: &str| ParseError::new(line_no, format!("duplicate `{what}` header"));
        if let Some(rest) = line.strip_prefix("name ") {
            if name.is_some() {
                return Err(dup("name"));
            }
            name = Some(rest.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("mips ") {
            if mips.is_some() {
                return Err(dup("mips"));
            }
            let v = parse_u64(rest.trim(), line_no, "MIPS rate")?;
            mips = Some(MipsRate::new(v).map_err(|e| ParseError::new(line_no, e.to_string()))?);
            continue;
        }
        if let Some(rest) = line.strip_prefix("ranks ") {
            if declared_ranks.is_some() {
                return Err(dup("ranks"));
            }
            declared_ranks = Some(parse_u64(rest.trim(), line_no, "rank count")? as usize);
            continue;
        }
        if let Some(rest) = line.strip_prefix("rank ") {
            if current.is_some() {
                return Err(ParseError::new(line_no, "nested `rank` without `end`"));
            }
            let idx = parse_u64(rest.trim(), line_no, "rank index")? as usize;
            if idx != ranks.len() {
                return Err(ParseError::new(
                    line_no,
                    format!("expected rank {} next, got {idx}", ranks.len()),
                ));
            }
            current = Some(Vec::new());
            continue;
        }
        if line == "end" {
            match current.take() {
                Some(records) => ranks.push(RankTrace::from_records(records)),
                None => return Err(ParseError::new(line_no, "`end` outside a rank block")),
            }
            continue;
        }
        match &mut current {
            Some(records) => records.push(parse_record(line_no, line)?),
            None => {
                return Err(ParseError::new(
                    line_no,
                    format!("record `{line}` outside a rank block"),
                ))
            }
        }
    }
    if current.is_some() {
        return Err(ParseError::new(text.lines().count(), "missing final `end`"));
    }
    let name = name.ok_or_else(|| ParseError::new(1, "missing `name` header"))?;
    let mips = mips.ok_or_else(|| ParseError::new(1, "missing `mips` header"))?;
    if let Some(n) = declared_ranks {
        if n != ranks.len() {
            return Err(ParseError::new(
                1,
                format!("header declares {n} ranks but {} present", ranks.len()),
            ));
        }
    }
    Ok(TraceSet::new(name, mips, ranks))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceSet {
        TraceSet::new(
            "sample.original",
            MipsRate::new(1500).unwrap(),
            vec![
                RankTrace::from_records(vec![
                    Record::Burst {
                        instr: Instr::new(42),
                    },
                    Record::Send {
                        to: Rank::new(1),
                        bytes: 100,
                        tag: Tag::new(3),
                    },
                    Record::ISend {
                        to: Rank::new(1),
                        bytes: 200,
                        tag: Tag::new(4),
                        req: RequestId::new(0),
                    },
                    Record::Wait {
                        req: RequestId::new(0),
                    },
                    Record::Barrier,
                    Record::AllReduce { bytes: 8 },
                    Record::Marker { code: 17 },
                ]),
                RankTrace::from_records(vec![
                    Record::Recv {
                        from: Rank::new(0),
                        bytes: 100,
                        tag: Tag::new(3),
                    },
                    Record::IRecv {
                        from: Rank::new(0),
                        bytes: 200,
                        tag: Tag::new(4),
                        req: RequestId::new(0),
                    },
                    Record::WaitAll {
                        reqs: vec![RequestId::new(0)],
                    },
                    Record::Barrier,
                    Record::AllReduce { bytes: 8 },
                    Record::Bcast {
                        root: Rank::new(0),
                        bytes: 64,
                    },
                    Record::Reduce {
                        root: Rank::new(1),
                        bytes: 32,
                    },
                    Record::AllToAll { bytes: 16 },
                    Record::AllGather { bytes: 24 },
                ]),
            ],
        )
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ts = sample();
        let text = emit_trace_set(&ts);
        let back = parse_trace_set(&text).unwrap();
        assert_eq!(ts, back);
    }

    #[test]
    fn emitted_text_is_human_readable() {
        let text = emit_trace_set(&sample());
        assert!(text.contains("name sample.original"));
        assert!(text.contains("mips 1500"));
        assert!(text.contains("burst 42"));
        assert!(text.contains("send r1 100 t3"));
        assert!(text.contains("waitall req0"));
    }

    #[test]
    fn parse_rejects_unknown_record() {
        let text = "name x\nmips 1000\nranks 1\nrank 0\nfrobnicate 1\nend\n";
        let err = parse_trace_set(text).unwrap_err();
        assert_eq!(err.line(), 5);
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn parse_rejects_bad_arity() {
        let text = "name x\nmips 1000\nranks 1\nrank 0\nsend r1 100\nend\n";
        assert!(parse_trace_set(text).is_err());
    }

    #[test]
    fn parse_rejects_missing_headers() {
        assert!(parse_trace_set("rank 0\nend\n").is_err());
        assert!(parse_trace_set("name x\nrank 0\nend\n").is_err());
    }

    #[test]
    fn parse_rejects_rank_count_mismatch() {
        let text = "name x\nmips 1000\nranks 2\nrank 0\nend\n";
        assert!(parse_trace_set(text).is_err());
    }

    #[test]
    fn parse_rejects_records_outside_rank() {
        let text = "name x\nmips 1000\nburst 5\n";
        assert!(parse_trace_set(text).is_err());
    }

    #[test]
    fn parse_rejects_unterminated_rank() {
        let text = "name x\nmips 1000\nrank 0\nburst 5\n";
        assert!(parse_trace_set(text).is_err());
    }

    #[test]
    fn parse_tolerates_comments_and_blanks() {
        let text = "# header\n\nname x\nmips 1000\n# mid\nrank 0\n\nburst 5\nend\n";
        let ts = parse_trace_set(text).unwrap();
        assert_eq!(ts.rank_count(), 1);
        assert_eq!(ts.ranks()[0].len(), 1);
    }

    #[test]
    fn parse_rejects_out_of_order_ranks() {
        let text = "name x\nmips 1000\nrank 1\nend\n";
        assert!(parse_trace_set(text).is_err());
    }

    #[test]
    fn parse_rejects_marker_codes_beyond_u32() {
        let text = "name x\nmips 1000\nrank 0\nmarker 4294967296\nend\n";
        let err = parse_trace_set(text).unwrap_err();
        assert_eq!(err.line(), 4);
        assert!(err.to_string().contains("marker code"));
        // The boundary value itself is fine.
        let ok = "name x\nmips 1000\nrank 0\nmarker 4294967295\nend\n";
        assert!(parse_trace_set(ok).is_ok());
    }

    #[test]
    fn parse_rejects_duplicate_headers() {
        for (text, what) in [
            ("name x\nname y\nmips 1000\nrank 0\nend\n", "name"),
            ("name x\nmips 1000\nmips 2000\nrank 0\nend\n", "mips"),
            (
                "name x\nmips 1000\nranks 1\nranks 1\nrank 0\nend\n",
                "ranks",
            ),
        ] {
            let err = parse_trace_set(text).unwrap_err();
            assert!(
                err.to_string().contains(&format!("duplicate `{what}`")),
                "{text:?} gave {err}"
            );
        }
    }

    /// Regression corpus from the fault-injection harness: each seed
    /// reproduces one deterministic truncation or mid-file garbling of a
    /// valid emitted trace. Every one must come back as a positioned
    /// `ParseError` — never a panic, never a silently different trace.
    #[test]
    fn fault_seed_corruptions_yield_positioned_errors() {
        use ovlsim_core::rng::SplitMix64;
        let clean = emit_trace_set(&sample());
        let mut detected = 0;
        for seed in 0u64..64 {
            let mut rng = SplitMix64::new(seed);
            // Mirror of `session::faultinject::FaultPlan::truncate`: cut
            // to a strict prefix (mid-record, mid-header, anywhere).
            let cut = (rng.next_u64() % clean.len() as u64) as usize;
            let truncated: String = clean.chars().take(cut).collect();
            match parse_trace_set(&truncated) {
                Err(e) => {
                    assert!(e.line() >= 1);
                    detected += 1;
                }
                // A cut landing exactly on a block boundary leaves a
                // well-formed *shorter* trace — text has no integrity
                // envelope (that is what `.ovlb` adds) — but it must
                // never reproduce the full trace.
                Ok(t) => assert!(cut + 1 >= clean.len() || t != sample()),
            }
        }
        assert!(detected > 32, "only {detected}/64 truncations detected");
        for seed in 64u64..96 {
            let mut rng = SplitMix64::new(seed);
            // Mirror of `FaultPlan::garble`: stomp a short run with
            // non-format bytes.
            let mut bytes = clean.clone().into_bytes();
            let start = (rng.next_u64() % bytes.len() as u64) as usize;
            let len = 1 + (rng.next_u64() % 8) as usize;
            for b in bytes.iter_mut().skip(start).take(len) {
                *b = b'\x01' + (rng.next_u64() % 26) as u8;
            }
            let garbled = String::from_utf8_lossy(&bytes).into_owned();
            // Garbling may hit a name character (still a valid name) —
            // but it must never panic, and an error must carry a line.
            if let Err(e) = parse_trace_set(&garbled) {
                assert!(e.line() >= 1 && e.line() <= garbled.lines().count() + 1);
            }
        }
    }
}
