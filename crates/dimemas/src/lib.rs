//! The trace-replay network simulator of `ovlsim` — a from-scratch
//! implementation of the Dimemas machine model used by the paper's
//! environment.
//!
//! "The Dimemas simulator uses the traces obtained from each MPI process
//! and off-line reconstructs the application's time-behavior on a
//! configurable parallel platform." The platform knobs are
//! [`ovlsim_core::Platform`]: latency, bandwidth, finite buses, per-node
//! input/output links, eager/rendezvous threshold and collective cost
//! models.
//!
//! * [`Simulator`] — replays a [`ovlsim_core::TraceSet`], returning a
//!   [`ReplayResult`] with makespan, per-rank times and network statistics;
//!   [`Simulator::run_compiled`] executes a pre-lowered
//!   [`ovlsim_core::CompiledTrace`] (the cheapest per-event path), and
//!   [`Simulator::run_fastforward`] replays the same program through the
//!   window fast-forward engine — bit-identical, and several times
//!   faster on contention-heavy many-rank traces,
//! * [`ReplayObserver`] — timeline hooks consumed by the visualization
//!   layer (`ovlsim-paraver`),
//! * [`emit_trace_set`]/[`parse_trace_set`] — the `.dim`-style text
//!   persistence with a guaranteed round-trip.
//!
//! # Example
//!
//! ```
//! use ovlsim_core::{Instr, MipsRate, Platform, RankTrace, Record, TraceSet, Time};
//! use ovlsim_dimemas::Simulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let trace = TraceSet::new(
//!     "solo",
//!     MipsRate::new(1000)?,
//!     vec![RankTrace::from_records(vec![Record::Burst {
//!         instr: Instr::new(7_000),
//!     }])],
//! );
//! let result = Simulator::new(Platform::default()).run(&trace)?;
//! assert_eq!(result.total_time(), Time::from_us(7));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collective;
mod compiled;
mod error;
mod fastforward;
mod format;
mod naive;
mod network;
mod observer;
mod replay;
mod reqs;

#[doc(hidden)]
pub use naive::replay_naive;

pub use error::SimError;
pub use format::{emit_trace_set, parse_trace_set, ParseError};
pub use observer::{DepEdge, NullObserver, ProcState, ReplayObserver, WaitCause};
pub use replay::{ReplayResult, Simulator};
