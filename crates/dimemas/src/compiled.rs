//! Executor for compiled trace programs ([`CompiledTrace`]).
//!
//! This is the fastest replay path: it walks the flat struct-of-arrays
//! instruction streams produced by [`CompiledTrace::compile`] — one-byte
//! opcodes, dense operand columns, pre-converted burst durations and
//! pre-resolved request slots — instead of decoding [`ovlsim_core::Record`]
//! enums and scanning request tables per event. Results are bit-identical
//! to [`crate::naive::replay_naive`] and [`crate::Simulator::run`]; the
//! differential property tests in `tests/props.rs` enforce it.
//!
//! Beyond the program format, the executor shaves per-event overhead the
//! record-walking engines pay:
//!
//! * it is generic over the observer, so the common unobserved run
//!   monomorphizes against [`NullObserver`] and every timeline callback
//!   compiles to nothing (the other engines pay a virtual call each),
//! * platform scalars (eager threshold, overheads, the three possible
//!   flight delays) are hoisted out of the loop once per run,
//! * wire transmission times are memoized per distinct `(domain, bytes)`
//!   pair — chunked traces reuse a handful of message sizes thousands of
//!   times, and the memo returns the identical rounded [`Time`],
//! * network pump rescans reuse scratch buffers instead of allocating a
//!   queue and a result vector per pump
//!   ([`Network::start_eligible_into`]).
//!
//! # Coalesced burst runs and exact tie-breaking
//!
//! The event queue delivers same-time events FIFO in schedule order, and
//! that order is observable: transfers that become ready at the same
//! instant contend for finite buses/links in FIFO order. Naively replacing
//! a run of K bursts with one end-of-run resume would move that resume's
//! position in the FIFO and could flip such ties. The executor therefore
//! *jumps* a coalesced run (or a prefix of it) in a single event **only
//! when the event queue proves no other event fires before the jump's
//! end** — in that window the rest of the machine is provably idle, so
//! eliding the intermediate resumes is unobservable. Otherwise it falls
//! back to stepping one sub-burst per event, exactly like the uncompiled
//! engines. Either way the arithmetic is identical: durations are summed
//! per sub-burst through the same `scale_f64` rounding the other engines
//! apply.

use std::collections::VecDeque;

use ovlsim_core::{CollectiveOp, CompiledTrace, Platform, Rank, RecordKind, Tag, Time};
use ovlsim_engine::EventQueue;

use crate::collective::CollectiveTracker;
use crate::error::SimError;
use crate::network::{LinkPerturb, Network, TransferId};
use crate::observer::{DepEdge, NullObserver, ProcState, ReplayObserver, WaitCause};
use crate::replay::{ReplayResult, Simulator};
use crate::reqs::{ReqGroup, ReqState};

impl Simulator {
    /// Replays a compiled trace program, the cheapest per-sweep-point
    /// entry. The result is bit-identical to [`Simulator::run`] on the
    /// source trace; only the per-point record decoding, request-table
    /// scanning and (where provably safe) per-burst event traffic are
    /// gone. Compile once with [`CompiledTrace::compile`] and share
    /// `&CompiledTrace` across parallel sweep points.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if replay stalls.
    pub fn run_compiled(&self, prog: &CompiledTrace) -> Result<ReplayResult, SimError> {
        CompiledState::new(self.platform(), prog).run(&mut NullObserver)
    }

    /// [`Simulator::run_compiled`] with timeline observation. The program
    /// must have been compiled with [`CompiledTrace::compile_observed`]:
    /// a coalesced program has merged compute intervals and dropped
    /// markers, so attaching an observer to one is refused rather than
    /// silently reporting a coarser timeline.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CoalescedObservation`] if `prog` was compiled
    /// with coalescing, and [`SimError::Deadlock`] if replay stalls.
    pub fn run_compiled_observed(
        &self,
        prog: &CompiledTrace,
        observer: &mut dyn ReplayObserver,
    ) -> Result<ReplayResult, SimError> {
        if prog.coalesced() {
            return Err(SimError::CoalescedObservation);
        }
        CompiledState::new(self.platform(), prog).run(observer)
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Resume(usize),
    TransferSent(TransferId),
    TransferDone(TransferId),
    /// Re-attempt a transfer held back by a transient link outage
    /// (faulty platforms only; never scheduled on a clean run).
    TransferRetry(TransferId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SenderKind {
    Fire,
    Blocking,
    /// Rendezvous isend: complete this pre-resolved slot at completion.
    Request(u32),
}

#[derive(Debug)]
struct Transfer {
    from: Rank,
    to: Rank,
    bytes: u64,
    tag: Tag,
    rendezvous: bool,
    intra: bool,
    sender_kind: SenderKind,
    recv: Option<usize>,
    enqueued: bool,
    started_at: Option<Time>,
    arrived: Option<Time>,
    /// Dense channel id, for wait attribution.
    chan: u32,
    /// Sender's clock when the send instruction was executed.
    posted_at: Time,
    /// When the transfer entered a finite-resource queue (`None` if it
    /// never queued).
    queued_at: Option<Time>,
    /// When the transfer became ready to move data.
    ready_at: Time,
    /// Flight-latency jitter drawn at creation time (zero on clean runs).
    jitter: Time,
    /// End of the link outage that held this transfer back, if any.
    outage_until: Option<Time>,
}

#[derive(Debug)]
struct RecvPost {
    rank: usize,
    /// Pre-resolved request slot for irecvs; `None` for blocking receives.
    slot: Option<u32>,
    from: Rank,
    tag: Tag,
    transfer: Option<TransferId>,
    done: Option<Time>,
}

#[derive(Debug, Default)]
struct Channel {
    unmatched_sends: VecDeque<TransferId>,
    unmatched_recvs: VecDeque<usize>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Blocker {
    Recv(usize),
    SendDone(TransferId),
    /// Remaining request *slots* of a wait-set.
    Reqs(ReqGroup),
    Collective(usize),
}

/// Which wait cause a blocked window is charged to (see `emit_blocked`).
#[derive(Debug, Clone, Copy)]
enum BlockKind {
    Recv,
    Send,
    Wait,
}

#[derive(Debug)]
struct Proc {
    cursor: usize,
    clock: Time,
    blocked: Option<Blocker>,
    block_start: Time,
    coll_seq: usize,
    /// Flat request-state table indexed by pre-resolved slot. Entries are
    /// overwritten on post, so no per-wait cleanup is needed.
    slots: Vec<ReqState>,
    compute: Time,
    finished: Option<Time>,
    overhead_paid: bool,
    /// Cursor into the rank's burst-duration arena (program order).
    burst_pos: usize,
    /// Sub-bursts left in the burst run currently being executed; while
    /// non-zero, resumes continue the run instead of decoding the stream.
    bursts_left: u32,
    /// Cursor into the rank's `WaitAll` slot arena (program order).
    wait_pos: usize,
}

/// One rank's stream slices, resolved once so the hot loop never chases
/// back through the [`CompiledTrace`] accessors.
#[derive(Clone, Copy)]
struct Stream<'a> {
    ops: &'a [RecordKind],
    a: &'a [u32],
    b: &'a [u32],
    payload: &'a [u64],
    burst_ps: &'a [u64],
    wait_slots: &'a [u32],
}

/// Memo of rounded wire transmission times per distinct byte count. The
/// list stays tiny for chunked traces (a handful of distinct sizes); it is
/// capped so a pathological all-distinct trace degrades to computing, not
/// to a quadratic scan.
#[derive(Debug, Default)]
struct XmitMemo {
    entries: Vec<(u64, Time)>,
}

const XMIT_MEMO_CAP: usize = 64;

impl XmitMemo {
    #[inline]
    fn get(&mut self, bytes: u64, compute: impl Fn(u64) -> Time) -> Time {
        if let Some(&(_, t)) = self.entries.iter().find(|(b, _)| *b == bytes) {
            return t;
        }
        let t = compute(bytes);
        if self.entries.len() < XMIT_MEMO_CAP {
            self.entries.push((bytes, t));
        }
        t
    }
}

struct CompiledState<'a> {
    platform: &'a Platform,
    prog: &'a CompiledTrace,
    streams: Vec<Stream<'a>>,
    /// Per-channel routing decision (true = both endpoints share a node),
    /// derived once per run from the program's channel endpoints.
    intra_chan: Vec<bool>,
    /// Hoisted burst scale factor (`1 / cpu_ratio`), identical to the
    /// value the uncompiled engines recompute per burst.
    inv_cpu_ratio: f64,
    /// True when the platform's perturbation model stretches compute
    /// bursts (noise, stragglers or heterogeneous nodes).
    compute_perturbed: bool,
    /// True when the model draws per-burst OS noise (the only compute
    /// effect that needs a hash per sub-burst).
    noise_on: bool,
    /// Per-rank burst prefactor (cpu ratio x node speed x straggler),
    /// hoisted out of the event loop; empty on clean runs. The values are
    /// exactly `PerturbationModel::burst_prefactor`, so per-burst rounding
    /// stays bit-identical to the uncompiled engines.
    burst_pre: Vec<f64>,
    /// Per-channel link-degradation stretch factor, hoisted once per run
    /// (`PerturbationModel::link_factor` is stable per directed rank
    /// pair); empty when degradation is off.
    chan_stretch: Vec<f64>,
    /// Link-level perturbations (degradation, jitter, faults); shared
    /// logic with the uncompiled engines so factors match bit-exactly.
    link: LinkPerturb,
    /// Per-channel send sequence numbers feeding jitter draws; empty when
    /// the model has no link effects.
    send_seq: Vec<u64>,
    // Platform scalars hoisted out of the event loop (all values the
    // other engines re-derive per event).
    eager_threshold: u64,
    send_overhead: Time,
    recv_overhead: Time,
    flight_eager: Time,
    flight_rendezvous: Time,
    flight_intra: Time,
    xmit_inter: XmitMemo,
    xmit_intra: XmitMemo,
    queue: EventQueue<Event>,
    procs: Vec<Proc>,
    transfers: Vec<Transfer>,
    recv_posts: Vec<RecvPost>,
    channels: Vec<Channel>,
    network: Network,
    /// Reused result buffer for network pumps.
    started_scratch: Vec<TransferId>,
    collectives: CollectiveTracker,
    p2p_messages: u64,
    p2p_bytes: u64,
}

impl<'a> CompiledState<'a> {
    fn new(platform: &'a Platform, prog: &'a CompiledTrace) -> Self {
        let n = prog.rank_count();
        let model = platform.perturbation();
        let inv_cpu_ratio = 1.0 / platform.cpu_ratio();
        let compute_perturbed = model.has_compute_effects();
        let burst_pre = if compute_perturbed {
            (0..n as u32)
                .map(|r| model.burst_prefactor(inv_cpu_ratio, r, platform.node_of(r)))
                .collect()
        } else {
            Vec::new()
        };
        let chan_stretch = if model.link_degradation() > 0.0 {
            prog.channels()
                .iter()
                .map(|c| model.link_factor(c.src.get(), c.dst.get()))
                .collect()
        } else {
            Vec::new()
        };
        CompiledState {
            platform,
            prog,
            streams: (0..n)
                .map(|r| {
                    let rp = prog.rank(r);
                    Stream {
                        ops: rp.ops(),
                        a: rp.a(),
                        b: rp.b(),
                        payload: rp.payload(),
                        burst_ps: rp.burst_ps(),
                        wait_slots: rp.wait_slots(),
                    }
                })
                .collect(),
            intra_chan: prog
                .channels()
                .iter()
                .map(|c| platform.node_of(c.src.get()) == platform.node_of(c.dst.get()))
                .collect(),
            inv_cpu_ratio,
            compute_perturbed,
            noise_on: model.noise_level() > 0.0,
            burst_pre,
            chan_stretch,
            link: LinkPerturb::new(platform),
            send_seq: if platform.perturbation().has_link_effects() {
                vec![0; prog.channels().len()]
            } else {
                Vec::new()
            },
            eager_threshold: platform.eager_threshold(),
            send_overhead: platform.send_overhead(),
            recv_overhead: platform.recv_overhead(),
            flight_eager: platform.latency(),
            flight_rendezvous: platform.latency() + platform.rendezvous_latency(),
            flight_intra: platform.intra_node_latency(),
            xmit_inter: XmitMemo::default(),
            xmit_intra: XmitMemo::default(),
            queue: EventQueue::new(),
            procs: (0..n)
                .map(|r| Proc {
                    cursor: 0,
                    clock: Time::ZERO,
                    blocked: None,
                    block_start: Time::ZERO,
                    coll_seq: 0,
                    slots: vec![ReqState::InFlight; prog.rank(r).slot_count() as usize],
                    compute: Time::ZERO,
                    finished: None,
                    overhead_paid: false,
                    burst_pos: 0,
                    bursts_left: 0,
                    wait_pos: 0,
                })
                .collect(),
            transfers: Vec::new(),
            recv_posts: Vec::new(),
            channels: (0..prog.channels().len())
                .map(|_| Channel::default())
                .collect(),
            network: Network::new(platform, n),
            started_scratch: Vec::new(),
            collectives: CollectiveTracker::new(n),
            p2p_messages: 0,
            p2p_bytes: 0,
        }
    }

    fn run<O: ReplayObserver + ?Sized>(
        &mut self,
        observer: &mut O,
    ) -> Result<ReplayResult, SimError> {
        for r in 0..self.procs.len() {
            self.queue.schedule(Time::ZERO, Event::Resume(r));
        }
        while let Some((t, ev)) = self.queue.pop() {
            match ev {
                Event::Resume(r) => {
                    if self.procs[r].bursts_left > 0 {
                        self.burst_step(r, observer);
                    } else {
                        self.step(r, observer);
                    }
                }
                Event::TransferSent(id) => self.transfer_sent(id, t, observer),
                Event::TransferDone(id) => self.transfer_done(id, t, observer),
                Event::TransferRetry(id) => self.launch_transfer(id, t),
            }
        }
        let blocked: Vec<(Rank, String)> = self
            .procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.finished.is_none())
            .map(|(r, p)| (Rank::new(r as u32), self.describe_blocker(p)))
            .collect();
        if !blocked.is_empty() {
            let at = self
                .procs
                .iter()
                .map(|p| p.clock)
                .max()
                .unwrap_or(Time::ZERO);
            return Err(SimError::Deadlock { at, blocked });
        }
        let rank_finish: Vec<Time> = self
            .procs
            .iter()
            .map(|p| p.finished.expect("all finished"))
            .collect();
        let total_time = rank_finish.iter().copied().max().unwrap_or(Time::ZERO);
        Ok(ReplayResult {
            name: self.prog.name().to_string(),
            total_time,
            rank_compute: self.procs.iter().map(|p| p.compute).collect(),
            rank_finish,
            p2p_messages: self.p2p_messages,
            p2p_bytes: self.p2p_bytes,
            collective_count: self.collectives.instance_count() as u64,
            mean_busy_buses: self.network.mean_busy_buses(total_time),
            peak_busy_buses: self.network.peak_busy_buses(),
            peak_waiting_transfers: self.network.peak_waiting(),
        })
    }

    fn describe_blocker(&self, p: &Proc) -> String {
        match &p.blocked {
            None => "runnable but starved (internal error)".to_string(),
            Some(Blocker::Recv(pid)) => {
                let post = &self.recv_posts[*pid];
                format!("blocked in recv from {} {}", post.from, post.tag)
            }
            Some(Blocker::SendDone(tid)) => {
                let t = &self.transfers[*tid];
                format!("blocked in rendezvous send to {} {}", t.to, t.tag)
            }
            Some(Blocker::Reqs(reqs)) => format!("blocked waiting {} requests", reqs.len()),
            Some(Blocker::Collective(seq)) => format!("blocked in collective #{seq}"),
        }
    }

    /// Memoized wire occupancy time of a transfer (exactly
    /// `bandwidth.transfer_time(bytes)` of the relevant domain). Link
    /// degradation stretches the *rounded* memoized base by the channel's
    /// hoisted `link_factor` — the same evaluation order as the uncompiled
    /// engines — so the memo stays valid under perturbation. Intra-node
    /// transfers are exempt from all link perturbations.
    #[inline]
    fn transmission_time(&mut self, intra: bool, bytes: u64, chan: u32) -> Time {
        if intra {
            let bw = self.platform.intra_node_bandwidth();
            self.xmit_intra.get(bytes, |b| bw.transfer_time(b))
        } else {
            let bw = self.platform.bandwidth();
            let base = self.xmit_inter.get(bytes, |b| bw.transfer_time(b));
            if self.chan_stretch.is_empty() {
                base
            } else {
                base.scale_f64(self.chan_stretch[chan as usize])
            }
        }
    }

    /// Duration of the sub-burst at arena index `idx` of rank `r`. Clean
    /// runs scale by `1 / cpu_ratio` exactly as before; perturbed runs
    /// apply the full per-burst factor keyed on the arena index, which
    /// equals the uncompiled engines' per-rank burst ordinal (the arena
    /// holds one entry per original burst record, in program order).
    #[inline]
    fn sub_burst(&self, r: usize, idx: usize, ps: u64) -> Time {
        let base = Time::from_ps(ps);
        if !self.compute_perturbed {
            return base.scale_f64(self.inv_cpu_ratio);
        }
        // `burst_pre[r] * noise_factor` is exactly `burst_factor` with the
        // rank-constant part hoisted (same multiply order, bit-identical
        // rounding to the uncompiled engines).
        let pre = self.burst_pre[r];
        if self.noise_on {
            let noise = self
                .platform
                .perturbation()
                .noise_factor(r as u32, idx as u64);
            base.scale_f64(pre * noise)
        } else {
            base.scale_f64(pre)
        }
    }

    #[inline]
    fn flight_time(&self, intra: bool, rendezvous: bool) -> Time {
        if intra {
            self.flight_intra
        } else if rendezvous {
            self.flight_rendezvous
        } else {
            self.flight_eager
        }
    }

    fn pump_network(&mut self, now: Time) {
        let mut started = std::mem::take(&mut self.started_scratch);
        {
            let transfers = &self.transfers;
            self.network.start_eligible_into(
                now,
                |id| (transfers[id].from, transfers[id].to),
                &mut started,
            );
        }
        for &tid in &started {
            self.transfers[tid].started_at = Some(now);
            let (intra, bytes, chan) = {
                let t = &self.transfers[tid];
                (t.intra, t.bytes, t.chan)
            };
            let dur = self.transmission_time(intra, bytes, chan);
            self.queue.schedule(now + dur, Event::TransferSent(tid));
        }
        self.started_scratch = started;
    }

    fn pump_intra(&mut self, now: Time) {
        if !self.network.intra_limited() {
            return;
        }
        let mut started = std::mem::take(&mut self.started_scratch);
        {
            let transfers = &self.transfers;
            let platform = self.platform;
            self.network.start_eligible_intra_into(
                now,
                |id| platform.node_of(transfers[id].from.get()) as usize,
                &mut started,
            );
        }
        for &tid in &started {
            self.transfers[tid].started_at = Some(now);
            let (intra, bytes, chan) = {
                let t = &self.transfers[tid];
                (t.intra, t.bytes, t.chan)
            };
            let dur = self.transmission_time(intra, bytes, chan);
            self.queue.schedule(now + dur, Event::TransferSent(tid));
        }
        self.started_scratch = started;
    }

    /// Executes (part of) the burst run at the rank's burst cursor,
    /// scheduling exactly one resume. Greedily absorbs the longest prefix
    /// of remaining sub-bursts whose end the event queue proves
    /// undisturbed (nothing else fires before it), and always consumes at
    /// least one sub-burst — which is precisely the uncompiled engines'
    /// one-event-per-burst behaviour, so the fallback is tie-exact.
    fn burst_step<O: ReplayObserver + ?Sized>(&mut self, r: usize, observer: &mut O) {
        let now = self.procs[r].clock;
        let left = self.procs[r].bursts_left as usize;
        let pos = self.procs[r].burst_pos;
        debug_assert!(left > 0);
        let arena = &self.streams[r].burst_ps[pos..pos + left];
        let peek = self.queue.peek_time();
        // First sub-burst is unconditional (matches the naive engines).
        let mut total = self.sub_burst(r, pos, arena[0]);
        let mut end = now + total;
        let mut consumed = 1;
        while consumed < left {
            let dur = self.sub_burst(r, pos + consumed, arena[consumed]);
            let next_end = end + dur;
            // Absorbing the next sub-burst is unobservable iff no other
            // event fires before its end. `t > now` guards zero-length
            // runs: a pending same-instant event would interleave with the
            // chain in the uncompiled engines, so the chain must yield.
            let quiet = match peek {
                None => true,
                Some(t) => t >= next_end && t > now,
            };
            if !quiet {
                break;
            }
            total += dur;
            end = next_end;
            consumed += 1;
        }
        observer.interval(Rank::new(r as u32), now, end, ProcState::Compute);
        if end > now {
            observer.attributed(Rank::new(r as u32), now, end, WaitCause::Compute, None);
        }
        let p = &mut self.procs[r];
        p.compute += total;
        p.clock = end;
        p.burst_pos += consumed;
        p.bursts_left -= consumed as u32;
        self.queue.schedule(end, Event::Resume(r));
    }

    /// Executes instructions of rank `r` until it blocks, yields, or
    /// finishes.
    fn step<O: ReplayObserver + ?Sized>(&mut self, r: usize, observer: &mut O) {
        debug_assert!(self.procs[r].blocked.is_none(), "stepping a blocked rank");
        let stream = self.streams[r];
        loop {
            let cursor = self.procs[r].cursor;
            if cursor >= stream.ops.len() {
                let at = self.procs[r].clock;
                self.procs[r].finished = Some(at);
                observer.finished(Rank::new(r as u32), at);
                return;
            }
            let now = self.procs[r].clock;
            match stream.ops[cursor] {
                RecordKind::Burst => {
                    let p = &mut self.procs[r];
                    p.bursts_left = stream.a[cursor];
                    p.cursor += 1;
                    self.burst_step(r, observer);
                    return;
                }
                RecordKind::Marker => {
                    observer.marker(Rank::new(r as u32), now, stream.a[cursor]);
                    self.procs[r].cursor += 1;
                }
                RecordKind::Send => {
                    if self.charge_send_overhead(r, now, observer) {
                        return;
                    }
                    let bytes = stream.payload[cursor];
                    let rendezvous = bytes > self.eager_threshold;
                    let kind = if rendezvous {
                        SenderKind::Blocking
                    } else {
                        SenderKind::Fire
                    };
                    let chan = stream.a[cursor];
                    let tid = self.create_transfer(r, chan, bytes, kind, now);
                    self.post_send(tid, chan, now);
                    self.procs[r].cursor += 1;
                    if rendezvous {
                        let p = &mut self.procs[r];
                        p.blocked = Some(Blocker::SendDone(tid));
                        p.block_start = now;
                        return;
                    }
                }
                RecordKind::ISend => {
                    if self.charge_send_overhead(r, now, observer) {
                        return;
                    }
                    let bytes = stream.payload[cursor];
                    let rendezvous = bytes > self.eager_threshold;
                    let slot = stream.b[cursor];
                    let kind = if rendezvous {
                        SenderKind::Request(slot)
                    } else {
                        SenderKind::Fire
                    };
                    let chan = stream.a[cursor];
                    let tid = self.create_transfer(r, chan, bytes, kind, now);
                    self.procs[r].slots[slot as usize] = if rendezvous {
                        ReqState::InFlight
                    } else {
                        // Eager isend: the buffer is copied out immediately.
                        ReqState::Done { at: now, tid }
                    };
                    self.post_send(tid, chan, now);
                    self.procs[r].cursor += 1;
                }
                RecordKind::Recv => {
                    let pid = self.post_recv(r, None, stream.a[cursor], now);
                    self.procs[r].cursor += 1;
                    match self.recv_posts[pid].done {
                        Some(done) => {
                            debug_assert!(done >= now);
                            if done > now {
                                let tid = self.recv_posts[pid]
                                    .transfer
                                    .expect("completed receives are matched");
                                self.emit_blocked(observer, r, now, done, BlockKind::Recv, tid);
                                self.procs[r].clock = done;
                                self.queue.schedule(done, Event::Resume(r));
                                return;
                            }
                        }
                        None => {
                            let p = &mut self.procs[r];
                            p.blocked = Some(Blocker::Recv(pid));
                            p.block_start = now;
                            return;
                        }
                    }
                }
                RecordKind::IRecv => {
                    let slot = stream.b[cursor];
                    let pid = self.post_recv(r, Some(slot), stream.a[cursor], now);
                    self.procs[r].slots[slot as usize] = match self.recv_posts[pid].done {
                        Some(done) => ReqState::Done {
                            at: done,
                            tid: self.recv_posts[pid]
                                .transfer
                                .expect("completed receives are matched"),
                        },
                        None => ReqState::InFlight,
                    };
                    self.procs[r].cursor += 1;
                }
                RecordKind::Wait => {
                    let slot = stream.a[cursor];
                    if self.enter_wait(r, Slots::One(slot), now, observer) {
                        return;
                    }
                }
                RecordKind::WaitAll => {
                    let len = stream.a[cursor] as usize;
                    let start = self.procs[r].wait_pos;
                    self.procs[r].wait_pos += len;
                    if self.enter_wait(r, Slots::Arena(start, len), now, observer) {
                        return;
                    }
                }
                op => {
                    let coll = collective_of(op);
                    let bytes = stream.payload[cursor];
                    let seq = self.procs[r].coll_seq;
                    self.procs[r].coll_seq += 1;
                    self.procs[r].cursor += 1;
                    match self
                        .collectives
                        .arrive(seq, coll, bytes, now, self.platform)
                    {
                        Some(done) => {
                            let release = DepEdge {
                                rank: Rank::new(r as u32),
                                at: now,
                            };
                            for (q, proc) in self.procs.iter_mut().enumerate() {
                                if proc.blocked == Some(Blocker::Collective(seq)) {
                                    observer.interval(
                                        Rank::new(q as u32),
                                        proc.block_start,
                                        done,
                                        ProcState::Collective,
                                    );
                                    if done > proc.block_start {
                                        observer.attributed(
                                            Rank::new(q as u32),
                                            proc.block_start,
                                            done,
                                            WaitCause::Collective { seq: seq as u32 },
                                            Some(release),
                                        );
                                    }
                                    proc.blocked = None;
                                    proc.clock = done;
                                    self.queue.schedule(done, Event::Resume(q));
                                }
                            }
                            observer.interval(
                                Rank::new(r as u32),
                                now,
                                done,
                                ProcState::Collective,
                            );
                            if done > now {
                                observer.attributed(
                                    Rank::new(r as u32),
                                    now,
                                    done,
                                    WaitCause::Collective { seq: seq as u32 },
                                    None,
                                );
                            }
                            self.procs[r].clock = done;
                            self.queue.schedule(done, Event::Resume(r));
                            return;
                        }
                        None => {
                            let p = &mut self.procs[r];
                            p.blocked = Some(Blocker::Collective(seq));
                            p.block_start = now;
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Processes a wait over pre-resolved slots. Returns true if the rank
    /// blocked or yielded (caller must return).
    fn enter_wait<O: ReplayObserver + ?Sized>(
        &mut self,
        r: usize,
        slots: Slots,
        now: Time,
        observer: &mut O,
    ) -> bool {
        let mut remaining = ReqGroup::new();
        let mut latest = now;
        // Transfer of the last-completing slot: the whole wait interval is
        // attributed to its channel (the "last unblocker").
        let mut latest_tid: Option<TransferId> = None;
        let one;
        let wait_slots: &[u32] = match slots {
            Slots::One(s) => {
                one = [s];
                &one
            }
            Slots::Arena(start, len) => &self.streams[r].wait_slots[start..start + len],
        };
        let p = &mut self.procs[r];
        for &slot in wait_slots {
            match p.slots[slot as usize] {
                ReqState::Done { at, tid } => {
                    if at > latest {
                        latest = at;
                        latest_tid = Some(tid);
                    }
                }
                ReqState::InFlight => remaining.push(slot),
            }
        }
        p.cursor += 1;
        if remaining.is_empty() {
            if latest > now {
                observer.interval(Rank::new(r as u32), now, latest, ProcState::WaitRequest);
                let tid = latest_tid.expect("a request completed after now");
                self.emit_blocked(observer, r, now, latest, BlockKind::Wait, tid);
                self.procs[r].clock = latest;
                self.queue.schedule(latest, Event::Resume(r));
                return true;
            }
            false
        } else {
            p.blocked = Some(Blocker::Reqs(remaining));
            p.block_start = now;
            true
        }
    }

    fn charge_send_overhead<O: ReplayObserver + ?Sized>(
        &mut self,
        r: usize,
        now: Time,
        observer: &mut O,
    ) -> bool {
        let overhead = self.send_overhead;
        if overhead.is_zero() {
            return false;
        }
        let p = &mut self.procs[r];
        if p.overhead_paid {
            p.overhead_paid = false;
            return false;
        }
        p.overhead_paid = true;
        p.clock = now + overhead;
        let at = p.clock;
        observer.attributed(Rank::new(r as u32), now, at, WaitCause::SendOverhead, None);
        self.queue.schedule(at, Event::Resume(r));
        true
    }

    /// The cross-rank dependency that released rank `r` from an interval
    /// gated by transfer `tid` (None when the interval was self-paced).
    fn blocked_edge(&self, r: usize, start: Time, tid: TransferId) -> Option<DepEdge> {
        let t = &self.transfers[tid];
        if t.from.index() == r {
            (t.ready_at > t.posted_at).then_some(DepEdge {
                rank: t.to,
                at: t.ready_at,
            })
        } else {
            match t.arrived {
                Some(a) if a <= start => None,
                _ => Some(DepEdge {
                    rank: t.from,
                    at: t.posted_at,
                }),
            }
        }
    }

    /// Emits the attributed intervals of a blocked window `[start, end)`
    /// on rank `r` gated by transfer `tid` (identical decomposition to the
    /// uncompiled engine's `emit_blocked`).
    fn emit_blocked<O: ReplayObserver + ?Sized>(
        &self,
        observer: &mut O,
        r: usize,
        start: Time,
        end: Time,
        kind: BlockKind,
        tid: TransferId,
    ) {
        if end <= start {
            return;
        }
        let t = &self.transfers[tid];
        let chan = t.chan;
        let cause = match kind {
            BlockKind::Recv => WaitCause::BlockedRecv { chan },
            BlockKind::Send => WaitCause::BlockedSend { chan },
            BlockKind::Wait => WaitCause::BlockedWait { chan },
        };
        let edge = self.blocked_edge(r, start, tid);
        let rank = Rank::new(r as u32);
        let (os, oe) = match t.outage_until {
            Some(up) => (t.ready_at.max(start), up.min(end)),
            None => (start, start),
        };
        let (qs, qe) = match (t.queued_at, t.started_at) {
            (Some(q), Some(s)) => (q.max(start), s.min(end)),
            _ => (end, end),
        };
        let down = WaitCause::LinkDown { chan };
        let contended = WaitCause::Contended {
            chan,
            intra: t.intra,
        };
        let mut segs = [(start, start, cause); 5];
        let mut n = 0;
        let mut cur = start;
        if oe > os {
            if os > cur {
                segs[n] = (cur, os, cause);
                n += 1;
            }
            segs[n] = (os.max(cur), oe, down);
            n += 1;
            cur = oe;
        }
        if qe > qs && qe > cur {
            if qs > cur {
                segs[n] = (cur, qs, cause);
                n += 1;
            }
            segs[n] = (qs.max(cur), qe, contended);
            n += 1;
            cur = qe;
        }
        if end > cur {
            segs[n] = (cur, end, cause);
            n += 1;
        }
        for (i, &(s, e, c)) in segs[..n].iter().enumerate() {
            let eg = if i + 1 == n { edge } else { None };
            observer.attributed(rank, s, e, c, eg);
        }
    }

    fn create_transfer(
        &mut self,
        from: usize,
        chan: u32,
        bytes: u64,
        sender_kind: SenderKind,
        now: Time,
    ) -> TransferId {
        let tid = self.transfers.len();
        let (to, tag) = {
            let e = &self.prog.channels()[chan as usize];
            (e.dst, e.tag)
        };
        let intra = self.intra_chan[chan as usize];
        let rendezvous = sender_kind != SenderKind::Fire;
        let jitter = if intra || self.send_seq.is_empty() {
            Time::ZERO
        } else {
            let seq = self.send_seq[chan as usize];
            self.send_seq[chan as usize] += 1;
            self.link.jitter(Rank::new(from as u32), to, tag, seq)
        };
        self.transfers.push(Transfer {
            from: Rank::new(from as u32),
            to,
            bytes,
            tag,
            rendezvous,
            intra,
            sender_kind,
            recv: None,
            enqueued: false,
            started_at: None,
            arrived: None,
            chan,
            posted_at: now,
            queued_at: None,
            ready_at: now,
            jitter,
            outage_until: None,
        });
        self.p2p_messages += 1;
        self.p2p_bytes += bytes;
        tid
    }

    fn post_send(&mut self, tid: TransferId, channel: u32, now: Time) {
        let ch = &mut self.channels[channel as usize];
        let matched = match ch.unmatched_recvs.pop_front() {
            Some(pid) => {
                self.transfers[tid].recv = Some(pid);
                self.recv_posts[pid].transfer = Some(tid);
                true
            }
            None => {
                ch.unmatched_sends.push_back(tid);
                false
            }
        };
        let ready = !self.transfers[tid].rendezvous || matched;
        if ready {
            self.start_transfer(tid, now);
        }
    }

    fn start_transfer(&mut self, tid: TransferId, now: Time) {
        debug_assert!(!self.transfers[tid].enqueued);
        self.transfers[tid].enqueued = true;
        self.transfers[tid].ready_at = now;
        if !self.transfers[tid].intra {
            let (from, to) = (self.transfers[tid].from, self.transfers[tid].to);
            if let Some(up) = self.link.outage_end(from, to, now) {
                self.transfers[tid].outage_until = Some(up);
                self.queue.schedule(up, Event::TransferRetry(tid));
                return;
            }
        }
        self.launch_transfer(tid, now);
    }

    /// Enters a ready transfer into its transport domain (the tail of
    /// `start_transfer`, split out so link-outage retries re-enter here).
    fn launch_transfer(&mut self, tid: TransferId, now: Time) {
        if self.transfers[tid].intra {
            if self.network.intra_limited() {
                self.transfers[tid].queued_at = Some(now);
                self.network.enqueue_intra(tid, now);
                self.pump_intra(now);
            } else {
                self.transfers[tid].started_at = Some(now);
                let (bytes, chan) = {
                    let t = &self.transfers[tid];
                    (t.bytes, t.chan)
                };
                let dur = self.transmission_time(true, bytes, chan);
                self.queue.schedule(now + dur, Event::TransferSent(tid));
            }
        } else {
            self.transfers[tid].queued_at = Some(now);
            self.network.enqueue(tid, now);
            self.pump_network(now);
        }
    }

    fn post_recv(&mut self, r: usize, slot: Option<u32>, channel: u32, now: Time) -> usize {
        let pid = self.recv_posts.len();
        let endpoints = &self.prog.channels()[channel as usize];
        self.recv_posts.push(RecvPost {
            rank: r,
            slot,
            from: endpoints.src,
            tag: endpoints.tag,
            transfer: None,
            done: None,
        });
        let ch = &mut self.channels[channel as usize];
        let matched = match ch.unmatched_sends.pop_front() {
            Some(tid) => Some(tid),
            None => {
                ch.unmatched_recvs.push_back(pid);
                None
            }
        };
        if let Some(tid) = matched {
            self.transfers[tid].recv = Some(pid);
            self.recv_posts[pid].transfer = Some(tid);
            if self.transfers[tid].arrived.is_some() {
                self.recv_posts[pid].done = Some(now + self.recv_overhead);
            } else if !self.transfers[tid].enqueued {
                self.start_transfer(tid, now);
            }
        }
        pid
    }

    fn complete_request<O: ReplayObserver + ?Sized>(
        &mut self,
        r: usize,
        slot: u32,
        at: Time,
        tid: TransferId,
        observer: &mut O,
    ) {
        let proc = &mut self.procs[r];
        let unblock = match &mut proc.blocked {
            Some(Blocker::Reqs(set)) if set.contains(slot) => {
                set.remove(slot);
                set.is_empty()
            }
            _ => {
                proc.slots[slot as usize] = ReqState::Done { at, tid };
                false
            }
        };
        if unblock {
            let start = self.procs[r].block_start;
            observer.interval(Rank::new(r as u32), start, at, ProcState::WaitRequest);
            self.emit_blocked(observer, r, start, at, BlockKind::Wait, tid);
            let p = &mut self.procs[r];
            p.blocked = None;
            p.clock = at;
            self.queue.schedule(at, Event::Resume(r));
        }
    }

    fn transfer_sent<O: ReplayObserver + ?Sized>(
        &mut self,
        tid: TransferId,
        at: Time,
        observer: &mut O,
    ) {
        let (from, to, sender_kind, intra, rendezvous, jitter) = {
            let t = &self.transfers[tid];
            (t.from, t.to, t.sender_kind, t.intra, t.rendezvous, t.jitter)
        };
        if !intra {
            self.network.release(from, to, at);
        } else if self.network.intra_limited() {
            self.network
                .release_intra(self.platform.node_of(from.get()) as usize);
        }

        match sender_kind {
            SenderKind::Fire => {}
            SenderKind::Blocking => {
                let s = from.index();
                debug_assert_eq!(self.procs[s].blocked, Some(Blocker::SendDone(tid)));
                let start = self.procs[s].block_start;
                observer.interval(from, start, at, ProcState::WaitSend);
                self.emit_blocked(observer, s, start, at, BlockKind::Send, tid);
                let p = &mut self.procs[s];
                p.blocked = None;
                p.clock = at;
                self.queue.schedule(at, Event::Resume(s));
            }
            SenderKind::Request(slot) => {
                self.complete_request(from.index(), slot, at, tid, observer);
            }
        }

        let flight = self.flight_time(intra, rendezvous) + jitter;
        self.queue.schedule(at + flight, Event::TransferDone(tid));
        // Only the freed domain can have newly eligible transfers.
        if intra {
            self.pump_intra(at);
        } else {
            self.pump_network(at);
        }
    }

    fn transfer_done<O: ReplayObserver + ?Sized>(
        &mut self,
        tid: TransferId,
        at: Time,
        observer: &mut O,
    ) {
        let (from, to, bytes, tag, started, recv) = {
            let t = &self.transfers[tid];
            (
                t.from,
                t.to,
                t.bytes,
                t.tag,
                t.started_at.expect("done transfers started"),
                t.recv,
            )
        };
        self.transfers[tid].arrived = Some(at);
        observer.message(from, to, started, at, bytes, tag);

        if let Some(pid) = recv {
            let done = at + self.recv_overhead;
            self.recv_posts[pid].done = Some(done);
            let r = self.recv_posts[pid].rank;
            match self.recv_posts[pid].slot {
                None => {
                    debug_assert_eq!(self.procs[r].blocked, Some(Blocker::Recv(pid)));
                    let start = self.procs[r].block_start;
                    observer.interval(Rank::new(r as u32), start, done, ProcState::WaitRecv);
                    self.emit_blocked(observer, r, start, done, BlockKind::Recv, tid);
                    let p = &mut self.procs[r];
                    p.blocked = None;
                    p.clock = done;
                    self.queue.schedule(done, Event::Resume(r));
                }
                Some(slot) => {
                    self.complete_request(r, slot, done, tid, observer);
                }
            }
        }
    }
}

/// How a wait instruction names its slots: inline (single wait) or as a
/// span of the rank's `WaitAll` arena.
enum Slots {
    One(u32),
    Arena(usize, usize),
}

/// Maps a collective opcode to its cost-model operation.
pub(crate) fn collective_of(op: RecordKind) -> CollectiveOp {
    match op {
        RecordKind::Barrier => CollectiveOp::Barrier,
        RecordKind::AllReduce => CollectiveOp::AllReduce,
        RecordKind::Bcast => CollectiveOp::Bcast,
        RecordKind::Reduce => CollectiveOp::Reduce,
        RecordKind::AllToAll => CollectiveOp::AllToAll,
        RecordKind::AllGather => CollectiveOp::AllGather,
        other => unreachable!("not a collective opcode: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlsim_core::{Instr, MipsRate, RankTrace, Record, RequestId, TraceIndex, TraceSet};

    fn mips() -> MipsRate {
        MipsRate::new(1000).unwrap()
    }

    fn platform_1us_1gb() -> Platform {
        Platform::builder()
            .latency(Time::from_us(1))
            .bandwidth_bytes_per_sec(1.0e9)
            .unwrap()
            .build()
    }

    fn trace(ranks: Vec<Vec<Record>>) -> TraceSet {
        TraceSet::new(
            "test",
            mips(),
            ranks.into_iter().map(RankTrace::from_records).collect(),
        )
    }

    fn compile(ts: &TraceSet) -> CompiledTrace {
        let index = TraceIndex::build(ts).expect("valid");
        CompiledTrace::compile(ts, &index).expect("compiles")
    }

    #[test]
    fn compiled_matches_run_on_mixed_trace() {
        let reqs: Vec<RequestId> = (0..4).map(RequestId::new).collect();
        let mut r0: Vec<Record> = vec![
            Record::Burst {
                instr: Instr::new(700),
            },
            Record::Burst {
                instr: Instr::new(1300),
            },
            Record::Marker { code: 3 },
            Record::Burst {
                instr: Instr::new(500),
            },
        ];
        for &req in &reqs {
            r0.push(Record::ISend {
                to: Rank::new(1),
                bytes: 100_000,
                tag: Tag::new(req.get() as u64),
                req,
            });
        }
        r0.push(Record::WaitAll { reqs: reqs.clone() });
        r0.push(Record::Barrier);
        let mut r1: Vec<Record> = reqs
            .iter()
            .map(|&req| Record::Recv {
                from: Rank::new(0),
                bytes: 100_000,
                tag: Tag::new(req.get() as u64),
            })
            .collect();
        r1.push(Record::Barrier);
        let ts = trace(vec![r0, r1]);
        let sim = Simulator::new(platform_1us_1gb());
        let reference = sim.run(&ts).unwrap();
        let compiled = sim.run_compiled(&compile(&ts)).unwrap();
        assert_eq!(reference, compiled);
    }

    #[test]
    fn compiled_jump_handles_lone_computer() {
        // One rank computes a long run while the other is already done:
        // the jump path fires and the makespan is exact.
        let ts = trace(vec![
            (0..10)
                .map(|i| Record::Burst {
                    instr: Instr::new(1000 + i),
                })
                .collect(),
            vec![],
        ]);
        let sim = Simulator::new(platform_1us_1gb());
        let reference = sim.run(&ts).unwrap();
        let compiled = sim.run_compiled(&compile(&ts)).unwrap();
        assert_eq!(reference, compiled);
    }

    #[test]
    fn compiled_respects_cpu_ratio_rounding() {
        // cpu_ratio scaling rounds per sub-burst; the coalesced run must
        // accumulate identically.
        let p = Platform::builder()
            .latency(Time::from_us(1))
            .bandwidth_bytes_per_sec(1.0e9)
            .unwrap()
            .cpu_ratio(3.0)
            .expect("positive ratio")
            .build();
        let ts = trace(vec![(0..7)
            .map(|i| Record::Burst {
                instr: Instr::new(101 + 13 * i),
            })
            .collect()]);
        let sim = Simulator::new(p.clone());
        let reference = crate::naive::replay_naive(&p, &ts).unwrap();
        let compiled = sim.run_compiled(&compile(&ts)).unwrap();
        assert_eq!(reference, compiled);
    }

    #[test]
    fn observer_requires_uncoalesced_program() {
        let ts = trace(vec![vec![Record::Burst {
            instr: Instr::new(1000),
        }]]);
        let sim = Simulator::new(platform_1us_1gb());
        let coalesced = compile(&ts);
        assert!(matches!(
            sim.run_compiled_observed(&coalesced, &mut NullObserver),
            Err(SimError::CoalescedObservation)
        ));
        let index = TraceIndex::build(&ts).unwrap();
        let observed = CompiledTrace::compile_observed(&ts, &index).unwrap();
        let res = sim
            .run_compiled_observed(&observed, &mut NullObserver)
            .unwrap();
        assert_eq!(res, sim.run(&ts).unwrap());
    }

    #[test]
    fn observed_compiled_timeline_matches_uncompiled() {
        #[derive(Default, PartialEq, Debug, Clone)]
        struct Capture {
            intervals: Vec<(Rank, Time, Time, ProcState)>,
            messages: Vec<(Rank, Rank, Time, Time, u64, Tag)>,
            markers: Vec<(Rank, Time, u32)>,
            finished: Vec<(Rank, Time)>,
        }
        impl ReplayObserver for Capture {
            fn interval(&mut self, r: Rank, s: Time, e: Time, st: ProcState) {
                self.intervals.push((r, s, e, st));
            }
            fn message(&mut self, f: Rank, t: Rank, s: Time, e: Time, b: u64, tag: Tag) {
                self.messages.push((f, t, s, e, b, tag));
            }
            fn marker(&mut self, r: Rank, at: Time, code: u32) {
                self.markers.push((r, at, code));
            }
            fn finished(&mut self, r: Rank, at: Time) {
                self.finished.push((r, at));
            }
        }
        let ts = trace(vec![
            vec![
                Record::Burst {
                    instr: Instr::new(1000),
                },
                Record::Burst {
                    instr: Instr::new(2000),
                },
                Record::Marker { code: 5 },
                Record::Send {
                    to: Rank::new(1),
                    bytes: 1000,
                    tag: Tag::new(0),
                },
            ],
            vec![Record::Recv {
                from: Rank::new(0),
                bytes: 1000,
                tag: Tag::new(0),
            }],
        ]);
        let sim = Simulator::new(platform_1us_1gb());
        let mut direct = Capture::default();
        sim.run_observed(&ts, &mut direct).unwrap();
        let index = TraceIndex::build(&ts).unwrap();
        let prog = CompiledTrace::compile_observed(&ts, &index).unwrap();
        let mut compiled = Capture::default();
        sim.run_compiled_observed(&prog, &mut compiled).unwrap();
        assert_eq!(direct, compiled);
    }

    #[test]
    fn compiled_multicore_ported_intra_domain_matches() {
        let ts = trace(vec![
            vec![
                Record::Send {
                    to: Rank::new(1),
                    bytes: 10_000,
                    tag: Tag::new(0),
                },
                Record::Recv {
                    from: Rank::new(1),
                    bytes: 10_000,
                    tag: Tag::new(1),
                },
            ],
            vec![
                Record::Send {
                    to: Rank::new(0),
                    bytes: 10_000,
                    tag: Tag::new(1),
                },
                Record::Recv {
                    from: Rank::new(0),
                    bytes: 10_000,
                    tag: Tag::new(0),
                },
            ],
        ]);
        let p = Platform::builder()
            .latency(Time::from_us(1))
            .bandwidth_bytes_per_sec(1.0e9)
            .unwrap()
            .ranks_per_node(2)
            .expect("positive packing")
            .intra_node_links(Some(1))
            .build();
        let sim = Simulator::new(p.clone());
        let reference = crate::naive::replay_naive(&p, &ts).unwrap();
        let compiled = sim.run_compiled(&compile(&ts)).unwrap();
        assert_eq!(reference, compiled);
    }

    #[test]
    fn compiled_matches_both_engines_under_full_perturbation() {
        use ovlsim_core::PerturbationModel;
        // Bursts + eager and rendezvous traffic + a collective, replayed
        // under every perturbation axis at once: the compiled engine must
        // stay bit-identical to the prepared and naive engines.
        let mk = |to: u32, from: u32| {
            vec![
                Record::Burst {
                    instr: Instr::new(2500),
                },
                Record::Send {
                    to: Rank::new(to),
                    bytes: 500,
                    tag: Tag::new(7),
                },
                Record::Burst {
                    instr: Instr::new(900),
                },
                Record::Recv {
                    from: Rank::new(from),
                    bytes: 200_000,
                    tag: Tag::new(8),
                },
                Record::Barrier,
            ]
        };
        let swap = |to: u32, from: u32| {
            vec![
                Record::Burst {
                    instr: Instr::new(1800),
                },
                Record::Recv {
                    from: Rank::new(from),
                    bytes: 500,
                    tag: Tag::new(7),
                },
                Record::Send {
                    to: Rank::new(to),
                    bytes: 200_000,
                    tag: Tag::new(8),
                },
                Record::Barrier,
            ]
        };
        // With two ranks per node, pair 0<->2 and 1<->3 so the p2p
        // traffic crosses nodes and the link perturbations actually fire.
        let ts = trace(vec![mk(2, 2), mk(3, 3), swap(0, 0), swap(1, 1)]);
        let model = PerturbationModel::new(0xBEEF)
            .with_noise(0.2)
            .unwrap()
            .with_stragglers(&[2], 1.7)
            .unwrap()
            .with_node_speeds(&[1.0, 0.8])
            .unwrap()
            .with_link_degradation(0.3)
            .unwrap()
            .with_latency_jitter(Time::from_us(2))
            .with_faults(Time::from_us(40), Time::from_us(9))
            .unwrap();
        let p = Platform::builder()
            .latency(Time::from_us(1))
            .bandwidth_bytes_per_sec(1.0e9)
            .unwrap()
            .ranks_per_node(2)
            .expect("positive packing")
            .perturbation(model)
            .build();
        let sim = Simulator::new(p.clone());
        let naive = crate::naive::replay_naive(&p, &ts).unwrap();
        let prepared = sim.run(&ts).unwrap();
        let compiled = sim.run_compiled(&compile(&ts)).unwrap();
        assert_eq!(naive, prepared);
        assert_eq!(prepared, compiled);
        // And the perturbed makespan differs from the clean one (the
        // model actually did something).
        let clean = Simulator::new(platform_1us_1gb()).run(&ts).unwrap();
        assert_ne!(clean.total_time, compiled.total_time);
    }
}
