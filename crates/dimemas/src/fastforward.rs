//! Analytic fast-forward executor for compiled trace programs.
//!
//! `run_fastforward` is the fourth replay engine. It executes the same
//! instruction streams as [`crate::Simulator::run_compiled`] with the same
//! event semantics — every start decision, FIFO tie-break, and statistic is
//! bit-identical — but it fast-forwards through *quiescent windows*: spans
//! of simulated time where the event queue proves that only one causal
//! chain is active, so its events never need to touch the real heap at
//! all.
//!
//! # The quiescence proof obligation
//!
//! Replay correctness hinges on event *order*: transfers that become ready
//! at the same instant contend for finite per-node links in global FIFO
//! order, so an engine that reorders same-instant events can flip a tie
//! and diverge. The fast-forward engine therefore never reorders anything.
//! Scheduled events enter a small *virtual buffer* instead of the real
//! event heap, and a buffered event at time `V` is executed directly from
//! the buffer only when the real queue **proves** the window `[now, V]`
//! is quiescent: `peek_time() > V` strictly (an equal-time heap event was
//! scheduled earlier and must fire first). Whenever the proof fails the
//! whole buffer falls back per-event: it is flushed into the real heap in
//! original schedule order, re-creating exactly the state the compiled
//! engine would have had. Retired windows are thus closed-form by
//! construction — a chain of transfer sends/arrivals or a coalesced
//! compute run plays out as straight-line arithmetic over the buffer,
//! with no heap traffic — and ambiguous windows cost one flush and then
//! proceed event-by-event, bit-identical to [`run_compiled`].
//!
//! On top of the window machinery, the executor specializes the transport
//! for the platforms it supports (no finite bus pool, no finite intra-node
//! ports — anything else falls back to `run_compiled` up front):
//!
//! * the waiting FIFO is sharded into per-node queues tagged with global
//!   FIFO seqs, so a released link pair rescans only the waiters it could
//!   possibly admit (merged back in global FIFO order) and rescans that
//!   provably admit nothing are skipped outright — the outcome is
//!   unchanged because after every scan each waiter is blocked on at
//!   least one busy resource, and none of its resources were freed,
//! * transfers carry only the fields replay needs (no observer
//!   attribution state), and
//! * the observer layer is gone entirely: fast-forward replay is
//!   unobserved by definition (observation wants the per-event timeline
//!   that fast-forwarding elides — use `run_compiled_observed`).
//!
//! [`run_compiled`]: crate::Simulator::run_compiled

use std::collections::VecDeque;

use ovlsim_core::{CompiledTrace, Platform, Rank, RecordKind, Time};
use ovlsim_engine::stats::TimeWeighted;

use crate::collective::CollectiveTracker;
use crate::compiled::collective_of;
use crate::error::SimError;
use crate::network::{LinkPerturb, TransferId};
use crate::replay::{ReplayResult, Simulator};
use crate::reqs::{ReqGroup, ReqState};

impl Simulator {
    /// Replays a compiled trace program with analytic fast-forwarding
    /// through quiescent windows. Bit-identical to
    /// [`Simulator::run_compiled`] (and therefore to the prepared and
    /// naive engines) on every platform and perturbation model; platforms
    /// the fast path does not specialize for (finite bus pools, finite
    /// intra-node ports) are delegated to `run_compiled` wholesale.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if replay stalls (diagnosed by the
    /// compiled engine so the report is identical).
    pub fn run_fastforward(&self, prog: &CompiledTrace) -> Result<ReplayResult, SimError> {
        let platform = self.platform();
        if platform.buses().is_some() || platform.intra_node_links().is_some() {
            return self.run_compiled(prog);
        }
        match FfState::new(platform, prog).run() {
            Ok(res) => Ok(res),
            // Deadlock: re-run under the compiled engine, which reproduces
            // the identical error (same stall point, same blocker text).
            Err(FfAbort) => self.run_compiled(prog),
        }
    }
}

/// Abort marker: the run cannot finish cleanly here (deadlocked trace);
/// the caller re-runs under `run_compiled` for the canonical diagnosis.
struct FfAbort;

/// A scheduled event packed into one word: kind tag in the low 2 bits,
/// rank or transfer index above — halves event-store traffic versus the
/// compiled engine's enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event(u64);

const EV_RESUME: u64 = 0;
const EV_SENT: u64 = 1;
const EV_DONE: u64 = 2;
const EV_RETRY: u64 = 3;

impl Event {
    #[inline]
    fn resume(r: usize) -> Event {
        Event((r as u64) << 2 | EV_RESUME)
    }
    #[inline]
    fn sent(tid: TransferId) -> Event {
        Event((tid as u64) << 2 | EV_SENT)
    }
    #[inline]
    fn done(tid: TransferId) -> Event {
        Event((tid as u64) << 2 | EV_DONE)
    }
    #[inline]
    fn retry(tid: TransferId) -> Event {
        Event((tid as u64) << 2 | EV_RETRY)
    }
    #[inline]
    fn kind(self) -> u64 {
        self.0 & 3
    }
    #[inline]
    fn idx(self) -> usize {
        (self.0 >> 2) as usize
    }
}

/// Calendar-bucket event store with pop order bit-identical to the
/// compiled engine's binary heap: time ascending, FIFO among equal
/// times. Events at the same instant land in one bucket in push order,
/// so no percolation and no per-event sequence numbers — scheduling is
/// an O(1) append in the common case (the target instant is at or past
/// the latest pending one) and popping is a cursor bump.
struct BucketQueue {
    /// Pending instants, ascending. A ring so that scheduling at the
    /// current instant (front) and at the horizon (back) are both O(1);
    /// the rare mid-insert shifts the shorter side.
    order: VecDeque<(Time, u32)>,
    buckets: Vec<Bucket>,
    free: Vec<u32>,
    len: usize,
}

#[derive(Default)]
struct Bucket {
    events: Vec<Event>,
    cursor: usize,
}

impl BucketQueue {
    fn new() -> Self {
        BucketQueue {
            order: VecDeque::with_capacity(64),
            buckets: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    #[inline]
    fn peek_time(&self) -> Option<Time> {
        self.order.front().map(|&(t, _)| t)
    }

    #[inline]
    fn fresh_bucket(&mut self, ev: Event) -> u32 {
        let bi = match self.free.pop() {
            Some(bi) => bi,
            None => {
                self.buckets.push(Bucket::default());
                (self.buckets.len() - 1) as u32
            }
        };
        self.buckets[bi as usize].events.push(ev);
        bi
    }

    fn schedule(&mut self, at: Time, ev: Event) {
        self.len += 1;
        // Hot paths: the target instant is the latest pending one (chain
        // extension), past the horizon (new latest), or the current
        // front (resume-at-now).
        match self.order.back() {
            None => {
                let bi = self.fresh_bucket(ev);
                self.order.push_back((at, bi));
                return;
            }
            Some(&(bt, bi)) if bt == at => {
                self.buckets[bi as usize].events.push(ev);
                return;
            }
            Some(&(bt, _)) if bt < at => {
                let bi = self.fresh_bucket(ev);
                self.order.push_back((at, bi));
                return;
            }
            _ => {}
        }
        let &(ft, fi) = self.order.front().expect("nonempty");
        if ft == at {
            self.buckets[fi as usize].events.push(ev);
            return;
        }
        if at < ft {
            let bi = self.fresh_bucket(ev);
            self.order.push_front((at, bi));
            return;
        }
        // Mid insert: binary search the ring (both halves are sorted and
        // contiguous in time across the wrap point).
        let (a, b) = self.order.as_slices();
        let i = match a.binary_search_by(|&(t, _)| t.cmp(&at)) {
            Ok(i) => i,
            Err(i) if i < a.len() => i,
            Err(_) => match b.binary_search_by(|&(t, _)| t.cmp(&at)) {
                Ok(j) => a.len() + j,
                Err(j) => a.len() + j,
            },
        };
        if let Some(&(t, bi)) = self.order.get(i) {
            if t == at {
                self.buckets[bi as usize].events.push(ev);
                return;
            }
        }
        let bi = self.fresh_bucket(ev);
        self.order.insert(i, (at, bi));
    }

    #[inline]
    fn pop(&mut self) -> Option<(Time, Event)> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        let &(t, bi) = self.order.front().expect("len tracked");
        let b = &mut self.buckets[bi as usize];
        let ev = b.events[b.cursor];
        b.cursor += 1;
        if b.cursor == b.events.len() {
            b.events.clear();
            b.cursor = 0;
            self.free.push(bi);
            self.order.pop_front();
        }
        Some((t, ev))
    }
}

/// Event queue with a virtual front-buffer over the calendar store.
///
/// `schedule` appends to a tiny ordered buffer instead of the real
/// queue. `pop` executes straight from the buffer when the real queue
/// proves the buffered event fires strictly first; otherwise the buffer
/// is flushed in original schedule order (re-creating exactly the FIFO
/// positions the compiled engine would have assigned) and the real queue
/// decides. Pop order is therefore identical to scheduling everything on
/// the real queue directly — the buffer only removes queue traffic from
/// quiescent windows, it never reorders.
struct VQueue {
    real: BucketQueue,
    /// Pending virtual events in schedule order (`Vec::remove` keeps it
    /// sorted by schedule seq; the buffer is tiny so shifting is cheap).
    vbuf: Vec<(Time, Event)>,
    /// Forces the per-event fallback unconditionally: every schedule goes
    /// straight to the real queue, as if the quiescence proof failed at
    /// every pop. Pop order — and therefore the whole replay — must be
    /// unchanged; the differential tests run both ways to prove it.
    bypass: bool,
}

/// Buffered events beyond this force a flush: the linear scans stay cheap
/// and a long-lived backlog belongs on the real queue anyway.
const VBUF_CAP: usize = 12;

impl VQueue {
    fn new(bypass: bool) -> Self {
        VQueue {
            real: BucketQueue::new(),
            vbuf: Vec::with_capacity(VBUF_CAP),
            bypass,
        }
    }

    #[inline]
    fn schedule(&mut self, at: Time, ev: Event) {
        if self.bypass {
            self.real.schedule(at, ev);
            return;
        }
        if self.vbuf.len() == VBUF_CAP {
            self.flush();
        }
        self.vbuf.push((at, ev));
    }

    /// Moves every buffered event onto the real queue, preserving
    /// schedule order (bucket positions are assigned in push order, so
    /// FIFO ties resolve exactly as if the buffer had never existed).
    fn flush(&mut self) {
        for (t, ev) in self.vbuf.drain(..) {
            self.real.schedule(t, ev);
        }
    }

    fn pop(&mut self) -> Option<(Time, Event)> {
        if self.vbuf.is_empty() {
            return self.real.pop();
        }
        // Earliest buffered event; first occurrence wins at equal times
        // (the buffer is in schedule order, matching queue FIFO).
        let mut mi = 0;
        for i in 1..self.vbuf.len() {
            if self.vbuf[i].0 < self.vbuf[mi].0 {
                mi = i;
            }
        }
        let vt = self.vbuf[mi].0;
        match self.real.peek_time() {
            // Quiescence proof failed: a queued event fires at or before
            // the buffered one, and at equal times the queued event is
            // older. Fall back per-event through the real queue.
            Some(p) if p <= vt => {
                self.flush();
                self.real.pop()
            }
            _ => Some(self.vbuf.remove(mi)),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SenderKind {
    Fire,
    Blocking,
    Request(u32),
}

/// Replay-only transfer state (the compiled engine's `Transfer` minus the
/// observer-attribution fields), with the endpoint nodes cached so the
/// hot start/release paths never recompute them.
#[derive(Debug)]
struct Transfer {
    from: Rank,
    to: Rank,
    nf: u32,
    nt: u32,
    bytes: u64,
    rendezvous: bool,
    intra: bool,
    waiting: bool,
    sender_kind: SenderKind,
    /// Matched receive post, or `NONE_U32` while unmatched.
    recv: u32,
    enqueued: bool,
    chan: u32,
    jitter: Time,
    arrived: Option<Time>,
    /// Next unmatched send on the same channel (intrusive FIFO).
    next: u32,
}

/// Sentinel for the intrusive channel lists and optional u32 indices.
const NONE_U32: u32 = u32::MAX;

#[derive(Debug)]
struct RecvPost {
    rank: u32,
    /// Request slot, or `NONE_U32` for a blocking receive.
    slot: u32,
    /// Matched transfer, or `NONE_U32` while unmatched.
    transfer: u32,
    done: Option<Time>,
    /// Next unmatched receive on the same channel (intrusive FIFO).
    next: u32,
}

/// Unmatched send/recv FIFOs as intrusive lists threaded through
/// `Transfer::next` / `RecvPost::next` — channel matching allocates
/// nothing even when every chunk gets its own channel.
#[derive(Debug, Clone)]
struct Channel {
    send_head: u32,
    send_tail: u32,
    recv_head: u32,
    recv_tail: u32,
}

impl Default for Channel {
    fn default() -> Self {
        Channel {
            send_head: NONE_U32,
            send_tail: NONE_U32,
            recv_head: NONE_U32,
            recv_tail: NONE_U32,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Blocker {
    Recv(usize),
    SendDone(TransferId),
    Reqs(ReqGroup),
    Collective(usize),
}

#[derive(Debug)]
struct Proc {
    cursor: usize,
    clock: Time,
    blocked: Option<Blocker>,
    coll_seq: usize,
    slots: Vec<ReqState>,
    compute: Time,
    finished: Option<Time>,
    overhead_paid: bool,
    burst_pos: usize,
    bursts_left: u32,
    wait_pos: usize,
}

#[derive(Clone, Copy)]
struct Stream<'a> {
    ops: &'a [RecordKind],
    a: &'a [u32],
    b: &'a [u32],
    payload: &'a [u64],
    burst_ps: &'a [u64],
    wait_slots: &'a [u32],
}

#[derive(Debug, Default)]
struct XmitMemo {
    entries: Vec<(u64, Time)>,
}

const XMIT_MEMO_CAP: usize = 64;

impl XmitMemo {
    #[inline]
    fn get(&mut self, bytes: u64, compute: impl Fn(u64) -> Time) -> Time {
        if let Some(&(_, t)) = self.entries.iter().find(|(b, _)| *b == bytes) {
            return t;
        }
        let t = compute(bytes);
        if self.entries.len() < XMIT_MEMO_CAP {
            self.entries.push((bytes, t));
        }
        t
    }
}

/// A parked transfer in a per-node waiter queue. `seq` is the global
/// enqueue order (the compiled engine's FIFO position), `other` the node
/// on the opposite side of the pair so eligibility checks never touch
/// the `Transfer` record.
#[derive(Debug, Clone, Copy)]
struct WaitEnt {
    seq: u32,
    tid: u32,
    other: u32,
}

/// Transport state specialized for the supported platforms: no bus pool
/// (`buses = None`) and an uncontended intra-node domain. Start/occupy/
/// release/statistics semantics are copied from [`crate::network::Network`]
/// exactly. The global waiting FIFO is sharded into per-node queues (a
/// waiter is parked under both its sender and receiver node, tagged with
/// its global FIFO seq) so a released link pair rescans only the waiters
/// it could possibly admit — every other waiter's resources are untouched
/// by the release, and after each scan every waiter is blocked on at
/// least one busy resource, so the restricted scan provably reproduces
/// the full scan's decisions in the same order.
struct FfNet {
    out_limit: u32,
    in_limit: u32,
    ranks_per_node: u32,
    busy: u32,
    out_used: Vec<u32>,
    in_used: Vec<u32>,
    /// Waiters parked per sender node / receiver node, global-FIFO order.
    /// Entries are tombstoned in place when a start removes the twin.
    out_q: Vec<VecDeque<WaitEnt>>,
    in_q: Vec<VecDeque<WaitEnt>>,
    enq_seq: u32,
    waiting_len: usize,
    bus_util: TimeWeighted,
    waiting_peak: usize,
    waiting_last_len: usize,
    waiting_last_time: Time,
}

impl FfNet {
    fn new(platform: &Platform, ranks: usize) -> Self {
        let rpn = platform.ranks_per_node() as usize;
        let nodes = ranks.div_ceil(rpn).max(1);
        FfNet {
            out_limit: platform.output_links(),
            in_limit: platform.input_links(),
            ranks_per_node: platform.ranks_per_node(),
            busy: 0,
            out_used: vec![0; nodes],
            in_used: vec![0; nodes],
            out_q: vec![VecDeque::new(); nodes],
            in_q: vec![VecDeque::new(); nodes],
            enq_seq: 0,
            waiting_len: 0,
            bus_util: TimeWeighted::new(),
            waiting_peak: 0,
            waiting_last_len: 0,
            waiting_last_time: Time::ZERO,
        }
    }

    #[inline]
    fn node(&self, rank: Rank) -> usize {
        (rank.get() / self.ranks_per_node) as usize
    }

    /// Same persisted-length semantics as `Network::note_waiting`. Calls
    /// where the length did not change since the previous note are
    /// omitted by the callers — a pure no-op for the peak statistic.
    #[inline]
    fn note_waiting(&mut self, now: Time) {
        if now > self.waiting_last_time {
            self.waiting_peak = self.waiting_peak.max(self.waiting_last_len);
            self.waiting_last_time = now;
        }
        self.waiting_last_len = self.waiting_len;
    }

    fn peak_waiting(&self) -> usize {
        self.waiting_peak.max(self.waiting_last_len)
    }

    #[inline]
    fn occupy(&mut self, nf: usize, nt: usize, now: Time) {
        self.busy += 1;
        self.out_used[nf] += 1;
        self.in_used[nt] += 1;
        self.bus_util.record(now, self.busy as f64);
    }

    #[inline]
    fn release(&mut self, nf: usize, nt: usize, now: Time) {
        debug_assert!(self.busy > 0);
        self.busy -= 1;
        self.out_used[nf] -= 1;
        self.in_used[nt] -= 1;
        self.bus_util.record(now, self.busy as f64);
    }
}

struct FfState<'a> {
    platform: &'a Platform,
    prog: &'a CompiledTrace,
    streams: Vec<Stream<'a>>,
    intra_chan: Vec<bool>,
    inv_cpu_ratio: f64,
    compute_perturbed: bool,
    noise_on: bool,
    burst_pre: Vec<f64>,
    chan_stretch: Vec<f64>,
    link: LinkPerturb,
    send_seq: Vec<u64>,
    eager_threshold: u64,
    send_overhead: Time,
    recv_overhead: Time,
    flight_eager: Time,
    flight_rendezvous: Time,
    flight_intra: Time,
    xmit_inter: XmitMemo,
    xmit_intra: XmitMemo,
    queue: VQueue,
    procs: Vec<Proc>,
    transfers: Vec<Transfer>,
    recv_posts: Vec<RecvPost>,
    channels: Vec<Channel>,
    net: FfNet,
    collectives: CollectiveTracker,
    p2p_messages: u64,
    p2p_bytes: u64,
    /// Disables compute-run coalescing (one sub-burst per event), pairing
    /// with the queue's `bypass` to force the full per-event fallback.
    force_fallback: bool,
    /// End of the last retired (coalesced) compute window — the window
    /// proof implies these are monotone across the whole run, checked in
    /// debug builds.
    last_window_end: Time,
}

impl<'a> FfState<'a> {
    fn new(platform: &'a Platform, prog: &'a CompiledTrace) -> Self {
        Self::with_fallback(platform, prog, false)
    }

    /// `FfState` with the per-event fallback forced everywhere: no
    /// virtual buffer, no compute-run coalescing. Exists for the
    /// differential tests — a forced run must agree with the normal run
    /// event for event (observable as an identical `ReplayResult`).
    fn with_fallback(platform: &'a Platform, prog: &'a CompiledTrace, force: bool) -> Self {
        let n = prog.rank_count();
        let model = platform.perturbation();
        let inv_cpu_ratio = 1.0 / platform.cpu_ratio();
        let compute_perturbed = model.has_compute_effects();
        let burst_pre = if compute_perturbed {
            (0..n as u32)
                .map(|r| model.burst_prefactor(inv_cpu_ratio, r, platform.node_of(r)))
                .collect()
        } else {
            Vec::new()
        };
        let chan_stretch = if model.link_degradation() > 0.0 {
            prog.channels()
                .iter()
                .map(|c| model.link_factor(c.src.get(), c.dst.get()))
                .collect()
        } else {
            Vec::new()
        };
        let (mut sends, mut recvs) = (0usize, 0usize);
        for r in 0..n {
            for op in prog.rank(r).ops() {
                match op {
                    RecordKind::Send | RecordKind::ISend => sends += 1,
                    RecordKind::Recv | RecordKind::IRecv => recvs += 1,
                    _ => {}
                }
            }
        }
        FfState {
            platform,
            prog,
            streams: (0..n)
                .map(|r| {
                    let rp = prog.rank(r);
                    Stream {
                        ops: rp.ops(),
                        a: rp.a(),
                        b: rp.b(),
                        payload: rp.payload(),
                        burst_ps: rp.burst_ps(),
                        wait_slots: rp.wait_slots(),
                    }
                })
                .collect(),
            intra_chan: prog
                .channels()
                .iter()
                .map(|c| platform.node_of(c.src.get()) == platform.node_of(c.dst.get()))
                .collect(),
            inv_cpu_ratio,
            compute_perturbed,
            noise_on: model.noise_level() > 0.0,
            burst_pre,
            chan_stretch,
            link: LinkPerturb::new(platform),
            send_seq: if platform.perturbation().has_link_effects() {
                vec![0; prog.channels().len()]
            } else {
                Vec::new()
            },
            eager_threshold: platform.eager_threshold(),
            send_overhead: platform.send_overhead(),
            recv_overhead: platform.recv_overhead(),
            flight_eager: platform.latency(),
            flight_rendezvous: platform.latency() + platform.rendezvous_latency(),
            flight_intra: platform.intra_node_latency(),
            xmit_inter: XmitMemo::default(),
            xmit_intra: XmitMemo::default(),
            queue: VQueue::new(force),
            procs: (0..n)
                .map(|r| Proc {
                    cursor: 0,
                    clock: Time::ZERO,
                    blocked: None,
                    coll_seq: 0,
                    slots: vec![ReqState::InFlight; prog.rank(r).slot_count() as usize],
                    compute: Time::ZERO,
                    finished: None,
                    overhead_paid: false,
                    burst_pos: 0,
                    bursts_left: 0,
                    wait_pos: 0,
                })
                .collect(),
            transfers: Vec::with_capacity(sends),
            recv_posts: Vec::with_capacity(recvs),
            channels: (0..prog.channels().len())
                .map(|_| Channel::default())
                .collect(),
            net: FfNet::new(platform, n),
            collectives: CollectiveTracker::new(n),
            p2p_messages: 0,
            p2p_bytes: 0,
            force_fallback: force,
            last_window_end: Time::ZERO,
        }
    }

    fn run(&mut self) -> Result<ReplayResult, FfAbort> {
        for r in 0..self.procs.len() {
            self.queue.schedule(Time::ZERO, Event::resume(r));
        }
        while let Some((t, ev)) = self.queue.pop() {
            let idx = ev.idx();
            match ev.kind() {
                EV_RESUME => {
                    if self.procs[idx].bursts_left > 0 {
                        self.burst_step(idx);
                    } else {
                        self.step(idx);
                    }
                }
                EV_SENT => self.transfer_sent(idx, t),
                EV_DONE => self.transfer_done(idx, t),
                _ => self.launch_transfer(idx, t),
            }
        }
        if self.procs.iter().any(|p| p.finished.is_none()) {
            return Err(FfAbort);
        }
        let rank_finish: Vec<Time> = self
            .procs
            .iter()
            .map(|p| p.finished.expect("all finished"))
            .collect();
        let total_time = rank_finish.iter().copied().max().unwrap_or(Time::ZERO);
        Ok(ReplayResult {
            name: self.prog.name().to_string(),
            total_time,
            rank_compute: self.procs.iter().map(|p| p.compute).collect(),
            rank_finish,
            p2p_messages: self.p2p_messages,
            p2p_bytes: self.p2p_bytes,
            collective_count: self.collectives.instance_count() as u64,
            mean_busy_buses: self.net.bus_util.mean(total_time),
            peak_busy_buses: self.net.bus_util.peak(),
            peak_waiting_transfers: self.net.peak_waiting(),
        })
    }

    #[inline]
    fn transmission_time(&mut self, intra: bool, bytes: u64, chan: u32) -> Time {
        if intra {
            let bw = self.platform.intra_node_bandwidth();
            self.xmit_intra.get(bytes, |b| bw.transfer_time(b))
        } else {
            let bw = self.platform.bandwidth();
            let base = self.xmit_inter.get(bytes, |b| bw.transfer_time(b));
            if self.chan_stretch.is_empty() {
                base
            } else {
                base.scale_f64(self.chan_stretch[chan as usize])
            }
        }
    }

    #[inline]
    fn sub_burst(&self, r: usize, idx: usize, ps: u64) -> Time {
        let base = Time::from_ps(ps);
        if !self.compute_perturbed {
            // scale_f64(1.0) is the identity below 2^53 ps (the f64
            // round-trip is exact there), so the multiply is skippable
            // bit-for-bit.
            if self.inv_cpu_ratio == 1.0 && ps < (1u64 << 53) {
                return base;
            }
            return base.scale_f64(self.inv_cpu_ratio);
        }
        let pre = self.burst_pre[r];
        if self.noise_on {
            let noise = self
                .platform
                .perturbation()
                .noise_factor(r as u32, idx as u64);
            base.scale_f64(pre * noise)
        } else {
            base.scale_f64(pre)
        }
    }

    #[inline]
    fn flight_time(&self, intra: bool, rendezvous: bool) -> Time {
        if intra {
            self.flight_intra
        } else if rendezvous {
            self.flight_rendezvous
        } else {
            self.flight_eager
        }
    }

    /// Rescans the waiters a just-released `(nf, nt)` pair could admit —
    /// identical order and start decisions to the compiled engine's full
    /// FIFO scan (`Network::start_eligible_into`). Only waiters parked
    /// under `nf`'s sender side or `nt`'s receiver side are candidates:
    /// every other waiter was blocked on at least one busy resource after
    /// the previous scan and none of its resources were freed, so the
    /// full scan would skip it. Candidates are visited in global FIFO
    /// (seq) order by merging the two node queues; blocked heads are
    /// passed over exactly like the full scan, and the merge stops early
    /// once the freed pair is saturated again (every remaining candidate
    /// needs one of the two saturated links).
    fn pump_pair(&mut self, nf: usize, nt: usize, now: Time) {
        let mut oi = 0usize;
        let mut ii = 0usize;
        let mut started = false;
        loop {
            let out_open = self.net.out_used[nf] < self.net.out_limit;
            let in_open = self.net.in_used[nt] < self.net.in_limit;
            // Skip dead entries (tombstoned twins of started waiters) at
            // the current scan positions.
            let oc = if out_open {
                loop {
                    match self.net.out_q[nf].get(oi) {
                        Some(e) if !self.transfers[e.tid as usize].waiting => {
                            if oi == 0 {
                                self.net.out_q[nf].pop_front();
                            } else {
                                oi += 1;
                            }
                        }
                        other => break other.copied(),
                    }
                }
            } else {
                None
            };
            let ic = if in_open {
                loop {
                    match self.net.in_q[nt].get(ii) {
                        Some(e) if !self.transfers[e.tid as usize].waiting => {
                            if ii == 0 {
                                self.net.in_q[nt].pop_front();
                            } else {
                                ii += 1;
                            }
                        }
                        other => break other.copied(),
                    }
                }
            } else {
                None
            };
            // Next candidate in global FIFO order; a full-pair waiter
            // (both endpoints on the released pair) appears in both
            // queues with the same seq and is visited once.
            let (ent, from_out, both) = match (oc, ic) {
                (None, None) => break,
                (Some(o), None) => (o, true, false),
                (None, Some(i)) => (i, false, false),
                (Some(o), Some(i)) => {
                    if o.seq < i.seq {
                        (o, true, false)
                    } else if i.seq < o.seq {
                        (i, false, false)
                    } else {
                        (o, true, true)
                    }
                }
            };
            let (cnf, cnt) = if from_out {
                (nf, ent.other as usize)
            } else {
                (ent.other as usize, nt)
            };
            if self.net.out_used[cnf] < self.net.out_limit
                && self.net.in_used[cnt] < self.net.in_limit
            {
                let tid = ent.tid as usize;
                self.transfers[tid].waiting = false;
                self.net.waiting_len -= 1;
                started = true;
                self.net.occupy(cnf, cnt, now);
                let (bytes, chan) = (self.transfers[tid].bytes, self.transfers[tid].chan);
                let dur = self.transmission_time(false, bytes, chan);
                self.queue.schedule(now + dur, Event::sent(tid));
            }
            // Advance past the candidate whether it started (its entries
            // are now tombstones) or stays blocked (pass-blocked-head).
            if from_out {
                if oi == 0 && !self.transfers[ent.tid as usize].waiting {
                    self.net.out_q[nf].pop_front();
                } else {
                    oi += 1;
                }
                if both {
                    if ii == 0 && !self.transfers[ent.tid as usize].waiting {
                        self.net.in_q[nt].pop_front();
                    } else {
                        ii += 1;
                    }
                }
            } else if ii == 0 && !self.transfers[ent.tid as usize].waiting {
                self.net.in_q[nt].pop_front();
            } else {
                ii += 1;
            }
        }
        if started {
            self.net.note_waiting(now);
        }
    }

    fn burst_step(&mut self, r: usize) {
        let now = self.procs[r].clock;
        let left = self.procs[r].bursts_left as usize;
        let pos = self.procs[r].burst_pos;
        debug_assert!(left > 0);
        let arena = &self.streams[r].burst_ps[pos..pos + left];
        // The jump window is proven against both event stores: nothing may
        // fire before the absorbed run's end. Virtual events are part of
        // "the machine" exactly like heap events here — the tie-break
        // analysis is the compiled engine's, unchanged.
        let peek = match (
            self.queue.real.peek_time(),
            self.queue.vbuf.iter().map(|&(t, _)| t).min(),
        ) {
            (None, None) => None,
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (Some(a), Some(b)) => Some(a.min(b)),
        };
        let mut total = self.sub_burst(r, pos, arena[0]);
        let mut end = now + total;
        let mut consumed = 1;
        while consumed < left && !self.force_fallback {
            let dur = self.sub_burst(r, pos + consumed, arena[consumed]);
            let next_end = end + dur;
            let quiet = match peek {
                None => true,
                Some(t) => t >= next_end && t > now,
            };
            if !quiet {
                break;
            }
            total += dur;
            end = next_end;
            consumed += 1;
        }
        if consumed > 1 {
            // The window proof (`peek >= end` for every absorbed step)
            // makes retired-window end times monotone across the run:
            // every pending and future event sits at or past this end.
            debug_assert!(
                end >= self.last_window_end,
                "retired window ends out of order: {end:?} after {:?}",
                self.last_window_end
            );
            self.last_window_end = end;
        }
        let p = &mut self.procs[r];
        p.compute += total;
        p.clock = end;
        p.burst_pos += consumed;
        p.bursts_left -= consumed as u32;
        self.queue.schedule(end, Event::resume(r));
    }

    fn step(&mut self, r: usize) {
        debug_assert!(self.procs[r].blocked.is_none(), "stepping a blocked rank");
        let stream = self.streams[r];
        loop {
            let cursor = self.procs[r].cursor;
            if cursor >= stream.ops.len() {
                let at = self.procs[r].clock;
                self.procs[r].finished = Some(at);
                return;
            }
            let now = self.procs[r].clock;
            match stream.ops[cursor] {
                RecordKind::Burst => {
                    let p = &mut self.procs[r];
                    p.bursts_left = stream.a[cursor];
                    p.cursor += 1;
                    self.burst_step(r);
                    return;
                }
                RecordKind::Marker => {
                    self.procs[r].cursor += 1;
                }
                RecordKind::Send => {
                    if self.charge_send_overhead(r, now) {
                        return;
                    }
                    let bytes = stream.payload[cursor];
                    let rendezvous = bytes > self.eager_threshold;
                    let kind = if rendezvous {
                        SenderKind::Blocking
                    } else {
                        SenderKind::Fire
                    };
                    let chan = stream.a[cursor];
                    let tid = self.create_transfer(r, chan, bytes, kind);
                    self.post_send(tid, chan, now);
                    self.procs[r].cursor += 1;
                    if rendezvous {
                        self.procs[r].blocked = Some(Blocker::SendDone(tid));
                        return;
                    }
                }
                RecordKind::ISend => {
                    if self.charge_send_overhead(r, now) {
                        return;
                    }
                    let bytes = stream.payload[cursor];
                    let rendezvous = bytes > self.eager_threshold;
                    let slot = stream.b[cursor];
                    let kind = if rendezvous {
                        SenderKind::Request(slot)
                    } else {
                        SenderKind::Fire
                    };
                    let chan = stream.a[cursor];
                    let tid = self.create_transfer(r, chan, bytes, kind);
                    self.procs[r].slots[slot as usize] = if rendezvous {
                        ReqState::InFlight
                    } else {
                        ReqState::Done { at: now, tid }
                    };
                    self.post_send(tid, chan, now);
                    self.procs[r].cursor += 1;
                }
                RecordKind::Recv => {
                    let pid = self.post_recv(r, NONE_U32, stream.a[cursor], now);
                    self.procs[r].cursor += 1;
                    match self.recv_posts[pid].done {
                        Some(done) => {
                            debug_assert!(done >= now);
                            if done > now {
                                self.procs[r].clock = done;
                                self.queue.schedule(done, Event::resume(r));
                                return;
                            }
                        }
                        None => {
                            self.procs[r].blocked = Some(Blocker::Recv(pid));
                            return;
                        }
                    }
                }
                RecordKind::IRecv => {
                    let slot = stream.b[cursor];
                    let pid = self.post_recv(r, slot, stream.a[cursor], now);
                    self.procs[r].slots[slot as usize] = match self.recv_posts[pid].done {
                        Some(done) => {
                            debug_assert_ne!(self.recv_posts[pid].transfer, NONE_U32);
                            ReqState::Done {
                                at: done,
                                tid: self.recv_posts[pid].transfer as usize,
                            }
                        }
                        None => ReqState::InFlight,
                    };
                    self.procs[r].cursor += 1;
                }
                RecordKind::Wait => {
                    let slot = stream.a[cursor];
                    if self.enter_wait(r, Slots::One(slot), now) {
                        return;
                    }
                }
                RecordKind::WaitAll => {
                    let len = stream.a[cursor] as usize;
                    let start = self.procs[r].wait_pos;
                    self.procs[r].wait_pos += len;
                    if self.enter_wait(r, Slots::Arena(start, len), now) {
                        return;
                    }
                }
                op => {
                    let coll = collective_of(op);
                    let bytes = stream.payload[cursor];
                    let seq = self.procs[r].coll_seq;
                    self.procs[r].coll_seq += 1;
                    self.procs[r].cursor += 1;
                    match self
                        .collectives
                        .arrive(seq, coll, bytes, now, self.platform)
                    {
                        Some(done) => {
                            for (q, proc) in self.procs.iter_mut().enumerate() {
                                if proc.blocked == Some(Blocker::Collective(seq)) {
                                    proc.blocked = None;
                                    proc.clock = done;
                                    self.queue.schedule(done, Event::resume(q));
                                }
                            }
                            self.procs[r].clock = done;
                            self.queue.schedule(done, Event::resume(r));
                            return;
                        }
                        None => {
                            self.procs[r].blocked = Some(Blocker::Collective(seq));
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Returns true if the rank blocked or yielded (caller must return).
    fn enter_wait(&mut self, r: usize, slots: Slots, now: Time) -> bool {
        let mut remaining = ReqGroup::new();
        let mut latest = now;
        let one;
        let wait_slots: &[u32] = match slots {
            Slots::One(s) => {
                one = [s];
                &one
            }
            Slots::Arena(start, len) => &self.streams[r].wait_slots[start..start + len],
        };
        let p = &mut self.procs[r];
        for &slot in wait_slots {
            match p.slots[slot as usize] {
                ReqState::Done { at, .. } => {
                    if at > latest {
                        latest = at;
                    }
                }
                ReqState::InFlight => remaining.push(slot),
            }
        }
        p.cursor += 1;
        if remaining.is_empty() {
            if latest > now {
                p.clock = latest;
                self.queue.schedule(latest, Event::resume(r));
                return true;
            }
            false
        } else {
            p.blocked = Some(Blocker::Reqs(remaining));
            true
        }
    }

    fn charge_send_overhead(&mut self, r: usize, now: Time) -> bool {
        let overhead = self.send_overhead;
        if overhead.is_zero() {
            return false;
        }
        let p = &mut self.procs[r];
        if p.overhead_paid {
            p.overhead_paid = false;
            return false;
        }
        p.overhead_paid = true;
        p.clock = now + overhead;
        let at = p.clock;
        self.queue.schedule(at, Event::resume(r));
        true
    }

    fn create_transfer(
        &mut self,
        from: usize,
        chan: u32,
        bytes: u64,
        sender_kind: SenderKind,
    ) -> TransferId {
        let tid = self.transfers.len();
        let (to, tag) = {
            let e = &self.prog.channels()[chan as usize];
            (e.dst, e.tag)
        };
        let intra = self.intra_chan[chan as usize];
        let rendezvous = sender_kind != SenderKind::Fire;
        let jitter = if intra || self.send_seq.is_empty() {
            Time::ZERO
        } else {
            let seq = self.send_seq[chan as usize];
            self.send_seq[chan as usize] += 1;
            self.link.jitter(Rank::new(from as u32), to, tag, seq)
        };
        let fr = Rank::new(from as u32);
        self.transfers.push(Transfer {
            from: fr,
            to,
            nf: self.net.node(fr) as u32,
            nt: self.net.node(to) as u32,
            bytes,
            rendezvous,
            intra,
            waiting: false,
            sender_kind,
            recv: NONE_U32,
            enqueued: false,
            chan,
            jitter,
            arrived: None,
            next: NONE_U32,
        });
        self.p2p_messages += 1;
        self.p2p_bytes += bytes;
        tid
    }

    fn post_send(&mut self, tid: TransferId, channel: u32, now: Time) {
        let head = self.channels[channel as usize].recv_head;
        let matched = if head != NONE_U32 {
            let pid = head as usize;
            let next = self.recv_posts[pid].next;
            let ch = &mut self.channels[channel as usize];
            ch.recv_head = next;
            if next == NONE_U32 {
                ch.recv_tail = NONE_U32;
            }
            self.transfers[tid].recv = head;
            self.recv_posts[pid].transfer = tid as u32;
            true
        } else {
            let tail = self.channels[channel as usize].send_tail;
            if tail == NONE_U32 {
                self.channels[channel as usize].send_head = tid as u32;
            } else {
                self.transfers[tail as usize].next = tid as u32;
            }
            self.channels[channel as usize].send_tail = tid as u32;
            false
        };
        let ready = !self.transfers[tid].rendezvous || matched;
        if ready {
            self.start_transfer(tid, now);
        }
    }

    fn start_transfer(&mut self, tid: TransferId, now: Time) {
        debug_assert!(!self.transfers[tid].enqueued);
        self.transfers[tid].enqueued = true;
        if !self.transfers[tid].intra {
            let (from, to) = (self.transfers[tid].from, self.transfers[tid].to);
            if let Some(up) = self.link.outage_end(from, to, now) {
                self.queue.schedule(up, Event::retry(tid));
                return;
            }
        }
        self.launch_transfer(tid, now);
    }

    fn launch_transfer(&mut self, tid: TransferId, now: Time) {
        if self.transfers[tid].intra {
            // Supported platforms have an uncontended intra-node domain:
            // the transfer starts immediately, bypassing the network.
            let (bytes, chan) = {
                let t = &self.transfers[tid];
                (t.bytes, t.chan)
            };
            let dur = self.transmission_time(true, bytes, chan);
            self.queue.schedule(now + dur, Event::sent(tid));
        } else {
            let (nf, nt) = (
                self.transfers[tid].nf as usize,
                self.transfers[tid].nt as usize,
            );
            if self.net.out_used[nf] < self.net.out_limit
                && self.net.in_used[nt] < self.net.in_limit
            {
                // Free pair: the full scan would admit exactly this
                // transfer (every parked waiter stays blocked — nothing
                // was freed) and the transient push/pop cancels out of
                // the persisted queue-length statistic.
                self.net.occupy(nf, nt, now);
                let (bytes, chan) = (self.transfers[tid].bytes, self.transfers[tid].chan);
                let dur = self.transmission_time(false, bytes, chan);
                self.queue.schedule(now + dur, Event::sent(tid));
                self.net.note_waiting(now);
            } else {
                // Busy pair: the rescan would admit nothing (the new
                // transfer is the only change since the last scan left
                // every waiter blocked) — park it under both nodes.
                let seq = self.net.enq_seq;
                self.net.enq_seq += 1;
                let tid32 = tid as u32;
                self.transfers[tid].waiting = true;
                self.net.out_q[nf].push_back(WaitEnt {
                    seq,
                    tid: tid32,
                    other: nt as u32,
                });
                self.net.in_q[nt].push_back(WaitEnt {
                    seq,
                    tid: tid32,
                    other: nf as u32,
                });
                self.net.waiting_len += 1;
                self.net.note_waiting(now);
            }
        }
    }

    fn complete_request(&mut self, r: usize, slot: u32, at: Time, tid: TransferId) {
        let proc = &mut self.procs[r];
        let unblock = match &mut proc.blocked {
            Some(Blocker::Reqs(set)) if set.contains(slot) => {
                set.remove(slot);
                set.is_empty()
            }
            _ => {
                proc.slots[slot as usize] = ReqState::Done { at, tid };
                false
            }
        };
        if unblock {
            let p = &mut self.procs[r];
            p.blocked = None;
            p.clock = at;
            self.queue.schedule(at, Event::resume(r));
        }
    }

    fn post_recv(&mut self, r: usize, slot: u32, channel: u32, now: Time) -> usize {
        let pid = self.recv_posts.len();
        self.recv_posts.push(RecvPost {
            rank: r as u32,
            slot,
            transfer: NONE_U32,
            done: None,
            next: NONE_U32,
        });
        let head = self.channels[channel as usize].send_head;
        if head != NONE_U32 {
            let tid = head as usize;
            let next = self.transfers[tid].next;
            let ch = &mut self.channels[channel as usize];
            ch.send_head = next;
            if next == NONE_U32 {
                ch.send_tail = NONE_U32;
            }
            self.transfers[tid].recv = pid as u32;
            self.recv_posts[pid].transfer = head;
            if self.transfers[tid].arrived.is_some() {
                self.recv_posts[pid].done = Some(now + self.recv_overhead);
            } else if !self.transfers[tid].enqueued {
                self.start_transfer(tid, now);
            }
        } else {
            let tail = self.channels[channel as usize].recv_tail;
            if tail == NONE_U32 {
                self.channels[channel as usize].recv_head = pid as u32;
            } else {
                self.recv_posts[tail as usize].next = pid as u32;
            }
            self.channels[channel as usize].recv_tail = pid as u32;
        }
        pid
    }

    fn transfer_sent(&mut self, tid: TransferId, at: Time) {
        let (from, nf, nt, sender_kind, intra, rendezvous, jitter) = {
            let t = &self.transfers[tid];
            (
                t.from,
                t.nf as usize,
                t.nt as usize,
                t.sender_kind,
                t.intra,
                t.rendezvous,
                t.jitter,
            )
        };
        if !intra {
            self.net.release(nf, nt, at);
        }

        match sender_kind {
            SenderKind::Fire => {}
            SenderKind::Blocking => {
                let s = from.index();
                debug_assert_eq!(self.procs[s].blocked, Some(Blocker::SendDone(tid)));
                let p = &mut self.procs[s];
                p.blocked = None;
                p.clock = at;
                self.queue.schedule(at, Event::resume(s));
            }
            SenderKind::Request(slot) => {
                self.complete_request(from.index(), slot, at, tid);
            }
        }

        let flight = self.flight_time(intra, rendezvous) + jitter;
        self.queue.schedule(at + flight, Event::done(tid));
        if !intra && (!self.net.out_q[nf].is_empty() || !self.net.in_q[nt].is_empty()) {
            // The freed pair admits a waiter only if one is parked on it.
            self.pump_pair(nf, nt, at);
        }
    }

    fn transfer_done(&mut self, tid: TransferId, at: Time) {
        self.transfers[tid].arrived = Some(at);
        let recv = self.transfers[tid].recv;
        if recv != NONE_U32 {
            let pid = recv as usize;
            let done = at + self.recv_overhead;
            self.recv_posts[pid].done = Some(done);
            let r = self.recv_posts[pid].rank as usize;
            let slot = self.recv_posts[pid].slot;
            if slot == NONE_U32 {
                debug_assert_eq!(self.procs[r].blocked, Some(Blocker::Recv(pid)));
                let p = &mut self.procs[r];
                p.blocked = None;
                p.clock = done;
                self.queue.schedule(done, Event::resume(r));
            } else {
                self.complete_request(r, slot, done, tid);
            }
        }
    }
}

enum Slots {
    One(u32),
    Arena(usize, usize),
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlsim_core::{Instr, MipsRate, RankTrace, Record, RequestId, Tag, TraceIndex, TraceSet};

    fn mips() -> MipsRate {
        MipsRate::new(1000).unwrap()
    }

    fn platform_1us_1gb() -> Platform {
        Platform::builder()
            .latency(Time::from_us(1))
            .bandwidth_bytes_per_sec(1.0e9)
            .unwrap()
            .build()
    }

    fn trace(ranks: Vec<Vec<Record>>) -> TraceSet {
        TraceSet::new(
            "test",
            mips(),
            ranks.into_iter().map(RankTrace::from_records).collect(),
        )
    }

    fn compile(ts: &TraceSet) -> CompiledTrace {
        let index = TraceIndex::build(ts).expect("valid");
        CompiledTrace::compile(ts, &index).expect("compiles")
    }

    fn assert_ff_matches(platform: Platform, ts: &TraceSet) {
        let sim = Simulator::new(platform);
        let prog = compile(ts);
        let compiled = sim.run_compiled(&prog).unwrap();
        let ff = sim.run_fastforward(&prog).unwrap();
        assert_eq!(compiled, ff);
    }

    #[test]
    fn fastforward_matches_compiled_on_mixed_trace() {
        let reqs: Vec<RequestId> = (0..4).map(RequestId::new).collect();
        let mut r0: Vec<Record> = vec![Record::Burst {
            instr: Instr::new(700),
        }];
        for &req in &reqs {
            r0.push(Record::ISend {
                to: Rank::new(1),
                bytes: 100_000,
                tag: Tag::new(req.get() as u64),
                req,
            });
        }
        r0.push(Record::WaitAll { reqs: reqs.clone() });
        r0.push(Record::Barrier);
        let mut r1: Vec<Record> = reqs
            .iter()
            .map(|&req| Record::Recv {
                from: Rank::new(0),
                bytes: 100_000,
                tag: Tag::new(req.get() as u64),
            })
            .collect();
        r1.push(Record::Barrier);
        assert_ff_matches(platform_1us_1gb(), &trace(vec![r0, r1]));
    }

    #[test]
    fn fastforward_matches_under_full_perturbation() {
        use ovlsim_core::PerturbationModel;
        let mk = |to: u32, from: u32| {
            vec![
                Record::Burst {
                    instr: Instr::new(2500),
                },
                Record::Send {
                    to: Rank::new(to),
                    bytes: 500,
                    tag: Tag::new(7),
                },
                Record::Recv {
                    from: Rank::new(from),
                    bytes: 200_000,
                    tag: Tag::new(8),
                },
                Record::Barrier,
            ]
        };
        let swap = |to: u32, from: u32| {
            vec![
                Record::Recv {
                    from: Rank::new(from),
                    bytes: 500,
                    tag: Tag::new(7),
                },
                Record::Send {
                    to: Rank::new(to),
                    bytes: 200_000,
                    tag: Tag::new(8),
                },
                Record::Barrier,
            ]
        };
        let ts = trace(vec![mk(2, 2), mk(3, 3), swap(0, 0), swap(1, 1)]);
        let model = PerturbationModel::new(0xBEEF)
            .with_noise(0.2)
            .unwrap()
            .with_stragglers(&[2], 1.7)
            .unwrap()
            .with_link_degradation(0.3)
            .unwrap()
            .with_latency_jitter(Time::from_us(2))
            .with_faults(Time::from_us(40), Time::from_us(9))
            .unwrap();
        let p = Platform::builder()
            .latency(Time::from_us(1))
            .bandwidth_bytes_per_sec(1.0e9)
            .unwrap()
            .perturbation(model)
            .build();
        assert_ff_matches(p, &ts);
    }

    #[test]
    fn fastforward_delegates_finite_bus_platforms() {
        // A bus-limited platform takes the run_compiled fallback wholesale;
        // the result must still agree.
        let ts = trace(vec![
            vec![Record::Send {
                to: Rank::new(1),
                bytes: 1000,
                tag: Tag::new(0),
            }],
            vec![Record::Recv {
                from: Rank::new(0),
                bytes: 1000,
                tag: Tag::new(0),
            }],
        ]);
        let p = Platform::builder()
            .latency(Time::from_us(1))
            .bandwidth_bytes_per_sec(1.0e9)
            .unwrap()
            .buses(Some(1))
            .build();
        assert_ff_matches(p, &ts);
    }

    #[test]
    fn fastforward_reports_identical_deadlock() {
        // A circular wait (both ranks receive before sending) compiles
        // cleanly but stalls both engines with the same diagnosis.
        let ts = trace(vec![
            vec![
                Record::Recv {
                    from: Rank::new(1),
                    bytes: 64,
                    tag: Tag::new(0),
                },
                Record::Send {
                    to: Rank::new(1),
                    bytes: 64,
                    tag: Tag::new(1),
                },
            ],
            vec![
                Record::Recv {
                    from: Rank::new(0),
                    bytes: 64,
                    tag: Tag::new(1),
                },
                Record::Send {
                    to: Rank::new(0),
                    bytes: 64,
                    tag: Tag::new(0),
                },
            ],
        ]);
        let sim = Simulator::new(platform_1us_1gb());
        let prog = compile(&ts);
        let compiled = sim.run_compiled(&prog).unwrap_err();
        let ff = sim.run_fastforward(&prog).unwrap_err();
        assert_eq!(format!("{compiled}"), format!("{ff}"));
    }

    #[test]
    fn fastforward_matches_on_rendezvous_chains() {
        // Rendezvous traffic exercises blocking sends and the
        // recv-triggered transfer start path.
        let pairs: Vec<Vec<Record>> = (0..4)
            .map(|r| {
                let peer = (r + 2) % 4;
                if r < 2 {
                    vec![
                        Record::Send {
                            to: Rank::new(peer),
                            bytes: 300_000,
                            tag: Tag::new(1),
                        },
                        Record::Recv {
                            from: Rank::new(peer),
                            bytes: 300_000,
                            tag: Tag::new(2),
                        },
                    ]
                } else {
                    vec![
                        Record::Recv {
                            from: Rank::new(peer),
                            bytes: 300_000,
                            tag: Tag::new(1),
                        },
                        Record::Send {
                            to: Rank::new(peer),
                            bytes: 300_000,
                            tag: Tag::new(2),
                        },
                    ]
                }
            })
            .collect();
        assert_ff_matches(platform_1us_1gb(), &trace(pairs));
    }

    mod window_props {
        use super::*;
        use ovlsim_core::PerturbationModel;
        use proptest::prelude::*;

        /// Ring exchange: every rank computes, isends to its successor,
        /// receives from its predecessor, then waits on all its sends and
        /// synchronizes. Deadlock-free for any byte size (blocking sends
        /// never occur), and the lockstep structure maximizes same-instant
        /// ties — the case the window proof must refuse to certify.
        fn ring(ranks: u32, iters: u32, bytes: u64, burst: u64) -> TraceSet {
            let recs = (0..ranks)
                .map(|r| {
                    let mut recs = Vec::new();
                    for i in 0..iters {
                        recs.push(Record::Burst {
                            instr: Instr::new(burst * (1 + (r as u64 + i as u64) % 3)),
                        });
                        recs.push(Record::ISend {
                            to: Rank::new((r + 1) % ranks),
                            bytes,
                            tag: Tag::new(i as u64),
                            req: RequestId::new(i),
                        });
                        recs.push(Record::Recv {
                            from: Rank::new((r + ranks - 1) % ranks),
                            bytes,
                            tag: Tag::new(i as u64),
                        });
                    }
                    recs.push(Record::WaitAll {
                        reqs: (0..iters).map(RequestId::new).collect(),
                    });
                    recs.push(Record::Barrier);
                    RankTrace::from_records(recs)
                })
                .collect();
            TraceSet::new("ring", mips(), recs)
        }

        fn platform_at(lat_us: u64, bw: f64, perturbed: bool) -> Platform {
            let mut b = Platform::builder();
            b.latency(Time::from_us(lat_us))
                .bandwidth_bytes_per_sec(bw)
                .unwrap();
            if perturbed {
                b.perturbation(
                    PerturbationModel::new(7)
                        .with_noise(0.1)
                        .unwrap()
                        .with_latency_jitter(Time::from_ns(300)),
                );
            }
            b.build()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Retired (coalesced) compute windows end in monotone order:
            /// the `debug_assert` in `burst_step` checks every retirement,
            /// and the result still matches the compiled engine bit for
            /// bit.
            #[test]
            fn retired_window_ends_are_monotone(
                ranks in 2u32..6,
                iters in 1u32..5,
                bytes in 1u64..200_000,
                burst in 1u64..50_000,
                lat_us in 0u64..6,
                perturbed in any::<bool>(),
            ) {
                let ts = ring(ranks, iters, bytes, burst);
                let index = TraceIndex::build(&ts).expect("valid");
                let prog = CompiledTrace::compile(&ts, &index).expect("compiles");
                let sim = Simulator::new(platform_at(lat_us, 1.0e9, perturbed));
                let compiled = sim.run_compiled(&prog).expect("replays");
                let ff = sim.run_fastforward(&prog).expect("replays");
                prop_assert_eq!(compiled, ff);
            }

            /// Forcing the per-event fallback everywhere (no virtual
            /// buffer, no window coalescing) replays the identical event
            /// sequence: the forced run, the normal run and the compiled
            /// engine agree on every observable.
            #[test]
            fn forced_fallback_agrees_event_for_event(
                ranks in 2u32..6,
                iters in 1u32..5,
                bytes in 1u64..200_000,
                burst in 1u64..50_000,
                lat_us in 0u64..6,
                perturbed in any::<bool>(),
            ) {
                let ts = ring(ranks, iters, bytes, burst);
                let index = TraceIndex::build(&ts).expect("valid");
                let prog = CompiledTrace::compile(&ts, &index).expect("compiles");
                let platform = platform_at(lat_us, 1.0e9, perturbed);
                let sim = Simulator::new(platform.clone());
                let normal = sim.run_fastforward(&prog).expect("replays");
                let forced = FfState::with_fallback(&platform, &prog, true)
                    .run()
                    .map_err(|FfAbort| "aborted")
                    .expect("replays");
                let compiled = sim.run_compiled(&prog).expect("replays");
                prop_assert_eq!(&normal, &forced, "forced fallback diverged");
                prop_assert_eq!(&normal, &compiled, "fastforward diverged");
            }
        }
    }
}
