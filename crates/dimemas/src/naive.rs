//! The pre-optimization replay engine, kept as a differential-testing
//! reference.
//!
//! This module preserves the original data-structure choices of the replay
//! simulator before the hot-path overhaul:
//!
//! * channels live in a `BTreeMap<(u32, u32, u64), Channel>` and every
//!   message pays an ordered-map walk,
//! * wait-sets are `BTreeSet<u32>` and every `WaitAll` clones its request
//!   vector,
//! * every run re-validates the trace set from scratch.
//!
//! The optimized engine in [`crate::replay`] must produce **identical**
//! [`ReplayResult`]s — the property tests in `tests/props.rs` replay random
//! traces through both and compare, and `benches/dimemas_replay.rs` uses
//! this module as the baseline for the speedup measurement. Keep the
//! semantics frozen: fix bugs in both engines or in neither.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use ovlsim_core::{validate_trace_set, Platform, Rank, Record, RequestId, Tag, Time, TraceSet};
use ovlsim_engine::EventQueue;

use crate::collective::{collective_op, CollectiveTracker};
use crate::error::SimError;
use crate::network::{LinkPerturb, Network, TransferId};
use crate::observer::{NullObserver, ProcState, ReplayObserver};
use crate::replay::ReplayResult;

/// Replays `trace` on `platform` with the pre-optimization engine.
///
/// Exposed (hidden from docs) so differential tests and benchmarks outside
/// this crate can compare against the optimized [`crate::Simulator`].
///
/// # Errors
///
/// Same contract as [`crate::Simulator::run`].
#[doc(hidden)]
pub fn replay_naive(platform: &Platform, trace: &TraceSet) -> Result<ReplayResult, SimError> {
    let issues = validate_trace_set(trace);
    if !issues.is_empty() {
        return Err(SimError::InvalidTrace { issues });
    }
    let mut state = NaiveState::new(platform, trace);
    state.run(&mut NullObserver)
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Resume(usize),
    TransferSent(TransferId),
    TransferDone(TransferId),
    /// A transfer held by a transient link outage may now enter the
    /// transport queue (faulty platforms only).
    TransferRetry(TransferId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SenderKind {
    Fire,
    Blocking,
    Request(RequestId),
}

#[derive(Debug)]
struct Transfer {
    from: Rank,
    to: Rank,
    bytes: u64,
    tag: Tag,
    rendezvous: bool,
    intra: bool,
    sender_kind: SenderKind,
    recv: Option<usize>,
    enqueued: bool,
    started_at: Option<Time>,
    arrived: Option<Time>,
    /// Per-message latency jitter ([`Time::ZERO`] unless perturbed).
    jitter: Time,
}

#[derive(Debug)]
struct RecvPost {
    rank: usize,
    req: Option<RequestId>,
    transfer: Option<TransferId>,
    done: Option<Time>,
}

#[derive(Debug, Default)]
struct Channel {
    unmatched_sends: VecDeque<TransferId>,
    unmatched_recvs: VecDeque<usize>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Blocker {
    Recv(usize),
    SendDone(TransferId),
    Reqs(BTreeSet<u32>),
    Collective(usize),
}

#[derive(Debug, Clone, Copy)]
enum ReqState {
    InFlight,
    Done(Time),
}

#[derive(Debug)]
struct Proc {
    cursor: usize,
    clock: Time,
    blocked: Option<Blocker>,
    block_start: Time,
    coll_seq: usize,
    reqs: BTreeMap<u32, ReqState>,
    compute: Time,
    finished: Option<Time>,
    overhead_paid: bool,
    /// Burst ordinal keying this rank's OS-noise draws.
    burst_seq: u64,
}

struct NaiveState<'a> {
    platform: &'a Platform,
    trace: &'a TraceSet,
    queue: EventQueue<Event>,
    procs: Vec<Proc>,
    transfers: Vec<Transfer>,
    recv_posts: Vec<RecvPost>,
    channels: BTreeMap<(u32, u32, u64), Channel>,
    network: Network,
    collectives: CollectiveTracker,
    p2p_messages: u64,
    p2p_bytes: u64,
    inv_cpu_ratio: f64,
    compute_perturbed: bool,
    link: LinkPerturb,
    /// Per-channel send sequence numbers for latency-jitter draws, keyed
    /// like the channel map (this engine has no dense channel ids).
    send_seq: BTreeMap<(u32, u32, u64), u64>,
}

impl<'a> NaiveState<'a> {
    fn new(platform: &'a Platform, trace: &'a TraceSet) -> Self {
        let n = trace.rank_count();
        NaiveState {
            platform,
            trace,
            queue: EventQueue::new(),
            procs: (0..n)
                .map(|_| Proc {
                    cursor: 0,
                    clock: Time::ZERO,
                    blocked: None,
                    block_start: Time::ZERO,
                    coll_seq: 0,
                    reqs: BTreeMap::new(),
                    compute: Time::ZERO,
                    finished: None,
                    overhead_paid: false,
                    burst_seq: 0,
                })
                .collect(),
            transfers: Vec::new(),
            recv_posts: Vec::new(),
            channels: BTreeMap::new(),
            network: Network::new(platform, n),
            collectives: CollectiveTracker::new(n),
            p2p_messages: 0,
            p2p_bytes: 0,
            inv_cpu_ratio: 1.0 / platform.cpu_ratio(),
            compute_perturbed: platform.perturbation().has_compute_effects(),
            link: LinkPerturb::new(platform),
            send_seq: BTreeMap::new(),
        }
    }

    fn run(&mut self, observer: &mut dyn ReplayObserver) -> Result<ReplayResult, SimError> {
        for r in 0..self.procs.len() {
            self.queue.schedule(Time::ZERO, Event::Resume(r));
        }
        while let Some((t, ev)) = self.queue.pop() {
            match ev {
                Event::Resume(r) => self.step(r, observer),
                Event::TransferSent(id) => self.transfer_sent(id, t, observer),
                Event::TransferDone(id) => self.transfer_done(id, t, observer),
                Event::TransferRetry(id) => self.launch_transfer(id, t),
            }
        }
        let blocked: Vec<(Rank, String)> = self
            .procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.finished.is_none())
            .map(|(r, p)| (Rank::new(r as u32), describe_blocker(p)))
            .collect();
        if !blocked.is_empty() {
            let at = self
                .procs
                .iter()
                .map(|p| p.clock)
                .max()
                .unwrap_or(Time::ZERO);
            return Err(SimError::Deadlock { at, blocked });
        }
        let rank_finish: Vec<Time> = self
            .procs
            .iter()
            .map(|p| p.finished.expect("all finished"))
            .collect();
        let total_time = rank_finish.iter().copied().max().unwrap_or(Time::ZERO);
        Ok(ReplayResult {
            name: self.trace.name().to_string(),
            total_time,
            rank_compute: self.procs.iter().map(|p| p.compute).collect(),
            rank_finish,
            p2p_messages: self.p2p_messages,
            p2p_bytes: self.p2p_bytes,
            collective_count: self.collectives.instance_count() as u64,
            mean_busy_buses: self.network.mean_busy_buses(total_time),
            peak_busy_buses: self.network.peak_busy_buses(),
            peak_waiting_transfers: self.network.peak_waiting(),
        })
    }

    fn burst_duration(&self, r: usize, seq: u64, instr: ovlsim_core::Instr) -> Time {
        let base = self.trace.mips().instr_to_time(instr);
        if self.compute_perturbed {
            let rank = r as u32;
            let node = self.platform.node_of(rank);
            base.scale_f64(self.platform.perturbation().burst_factor(
                self.inv_cpu_ratio,
                rank,
                node,
                seq,
            ))
        } else {
            base.scale_f64(self.inv_cpu_ratio)
        }
    }

    fn transmission_time(&self, t: &Transfer) -> Time {
        if t.intra {
            self.platform.intra_node_bandwidth().transfer_time(t.bytes)
        } else {
            let base = self.platform.bandwidth().transfer_time(t.bytes);
            self.link.stretch(base, t.from, t.to)
        }
    }

    fn flight_time(&self, t: &Transfer) -> Time {
        let base = if t.intra {
            self.platform.intra_node_latency()
        } else if t.rendezvous {
            self.platform.latency() + self.platform.rendezvous_latency()
        } else {
            self.platform.latency()
        };
        base + t.jitter
    }

    fn pump_network(&mut self, now: Time) {
        let transfers = &self.transfers;
        let started = self
            .network
            .start_eligible(now, |id| (transfers[id].from, transfers[id].to));
        for tid in started {
            self.transfers[tid].started_at = Some(now);
            let dur = self.transmission_time(&self.transfers[tid]);
            self.queue.schedule(now + dur, Event::TransferSent(tid));
        }
    }

    fn pump_intra(&mut self, now: Time) {
        if !self.network.intra_limited() {
            return;
        }
        let transfers = &self.transfers;
        let platform = self.platform;
        let started = self.network.start_eligible_intra(now, |id| {
            platform.node_of(transfers[id].from.get()) as usize
        });
        for tid in started {
            self.transfers[tid].started_at = Some(now);
            let dur = self.transmission_time(&self.transfers[tid]);
            self.queue.schedule(now + dur, Event::TransferSent(tid));
        }
    }

    fn step(&mut self, r: usize, observer: &mut dyn ReplayObserver) {
        debug_assert!(self.procs[r].blocked.is_none(), "stepping a blocked rank");
        let records = self.trace.ranks()[r].records();
        loop {
            let cursor = self.procs[r].cursor;
            if cursor >= records.len() {
                let at = self.procs[r].clock;
                self.procs[r].finished = Some(at);
                observer.finished(Rank::new(r as u32), at);
                return;
            }
            let now = self.procs[r].clock;
            match &records[cursor] {
                Record::Burst { instr } => {
                    let seq = self.procs[r].burst_seq;
                    self.procs[r].burst_seq += 1;
                    let dur = self.burst_duration(r, seq, *instr);
                    let end = now + dur;
                    observer.interval(Rank::new(r as u32), now, end, ProcState::Compute);
                    let p = &mut self.procs[r];
                    p.compute += dur;
                    p.clock = end;
                    p.cursor += 1;
                    self.queue.schedule(end, Event::Resume(r));
                    return;
                }
                Record::Marker { code } => {
                    observer.marker(Rank::new(r as u32), now, *code);
                    self.procs[r].cursor += 1;
                }
                Record::Send { to, bytes, tag } => {
                    if self.charge_send_overhead(r, now) {
                        return;
                    }
                    let rendezvous = *bytes > self.platform.eager_threshold();
                    let kind = if rendezvous {
                        SenderKind::Blocking
                    } else {
                        SenderKind::Fire
                    };
                    let tid = self.create_transfer(r, *to, *bytes, *tag, rendezvous, kind);
                    self.post_send(tid, now);
                    self.procs[r].cursor += 1;
                    if rendezvous {
                        let p = &mut self.procs[r];
                        p.blocked = Some(Blocker::SendDone(tid));
                        p.block_start = now;
                        return;
                    }
                }
                Record::ISend {
                    to,
                    bytes,
                    tag,
                    req,
                } => {
                    if self.charge_send_overhead(r, now) {
                        return;
                    }
                    let rendezvous = *bytes > self.platform.eager_threshold();
                    let kind = if rendezvous {
                        SenderKind::Request(*req)
                    } else {
                        SenderKind::Fire
                    };
                    let tid = self.create_transfer(r, *to, *bytes, *tag, rendezvous, kind);
                    let state = if rendezvous {
                        ReqState::InFlight
                    } else {
                        ReqState::Done(now)
                    };
                    self.procs[r].reqs.insert(req.get(), state);
                    self.post_send(tid, now);
                    self.procs[r].cursor += 1;
                }
                Record::Recv {
                    from,
                    bytes: _,
                    tag,
                } => {
                    let pid = self.post_recv(r, None, *from, *tag, now);
                    self.procs[r].cursor += 1;
                    match self.recv_posts[pid].done {
                        Some(done) => {
                            debug_assert!(done >= now);
                            if done > now {
                                self.procs[r].clock = done;
                                self.queue.schedule(done, Event::Resume(r));
                                return;
                            }
                        }
                        None => {
                            let p = &mut self.procs[r];
                            p.blocked = Some(Blocker::Recv(pid));
                            p.block_start = now;
                            return;
                        }
                    }
                }
                Record::IRecv {
                    from,
                    bytes: _,
                    tag,
                    req,
                } => {
                    let pid = self.post_recv(r, Some(*req), *from, *tag, now);
                    let state = match self.recv_posts[pid].done {
                        Some(done) => ReqState::Done(done),
                        None => ReqState::InFlight,
                    };
                    self.procs[r].reqs.insert(req.get(), state);
                    self.procs[r].cursor += 1;
                }
                Record::Wait { req } => {
                    if self.enter_wait(r, &[*req], now, observer) {
                        return;
                    }
                }
                Record::WaitAll { reqs } => {
                    // `records` borrows the trace through the shared
                    // `&'a TraceSet` field, not through `self`, so the
                    // wait-set passes by reference — the oracle allocates
                    // nothing per wait either.
                    if self.enter_wait(r, reqs, now, observer) {
                        return;
                    }
                }
                rec if rec.is_collective() => {
                    let (op, bytes) = collective_op(rec).expect("checked collective");
                    let seq = self.procs[r].coll_seq;
                    self.procs[r].coll_seq += 1;
                    self.procs[r].cursor += 1;
                    match self.collectives.arrive(seq, op, bytes, now, self.platform) {
                        Some(done) => {
                            for (q, proc) in self.procs.iter_mut().enumerate() {
                                if proc.blocked == Some(Blocker::Collective(seq)) {
                                    observer.interval(
                                        Rank::new(q as u32),
                                        proc.block_start,
                                        done,
                                        ProcState::Collective,
                                    );
                                    proc.blocked = None;
                                    proc.clock = done;
                                    self.queue.schedule(done, Event::Resume(q));
                                }
                            }
                            observer.interval(
                                Rank::new(r as u32),
                                now,
                                done,
                                ProcState::Collective,
                            );
                            self.procs[r].clock = done;
                            self.queue.schedule(done, Event::Resume(r));
                            return;
                        }
                        None => {
                            let p = &mut self.procs[r];
                            p.blocked = Some(Blocker::Collective(seq));
                            p.block_start = now;
                            return;
                        }
                    }
                }
                other => unreachable!("unhandled record {other}"),
            }
        }
    }

    fn enter_wait(
        &mut self,
        r: usize,
        reqs: &[RequestId],
        now: Time,
        observer: &mut dyn ReplayObserver,
    ) -> bool {
        let mut remaining: BTreeSet<u32> = BTreeSet::new();
        let mut latest = now;
        for req in reqs {
            match self.procs[r].reqs.remove(&req.get()) {
                Some(ReqState::Done(t)) => latest = latest.max(t),
                Some(fly) => {
                    self.procs[r].reqs.insert(req.get(), fly);
                    remaining.insert(req.get());
                }
                None => unreachable!("validated trace waits on posted requests"),
            }
        }
        self.procs[r].cursor += 1;
        if remaining.is_empty() {
            if latest > now {
                observer.interval(Rank::new(r as u32), now, latest, ProcState::WaitRequest);
                self.procs[r].clock = latest;
                self.queue.schedule(latest, Event::Resume(r));
                return true;
            }
            false
        } else {
            let p = &mut self.procs[r];
            p.blocked = Some(Blocker::Reqs(remaining));
            p.block_start = now;
            true
        }
    }

    fn charge_send_overhead(&mut self, r: usize, now: Time) -> bool {
        let overhead = self.platform.send_overhead();
        if overhead.is_zero() {
            return false;
        }
        let p = &mut self.procs[r];
        if p.overhead_paid {
            p.overhead_paid = false;
            return false;
        }
        p.overhead_paid = true;
        p.clock = now + overhead;
        let at = p.clock;
        self.queue.schedule(at, Event::Resume(r));
        true
    }

    fn create_transfer(
        &mut self,
        from: usize,
        to: Rank,
        bytes: u64,
        tag: Tag,
        rendezvous: bool,
        sender_kind: SenderKind,
    ) -> TransferId {
        let tid = self.transfers.len();
        let intra = self.platform.node_of(from as u32) == self.platform.node_of(to.get());
        // Same jitter coordinates as the prepared engine: raw channel
        // triple plus per-channel send ordinal.
        let jitter = if intra || !self.link.active() {
            Time::ZERO
        } else {
            let seq = self
                .send_seq
                .entry((from as u32, to.get(), tag.get()))
                .or_insert(0);
            let this = *seq;
            *seq += 1;
            self.link.jitter(Rank::new(from as u32), to, tag, this)
        };
        self.transfers.push(Transfer {
            from: Rank::new(from as u32),
            to,
            bytes,
            tag,
            rendezvous,
            intra,
            sender_kind,
            recv: None,
            enqueued: false,
            started_at: None,
            arrived: None,
            jitter,
        });
        self.p2p_messages += 1;
        self.p2p_bytes += bytes;
        tid
    }

    fn channel(&mut self, from: Rank, to: Rank, tag: Tag) -> &mut Channel {
        self.channels
            .entry((from.get(), to.get(), tag.get()))
            .or_default()
    }

    fn post_send(&mut self, tid: TransferId, now: Time) {
        let (from, to, tag) = {
            let t = &self.transfers[tid];
            (t.from, t.to, t.tag)
        };
        let matched = {
            let ch = self.channel(from, to, tag);
            match ch.unmatched_recvs.pop_front() {
                Some(pid) => {
                    self.transfers[tid].recv = Some(pid);
                    self.recv_posts[pid].transfer = Some(tid);
                    true
                }
                None => {
                    ch.unmatched_sends.push_back(tid);
                    false
                }
            }
        };
        let ready = !self.transfers[tid].rendezvous || matched;
        if ready {
            self.start_transfer(tid, now);
        }
    }

    fn start_transfer(&mut self, tid: TransferId, now: Time) {
        debug_assert!(!self.transfers[tid].enqueued);
        self.transfers[tid].enqueued = true;
        if !self.transfers[tid].intra {
            let (from, to) = (self.transfers[tid].from, self.transfers[tid].to);
            if let Some(up) = self.link.outage_end(from, to, now) {
                self.queue.schedule(up, Event::TransferRetry(tid));
                return;
            }
        }
        self.launch_transfer(tid, now);
    }

    fn launch_transfer(&mut self, tid: TransferId, now: Time) {
        if self.transfers[tid].intra {
            if self.network.intra_limited() {
                self.network.enqueue_intra(tid, now);
                self.pump_intra(now);
            } else {
                self.transfers[tid].started_at = Some(now);
                let dur = self.transmission_time(&self.transfers[tid]);
                self.queue.schedule(now + dur, Event::TransferSent(tid));
            }
        } else {
            self.network.enqueue(tid, now);
            self.pump_network(now);
        }
    }

    fn post_recv(
        &mut self,
        r: usize,
        req: Option<RequestId>,
        from: Rank,
        tag: Tag,
        now: Time,
    ) -> usize {
        let pid = self.recv_posts.len();
        self.recv_posts.push(RecvPost {
            rank: r,
            req,
            transfer: None,
            done: None,
        });
        let to = Rank::new(r as u32);
        let matched = {
            let ch = self.channel(from, to, tag);
            match ch.unmatched_sends.pop_front() {
                Some(tid) => Some(tid),
                None => {
                    ch.unmatched_recvs.push_back(pid);
                    None
                }
            }
        };
        if let Some(tid) = matched {
            self.transfers[tid].recv = Some(pid);
            self.recv_posts[pid].transfer = Some(tid);
            if let Some(_arrival) = self.transfers[tid].arrived {
                self.recv_posts[pid].done = Some(now + self.platform.recv_overhead());
            } else if !self.transfers[tid].enqueued {
                self.start_transfer(tid, now);
            }
        }
        pid
    }

    fn complete_request(
        &mut self,
        r: usize,
        req: RequestId,
        at: Time,
        observer: &mut dyn ReplayObserver,
    ) {
        let proc = &mut self.procs[r];
        let unblock = match &mut proc.blocked {
            Some(Blocker::Reqs(set)) if set.contains(&req.get()) => {
                set.remove(&req.get());
                proc.reqs.remove(&req.get());
                set.is_empty()
            }
            _ => {
                proc.reqs.insert(req.get(), ReqState::Done(at));
                false
            }
        };
        if unblock {
            let p = &mut self.procs[r];
            observer.interval(
                Rank::new(r as u32),
                p.block_start,
                at,
                ProcState::WaitRequest,
            );
            p.blocked = None;
            p.clock = at;
            self.queue.schedule(at, Event::Resume(r));
        }
    }

    fn transfer_sent(&mut self, tid: TransferId, at: Time, observer: &mut dyn ReplayObserver) {
        let (from, to, sender_kind, intra) = {
            let t = &self.transfers[tid];
            (t.from, t.to, t.sender_kind, t.intra)
        };
        if !intra {
            self.network.release(from, to, at);
        } else if self.network.intra_limited() {
            self.network
                .release_intra(self.platform.node_of(from.get()) as usize);
        }

        match sender_kind {
            SenderKind::Fire => {}
            SenderKind::Blocking => {
                let s = from.index();
                debug_assert_eq!(self.procs[s].blocked, Some(Blocker::SendDone(tid)));
                let p = &mut self.procs[s];
                observer.interval(from, p.block_start, at, ProcState::WaitSend);
                p.blocked = None;
                p.clock = at;
                self.queue.schedule(at, Event::Resume(s));
            }
            SenderKind::Request(req) => {
                self.complete_request(from.index(), req, at, observer);
            }
        }

        let flight = self.flight_time(&self.transfers[tid]);
        self.queue.schedule(at + flight, Event::TransferDone(tid));
        // Only the freed domain can have newly eligible transfers.
        if intra {
            self.pump_intra(at);
        } else {
            self.pump_network(at);
        }
    }

    fn transfer_done(&mut self, tid: TransferId, at: Time, observer: &mut dyn ReplayObserver) {
        let (from, to, bytes, tag, started, recv) = {
            let t = &self.transfers[tid];
            (
                t.from,
                t.to,
                t.bytes,
                t.tag,
                t.started_at.expect("done transfers started"),
                t.recv,
            )
        };
        self.transfers[tid].arrived = Some(at);
        observer.message(from, to, started, at, bytes, tag);

        if let Some(pid) = recv {
            let done = at + self.platform.recv_overhead();
            self.recv_posts[pid].done = Some(done);
            let r = self.recv_posts[pid].rank;
            match self.recv_posts[pid].req {
                None => {
                    debug_assert_eq!(self.procs[r].blocked, Some(Blocker::Recv(pid)));
                    let p = &mut self.procs[r];
                    observer.interval(
                        Rank::new(r as u32),
                        p.block_start,
                        done,
                        ProcState::WaitRecv,
                    );
                    p.blocked = None;
                    p.clock = done;
                    self.queue.schedule(done, Event::Resume(r));
                }
                Some(req) => {
                    self.complete_request(r, req, done, observer);
                }
            }
        }
    }
}

fn describe_blocker(p: &Proc) -> String {
    match &p.blocked {
        None => "runnable but starved (internal error)".to_string(),
        Some(Blocker::Recv(_)) => "blocked in recv".to_string(),
        Some(Blocker::SendDone(_)) => "blocked in rendezvous send".to_string(),
        Some(Blocker::Reqs(reqs)) => format!("blocked waiting {} requests", reqs.len()),
        Some(Blocker::Collective(seq)) => format!("blocked in collective #{seq}"),
    }
}
