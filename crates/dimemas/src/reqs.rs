//! Compact request tracking for the replay hot path.
//!
//! A rank rarely has more than a handful of outstanding non-blocking
//! requests, so the `BTreeMap<u32, ReqState>` / `BTreeSet<u32>` pair the
//! original engine used paid pointer-chasing tree costs for what is almost
//! always a few words of data. [`ReqTable`] and [`ReqGroup`] store requests
//! in flat arrays: the table is a linear-scan association list, and the
//! group keeps up to [`REQ_INLINE`] ids inline on the stack before spilling
//! to a heap vector — a `WaitAll` over a typical chunk fan-out allocates
//! nothing.

use ovlsim_core::Time;

/// State of one outstanding non-blocking request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReqState {
    /// Posted, not yet completed.
    InFlight,
    /// Completed at the recorded time by the recorded transfer (the
    /// engine's transfer-table index, kept so wait intervals can be
    /// attributed to the last-completing request's channel).
    Done {
        /// Completion time.
        at: Time,
        /// Index of the completing transfer in the engine's table.
        tid: usize,
    },
}

/// Association list from request id to [`ReqState`].
///
/// Linear scan beats ordered maps up to dozens of entries, and the entry
/// count is bounded by the rank's simultaneously outstanding requests (the
/// validator rejects duplicate posts, so the list stays small).
#[derive(Debug, Default)]
pub(crate) struct ReqTable {
    entries: Vec<(u32, ReqState)>,
}

impl ReqTable {
    pub(crate) fn new() -> Self {
        ReqTable::default()
    }

    /// Inserts or replaces the state of `req`.
    pub(crate) fn insert(&mut self, req: u32, state: ReqState) {
        match self.entries.iter_mut().find(|(id, _)| *id == req) {
            Some(entry) => entry.1 = state,
            None => self.entries.push((req, state)),
        }
    }

    /// The state of `req`, if present.
    pub(crate) fn get(&self, req: u32) -> Option<ReqState> {
        self.entries
            .iter()
            .find(|(id, _)| *id == req)
            .map(|(_, s)| *s)
    }

    /// Removes `req`, returning its state.
    pub(crate) fn remove(&mut self, req: u32) -> Option<ReqState> {
        let pos = self.entries.iter().position(|(id, _)| *id == req)?;
        Some(self.entries.swap_remove(pos).1)
    }
}

/// How many request ids a [`ReqGroup`] holds before spilling to the heap.
pub(crate) const REQ_INLINE: usize = 8;

/// The unsatisfied remainder of a wait-set, stored inline when small.
///
/// Equality is derived (order- and representation-sensitive); it is only
/// used by debug assertions that never compare two `Reqs` blockers, so set
/// semantics are not required.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ReqGroup {
    /// Up to [`REQ_INLINE`] ids on the stack; slots `len..` are zero.
    Inline { len: u8, buf: [u32; REQ_INLINE] },
    /// Spilled: an unordered heap vector.
    Heap(Vec<u32>),
}

impl ReqGroup {
    pub(crate) fn new() -> Self {
        ReqGroup::Inline {
            len: 0,
            buf: [0; REQ_INLINE],
        }
    }

    pub(crate) fn push(&mut self, req: u32) {
        match self {
            ReqGroup::Inline { len, buf } => {
                if (*len as usize) < REQ_INLINE {
                    buf[*len as usize] = req;
                    *len += 1;
                } else {
                    let mut v = buf.to_vec();
                    v.push(req);
                    *self = ReqGroup::Heap(v);
                }
            }
            ReqGroup::Heap(v) => v.push(req),
        }
    }

    pub(crate) fn contains(&self, req: u32) -> bool {
        self.as_slice().contains(&req)
    }

    /// Removes one occurrence of `req`; returns whether it was present.
    pub(crate) fn remove(&mut self, req: u32) -> bool {
        match self {
            ReqGroup::Inline { len, buf } => {
                let n = *len as usize;
                match buf[..n].iter().position(|&id| id == req) {
                    Some(pos) => {
                        buf[pos] = buf[n - 1];
                        buf[n - 1] = 0; // keep vacated slots zeroed
                        *len -= 1;
                        true
                    }
                    None => false,
                }
            }
            ReqGroup::Heap(v) => match v.iter().position(|&id| id == req) {
                Some(pos) => {
                    v.swap_remove(pos);
                    true
                }
                None => false,
            },
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            ReqGroup::Inline { len, .. } => *len as usize,
            ReqGroup::Heap(v) => v.len(),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn as_slice(&self) -> &[u32] {
        match self {
            ReqGroup::Inline { len, buf } => &buf[..*len as usize],
            ReqGroup::Heap(v) => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_insert_replaces() {
        let done = ReqState::Done {
            at: Time::from_ns(5),
            tid: 2,
        };
        let mut t = ReqTable::new();
        t.insert(3, ReqState::InFlight);
        t.insert(3, done);
        assert_eq!(t.get(3), Some(done));
        assert_eq!(t.remove(3), Some(done));
        assert_eq!(t.remove(3), None);
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn group_stays_inline_up_to_limit() {
        let mut g = ReqGroup::new();
        for i in 0..REQ_INLINE as u32 {
            g.push(i);
        }
        assert!(matches!(g, ReqGroup::Inline { .. }));
        assert_eq!(g.len(), REQ_INLINE);
        g.push(99);
        assert!(matches!(g, ReqGroup::Heap(_)));
        assert_eq!(g.len(), REQ_INLINE + 1);
        assert!(g.contains(99));
        assert!(g.contains(0));
    }

    #[test]
    fn group_remove_tracks_membership() {
        let mut g = ReqGroup::new();
        for i in [5u32, 9, 12] {
            g.push(i);
        }
        assert!(g.remove(9));
        assert!(!g.remove(9));
        assert!(!g.contains(9));
        assert!(g.contains(5) && g.contains(12));
        assert!(g.remove(5));
        assert!(g.remove(12));
        assert!(g.is_empty());
    }

    #[test]
    fn spilled_group_removes() {
        let mut g = ReqGroup::new();
        for i in 0..20u32 {
            g.push(i);
        }
        for i in (0..20u32).rev() {
            assert!(g.remove(i), "missing {i}");
        }
        assert!(g.is_empty());
    }
}
