//! Replay errors.

use std::error::Error;
use std::fmt;

use ovlsim_core::{Rank, Time, TraceIssue};

/// Errors produced by the replay simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The input trace set failed structural validation.
    InvalidTrace {
        /// The issues found (truncated for display).
        issues: Vec<TraceIssue>,
    },
    /// Replay stalled: no events remain but some ranks are still blocked.
    Deadlock {
        /// Simulated time at which progress stopped.
        at: Time,
        /// For each blocked rank: a description of what it waits on.
        blocked: Vec<(Rank, String)>,
    },
    /// The trace references more ranks than it contains.
    RankMismatch {
        /// The offending rank reference.
        rank: Rank,
        /// Communicator size.
        size: usize,
    },
    /// A prepared replay was handed a [`TraceIndex`](ovlsim_core::TraceIndex)
    /// built from a different trace (detected best-effort via trace name and
    /// rank/record counts).
    IndexMismatch {
        /// What disagreed between the index and the trace.
        reason: String,
    },
    /// An observer was attached to a burst-coalesced
    /// [`CompiledTrace`](ovlsim_core::CompiledTrace): coalescing merges
    /// compute intervals and drops markers, so the observed timeline would
    /// be coarser than the trace. Compile with
    /// [`CompiledTrace::compile_observed`](ovlsim_core::CompiledTrace::compile_observed)
    /// for timeline capture.
    CoalescedObservation,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidTrace { issues } => {
                write!(f, "trace failed validation with {} issues", issues.len())?;
                for issue in issues.iter().take(3) {
                    write!(f, "; {issue}")?;
                }
                Ok(())
            }
            SimError::Deadlock { at, blocked } => {
                write!(f, "deadlock at {at}: ")?;
                for (i, (rank, why)) in blocked.iter().take(4).enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{rank} {why}")?;
                }
                if blocked.len() > 4 {
                    write!(f, ", … {} more", blocked.len() - 4)?;
                }
                Ok(())
            }
            SimError::RankMismatch { rank, size } => {
                write!(f, "record references {rank} in a {size}-rank trace")
            }
            SimError::IndexMismatch { reason } => {
                write!(f, "trace index built from a different trace: {reason}")
            }
            SimError::CoalescedObservation => write!(
                f,
                "cannot observe a burst-coalesced program; compile with \
                 CompiledTrace::compile_observed for timeline capture"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlock_display_lists_ranks() {
        let e = SimError::Deadlock {
            at: Time::from_us(3),
            blocked: vec![(Rank::new(0), "waiting recv from r1".into())],
        };
        let s = format!("{e}");
        assert!(s.contains("deadlock") && s.contains("r0"));
    }

    #[test]
    fn is_std_error() {
        fn check<E: Error + Send + Sync>() {}
        check::<SimError>();
    }

    #[test]
    fn index_mismatch_display_carries_reason() {
        let e = SimError::IndexMismatch {
            reason: "name mismatch: index `a`, trace `b`".into(),
        };
        let s = format!("{e}");
        assert!(s.contains("different trace") && s.contains("name mismatch"));
    }
}
