//! Network resource model: finite buses and per-node input/output links,
//! plus a separate intra-node contention domain.
//!
//! An **inter-node** point-to-point transfer occupies one output link of
//! the sender's node, one network bus, and one input link of the
//! receiver's node for its whole duration (`latency + bytes/bandwidth`).
//! Transfers whose resources are busy wait in a global FIFO; whenever a
//! resource frees, the queue is rescanned in order and every transfer
//! whose full resource triple is available starts (a transfer never
//! blocks others that use disjoint resources).
//!
//! An **intra-node** transfer (both endpoints on one node) never touches
//! the bus/link fabric. By default it proceeds uncontended at the
//! intra-node latency/bandwidth; with
//! [`Platform::intra_node_links`](ovlsim_core::Platform::intra_node_links)
//! set, each node has that many shared-memory "ports" and same-node
//! transfers queue in their own per-domain FIFO — completely disjoint from
//! the inter-node resources, so packing ranks onto nodes relieves the bus
//! without the two domains ever contending with each other.

use std::collections::VecDeque;

use ovlsim_core::{PerturbationModel, Platform, Rank, Tag, Time};
use ovlsim_engine::stats::TimeWeighted;

/// Index of a transfer in the simulator's transfer table.
pub(crate) type TransferId = usize;

/// Link-side perturbation shared by all three replay engines.
///
/// Every engine computes a transfer's wire time through this one helper so
/// that the degradation factor, the latency jitter, and the fault windows
/// are evaluated from identical inputs in an identical order — keyed on
/// *raw rank numbers*, tags, and per-channel send sequence numbers, never
/// on engine-internal ids. That is what keeps the three engines
/// bit-identical under perturbation.
///
/// Intra-node transfers never cross a link and are exempt from all three
/// effects.
#[derive(Debug, Clone)]
pub(crate) struct LinkPerturb {
    model: PerturbationModel,
    degraded: bool,
    jittered: bool,
    faulty: bool,
}

impl LinkPerturb {
    pub(crate) fn new(platform: &Platform) -> Self {
        let model = platform.perturbation().clone();
        LinkPerturb {
            degraded: model.has_link_effects() && model.link_degradation() > 0.0,
            jittered: model.has_link_effects() && !model.latency_jitter().is_zero(),
            faulty: model.has_faults(),
            model,
        }
    }

    /// True if any inter-node wire time can differ from the clean run.
    pub(crate) fn active(&self) -> bool {
        self.degraded || self.jittered
    }

    /// Stretches an inter-node wire occupancy by the (deterministic)
    /// degradation factor of the `from -> to` link. Identity when link
    /// degradation is off.
    pub(crate) fn stretch(&self, base: Time, from: Rank, to: Rank) -> Time {
        if !self.degraded {
            return base;
        }
        base.scale_f64(self.model.link_factor(from.get(), to.get()))
    }

    /// Extra latency for the `seq`-th message on the `(from, to, tag)`
    /// channel. Zero when jitter is off.
    pub(crate) fn jitter(&self, from: Rank, to: Rank, tag: Tag, seq: u64) -> Time {
        if !self.jittered {
            return Time::ZERO;
        }
        self.model
            .latency_jitter_for(from.get(), to.get(), tag.get(), seq)
    }

    /// If the `from -> to` link is inside a transient outage at `at`,
    /// returns the instant the outage ends (when the held transfer may
    /// enter the transport queue).
    pub(crate) fn outage_end(&self, from: Rank, to: Rank, at: Time) -> Option<Time> {
        if !self.faulty {
            return None;
        }
        self.model.outage_end(from.get(), to.get(), at)
    }
}

/// Tracks bus/link occupancy and the FIFO of transfers awaiting resources.
///
/// Link tables are indexed by **node**: with `ranks_per_node > 1`, the
/// ranks of one node share its input/output links (a shared NIC).
#[derive(Debug)]
pub(crate) struct Network {
    buses_limit: Option<u32>,
    out_limit: u32,
    in_limit: u32,
    ranks_per_node: u32,
    buses_used: u32,
    out_used: Vec<u32>,
    in_used: Vec<u32>,
    waiting: VecDeque<TransferId>,
    /// Reused backing storage for the FIFO rescan (the `_into` variants
    /// swap it with `waiting`/`intra_waiting` instead of allocating a
    /// fresh queue per pump).
    scratch: VecDeque<TransferId>,
    /// Intra-node domain: per-node shared-memory port occupancy and its own
    /// FIFO. Only used when the platform bounds `intra_node_links`.
    intra_limit: Option<u32>,
    intra_used: Vec<u32>,
    intra_waiting: VecDeque<TransferId>,
    bus_util: TimeWeighted,
    pub(crate) started: u64,
    /// Persisted peak of the combined waiting-queue length (see
    /// [`Network::note_waiting`]).
    waiting_peak: usize,
    waiting_last_len: usize,
    waiting_last_time: Time,
}

impl Network {
    pub(crate) fn new(platform: &Platform, ranks: usize) -> Self {
        let rpn = platform.ranks_per_node() as usize;
        let nodes = ranks.div_ceil(rpn).max(1);
        Network {
            buses_limit: platform.buses(),
            out_limit: platform.output_links(),
            in_limit: platform.input_links(),
            ranks_per_node: platform.ranks_per_node(),
            buses_used: 0,
            out_used: vec![0; nodes],
            in_used: vec![0; nodes],
            waiting: VecDeque::new(),
            scratch: VecDeque::new(),
            intra_limit: platform.intra_node_links(),
            intra_used: vec![0; nodes],
            intra_waiting: VecDeque::new(),
            bus_util: TimeWeighted::new(),
            started: 0,
            waiting_peak: 0,
            waiting_last_len: 0,
            waiting_last_time: Time::ZERO,
        }
    }

    fn node(&self, rank: Rank) -> usize {
        (rank.get() / self.ranks_per_node) as usize
    }

    fn triple_free(&self, from: Rank, to: Rank) -> bool {
        let bus_ok = match self.buses_limit {
            None => true,
            Some(b) => self.buses_used < b,
        };
        bus_ok
            && self.out_used[self.node(from)] < self.out_limit
            && self.in_used[self.node(to)] < self.in_limit
    }

    fn occupy(&mut self, from: Rank, to: Rank, now: Time) {
        let (nf, nt) = (self.node(from), self.node(to));
        self.buses_used += 1;
        self.out_used[nf] += 1;
        self.in_used[nt] += 1;
        self.bus_util.record(now, self.buses_used as f64);
        self.started += 1;
    }

    /// Releases the resource triple of a finished transfer.
    pub(crate) fn release(&mut self, from: Rank, to: Rank, now: Time) {
        let (nf, nt) = (self.node(from), self.node(to));
        debug_assert!(self.buses_used > 0);
        self.buses_used -= 1;
        self.out_used[nf] -= 1;
        self.in_used[nt] -= 1;
        self.bus_util.record(now, self.buses_used as f64);
    }

    /// Enqueues a transfer that is ready to move data.
    pub(crate) fn enqueue(&mut self, id: TransferId, now: Time) {
        self.waiting.push_back(id);
        self.note_waiting(now);
    }

    /// Records the current total of queued transfers (both domains) in the
    /// peak statistic. Like [`TimeWeighted::record`], only *persisted*
    /// lengths count: a queue that fills and drains within one instant
    /// never moves the peak, so the statistic is independent of how an
    /// engine orders same-instant enqueues and starts.
    fn note_waiting(&mut self, now: Time) {
        if now > self.waiting_last_time {
            self.waiting_peak = self.waiting_peak.max(self.waiting_last_len);
            self.waiting_last_time = now;
        }
        self.waiting_last_len = self.waiting.len() + self.intra_waiting.len();
    }

    /// Persisted peak of the combined waiting-queue length (the current
    /// length counts: it persists to the horizon).
    pub(crate) fn peak_waiting(&self) -> usize {
        self.waiting_peak.max(self.waiting_last_len)
    }

    /// Scans the waiting FIFO and starts every transfer whose resource
    /// triple is free, occupying the resources. Returns the started ids in
    /// order. `route` maps a transfer id to its `(from, to)` pair.
    pub(crate) fn start_eligible(
        &mut self,
        now: Time,
        route: impl Fn(TransferId) -> (Rank, Rank),
    ) -> Vec<TransferId> {
        let mut started = Vec::new();
        self.start_eligible_into(now, route, &mut started);
        started
    }

    /// [`Network::start_eligible`] without the per-call allocations:
    /// started ids are appended to the caller's reusable `started` buffer
    /// (cleared first) and the rescan swaps through an internal scratch
    /// queue. Scan order — and therefore every start decision — is
    /// identical to [`Network::start_eligible`]; the compiled engine's
    /// hot loop uses this variant.
    pub(crate) fn start_eligible_into(
        &mut self,
        now: Time,
        route: impl Fn(TransferId) -> (Rank, Rank),
        started: &mut Vec<TransferId>,
    ) {
        started.clear();
        let mut remaining = std::mem::take(&mut self.scratch);
        remaining.clear();
        while let Some(id) = self.waiting.pop_front() {
            let (from, to) = route(id);
            if self.triple_free(from, to) {
                self.occupy(from, to, now);
                started.push(id);
            } else {
                remaining.push_back(id);
            }
        }
        self.scratch = std::mem::replace(&mut self.waiting, remaining);
        self.note_waiting(now);
    }

    /// Whether intra-node transfers contend for finite per-node ports (if
    /// not, they bypass the network module entirely and the engines
    /// schedule them directly).
    pub(crate) fn intra_limited(&self) -> bool {
        self.intra_limit.is_some()
    }

    /// Enqueues an intra-node transfer in the intra-node domain's FIFO.
    pub(crate) fn enqueue_intra(&mut self, id: TransferId, now: Time) {
        debug_assert!(self.intra_limited());
        self.intra_waiting.push_back(id);
        self.note_waiting(now);
    }

    /// Scans the intra-node FIFO and starts every transfer whose node has
    /// a free shared-memory port, occupying it. `node_of` maps a transfer
    /// id to the node both its endpoints share.
    pub(crate) fn start_eligible_intra(
        &mut self,
        now: Time,
        node_of: impl Fn(TransferId) -> usize,
    ) -> Vec<TransferId> {
        let mut started = Vec::new();
        self.start_eligible_intra_into(now, node_of, &mut started);
        started
    }

    /// Allocation-free variant of [`Network::start_eligible_intra`] with
    /// the same scan order (see [`Network::start_eligible_into`]).
    pub(crate) fn start_eligible_intra_into(
        &mut self,
        now: Time,
        node_of: impl Fn(TransferId) -> usize,
        started: &mut Vec<TransferId>,
    ) {
        let limit = self.intra_limit.expect("intra domain is limited");
        started.clear();
        let mut remaining = std::mem::take(&mut self.scratch);
        remaining.clear();
        while let Some(id) = self.intra_waiting.pop_front() {
            let node = node_of(id);
            if self.intra_used[node] < limit {
                self.intra_used[node] += 1;
                started.push(id);
            } else {
                remaining.push_back(id);
            }
        }
        self.scratch = std::mem::replace(&mut self.intra_waiting, remaining);
        self.note_waiting(now);
    }

    /// Releases the shared-memory port of a finished intra-node transfer.
    pub(crate) fn release_intra(&mut self, node: usize) {
        debug_assert!(self.intra_used[node] > 0);
        self.intra_used[node] -= 1;
    }

    /// Number of transfers waiting for resources.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn waiting_len(&self) -> usize {
        self.waiting.len()
    }

    /// Time-weighted mean number of busy buses over `[0, end]`.
    pub(crate) fn mean_busy_buses(&self, end: Time) -> f64 {
        self.bus_util.mean(end)
    }

    /// Peak number of simultaneously busy buses.
    pub(crate) fn peak_busy_buses(&self) -> f64 {
        self.bus_util.peak()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlsim_core::Platform;

    fn platform(buses: Option<u32>, links: u32) -> Platform {
        Platform::builder()
            .buses(buses)
            .input_links(links)
            .output_links(links)
            .build()
    }

    #[test]
    fn unlimited_buses_start_everything_with_distinct_nodes() {
        let p = platform(None, 1);
        let mut net = Network::new(&p, 4);
        // Transfers 0: 0->1, 1: 2->3 (disjoint).
        net.enqueue(0, Time::ZERO);
        net.enqueue(1, Time::ZERO);
        let routes = [(Rank::new(0), Rank::new(1)), (Rank::new(2), Rank::new(3))];
        let started = net.start_eligible(Time::ZERO, |id| routes[id]);
        assert_eq!(started, vec![0, 1]);
        assert_eq!(net.waiting_len(), 0);
    }

    #[test]
    fn single_out_link_serializes_same_sender() {
        let p = platform(None, 1);
        let mut net = Network::new(&p, 3);
        let routes = [(Rank::new(0), Rank::new(1)), (Rank::new(0), Rank::new(2))];
        net.enqueue(0, Time::ZERO);
        net.enqueue(1, Time::ZERO);
        let started = net.start_eligible(Time::ZERO, |id| routes[id]);
        assert_eq!(started, vec![0]);
        assert_eq!(net.waiting_len(), 1);
        net.release(Rank::new(0), Rank::new(1), Time::from_us(5));
        let started = net.start_eligible(Time::from_us(5), |id| routes[id]);
        assert_eq!(started, vec![1]);
    }

    #[test]
    fn bus_limit_applies_globally() {
        let p = platform(Some(1), 4);
        let mut net = Network::new(&p, 4);
        let routes = [(Rank::new(0), Rank::new(1)), (Rank::new(2), Rank::new(3))];
        net.enqueue(0, Time::ZERO);
        net.enqueue(1, Time::ZERO);
        let started = net.start_eligible(Time::ZERO, |id| routes[id]);
        assert_eq!(started, vec![0], "only one bus");
        net.release(Rank::new(0), Rank::new(1), Time::from_us(1));
        assert_eq!(
            net.start_eligible(Time::from_us(1), |id| routes[id]),
            vec![1]
        );
    }

    #[test]
    fn later_transfer_with_free_resources_passes_blocked_head() {
        let p = platform(None, 1);
        let mut net = Network::new(&p, 4);
        let routes = [
            (Rank::new(0), Rank::new(1)),
            (Rank::new(0), Rank::new(2)), // blocked: same sender as 0
            (Rank::new(2), Rank::new(3)), // disjoint: may pass
        ];
        net.enqueue(0, Time::ZERO);
        net.enqueue(1, Time::ZERO);
        net.enqueue(2, Time::ZERO);
        let started = net.start_eligible(Time::ZERO, |id| routes[id]);
        assert_eq!(started, vec![0, 2]);
        assert_eq!(net.waiting_len(), 1);
    }

    #[test]
    fn shared_node_links_serialize_siblings() {
        // Two ranks on one node both sending out: one shared output link.
        let p = Platform::builder()
            .ranks_per_node(2)
            .expect("positive packing")
            .input_links(1)
            .output_links(1)
            .build();
        let mut net = Network::new(&p, 4);
        // Rank 0 and 1 live on node 0; targets 2 and 3 live on node 1.
        let routes = [(Rank::new(0), Rank::new(2)), (Rank::new(1), Rank::new(3))];
        net.enqueue(0, Time::ZERO);
        net.enqueue(1, Time::ZERO);
        let started = net.start_eligible(Time::ZERO, |id| routes[id]);
        assert_eq!(started, vec![0], "siblings share the node's out-link");
        // But the receivers also share node 1's single in-link, so after
        // releasing, transfer 1 can go.
        net.release(Rank::new(0), Rank::new(2), Time::from_us(1));
        assert_eq!(
            net.start_eligible(Time::from_us(1), |id| routes[id]),
            vec![1]
        );
    }

    #[test]
    fn intra_domain_is_disjoint_and_port_limited() {
        // Two ranks per node, one shared-memory port per node, and a
        // fully-occupied single bus: intra transfers still start (disjoint
        // domains) but serialize on the node's port.
        let p = Platform::builder()
            .ranks_per_node(2)
            .expect("positive packing")
            .buses(Some(1))
            .intra_node_links(Some(1))
            .build();
        let mut net = Network::new(&p, 4);
        assert!(net.intra_limited());
        // Occupy the only bus with the inter-node transfer 0 -> 2
        // (node 0 -> node 1).
        net.enqueue(0, Time::ZERO);
        let routes = [(Rank::new(0), Rank::new(2))];
        assert_eq!(net.start_eligible(Time::ZERO, |id| routes[id]), vec![0]);
        // Intra transfers 1 and 2 both live on node 1 (ranks 2 and 3).
        net.enqueue_intra(1, Time::ZERO);
        net.enqueue_intra(2, Time::ZERO);
        let started = net.start_eligible_intra(Time::ZERO, |_| 1);
        assert_eq!(started, vec![1], "one port per node");
        // Bus saturation did not block the intra start; releasing the port
        // admits the second sibling transfer.
        net.release_intra(1);
        assert_eq!(net.start_eligible_intra(Time::ZERO, |_| 1), vec![2]);
    }

    #[test]
    fn unlimited_intra_domain_reports_unlimited() {
        let p = Platform::builder()
            .ranks_per_node(2)
            .expect("positive packing")
            .build();
        let net = Network::new(&p, 4);
        assert!(!net.intra_limited());
    }

    #[test]
    fn utilization_statistics() {
        let p = platform(Some(2), 2);
        let mut net = Network::new(&p, 2);
        let routes = [(Rank::new(0), Rank::new(1)), (Rank::new(1), Rank::new(0))];
        net.enqueue(0, Time::ZERO);
        net.enqueue(1, Time::ZERO);
        net.start_eligible(Time::ZERO, |id| routes[id]);
        net.release(Rank::new(0), Rank::new(1), Time::from_us(10));
        net.release(Rank::new(1), Rank::new(0), Time::from_us(10));
        // Two buses busy during [0,10), zero during [10,20).
        assert_eq!(net.mean_busy_buses(Time::from_us(20)), 1.0);
        assert_eq!(net.peak_busy_buses(), 2.0);
        assert_eq!(net.started, 2);
    }
}
