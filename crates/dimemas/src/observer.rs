//! Observation hooks for timeline capture (Paraver export).

use ovlsim_core::{Rank, Tag, Time};

/// What a rank is doing during a timeline interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProcState {
    /// Executing a computation burst.
    Compute,
    /// Blocked in a receive (or a wait dominated by receives).
    WaitRecv,
    /// Blocked in a (rendezvous) send.
    WaitSend,
    /// Blocked completing non-blocking requests.
    WaitRequest,
    /// Inside a collective operation.
    Collective,
}

impl ProcState {
    /// A stable numeric encoding used by the Paraver exporter.
    pub fn code(self) -> u32 {
        match self {
            ProcState::Compute => 1,
            ProcState::WaitRecv => 2,
            ProcState::WaitSend => 3,
            ProcState::WaitRequest => 4,
            ProcState::Collective => 5,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ProcState::Compute => "compute",
            ProcState::WaitRecv => "wait-recv",
            ProcState::WaitSend => "wait-send",
            ProcState::WaitRequest => "wait-request",
            ProcState::Collective => "collective",
        }
    }
}

/// Why a rank's simulated clock advanced during an attributed interval.
///
/// Where [`ProcState`] names *what the rank was doing*, `WaitCause` names
/// *what the time should be charged to*: blocked states carry the dense
/// [`ChannelId`](ovlsim_core::ChannelId) of the transfer that gated the
/// rank, so attribution can be rolled up per channel and per peer, and
/// resource-queue waits are split out as [`WaitCause::Contended`] with the
/// contention domain (intra-node ports vs the bus/NIC fabric).
///
/// Engines that emit attribution (`run_prepared_observed`,
/// `run_observed`, `run_compiled_observed`) guarantee the **conservation
/// property**: per rank, attributed intervals are disjoint, gapless and
/// tile `[0, finish)` exactly — their durations sum to the rank's finish
/// time bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WaitCause {
    /// Executing a computation burst.
    Compute,
    /// Per-message sender CPU overhead (LogGP `o`).
    SendOverhead,
    /// Blocked in a blocking receive on channel `chan` (includes the wire
    /// wait and the per-message receiver overhead).
    BlockedRecv {
        /// Dense channel id of the gating transfer.
        chan: u32,
    },
    /// Blocked in a rendezvous send on channel `chan` (handshake plus
    /// wire occupancy).
    BlockedSend {
        /// Dense channel id of the gating transfer.
        chan: u32,
    },
    /// Blocked in `Wait`/`WaitAll`; `chan` is the channel of the
    /// last-completing request (the *last unblocker*), which the whole
    /// interval is charged to.
    BlockedWait {
        /// Dense channel id of the last-unblocking transfer.
        chan: u32,
    },
    /// The transfer gating this rank sat in a transport resource queue
    /// (finite buses/links, or a node's shared-memory ports).
    Contended {
        /// Dense channel id of the queued transfer.
        chan: u32,
        /// True for the intra-node port domain, false for the bus/NIC
        /// fabric.
        intra: bool,
    },
    /// Inside collective number `seq` (per-rank arrival order), from this
    /// rank's arrival (or block) to the collective's completion.
    Collective {
        /// The collective's sequence number on this rank.
        seq: u32,
    },
    /// The transfer gating this rank was held back by a transient link
    /// outage (see
    /// [`PerturbationModel::with_faults`](ovlsim_core::PerturbationModel::with_faults)):
    /// the message was ready to move but its link was down, so it waited
    /// for the outage window to end before entering the transport queue.
    LinkDown {
        /// Dense channel id of the held transfer.
        chan: u32,
    },
}

impl WaitCause {
    /// A stable numeric encoding used by the Paraver cause-timeline
    /// exporter. Blocked states reuse the [`ProcState`] codes; the
    /// attribution-only states extend them.
    pub fn code(self) -> u32 {
        match self {
            WaitCause::Compute => 1,
            WaitCause::BlockedRecv { .. } => 2,
            WaitCause::BlockedSend { .. } => 3,
            WaitCause::BlockedWait { .. } => 4,
            WaitCause::Collective { .. } => 5,
            WaitCause::SendOverhead => 6,
            WaitCause::Contended { intra: false, .. } => 7,
            WaitCause::Contended { intra: true, .. } => 8,
            WaitCause::LinkDown { .. } => 9,
        }
    }

    /// Human-readable label (used by reports and the `.pcf` export).
    pub fn label(self) -> &'static str {
        match self {
            WaitCause::Compute => "compute",
            WaitCause::BlockedRecv { .. } => "blocked-recv",
            WaitCause::BlockedSend { .. } => "blocked-send",
            WaitCause::BlockedWait { .. } => "blocked-wait",
            WaitCause::Collective { .. } => "collective",
            WaitCause::SendOverhead => "send-overhead",
            WaitCause::Contended { intra: false, .. } => "contended-inter",
            WaitCause::Contended { intra: true, .. } => "contended-intra",
            WaitCause::LinkDown { .. } => "link-down",
        }
    }

    /// The dense channel id this cause charges time to, if any.
    pub fn channel(self) -> Option<u32> {
        match self {
            WaitCause::BlockedRecv { chan }
            | WaitCause::BlockedSend { chan }
            | WaitCause::BlockedWait { chan }
            | WaitCause::Contended { chan, .. }
            | WaitCause::LinkDown { chan } => Some(chan),
            _ => None,
        }
    }

    /// True for the causes that count as communication wait (everything
    /// except compute and sender overhead).
    pub fn is_wait(self) -> bool {
        !matches!(self, WaitCause::Compute | WaitCause::SendOverhead)
    }
}

/// The cross-rank dependency that released a blocked interval: the chain
/// of causes continues on `rank` at time `at` (the peer's clock when it
/// executed the releasing operation — a send post, a matching receive
/// post, or the last arrival of a collective).
///
/// `at` is always within `[0, end]` of the interval the edge is attached
/// to, and always a boundary between two of the peer's attributed
/// intervals (or zero), which is what makes the critical-path back-walk
/// well defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// The releasing rank.
    pub rank: Rank,
    /// The releasing rank's clock when its part of the chain began.
    pub at: Time,
}

/// Receives replay happenings as they are simulated.
///
/// All callbacks are optional (default: no-op). Intervals are closed-open
/// `[start, end)` and are emitted in completion order, which is
/// non-decreasing in `end` but not necessarily in `start`.
pub trait ReplayObserver {
    /// A rank spent `[start, end)` in `state`.
    fn interval(&mut self, rank: Rank, start: Time, end: Time, state: ProcState) {
        let _ = (rank, start, end, state);
    }

    /// Cause-tagged attribution: `[start, end)` on `rank` is charged to
    /// `cause`. For blocked causes, `edge` names the cross-rank
    /// dependency that released the rank (`None` when the interval was
    /// self-paced — e.g. pure wire time of an unmatched eager transfer,
    /// or a message that had already arrived).
    ///
    /// Per rank, attributed intervals are disjoint, gapless and tile
    /// `[0, finish)` exactly (see [`WaitCause`]); zero-length intervals
    /// are never emitted. Only the attribution-capable engines emit this
    /// callback; the naive reference engine does not.
    fn attributed(
        &mut self,
        rank: Rank,
        start: Time,
        end: Time,
        cause: WaitCause,
        edge: Option<DepEdge>,
    ) {
        let _ = (rank, start, end, cause, edge);
    }

    /// A message (or chunk) moved across the wire.
    fn message(
        &mut self,
        from: Rank,
        to: Rank,
        wire_start: Time,
        wire_end: Time,
        bytes: u64,
        tag: Tag,
    ) {
        let _ = (from, to, wire_start, wire_end, bytes, tag);
    }

    /// A visualization marker was executed by `rank` at `at`.
    fn marker(&mut self, rank: Rank, at: Time, code: u32) {
        let _ = (rank, at, code);
    }

    /// A rank finished its trace at `at`.
    fn finished(&mut self, rank: Rank, at: Time) {
        let _ = (rank, at);
    }
}

/// An observer that ignores everything (used by the plain `run`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl ReplayObserver for NullObserver {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_codes_distinct() {
        use std::collections::BTreeSet;
        let states = [
            ProcState::Compute,
            ProcState::WaitRecv,
            ProcState::WaitSend,
            ProcState::WaitRequest,
            ProcState::Collective,
        ];
        let codes: BTreeSet<u32> = states.iter().map(|s| s.code()).collect();
        assert_eq!(codes.len(), states.len());
        let labels: BTreeSet<&str> = states.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), states.len());
    }

    #[test]
    fn cause_codes_and_labels_distinct() {
        use std::collections::BTreeSet;
        let causes = [
            WaitCause::Compute,
            WaitCause::SendOverhead,
            WaitCause::BlockedRecv { chan: 0 },
            WaitCause::BlockedSend { chan: 0 },
            WaitCause::BlockedWait { chan: 0 },
            WaitCause::Contended {
                chan: 0,
                intra: false,
            },
            WaitCause::Contended {
                chan: 0,
                intra: true,
            },
            WaitCause::Collective { seq: 0 },
            WaitCause::LinkDown { chan: 0 },
        ];
        let codes: BTreeSet<u32> = causes.iter().map(|c| c.code()).collect();
        assert_eq!(codes.len(), causes.len());
        let labels: BTreeSet<&str> = causes.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), causes.len());
        // Blocked causes share codes with their ProcState counterparts.
        assert_eq!(
            WaitCause::BlockedRecv { chan: 3 }.code(),
            ProcState::WaitRecv.code()
        );
    }

    #[test]
    fn cause_channel_and_wait_classification() {
        assert_eq!(WaitCause::Compute.channel(), None);
        assert_eq!(WaitCause::SendOverhead.channel(), None);
        assert_eq!(WaitCause::Collective { seq: 1 }.channel(), None);
        assert_eq!(WaitCause::BlockedRecv { chan: 7 }.channel(), Some(7));
        assert_eq!(
            WaitCause::Contended {
                chan: 2,
                intra: true
            }
            .channel(),
            Some(2)
        );
        assert!(!WaitCause::Compute.is_wait());
        assert!(!WaitCause::SendOverhead.is_wait());
        assert!(WaitCause::BlockedWait { chan: 0 }.is_wait());
        assert!(WaitCause::Collective { seq: 0 }.is_wait());
        assert_eq!(WaitCause::LinkDown { chan: 4 }.channel(), Some(4));
        assert!(WaitCause::LinkDown { chan: 4 }.is_wait());
    }

    #[test]
    fn null_observer_accepts_everything() {
        let mut o = NullObserver;
        o.interval(
            Rank::new(0),
            Time::ZERO,
            Time::from_ns(1),
            ProcState::Compute,
        );
        o.message(
            Rank::new(0),
            Rank::new(1),
            Time::ZERO,
            Time::from_ns(5),
            10,
            Tag::new(0),
        );
        o.marker(Rank::new(0), Time::ZERO, 3);
        o.attributed(
            Rank::new(0),
            Time::ZERO,
            Time::from_ns(1),
            WaitCause::Compute,
            None,
        );
        o.attributed(
            Rank::new(0),
            Time::from_ns(1),
            Time::from_ns(2),
            WaitCause::BlockedRecv { chan: 0 },
            Some(DepEdge {
                rank: Rank::new(1),
                at: Time::ZERO,
            }),
        );
        o.finished(Rank::new(0), Time::from_ns(9));
    }
}
