//! Observation hooks for timeline capture (Paraver export).

use ovlsim_core::{Rank, Tag, Time};

/// What a rank is doing during a timeline interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProcState {
    /// Executing a computation burst.
    Compute,
    /// Blocked in a receive (or a wait dominated by receives).
    WaitRecv,
    /// Blocked in a (rendezvous) send.
    WaitSend,
    /// Blocked completing non-blocking requests.
    WaitRequest,
    /// Inside a collective operation.
    Collective,
}

impl ProcState {
    /// A stable numeric encoding used by the Paraver exporter.
    pub fn code(self) -> u32 {
        match self {
            ProcState::Compute => 1,
            ProcState::WaitRecv => 2,
            ProcState::WaitSend => 3,
            ProcState::WaitRequest => 4,
            ProcState::Collective => 5,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ProcState::Compute => "compute",
            ProcState::WaitRecv => "wait-recv",
            ProcState::WaitSend => "wait-send",
            ProcState::WaitRequest => "wait-request",
            ProcState::Collective => "collective",
        }
    }
}

/// Receives replay happenings as they are simulated.
///
/// All callbacks are optional (default: no-op). Intervals are closed-open
/// `[start, end)` and are emitted in completion order, which is
/// non-decreasing in `end` but not necessarily in `start`.
pub trait ReplayObserver {
    /// A rank spent `[start, end)` in `state`.
    fn interval(&mut self, rank: Rank, start: Time, end: Time, state: ProcState) {
        let _ = (rank, start, end, state);
    }

    /// A message (or chunk) moved across the wire.
    fn message(
        &mut self,
        from: Rank,
        to: Rank,
        wire_start: Time,
        wire_end: Time,
        bytes: u64,
        tag: Tag,
    ) {
        let _ = (from, to, wire_start, wire_end, bytes, tag);
    }

    /// A visualization marker was executed by `rank` at `at`.
    fn marker(&mut self, rank: Rank, at: Time, code: u32) {
        let _ = (rank, at, code);
    }

    /// A rank finished its trace at `at`.
    fn finished(&mut self, rank: Rank, at: Time) {
        let _ = (rank, at);
    }
}

/// An observer that ignores everything (used by the plain `run`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl ReplayObserver for NullObserver {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_codes_distinct() {
        use std::collections::BTreeSet;
        let states = [
            ProcState::Compute,
            ProcState::WaitRecv,
            ProcState::WaitSend,
            ProcState::WaitRequest,
            ProcState::Collective,
        ];
        let codes: BTreeSet<u32> = states.iter().map(|s| s.code()).collect();
        assert_eq!(codes.len(), states.len());
        let labels: BTreeSet<&str> = states.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), states.len());
    }

    #[test]
    fn null_observer_accepts_everything() {
        let mut o = NullObserver;
        o.interval(
            Rank::new(0),
            Time::ZERO,
            Time::from_ns(1),
            ProcState::Compute,
        );
        o.message(
            Rank::new(0),
            Rank::new(1),
            Time::ZERO,
            Time::from_ns(5),
            10,
            Tag::new(0),
        );
        o.marker(Rank::new(0), Time::ZERO, 3);
        o.finished(Rank::new(0), Time::from_ns(9));
    }
}
