//! Synchronized collective operations.
//!
//! Dimemas models collectives as globally synchronized phases: every rank
//! arrives at its `k`-th collective record, the operation costs
//! `stages(P) × (latency + bytes/bandwidth)` starting from the latest
//! arrival, and all ranks resume together. Trace validation guarantees all
//! ranks agree on the collective sequence, so tracking arrival counts per
//! sequence index suffices.
//!
//! The per-stage cost is node-aware: when the communicator spans several
//! nodes the stages cross the network and price with the inter-node
//! latency/bandwidth, but a communicator that fits on a single multicore
//! node exchanges through shared memory and prices its stages with the
//! intra-node parameters instead.

use ovlsim_core::{CollectiveOp, Platform, Record, Time};

/// Arrival tracking for one collective instance.
#[derive(Debug)]
struct CollInstance {
    arrivals: usize,
    latest: Time,
    op: CollectiveOp,
    bytes: u64,
}

/// Tracks per-rank progress through the global collective sequence.
#[derive(Debug)]
pub(crate) struct CollectiveTracker {
    ranks: usize,
    instances: Vec<CollInstance>,
}

/// Maps a collective record to its operation kind and payload.
///
/// Returns `None` for non-collective records.
pub(crate) fn collective_op(record: &Record) -> Option<(CollectiveOp, u64)> {
    match *record {
        Record::Barrier => Some((CollectiveOp::Barrier, 0)),
        Record::AllReduce { bytes } => Some((CollectiveOp::AllReduce, bytes)),
        Record::Bcast { bytes, .. } => Some((CollectiveOp::Bcast, bytes)),
        Record::Reduce { bytes, .. } => Some((CollectiveOp::Reduce, bytes)),
        Record::AllToAll { bytes } => Some((CollectiveOp::AllToAll, bytes)),
        Record::AllGather { bytes } => Some((CollectiveOp::AllGather, bytes)),
        _ => None,
    }
}

impl CollectiveTracker {
    pub(crate) fn new(ranks: usize) -> Self {
        CollectiveTracker {
            ranks,
            instances: Vec::new(),
        }
    }

    /// Registers that a rank arrived at its `seq`-th collective at `now`.
    /// Returns `Some(completion_time)` if this was the last arrival.
    pub(crate) fn arrive(
        &mut self,
        seq: usize,
        op: CollectiveOp,
        bytes: u64,
        now: Time,
        platform: &Platform,
    ) -> Option<Time> {
        while self.instances.len() <= seq {
            self.instances.push(CollInstance {
                arrivals: 0,
                latest: Time::ZERO,
                op,
                bytes,
            });
        }
        let inst = &mut self.instances[seq];
        debug_assert_eq!(inst.op, op, "validated traces agree on collectives");
        inst.arrivals += 1;
        inst.latest = inst.latest.max(now);
        if inst.arrivals == self.ranks {
            // Stage parameters depend on where the stages happen: only a
            // communicator spanning several nodes crosses the network.
            let (latency, bandwidth) = if platform.topology(self.ranks).spans_nodes() {
                (platform.latency(), platform.bandwidth())
            } else {
                (
                    platform.intra_node_latency(),
                    platform.intra_node_bandwidth(),
                )
            };
            let cost = platform
                .collectives()
                .cost(inst.op, inst.bytes, self.ranks, latency, bandwidth);
            Some(inst.latest + cost)
        } else {
            None
        }
    }

    /// Number of collective instances observed so far.
    pub(crate) fn instance_count(&self) -> usize {
        self.instances.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlsim_core::{Instr, Rank};

    #[test]
    fn collective_op_mapping() {
        assert_eq!(
            collective_op(&Record::Barrier),
            Some((CollectiveOp::Barrier, 0))
        );
        assert_eq!(
            collective_op(&Record::AllReduce { bytes: 16 }),
            Some((CollectiveOp::AllReduce, 16))
        );
        assert_eq!(
            collective_op(&Record::Bcast {
                root: Rank::new(0),
                bytes: 9
            }),
            Some((CollectiveOp::Bcast, 9))
        );
        assert_eq!(
            collective_op(&Record::Burst {
                instr: Instr::new(1)
            }),
            None
        );
    }

    #[test]
    fn last_arrival_completes_with_cost() {
        let platform = Platform::builder()
            .latency(Time::from_us(1))
            .bandwidth_bytes_per_sec(1.0e9)
            .unwrap()
            .build();
        let mut t = CollectiveTracker::new(2);
        assert_eq!(
            t.arrive(0, CollectiveOp::Barrier, 0, Time::from_us(5), &platform),
            None
        );
        // Barrier over 2 ranks: log2(2) = 1 stage of 1 us latency.
        let done = t
            .arrive(0, CollectiveOp::Barrier, 0, Time::from_us(9), &platform)
            .unwrap();
        assert_eq!(done, Time::from_us(10));
        assert_eq!(t.instance_count(), 1);
    }

    #[test]
    fn out_of_order_sequences_are_tracked_independently() {
        let platform = Platform::default();
        let mut t = CollectiveTracker::new(2);
        // Rank 0 reaches its second barrier before rank 1 reaches its first.
        assert!(t
            .arrive(0, CollectiveOp::Barrier, 0, Time::from_us(1), &platform)
            .is_none());
        assert!(t
            .arrive(1, CollectiveOp::Barrier, 0, Time::from_us(2), &platform)
            .is_none());
        assert!(t
            .arrive(0, CollectiveOp::Barrier, 0, Time::from_us(30), &platform)
            .is_some());
        assert!(t
            .arrive(1, CollectiveOp::Barrier, 0, Time::from_us(40), &platform)
            .is_some());
    }

    #[test]
    fn single_node_communicator_uses_intra_node_parameters() {
        // 4 ranks on one node: stages price at 500 ns / 10 GB/s instead of
        // the 1 us / 1 GB/s network parameters.
        let platform = Platform::builder()
            .latency(Time::from_us(1))
            .bandwidth_bytes_per_sec(1.0e9)
            .unwrap()
            .ranks_per_node(4)
            .expect("positive packing")
            .intra_node_latency(Time::from_ns(500))
            .intra_node_bandwidth(ovlsim_core::Bandwidth::from_bytes_per_sec(10.0e9).unwrap())
            .build();
        let mut t = CollectiveTracker::new(4);
        for _ in 0..3 {
            assert!(t
                .arrive(0, CollectiveOp::Bcast, 10_000, Time::ZERO, &platform)
                .is_none());
        }
        let done = t
            .arrive(0, CollectiveOp::Bcast, 10_000, Time::ZERO, &platform)
            .unwrap();
        // log2(4) = 2 stages x (0.5 us + 1 us) = 3 us.
        assert_eq!(done, Time::from_us(3));

        // The same job spread 2-per-node spans nodes: 2 x (1 us + 10 us).
        let spanning = Platform::builder()
            .latency(Time::from_us(1))
            .bandwidth_bytes_per_sec(1.0e9)
            .unwrap()
            .ranks_per_node(2)
            .expect("positive packing")
            .build();
        let mut t = CollectiveTracker::new(4);
        for _ in 0..3 {
            assert!(t
                .arrive(0, CollectiveOp::Bcast, 10_000, Time::ZERO, &spanning)
                .is_none());
        }
        let done = t
            .arrive(0, CollectiveOp::Bcast, 10_000, Time::ZERO, &spanning)
            .unwrap();
        assert_eq!(done, Time::from_us(22));
    }

    #[test]
    fn single_rank_collective_is_free() {
        let platform = Platform::default();
        let mut t = CollectiveTracker::new(1);
        let done = t
            .arrive(0, CollectiveOp::AllReduce, 64, Time::from_us(7), &platform)
            .unwrap();
        // log2(1) = 0 stages: completes instantly.
        assert_eq!(done, Time::from_us(7));
    }
}
