//! The trace-replay simulator.
//!
//! [`Simulator`] replays a [`TraceSet`] on a [`Platform`], reconstructing
//! the application's time behaviour "off-line … on a configurable parallel
//! platform" exactly as Dimemas does in the paper's environment:
//!
//! * computation bursts take `instructions / MIPS / cpu_ratio` time,
//! * point-to-point transfers take `latency + bytes/bandwidth` once they
//!   hold a sender output link, a network bus and a receiver input link
//!   (finite resources queue FIFO),
//! * messages at most [`Platform::eager_threshold`] bytes are *eager*:
//!   the sender proceeds immediately and the data waits at the receiver if
//!   necessary; larger messages *rendezvous*: the wire transfer starts only
//!   once the receive is posted, and blocking senders wait for completion,
//! * collectives are synchronized cost-model phases,
//! * request matching is FIFO per `(source, destination, tag)` channel.
//!
//! # Hot-path layout
//!
//! The paper's methodology is "synthesize once, replay many": every figure
//! sweeps the same trace pair across dozens of platform points, so the
//! replay inner loop is the system's hot path. It is organised around data
//! precomputed at validation time:
//!
//! * channels are interned into dense `u32` ids by
//!   [`TraceIndex::build`] — matching a message indexes a vector instead of
//!   walking an ordered map,
//! * per-rank record and channel slices are resolved once, so stepping a
//!   rank streams its records without re-indexing the [`TraceSet`],
//! * wait-sets live in inline small-vectors ([`crate::reqs`]) — a
//!   `WaitAll` allocates nothing for typical chunk fan-outs,
//! * the event queue is a free-list slab (`ovlsim-engine`) whose memory is
//!   bounded by live events.
//!
//! Sweeps should build the [`TraceIndex`] once per trace and call
//! [`Simulator::run_prepared`] per platform point, skipping revalidation
//! entirely — or go one stage further and lower the trace into a
//! [`ovlsim_core::CompiledTrace`] executed by [`Simulator::run_compiled`]
//! (flat struct-of-arrays instruction streams, coalesced burst runs,
//! pre-resolved request slots; see the `compiled` module's docs).
//! [`Simulator::run`] remains the validating single-shot entry point; all
//! paths produce bit-identical results (the original engine is kept in
//! [`crate::naive`] and differential property tests enforce equality).

use std::collections::VecDeque;
use std::fmt;

use ovlsim_core::{Platform, Rank, Record, RequestId, Tag, Time, TraceIndex, TraceSet};
use ovlsim_engine::EventQueue;

use crate::collective::{collective_op, CollectiveTracker};
use crate::error::SimError;
use crate::network::{LinkPerturb, Network, TransferId};
use crate::observer::{DepEdge, NullObserver, ProcState, ReplayObserver, WaitCause};
use crate::reqs::{ReqGroup, ReqState, ReqTable};

/// Outcome of replaying one trace set on one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayResult {
    pub(crate) name: String,
    pub(crate) total_time: Time,
    pub(crate) rank_finish: Vec<Time>,
    pub(crate) rank_compute: Vec<Time>,
    pub(crate) p2p_messages: u64,
    pub(crate) p2p_bytes: u64,
    pub(crate) collective_count: u64,
    pub(crate) mean_busy_buses: f64,
    pub(crate) peak_busy_buses: f64,
    pub(crate) peak_waiting_transfers: usize,
}

impl ReplayResult {
    /// The replayed trace's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Completion time of the slowest rank (the execution's makespan).
    pub fn total_time(&self) -> Time {
        self.total_time
    }

    /// Per-rank completion times.
    pub fn rank_finish(&self) -> &[Time] {
        &self.rank_finish
    }

    /// Per-rank accumulated computation time.
    pub fn rank_compute(&self) -> &[Time] {
        &self.rank_compute
    }

    /// Sum of computation time over all ranks.
    pub fn total_compute(&self) -> Time {
        self.rank_compute.iter().copied().sum()
    }

    /// Fraction of rank-time spent *not* computing (blocked in
    /// communication or collectives), in `[0, 1]`.
    pub fn comm_fraction(&self) -> f64 {
        let finish: f64 = self.rank_finish.iter().map(|t| t.as_secs_f64()).sum();
        if finish == 0.0 {
            return 0.0;
        }
        let compute: f64 = self.rank_compute.iter().map(|t| t.as_secs_f64()).sum();
        ((finish - compute) / finish).clamp(0.0, 1.0)
    }

    /// Number of point-to-point transfers (chunks count individually).
    pub fn p2p_messages(&self) -> u64 {
        self.p2p_messages
    }

    /// Total point-to-point bytes moved.
    pub fn p2p_bytes(&self) -> u64 {
        self.p2p_bytes
    }

    /// Number of collective operations executed.
    pub fn collective_count(&self) -> u64 {
        self.collective_count
    }

    /// Time-weighted mean number of busy buses.
    pub fn mean_busy_buses(&self) -> f64 {
        self.mean_busy_buses
    }

    /// Peak number of simultaneously busy buses.
    pub fn peak_busy_buses(&self) -> f64 {
        self.peak_busy_buses
    }

    /// Largest number of transfers simultaneously waiting for transport
    /// resources in either contention domain (bus/NIC links, or a node's
    /// finite intra-node ports when the platform bounds them).
    pub fn peak_waiting_transfers(&self) -> usize {
        self.peak_waiting_transfers
    }
}

impl fmt::Display for ReplayResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ({} ranks, {} msgs, comm {:.1}%)",
            self.name,
            self.total_time,
            self.rank_finish.len(),
            self.p2p_messages,
            self.comm_fraction() * 100.0
        )
    }
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Resume(usize),
    /// The last byte left the sender: resources free, sender's buffer
    /// reusable.
    TransferSent(TransferId),
    /// The message arrived at the receiver (one wire latency after it was
    /// fully sent).
    TransferDone(TransferId),
    /// A transfer held back by a transient link outage may now enter the
    /// transport queue (faulty platforms only; never scheduled clean).
    TransferRetry(TransferId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SenderKind {
    /// Eager: the sender already moved on; nothing to notify.
    Fire,
    /// Rendezvous blocking send: resume the sender at completion.
    Blocking,
    /// Rendezvous isend: complete this request at completion.
    Request(RequestId),
}

#[derive(Debug)]
struct Transfer {
    from: Rank,
    to: Rank,
    bytes: u64,
    tag: Tag,
    rendezvous: bool,
    /// True when both endpoints share a node: the transfer bypasses the
    /// network resources and uses the intra-node latency/bandwidth.
    intra: bool,
    sender_kind: SenderKind,
    recv: Option<usize>,
    enqueued: bool,
    started_at: Option<Time>,
    arrived: Option<Time>,
    /// Dense channel id, for wait attribution.
    chan: u32,
    /// Sender's clock when the send record was executed.
    posted_at: Time,
    /// When the transfer entered a finite-resource queue (`None` if it
    /// never queued — unlimited intra-node transfers start directly).
    queued_at: Option<Time>,
    /// When the transfer became ready to move data (eager: at the post;
    /// rendezvous: when the matching receive arrived).
    ready_at: Time,
    /// Per-message latency jitter added to the flight delay
    /// ([`Time::ZERO`] unless the platform's perturbation model jitters).
    jitter: Time,
    /// End of the transient link outage that held this transfer between
    /// `ready_at` and its queue entry (`None` when the link was up).
    outage_until: Option<Time>,
}

#[derive(Debug)]
struct RecvPost {
    rank: usize,
    req: Option<RequestId>,
    from: Rank,
    tag: Tag,
    transfer: Option<TransferId>,
    done: Option<Time>,
}

/// FIFO matching state of one interned channel. Lives in a dense vector
/// indexed by [`ovlsim_core::ChannelId`] — no map lookups on the hot path.
#[derive(Debug, Default)]
struct Channel {
    unmatched_sends: VecDeque<TransferId>,
    unmatched_recvs: VecDeque<usize>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Blocker {
    Recv(usize),
    SendDone(TransferId),
    Reqs(ReqGroup),
    Collective(usize),
}

/// Which wait cause a blocked window is charged to (see `emit_blocked`).
#[derive(Debug, Clone, Copy)]
enum BlockKind {
    Recv,
    Send,
    Wait,
}

#[derive(Debug)]
struct Proc {
    cursor: usize,
    clock: Time,
    blocked: Option<Blocker>,
    block_start: Time,
    coll_seq: usize,
    reqs: ReqTable,
    compute: Time,
    finished: Option<Time>,
    /// True once the per-message send overhead of the record at `cursor`
    /// has been charged (two-phase send processing keeps global event
    /// order intact).
    overhead_paid: bool,
    /// Number of compute bursts executed so far: the burst ordinal that
    /// keys this rank's OS-noise draws (engine-invariant — the compiled
    /// engine derives the same ordinal from its burst arena index).
    burst_seq: u64,
}

/// The Dimemas-style replay simulator.
///
/// # Example
///
/// ```
/// use ovlsim_core::{Instr, MipsRate, Platform, Rank, RankTrace, Record, Tag, TraceSet};
/// use ovlsim_dimemas::Simulator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mips = MipsRate::new(1000)?;
/// let trace = TraceSet::new(
///     "pair",
///     mips,
///     vec![
///         RankTrace::from_records(vec![
///             Record::Burst { instr: Instr::new(1000) },
///             Record::Send { to: Rank::new(1), bytes: 1000, tag: Tag::new(0) },
///         ]),
///         RankTrace::from_records(vec![
///             Record::Recv { from: Rank::new(0), bytes: 1000, tag: Tag::new(0) },
///         ]),
///     ],
/// );
/// let platform = Platform::builder()
///     .latency(ovlsim_core::Time::from_us(1))
///     .bandwidth_bytes_per_sec(1.0e9)?
///     .build();
/// let result = Simulator::new(platform).run(&trace)?;
/// // 1 us compute + 1 us latency + 1 us wire.
/// assert_eq!(result.total_time(), ovlsim_core::Time::from_us(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    platform: Platform,
}

impl Simulator {
    /// Creates a simulator for the given platform.
    pub fn new(platform: Platform) -> Self {
        Simulator { platform }
    }

    /// The platform this simulator replays onto.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Replays a trace set (validating and indexing it first).
    ///
    /// When replaying the same trace on many platforms, build a
    /// [`TraceIndex`] once and use [`Simulator::run_prepared`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTrace`] if the trace fails validation and
    /// [`SimError::Deadlock`] if replay stalls.
    pub fn run(&self, trace: &TraceSet) -> Result<ReplayResult, SimError> {
        self.run_observed(trace, &mut NullObserver)
    }

    /// Replays a trace set, reporting timeline happenings to `observer`.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    pub fn run_observed(
        &self,
        trace: &TraceSet,
        observer: &mut dyn ReplayObserver,
    ) -> Result<ReplayResult, SimError> {
        let index = TraceIndex::build(trace).map_err(|issues| SimError::InvalidTrace { issues })?;
        ReplayState::new(&self.platform, trace, &index).run(observer)
    }

    /// Replays an already validated and indexed trace set, skipping
    /// revalidation. The result is bit-identical to [`Simulator::run`];
    /// only the per-run validation cost is gone — which is what makes
    /// multi-point bandwidth sweeps cheap.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if replay stalls, and
    /// [`SimError::IndexMismatch`] if `index` does not match `trace` —
    /// detected best-effort via trace name and rank/record counts; an index
    /// from a different trace that agrees on all three is not caught, so
    /// always build the index from the trace you replay.
    pub fn run_prepared(
        &self,
        trace: &TraceSet,
        index: &TraceIndex,
    ) -> Result<ReplayResult, SimError> {
        self.run_prepared_observed(trace, index, &mut NullObserver)
    }

    /// [`Simulator::run_prepared`] with timeline observation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if replay stalls, and
    /// [`SimError::IndexMismatch`] on the same best-effort mismatch
    /// detection as [`Simulator::run_prepared`].
    pub fn run_prepared_observed(
        &self,
        trace: &TraceSet,
        index: &TraceIndex,
        observer: &mut dyn ReplayObserver,
    ) -> Result<ReplayResult, SimError> {
        if let Some(reason) = index.mismatch_reason(trace) {
            return Err(SimError::IndexMismatch { reason });
        }
        ReplayState::new(&self.platform, trace, index).run(observer)
    }
}

struct ReplayState<'a> {
    platform: &'a Platform,
    trace: &'a TraceSet,
    /// Per-rank record slices, resolved once (stepping a rank never goes
    /// back through the `TraceSet`).
    records: Vec<&'a [Record]>,
    /// Per-rank interned channel ids, parallel to `records`.
    chans: Vec<&'a [u32]>,
    /// Per-channel routing decision (true = both endpoints share a node),
    /// derived once from [`TraceIndex::channel_peers`] and the platform's
    /// node mapping — the hot loop never recomputes node ids per event.
    intra_chan: Vec<bool>,
    queue: EventQueue<Event>,
    procs: Vec<Proc>,
    transfers: Vec<Transfer>,
    recv_posts: Vec<RecvPost>,
    /// Dense channel table indexed by interned channel id.
    channels: Vec<Channel>,
    network: Network,
    collectives: CollectiveTracker,
    p2p_messages: u64,
    p2p_bytes: u64,
    /// Hoisted `1 / cpu_ratio` (the clean burst factor).
    inv_cpu_ratio: f64,
    /// True when the platform's perturbation model stretches bursts.
    compute_perturbed: bool,
    /// Link-side perturbation (degradation, jitter, faults).
    link: LinkPerturb,
    /// Per-channel send sequence numbers keying latency-jitter draws
    /// (empty unless jitter is on).
    send_seq: Vec<u64>,
}

impl<'a> ReplayState<'a> {
    fn new(platform: &'a Platform, trace: &'a TraceSet, index: &'a TraceIndex) -> Self {
        let n = trace.rank_count();
        ReplayState {
            platform,
            trace,
            records: trace.ranks().iter().map(|rt| rt.records()).collect(),
            chans: (0..n).map(|r| index.rank_channels(r)).collect(),
            intra_chan: index
                .channel_peers()
                .iter()
                .map(|&(src, dst)| platform.node_of(src) == platform.node_of(dst))
                .collect(),
            queue: EventQueue::new(),
            procs: (0..n)
                .map(|_| Proc {
                    cursor: 0,
                    clock: Time::ZERO,
                    blocked: None,
                    block_start: Time::ZERO,
                    coll_seq: 0,
                    reqs: ReqTable::new(),
                    compute: Time::ZERO,
                    finished: None,
                    overhead_paid: false,
                    burst_seq: 0,
                })
                .collect(),
            transfers: Vec::new(),
            recv_posts: Vec::new(),
            channels: (0..index.channel_count())
                .map(|_| Channel::default())
                .collect(),
            network: Network::new(platform, n),
            collectives: CollectiveTracker::new(n),
            p2p_messages: 0,
            p2p_bytes: 0,
            inv_cpu_ratio: 1.0 / platform.cpu_ratio(),
            compute_perturbed: platform.perturbation().has_compute_effects(),
            link: LinkPerturb::new(platform),
            send_seq: if platform.perturbation().has_link_effects() {
                vec![0; index.channel_count()]
            } else {
                Vec::new()
            },
        }
    }

    fn run(&mut self, observer: &mut dyn ReplayObserver) -> Result<ReplayResult, SimError> {
        for r in 0..self.procs.len() {
            self.queue.schedule(Time::ZERO, Event::Resume(r));
        }
        while let Some((t, ev)) = self.queue.pop() {
            match ev {
                Event::Resume(r) => self.step(r, observer),
                Event::TransferSent(id) => self.transfer_sent(id, t, observer),
                Event::TransferDone(id) => self.transfer_done(id, t, observer),
                Event::TransferRetry(id) => self.launch_transfer(id, t),
            }
        }
        // Either everyone finished, or we deadlocked.
        let blocked: Vec<(Rank, String)> = self
            .procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.finished.is_none())
            .map(|(r, p)| (Rank::new(r as u32), self.describe_blocker(p)))
            .collect();
        if !blocked.is_empty() {
            let at = self
                .procs
                .iter()
                .map(|p| p.clock)
                .max()
                .unwrap_or(Time::ZERO);
            return Err(SimError::Deadlock { at, blocked });
        }
        let rank_finish: Vec<Time> = self
            .procs
            .iter()
            .map(|p| p.finished.expect("all finished"))
            .collect();
        let total_time = rank_finish.iter().copied().max().unwrap_or(Time::ZERO);
        Ok(ReplayResult {
            name: self.trace.name().to_string(),
            total_time,
            rank_compute: self.procs.iter().map(|p| p.compute).collect(),
            rank_finish,
            p2p_messages: self.p2p_messages,
            p2p_bytes: self.p2p_bytes,
            collective_count: self.collectives.instance_count() as u64,
            mean_busy_buses: self.network.mean_busy_buses(total_time),
            peak_busy_buses: self.network.peak_busy_buses(),
            peak_waiting_transfers: self.network.peak_waiting(),
        })
    }

    fn describe_blocker(&self, p: &Proc) -> String {
        match &p.blocked {
            None => "runnable but starved (internal error)".to_string(),
            Some(Blocker::Recv(pid)) => {
                let post = &self.recv_posts[*pid];
                format!("blocked in recv from {} {}", post.from, post.tag)
            }
            Some(Blocker::SendDone(tid)) => {
                let t = &self.transfers[*tid];
                format!("blocked in rendezvous send to {} {}", t.to, t.tag)
            }
            Some(Blocker::Reqs(reqs)) => format!("blocked waiting {} requests", reqs.len()),
            Some(Blocker::Collective(seq)) => format!("blocked in collective #{seq}"),
        }
    }

    /// Duration of burst number `seq` of rank `r` on this platform
    /// (`instr / MIPS / cpu_ratio`, stretched by the perturbation model's
    /// compute effects when active).
    fn burst_duration(&self, r: usize, seq: u64, instr: ovlsim_core::Instr) -> Time {
        let base = self.trace.mips().instr_to_time(instr);
        if self.compute_perturbed {
            let rank = r as u32;
            let node = self.platform.node_of(rank);
            base.scale_f64(self.platform.perturbation().burst_factor(
                self.inv_cpu_ratio,
                rank,
                node,
                seq,
            ))
        } else {
            base.scale_f64(self.inv_cpu_ratio)
        }
    }

    /// Time the transfer occupies its link/bus resources (pure
    /// transmission; latency is flight time on top). Intra-node transfers
    /// use the shared-memory bandwidth; inter-node transfers stretch by
    /// the link's degradation factor when perturbed.
    fn transmission_time(&self, t: &Transfer) -> Time {
        if t.intra {
            self.platform.intra_node_bandwidth().transfer_time(t.bytes)
        } else {
            let base = self.platform.bandwidth().transfer_time(t.bytes);
            self.link.stretch(base, t.from, t.to)
        }
    }

    /// Flight delay between "fully sent" and "arrived" (plus the
    /// message's latency jitter when perturbed).
    fn flight_time(&self, t: &Transfer) -> Time {
        let base = if t.intra {
            self.platform.intra_node_latency()
        } else if t.rendezvous {
            self.platform.latency() + self.platform.rendezvous_latency()
        } else {
            self.platform.latency()
        };
        base + t.jitter
    }

    fn pump_network(&mut self, now: Time) {
        let transfers = &self.transfers;
        let started = self
            .network
            .start_eligible(now, |id| (transfers[id].from, transfers[id].to));
        for tid in started {
            self.transfers[tid].started_at = Some(now);
            let dur = self.transmission_time(&self.transfers[tid]);
            self.queue.schedule(now + dur, Event::TransferSent(tid));
        }
    }

    /// Starts eligible intra-node transfers when the intra domain has a
    /// finite port count (no-op otherwise: unlimited intra transfers are
    /// scheduled directly and never queue).
    fn pump_intra(&mut self, now: Time) {
        if !self.network.intra_limited() {
            return;
        }
        let transfers = &self.transfers;
        let platform = self.platform;
        let started = self.network.start_eligible_intra(now, |id| {
            platform.node_of(transfers[id].from.get()) as usize
        });
        for tid in started {
            self.transfers[tid].started_at = Some(now);
            let dur = self.transmission_time(&self.transfers[tid]);
            self.queue.schedule(now + dur, Event::TransferSent(tid));
        }
    }

    /// Executes records of rank `r` until it blocks, yields, or finishes.
    fn step(&mut self, r: usize, observer: &mut dyn ReplayObserver) {
        debug_assert!(self.procs[r].blocked.is_none(), "stepping a blocked rank");
        let records = self.records[r];
        let chans = self.chans[r];
        loop {
            let cursor = self.procs[r].cursor;
            if cursor >= records.len() {
                let at = self.procs[r].clock;
                self.procs[r].finished = Some(at);
                observer.finished(Rank::new(r as u32), at);
                return;
            }
            let now = self.procs[r].clock;
            match &records[cursor] {
                Record::Burst { instr } => {
                    let seq = self.procs[r].burst_seq;
                    self.procs[r].burst_seq += 1;
                    let dur = self.burst_duration(r, seq, *instr);
                    let end = now + dur;
                    observer.interval(Rank::new(r as u32), now, end, ProcState::Compute);
                    if end > now {
                        observer.attributed(
                            Rank::new(r as u32),
                            now,
                            end,
                            WaitCause::Compute,
                            None,
                        );
                    }
                    let p = &mut self.procs[r];
                    p.compute += dur;
                    p.clock = end;
                    p.cursor += 1;
                    self.queue.schedule(end, Event::Resume(r));
                    return;
                }
                Record::Marker { code } => {
                    observer.marker(Rank::new(r as u32), now, *code);
                    self.procs[r].cursor += 1;
                }
                Record::Send { to, bytes, tag } => {
                    // Per-message sender CPU overhead (LogGP `o`): charge
                    // it as its own simulation step so global event order
                    // is preserved, then process the send on resume.
                    if self.charge_send_overhead(r, now, observer) {
                        return;
                    }
                    let rendezvous = *bytes > self.platform.eager_threshold();
                    let kind = if rendezvous {
                        SenderKind::Blocking
                    } else {
                        SenderKind::Fire
                    };
                    let intra = self.intra_chan[chans[cursor] as usize];
                    let tid =
                        self.create_transfer(r, *to, *bytes, *tag, intra, kind, chans[cursor], now);
                    self.post_send(tid, chans[cursor], now);
                    self.procs[r].cursor += 1;
                    if rendezvous {
                        let p = &mut self.procs[r];
                        p.blocked = Some(Blocker::SendDone(tid));
                        p.block_start = now;
                        return;
                    }
                }
                Record::ISend {
                    to,
                    bytes,
                    tag,
                    req,
                } => {
                    if self.charge_send_overhead(r, now, observer) {
                        return;
                    }
                    let rendezvous = *bytes > self.platform.eager_threshold();
                    let kind = if rendezvous {
                        SenderKind::Request(*req)
                    } else {
                        SenderKind::Fire
                    };
                    let intra = self.intra_chan[chans[cursor] as usize];
                    let tid =
                        self.create_transfer(r, *to, *bytes, *tag, intra, kind, chans[cursor], now);
                    let state = if rendezvous {
                        ReqState::InFlight
                    } else {
                        // Eager isend: the buffer is copied out immediately.
                        ReqState::Done { at: now, tid }
                    };
                    self.procs[r].reqs.insert(req.get(), state);
                    self.post_send(tid, chans[cursor], now);
                    self.procs[r].cursor += 1;
                }
                Record::Recv {
                    from,
                    bytes: _,
                    tag,
                } => {
                    let pid = self.post_recv(r, None, *from, *tag, chans[cursor], now);
                    self.procs[r].cursor += 1;
                    match self.recv_posts[pid].done {
                        Some(done) => {
                            // Message already arrived: proceed after the
                            // per-message receiver overhead, yielding so
                            // the clock never outruns the event queue.
                            debug_assert!(done >= now);
                            if done > now {
                                let tid = self.recv_posts[pid]
                                    .transfer
                                    .expect("completed receives are matched");
                                self.emit_blocked(observer, r, now, done, BlockKind::Recv, tid);
                                self.procs[r].clock = done;
                                self.queue.schedule(done, Event::Resume(r));
                                return;
                            }
                        }
                        None => {
                            let p = &mut self.procs[r];
                            p.blocked = Some(Blocker::Recv(pid));
                            p.block_start = now;
                            return;
                        }
                    }
                }
                Record::IRecv {
                    from,
                    bytes: _,
                    tag,
                    req,
                } => {
                    let pid = self.post_recv(r, Some(*req), *from, *tag, chans[cursor], now);
                    let state = match self.recv_posts[pid].done {
                        Some(done) => ReqState::Done {
                            at: done,
                            tid: self.recv_posts[pid]
                                .transfer
                                .expect("completed receives are matched"),
                        },
                        None => ReqState::InFlight,
                    };
                    self.procs[r].reqs.insert(req.get(), state);
                    self.procs[r].cursor += 1;
                }
                Record::Wait { req } => {
                    if self.enter_wait(r, &[*req], now, observer) {
                        return;
                    }
                }
                Record::WaitAll { reqs } => {
                    // `records` borrows the trace directly (not through
                    // `self`), so the wait-set is passed by reference — no
                    // per-wait clone.
                    if self.enter_wait(r, reqs, now, observer) {
                        return;
                    }
                }
                rec if rec.is_collective() => {
                    let (op, bytes) = collective_op(rec).expect("checked collective");
                    let seq = self.procs[r].coll_seq;
                    self.procs[r].coll_seq += 1;
                    self.procs[r].cursor += 1;
                    match self.collectives.arrive(seq, op, bytes, now, self.platform) {
                        Some(done) => {
                            // Last arrival: release everyone blocked on it.
                            // Blocked ranks were gated by this arrival;
                            // the last arriver itself is self-paced.
                            let release = DepEdge {
                                rank: Rank::new(r as u32),
                                at: now,
                            };
                            for (q, proc) in self.procs.iter_mut().enumerate() {
                                if proc.blocked == Some(Blocker::Collective(seq)) {
                                    observer.interval(
                                        Rank::new(q as u32),
                                        proc.block_start,
                                        done,
                                        ProcState::Collective,
                                    );
                                    if done > proc.block_start {
                                        observer.attributed(
                                            Rank::new(q as u32),
                                            proc.block_start,
                                            done,
                                            WaitCause::Collective { seq: seq as u32 },
                                            Some(release),
                                        );
                                    }
                                    proc.blocked = None;
                                    proc.clock = done;
                                    self.queue.schedule(done, Event::Resume(q));
                                }
                            }
                            observer.interval(
                                Rank::new(r as u32),
                                now,
                                done,
                                ProcState::Collective,
                            );
                            if done > now {
                                observer.attributed(
                                    Rank::new(r as u32),
                                    now,
                                    done,
                                    WaitCause::Collective { seq: seq as u32 },
                                    None,
                                );
                            }
                            self.procs[r].clock = done;
                            self.queue.schedule(done, Event::Resume(r));
                            return;
                        }
                        None => {
                            let p = &mut self.procs[r];
                            p.blocked = Some(Blocker::Collective(seq));
                            p.block_start = now;
                            return;
                        }
                    }
                }
                other => unreachable!("unhandled record {other}"),
            }
        }
    }

    /// Processes a wait record. Returns true if the rank blocked (caller
    /// must return); false if all requests were already complete.
    fn enter_wait(
        &mut self,
        r: usize,
        reqs: &[RequestId],
        now: Time,
        observer: &mut dyn ReplayObserver,
    ) -> bool {
        let mut remaining = ReqGroup::new();
        let mut latest = now;
        // Transfer of the last-completing request: the whole wait interval
        // is attributed to its channel (the "last unblocker").
        let mut latest_tid: Option<TransferId> = None;
        for req in reqs {
            match self.procs[r].reqs.get(req.get()) {
                Some(ReqState::Done { at, tid }) => {
                    self.procs[r].reqs.remove(req.get());
                    if at > latest {
                        latest = at;
                        latest_tid = Some(tid);
                    }
                }
                Some(ReqState::InFlight) => {
                    // Stays registered for completion bookkeeping.
                    remaining.push(req.get());
                }
                None => unreachable!("validated trace waits on posted requests"),
            }
        }
        self.procs[r].cursor += 1;
        if remaining.is_empty() {
            if latest > now {
                observer.interval(Rank::new(r as u32), now, latest, ProcState::WaitRequest);
                let tid = latest_tid.expect("a request completed after now");
                self.emit_blocked(observer, r, now, latest, BlockKind::Wait, tid);
                self.procs[r].clock = latest;
                self.queue.schedule(latest, Event::Resume(r));
                return true;
            }
            false
        } else {
            let p = &mut self.procs[r];
            p.blocked = Some(Blocker::Reqs(remaining));
            p.block_start = now;
            true
        }
    }

    /// Charges the per-message sender overhead for the record at the
    /// rank's cursor. Returns true if a resume was scheduled (the caller
    /// must return); on the resumed call the overhead is already paid and
    /// processing continues at the advanced clock.
    fn charge_send_overhead(
        &mut self,
        r: usize,
        now: Time,
        observer: &mut dyn ReplayObserver,
    ) -> bool {
        let overhead = self.platform.send_overhead();
        if overhead.is_zero() {
            return false;
        }
        let p = &mut self.procs[r];
        if p.overhead_paid {
            p.overhead_paid = false;
            return false;
        }
        p.overhead_paid = true;
        p.clock = now + overhead;
        let at = p.clock;
        observer.attributed(Rank::new(r as u32), now, at, WaitCause::SendOverhead, None);
        self.queue.schedule(at, Event::Resume(r));
        true
    }

    /// The cross-rank dependency that released rank `r` from an interval
    /// gated by transfer `tid` (None when the interval was self-paced).
    fn blocked_edge(&self, r: usize, start: Time, tid: TransferId) -> Option<DepEdge> {
        let t = &self.transfers[tid];
        if t.from.index() == r {
            // Send side: the sender is released when its last byte
            // leaves; the receiver is the gate only if the wire start
            // waited for the matching receive to be posted.
            (t.ready_at > t.posted_at).then_some(DepEdge {
                rank: t.to,
                at: t.ready_at,
            })
        } else {
            // Receive side: gated by the sender unless the message had
            // already arrived when this interval began.
            match t.arrived {
                Some(a) if a <= start => None,
                _ => Some(DepEdge {
                    rank: t.from,
                    at: t.posted_at,
                }),
            }
        }
    }

    /// Emits the attributed intervals of a blocked window `[start, end)`
    /// on rank `r` gated by transfer `tid`: the portion the transfer spent
    /// queued for transport resources becomes a [`WaitCause::Contended`]
    /// sub-interval, the rest carries the wait kind; the releasing edge is
    /// attached to the final sub-interval.
    fn emit_blocked(
        &self,
        observer: &mut dyn ReplayObserver,
        r: usize,
        start: Time,
        end: Time,
        kind: BlockKind,
        tid: TransferId,
    ) {
        if end <= start {
            return;
        }
        let t = &self.transfers[tid];
        let chan = t.chan;
        let cause = match kind {
            BlockKind::Recv => WaitCause::BlockedRecv { chan },
            BlockKind::Send => WaitCause::BlockedSend { chan },
            BlockKind::Wait => WaitCause::BlockedWait { chan },
        };
        let edge = self.blocked_edge(r, start, tid);
        // Clip the transfer's outage hold and resource-queue wait to the
        // blocked window. When both exist the outage always precedes the
        // queue entry (the transfer launches at the window's end).
        let (os, oe) = match t.outage_until {
            Some(up) => (t.ready_at.max(start), up.min(end)),
            None => (start, start),
        };
        let (qs, qe) = match (t.queued_at, t.started_at) {
            (Some(q), Some(s)) => (q.max(start), s.min(end)),
            _ => (end, end),
        };
        let rank = Rank::new(r as u32);
        let down = WaitCause::LinkDown { chan };
        let contended = WaitCause::Contended {
            chan,
            intra: t.intra,
        };
        // Assemble the (at most five) sub-intervals in order; the
        // releasing edge is attached to the last one emitted.
        let mut segs = [(start, start, cause); 5];
        let mut n = 0;
        let mut cur = start;
        if oe > os {
            if os > cur {
                segs[n] = (cur, os, cause);
                n += 1;
            }
            segs[n] = (os.max(cur), oe, down);
            n += 1;
            cur = oe;
        }
        if qe > qs && qe > cur {
            if qs > cur {
                segs[n] = (cur, qs, cause);
                n += 1;
            }
            segs[n] = (qs.max(cur), qe, contended);
            n += 1;
            cur = qe;
        }
        if end > cur {
            segs[n] = (cur, end, cause);
            n += 1;
        }
        for (i, &(s, e, c)) in segs[..n].iter().enumerate() {
            let eg = if i + 1 == n { edge } else { None };
            observer.attributed(rank, s, e, c, eg);
        }
    }

    /// Registers a new transfer. The protocol follows from the sender
    /// kind: eager sends fire and forget ([`SenderKind::Fire`]), both
    /// blocking and request-completing senders are rendezvous.
    #[allow(clippy::too_many_arguments)]
    fn create_transfer(
        &mut self,
        from: usize,
        to: Rank,
        bytes: u64,
        tag: Tag,
        intra: bool,
        sender_kind: SenderKind,
        chan: u32,
        now: Time,
    ) -> TransferId {
        let tid = self.transfers.len();
        let rendezvous = sender_kind != SenderKind::Fire;
        // Latency jitter keys on the raw channel coordinates plus the
        // message's per-channel send ordinal — program order on the one
        // sending rank, hence identical across engines.
        let jitter = if intra || self.send_seq.is_empty() {
            Time::ZERO
        } else {
            let seq = self.send_seq[chan as usize];
            self.send_seq[chan as usize] += 1;
            self.link.jitter(Rank::new(from as u32), to, tag, seq)
        };
        self.transfers.push(Transfer {
            from: Rank::new(from as u32),
            to,
            bytes,
            tag,
            rendezvous,
            intra,
            sender_kind,
            recv: None,
            enqueued: false,
            started_at: None,
            arrived: None,
            chan,
            posted_at: now,
            queued_at: None,
            ready_at: now,
            jitter,
            outage_until: None,
        });
        self.p2p_messages += 1;
        self.p2p_bytes += bytes;
        tid
    }

    fn post_send(&mut self, tid: TransferId, channel: u32, now: Time) {
        let ch = &mut self.channels[channel as usize];
        let matched = match ch.unmatched_recvs.pop_front() {
            Some(pid) => {
                self.transfers[tid].recv = Some(pid);
                self.recv_posts[pid].transfer = Some(tid);
                true
            }
            None => {
                ch.unmatched_sends.push_back(tid);
                false
            }
        };
        let ready = !self.transfers[tid].rendezvous || matched;
        if ready {
            self.start_transfer(tid, now);
        }
    }

    /// Starts (or enqueues) a ready transfer: intra-node transfers bypass
    /// the bus/NIC-link fabric entirely, contending only for their node's
    /// shared-memory ports (if the platform bounds them at all).
    ///
    /// On a faulty platform an inter-node transfer whose link is inside a
    /// transient outage is held back first: it launches (enters the
    /// transport queue) when the outage window ends.
    fn start_transfer(&mut self, tid: TransferId, now: Time) {
        debug_assert!(!self.transfers[tid].enqueued);
        self.transfers[tid].enqueued = true;
        self.transfers[tid].ready_at = now;
        if !self.transfers[tid].intra {
            let (from, to) = (self.transfers[tid].from, self.transfers[tid].to);
            if let Some(up) = self.link.outage_end(from, to, now) {
                self.transfers[tid].outage_until = Some(up);
                self.queue.schedule(up, Event::TransferRetry(tid));
                return;
            }
        }
        self.launch_transfer(tid, now);
    }

    /// Enters a ready transfer into its transport domain (the tail of
    /// [`ReplayState::start_transfer`], reached directly when the link is
    /// up and via [`Event::TransferRetry`] after an outage).
    fn launch_transfer(&mut self, tid: TransferId, now: Time) {
        if self.transfers[tid].intra {
            if self.network.intra_limited() {
                self.transfers[tid].queued_at = Some(now);
                self.network.enqueue_intra(tid, now);
                self.pump_intra(now);
            } else {
                self.transfers[tid].started_at = Some(now);
                let dur = self.transmission_time(&self.transfers[tid]);
                self.queue.schedule(now + dur, Event::TransferSent(tid));
            }
        } else {
            self.transfers[tid].queued_at = Some(now);
            self.network.enqueue(tid, now);
            self.pump_network(now);
        }
    }

    fn post_recv(
        &mut self,
        r: usize,
        req: Option<RequestId>,
        from: Rank,
        tag: Tag,
        channel: u32,
        now: Time,
    ) -> usize {
        let pid = self.recv_posts.len();
        self.recv_posts.push(RecvPost {
            rank: r,
            req,
            from,
            tag,
            transfer: None,
            done: None,
        });
        let ch = &mut self.channels[channel as usize];
        let matched = match ch.unmatched_sends.pop_front() {
            Some(tid) => Some(tid),
            None => {
                ch.unmatched_recvs.push_back(pid);
                None
            }
        };
        if let Some(tid) = matched {
            self.transfers[tid].recv = Some(pid);
            self.recv_posts[pid].transfer = Some(tid);
            if let Some(_arrival) = self.transfers[tid].arrived {
                // Eager message that already landed: the receive completes
                // after the per-message receiver overhead.
                self.recv_posts[pid].done = Some(now + self.platform.recv_overhead());
            } else if !self.transfers[tid].enqueued {
                // Rendezvous transfer waiting for this receive.
                self.start_transfer(tid, now);
            }
        }
        pid
    }

    fn complete_request(
        &mut self,
        r: usize,
        req: RequestId,
        at: Time,
        tid: TransferId,
        observer: &mut dyn ReplayObserver,
    ) {
        // If the rank is blocked on a wait-set containing this request,
        // shrink the set; otherwise mark the request done for a later wait.
        let proc = &mut self.procs[r];
        let unblock = match &mut proc.blocked {
            Some(Blocker::Reqs(set)) if set.contains(req.get()) => {
                set.remove(req.get());
                proc.reqs.remove(req.get());
                set.is_empty()
            }
            _ => {
                proc.reqs.insert(req.get(), ReqState::Done { at, tid });
                false
            }
        };
        if unblock {
            let start = self.procs[r].block_start;
            observer.interval(Rank::new(r as u32), start, at, ProcState::WaitRequest);
            self.emit_blocked(observer, r, start, at, BlockKind::Wait, tid);
            let p = &mut self.procs[r];
            p.blocked = None;
            p.clock = at;
            self.queue.schedule(at, Event::Resume(r));
        }
    }

    /// The transfer's last byte left the sender: free the resources, let
    /// the sender proceed, and schedule the arrival one flight later.
    fn transfer_sent(&mut self, tid: TransferId, at: Time, observer: &mut dyn ReplayObserver) {
        let (from, to, sender_kind, intra) = {
            let t = &self.transfers[tid];
            (t.from, t.to, t.sender_kind, t.intra)
        };
        if !intra {
            self.network.release(from, to, at);
        } else if self.network.intra_limited() {
            self.network
                .release_intra(self.platform.node_of(from.get()) as usize);
        }

        match sender_kind {
            SenderKind::Fire => {}
            SenderKind::Blocking => {
                let s = from.index();
                debug_assert_eq!(self.procs[s].blocked, Some(Blocker::SendDone(tid)));
                let start = self.procs[s].block_start;
                observer.interval(from, start, at, ProcState::WaitSend);
                self.emit_blocked(observer, s, start, at, BlockKind::Send, tid);
                let p = &mut self.procs[s];
                p.blocked = None;
                p.clock = at;
                self.queue.schedule(at, Event::Resume(s));
            }
            SenderKind::Request(req) => {
                self.complete_request(from.index(), req, at, tid, observer);
            }
        }

        let flight = self.flight_time(&self.transfers[tid]);
        self.queue.schedule(at + flight, Event::TransferDone(tid));
        // Only the domain whose resources this completion freed can have
        // newly eligible transfers; the other's occupancy is unchanged.
        if intra {
            self.pump_intra(at);
        } else {
            self.pump_network(at);
        }
    }

    /// The message arrived at the receiver.
    fn transfer_done(&mut self, tid: TransferId, at: Time, observer: &mut dyn ReplayObserver) {
        let (from, to, bytes, tag, started, recv) = {
            let t = &self.transfers[tid];
            (
                t.from,
                t.to,
                t.bytes,
                t.tag,
                t.started_at.expect("done transfers started"),
                t.recv,
            )
        };
        self.transfers[tid].arrived = Some(at);
        observer.message(from, to, started, at, bytes, tag);

        // Receiver-side notification (plus per-message receiver overhead).
        if let Some(pid) = recv {
            let done = at + self.platform.recv_overhead();
            self.recv_posts[pid].done = Some(done);
            let r = self.recv_posts[pid].rank;
            match self.recv_posts[pid].req {
                None => {
                    debug_assert_eq!(self.procs[r].blocked, Some(Blocker::Recv(pid)));
                    let start = self.procs[r].block_start;
                    observer.interval(Rank::new(r as u32), start, done, ProcState::WaitRecv);
                    self.emit_blocked(observer, r, start, done, BlockKind::Recv, tid);
                    let p = &mut self.procs[r];
                    p.blocked = None;
                    p.clock = done;
                    self.queue.schedule(done, Event::Resume(r));
                }
                Some(req) => {
                    self.complete_request(r, req, done, tid, observer);
                }
            }
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use ovlsim_core::{Instr, MipsRate, RankTrace};

    fn mips() -> MipsRate {
        MipsRate::new(1000).unwrap()
    }

    fn platform_1us_1gb() -> Platform {
        Platform::builder()
            .latency(Time::from_us(1))
            .bandwidth_bytes_per_sec(1.0e9)
            .unwrap()
            .build()
    }

    fn trace(ranks: Vec<Vec<Record>>) -> TraceSet {
        TraceSet::new(
            "test",
            mips(),
            ranks.into_iter().map(RankTrace::from_records).collect(),
        )
    }

    #[test]
    fn lone_burst_takes_instr_over_mips() {
        let ts = trace(vec![vec![Record::Burst {
            instr: Instr::new(5000),
        }]]);
        let res = Simulator::new(platform_1us_1gb()).run(&ts).unwrap();
        // 5000 instr at 1000 MIPS = 5 us.
        assert_eq!(res.total_time(), Time::from_us(5));
        assert_eq!(res.rank_compute()[0], Time::from_us(5));
        assert_eq!(res.comm_fraction(), 0.0);
    }

    #[test]
    fn cpu_ratio_scales_bursts() {
        let p = Platform::builder()
            .latency(Time::from_us(1))
            .bandwidth_bytes_per_sec(1.0e9)
            .unwrap()
            .cpu_ratio(2.0)
            .expect("positive ratio")
            .build();
        let ts = trace(vec![vec![Record::Burst {
            instr: Instr::new(5000),
        }]]);
        let res = Simulator::new(p).run(&ts).unwrap();
        assert_eq!(res.total_time(), Time::from_us(2) + Time::from_ps(500_000));
    }

    #[test]
    fn eager_send_recv_pair_timing() {
        let ts = trace(vec![
            vec![
                Record::Burst {
                    instr: Instr::new(1000),
                },
                Record::Send {
                    to: Rank::new(1),
                    bytes: 1000,
                    tag: Tag::new(0),
                },
            ],
            vec![Record::Recv {
                from: Rank::new(0),
                bytes: 1000,
                tag: Tag::new(0),
            }],
        ]);
        let res = Simulator::new(platform_1us_1gb()).run(&ts).unwrap();
        // Sender: 1 us compute, send eager (instant locally).
        assert_eq!(res.rank_finish()[0], Time::from_us(1));
        // Receiver: wire starts at 1 us, 1 us latency + 1 us transfer.
        assert_eq!(res.rank_finish()[1], Time::from_us(3));
        assert_eq!(res.p2p_messages(), 1);
        assert_eq!(res.p2p_bytes(), 1000);
    }

    #[test]
    fn early_receiver_still_pays_wire_time() {
        // Receiver posts immediately; sender computes first.
        let ts = trace(vec![
            vec![
                Record::Burst {
                    instr: Instr::new(10_000),
                },
                Record::Send {
                    to: Rank::new(1),
                    bytes: 1000,
                    tag: Tag::new(0),
                },
            ],
            vec![Record::Recv {
                from: Rank::new(0),
                bytes: 1000,
                tag: Tag::new(0),
            }],
        ]);
        let res = Simulator::new(platform_1us_1gb()).run(&ts).unwrap();
        assert_eq!(res.rank_finish()[1], Time::from_us(12));
    }

    #[test]
    fn rendezvous_waits_for_receiver() {
        let p = Platform::builder()
            .latency(Time::from_us(1))
            .bandwidth_bytes_per_sec(1.0e9)
            .unwrap()
            .eager_threshold(100)
            .build();
        // 1000-byte message is rendezvous. Receiver arrives late (10 us).
        let ts = trace(vec![
            vec![Record::Send {
                to: Rank::new(1),
                bytes: 1000,
                tag: Tag::new(0),
            }],
            vec![
                Record::Burst {
                    instr: Instr::new(10_000),
                },
                Record::Recv {
                    from: Rank::new(0),
                    bytes: 1000,
                    tag: Tag::new(0),
                },
            ],
        ]);
        let res = Simulator::new(p).run(&ts).unwrap();
        // Transfer starts at 10 us; fully sent at 11 us (sender resumes),
        // arrives one latency later at 12 us (receiver resumes).
        assert_eq!(res.rank_finish()[0], Time::from_us(11));
        assert_eq!(res.rank_finish()[1], Time::from_us(12));
    }

    #[test]
    fn eager_message_buffered_until_late_receiver() {
        let ts = trace(vec![
            vec![Record::Send {
                to: Rank::new(1),
                bytes: 1000,
                tag: Tag::new(0),
            }],
            vec![
                Record::Burst {
                    instr: Instr::new(10_000),
                },
                Record::Recv {
                    from: Rank::new(0),
                    bytes: 1000,
                    tag: Tag::new(0),
                },
            ],
        ]);
        let res = Simulator::new(platform_1us_1gb()).run(&ts).unwrap();
        // Sender done immediately; wire done at 2 us; receiver computes
        // till 10 us and finds the message there.
        assert_eq!(res.rank_finish()[0], Time::ZERO);
        assert_eq!(res.rank_finish()[1], Time::from_us(10));
    }

    #[test]
    fn irecv_wait_overlaps_compute() {
        let ts = trace(vec![
            vec![Record::Send {
                to: Rank::new(1),
                bytes: 1_000_000,
                tag: Tag::new(0),
            }],
            vec![
                Record::IRecv {
                    from: Rank::new(0),
                    bytes: 1_000_000,
                    tag: Tag::new(0),
                    req: RequestId::new(0),
                },
                Record::Burst {
                    instr: Instr::new(2000),
                },
                Record::Wait {
                    req: RequestId::new(0),
                },
            ],
        ]);
        let res = Simulator::new(platform_1us_1gb()).run(&ts).unwrap();
        // Wire: 1 us latency + 1000 us transfer = 1001 us; compute 2 us
        // overlaps fully. Receiver ends at 1001 us.
        assert_eq!(res.rank_finish()[1], Time::from_us(1001));
    }

    #[test]
    fn fifo_matching_same_tag() {
        // Two messages of different sizes on one channel must match FIFO.
        let ts = trace(vec![
            vec![
                Record::Send {
                    to: Rank::new(1),
                    bytes: 1000,
                    tag: Tag::new(0),
                },
                Record::Send {
                    to: Rank::new(1),
                    bytes: 2000,
                    tag: Tag::new(0),
                },
            ],
            vec![
                Record::Recv {
                    from: Rank::new(0),
                    bytes: 1000,
                    tag: Tag::new(0),
                },
                Record::Recv {
                    from: Rank::new(0),
                    bytes: 2000,
                    tag: Tag::new(0),
                },
            ],
        ]);
        let res = Simulator::new(platform_1us_1gb()).run(&ts).unwrap();
        // Serialized on the sender's single output link: msg1 transmits
        // [0,1us] and lands at 2us; msg2 transmits [1us,3us], lands at 4us.
        assert_eq!(res.rank_finish()[1], Time::from_us(4));
    }

    #[test]
    fn single_output_link_serializes_chunks() {
        // Four 1000-byte chunks posted back-to-back as isends.
        let reqs: Vec<RequestId> = (0..4).map(RequestId::new).collect();
        let mut r0: Vec<Record> = reqs
            .iter()
            .map(|&req| Record::ISend {
                to: Rank::new(1),
                bytes: 1000,
                tag: Tag::new(req.get() as u64),
                req,
            })
            .collect();
        r0.push(Record::WaitAll { reqs: reqs.clone() });
        let r1: Vec<Record> = reqs
            .iter()
            .map(|&req| Record::Recv {
                from: Rank::new(0),
                bytes: 1000,
                tag: Tag::new(req.get() as u64),
            })
            .collect();
        let res = Simulator::new(platform_1us_1gb())
            .run(&trace(vec![r0, r1]))
            .unwrap();
        // Chunks pipeline on the out-link (1 us transmission each) with a
        // single overlapped flight latency: chunk k lands at k+2 us, so
        // the receiver finishes at 5 us -- not 4 x (1+1) = 8 us. This is
        // exactly why chunking stays cheap in the Dimemas model.
        assert_eq!(res.rank_finish()[1], Time::from_us(5));
    }

    #[test]
    fn more_output_links_parallelize_chunks() {
        let p = Platform::builder()
            .latency(Time::from_us(1))
            .bandwidth_bytes_per_sec(1.0e9)
            .unwrap()
            .output_links(4)
            .input_links(4)
            .build();
        let reqs: Vec<RequestId> = (0..4).map(RequestId::new).collect();
        let mut r0: Vec<Record> = reqs
            .iter()
            .map(|&req| Record::ISend {
                to: Rank::new(1),
                bytes: 1000,
                tag: Tag::new(req.get() as u64),
                req,
            })
            .collect();
        r0.push(Record::WaitAll { reqs: reqs.clone() });
        let r1: Vec<Record> = reqs
            .iter()
            .map(|&req| Record::Recv {
                from: Rank::new(0),
                bytes: 1000,
                tag: Tag::new(req.get() as u64),
            })
            .collect();
        let res = Simulator::new(p).run(&trace(vec![r0, r1])).unwrap();
        // All four chunks in parallel: done at 2 us.
        assert_eq!(res.rank_finish()[1], Time::from_us(2));
    }

    #[test]
    fn barrier_synchronizes_ranks() {
        let ts = trace(vec![
            vec![
                Record::Burst {
                    instr: Instr::new(10_000),
                },
                Record::Barrier,
            ],
            vec![
                Record::Burst {
                    instr: Instr::new(1000),
                },
                Record::Barrier,
            ],
        ]);
        let res = Simulator::new(platform_1us_1gb()).run(&ts).unwrap();
        // Barrier completes at 10 us (latest) + log2(2)*1 us = 11 us.
        assert_eq!(res.rank_finish()[0], Time::from_us(11));
        assert_eq!(res.rank_finish()[1], Time::from_us(11));
        assert_eq!(res.collective_count(), 1);
    }

    #[test]
    fn allreduce_cost_scales_with_ranks() {
        let mk = |n: u32| {
            trace(
                (0..n)
                    .map(|_| vec![Record::AllReduce { bytes: 1000 }])
                    .collect(),
            )
        };
        let sim = Simulator::new(platform_1us_1gb());
        let t2 = sim.run(&mk(2)).unwrap().total_time();
        let t8 = sim.run(&mk(8)).unwrap().total_time();
        // 2 ranks: 2*1 stages * 2 us = 4 us; 8 ranks: 2*3 * 2 us = 12 us.
        assert_eq!(t2, Time::from_us(4));
        assert_eq!(t8, Time::from_us(12));
    }

    #[test]
    fn remaining_collectives_follow_their_stage_models() {
        // Defaults: bcast/reduce/allgather log2(p) stages, alltoall p-1.
        let sim = Simulator::new(platform_1us_1gb());
        let mk = |rec: Record, n: u32| trace((0..n).map(|_| vec![rec.clone()]).collect());
        // 4 ranks, 1000 bytes, per stage 1 us latency + 1 us wire = 2 us.
        let bcast = mk(
            Record::Bcast {
                root: Rank::new(0),
                bytes: 1000,
            },
            4,
        );
        assert_eq!(sim.run(&bcast).unwrap().total_time(), Time::from_us(4));
        let reduce = mk(
            Record::Reduce {
                root: Rank::new(1),
                bytes: 1000,
            },
            4,
        );
        assert_eq!(sim.run(&reduce).unwrap().total_time(), Time::from_us(4));
        let allgather = mk(Record::AllGather { bytes: 1000 }, 4);
        assert_eq!(sim.run(&allgather).unwrap().total_time(), Time::from_us(4));
        // alltoall: (4-1) stages * 2 us.
        let alltoall = mk(Record::AllToAll { bytes: 1000 }, 4);
        assert_eq!(sim.run(&alltoall).unwrap().total_time(), Time::from_us(6));
    }

    #[test]
    fn collectives_wait_for_last_arrival() {
        // Mixed arrival times: the barrier fires from the latest.
        let ts = trace(vec![
            vec![
                Record::Burst {
                    instr: Instr::new(3_000),
                },
                Record::AllGather { bytes: 1000 },
            ],
            vec![
                Record::Burst {
                    instr: Instr::new(7_000),
                },
                Record::AllGather { bytes: 1000 },
            ],
            vec![Record::AllGather { bytes: 1000 }],
        ]);
        let res = Simulator::new(platform_1us_1gb()).run(&ts).unwrap();
        // Last arrival 7 us + ceil(log2 3)=2 stages * 2 us = 11 us.
        for finish in res.rank_finish() {
            assert_eq!(*finish, Time::from_us(11));
        }
    }

    #[test]
    fn deadlock_detected_and_reported() {
        // Two ranks both waiting to receive; nothing in flight.
        let ts = trace(vec![
            vec![Record::Recv {
                from: Rank::new(1),
                bytes: 100,
                tag: Tag::new(0),
            }],
            vec![Record::Recv {
                from: Rank::new(0),
                bytes: 100,
                tag: Tag::new(0),
            }],
        ]);
        // Note: validation flags the unbalanced channels first, so build a
        // structurally valid but deadlocking trace: cyclic rendezvous.
        let p = Platform::builder()
            .eager_threshold(10)
            .bandwidth_bytes_per_sec(1.0e9)
            .unwrap()
            .build();
        let cyc = trace(vec![
            vec![
                Record::Send {
                    to: Rank::new(1),
                    bytes: 100,
                    tag: Tag::new(0),
                },
                Record::Recv {
                    from: Rank::new(1),
                    bytes: 100,
                    tag: Tag::new(1),
                },
            ],
            vec![
                Record::Send {
                    to: Rank::new(0),
                    bytes: 100,
                    tag: Tag::new(1),
                },
                Record::Recv {
                    from: Rank::new(0),
                    bytes: 100,
                    tag: Tag::new(0),
                },
            ],
        ]);
        match Simulator::new(p).run(&cyc) {
            Err(SimError::Deadlock { blocked, .. }) => {
                assert_eq!(blocked.len(), 2);
                assert!(blocked[0].1.contains("rendezvous"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
        // The unbalanced trace is rejected by validation.
        assert!(matches!(
            Simulator::new(platform_1us_1gb()).run(&ts),
            Err(SimError::InvalidTrace { .. })
        ));
    }

    #[test]
    fn bandwidth_monotonicity() {
        // Higher bandwidth never slows an execution down.
        let ts = trace(vec![
            vec![
                Record::Burst {
                    instr: Instr::new(1000),
                },
                Record::Send {
                    to: Rank::new(1),
                    bytes: 100_000,
                    tag: Tag::new(0),
                },
                Record::Recv {
                    from: Rank::new(1),
                    bytes: 100_000,
                    tag: Tag::new(1),
                },
            ],
            vec![
                Record::Recv {
                    from: Rank::new(0),
                    bytes: 100_000,
                    tag: Tag::new(0),
                },
                Record::Burst {
                    instr: Instr::new(1000),
                },
                Record::Send {
                    to: Rank::new(0),
                    bytes: 100_000,
                    tag: Tag::new(1),
                },
            ],
        ]);
        let mut last = Time::MAX;
        for bw in [1.0e6, 1.0e7, 1.0e8, 1.0e9, 1.0e10] {
            let p = Platform::builder()
                .latency(Time::from_us(1))
                .bandwidth_bytes_per_sec(bw)
                .unwrap()
                .build();
            let t = Simulator::new(p).run(&ts).unwrap().total_time();
            assert!(t <= last, "slower at higher bandwidth {bw}");
            last = t;
        }
    }

    #[test]
    fn observer_sees_intervals_and_messages() {
        #[derive(Default)]
        struct Counter {
            compute: u32,
            waits: u32,
            messages: u32,
            finished: u32,
        }
        impl ReplayObserver for Counter {
            fn interval(&mut self, _r: Rank, _s: Time, _e: Time, state: ProcState) {
                match state {
                    ProcState::Compute => self.compute += 1,
                    _ => self.waits += 1,
                }
            }
            fn message(&mut self, _f: Rank, _t: Rank, _s: Time, _e: Time, _b: u64, _tag: Tag) {
                self.messages += 1;
            }
            fn finished(&mut self, _r: Rank, _t: Time) {
                self.finished += 1;
            }
        }
        let ts = trace(vec![
            vec![
                Record::Burst {
                    instr: Instr::new(1000),
                },
                Record::Send {
                    to: Rank::new(1),
                    bytes: 1000,
                    tag: Tag::new(0),
                },
            ],
            vec![Record::Recv {
                from: Rank::new(0),
                bytes: 1000,
                tag: Tag::new(0),
            }],
        ]);
        let mut obs = Counter::default();
        Simulator::new(platform_1us_1gb())
            .run_observed(&ts, &mut obs)
            .unwrap();
        assert_eq!(obs.compute, 1);
        assert_eq!(obs.messages, 1);
        assert_eq!(obs.waits, 1); // the blocking recv
        assert_eq!(obs.finished, 2);
    }

    #[test]
    fn send_overhead_delays_sender() {
        let p = Platform::builder()
            .latency(Time::from_us(1))
            .bandwidth_bytes_per_sec(1.0e9)
            .unwrap()
            .send_overhead(Time::from_us(3))
            .build();
        let ts = trace(vec![
            vec![
                Record::Send {
                    to: Rank::new(1),
                    bytes: 1000,
                    tag: Tag::new(0),
                },
                Record::Send {
                    to: Rank::new(1),
                    bytes: 1000,
                    tag: Tag::new(1),
                },
            ],
            vec![
                Record::Recv {
                    from: Rank::new(0),
                    bytes: 1000,
                    tag: Tag::new(0),
                },
                Record::Recv {
                    from: Rank::new(0),
                    bytes: 1000,
                    tag: Tag::new(1),
                },
            ],
        ]);
        let res = Simulator::new(p).run(&ts).unwrap();
        // Sender pays 3 us per eager send: finishes at 6 us.
        assert_eq!(res.rank_finish()[0], Time::from_us(6));
    }

    #[test]
    fn recv_overhead_delays_completion() {
        let p = Platform::builder()
            .latency(Time::from_us(1))
            .bandwidth_bytes_per_sec(1.0e9)
            .unwrap()
            .recv_overhead(Time::from_us(2))
            .build();
        let ts = trace(vec![
            vec![Record::Send {
                to: Rank::new(1),
                bytes: 1000,
                tag: Tag::new(0),
            }],
            vec![Record::Recv {
                from: Rank::new(0),
                bytes: 1000,
                tag: Tag::new(0),
            }],
        ]);
        let res = Simulator::new(p).run(&ts).unwrap();
        // Arrival at 2 us + 2 us rx overhead.
        assert_eq!(res.rank_finish()[1], Time::from_us(4));
    }

    #[test]
    fn recv_overhead_applies_to_buffered_messages() {
        let p = Platform::builder()
            .latency(Time::from_us(1))
            .bandwidth_bytes_per_sec(1.0e9)
            .unwrap()
            .recv_overhead(Time::from_us(2))
            .build();
        // Message arrives long before the receive is posted.
        let ts = trace(vec![
            vec![Record::Send {
                to: Rank::new(1),
                bytes: 1000,
                tag: Tag::new(0),
            }],
            vec![
                Record::Burst {
                    instr: Instr::new(10_000),
                },
                Record::Recv {
                    from: Rank::new(0),
                    bytes: 1000,
                    tag: Tag::new(0),
                },
            ],
        ]);
        let res = Simulator::new(p).run(&ts).unwrap();
        assert_eq!(res.rank_finish()[1], Time::from_us(12));
    }

    #[test]
    fn intra_node_messages_bypass_the_network() {
        // Ranks 0 and 1 share a node: their message uses the intra-node
        // path (500 ns latency, 10 GB/s) instead of 1 us + 1 GB/s.
        let p = Platform::builder()
            .latency(Time::from_us(1))
            .bandwidth_bytes_per_sec(1.0e9)
            .unwrap()
            .ranks_per_node(2)
            .expect("positive packing")
            .intra_node_latency(Time::from_ns(500))
            .intra_node_bandwidth(ovlsim_core::Bandwidth::from_bytes_per_sec(10.0e9).unwrap())
            .build();
        let ts = trace(vec![
            vec![Record::Send {
                to: Rank::new(1),
                bytes: 10_000,
                tag: Tag::new(0),
            }],
            vec![Record::Recv {
                from: Rank::new(0),
                bytes: 10_000,
                tag: Tag::new(0),
            }],
        ]);
        let res = Simulator::new(p).run(&ts).unwrap();
        // 10 KB at 10 GB/s = 1 us transmission + 0.5 us latency.
        assert_eq!(res.rank_finish()[1], Time::from_ns(1500));
        // Inter-node for comparison: 10 us transmission + 1 us latency.
        let inter = Platform::builder()
            .latency(Time::from_us(1))
            .bandwidth_bytes_per_sec(1.0e9)
            .unwrap()
            .build();
        let res = Simulator::new(inter).run(&ts).unwrap();
        assert_eq!(res.rank_finish()[1], Time::from_us(11));
    }

    #[test]
    fn shared_nic_contends_across_siblings() {
        // Node 0 hosts ranks 0 and 1; both send to node 1 concurrently
        // through one shared out-link: transmissions serialize.
        let p = Platform::builder()
            .latency(Time::from_us(1))
            .bandwidth_bytes_per_sec(1.0e9)
            .unwrap()
            .ranks_per_node(2)
            .expect("positive packing")
            .build();
        let ts = trace(vec![
            vec![Record::Send {
                to: Rank::new(2),
                bytes: 10_000,
                tag: Tag::new(0),
            }],
            vec![Record::Send {
                to: Rank::new(3),
                bytes: 10_000,
                tag: Tag::new(0),
            }],
            vec![Record::Recv {
                from: Rank::new(0),
                bytes: 10_000,
                tag: Tag::new(0),
            }],
            vec![Record::Recv {
                from: Rank::new(1),
                bytes: 10_000,
                tag: Tag::new(0),
            }],
        ]);
        let res = Simulator::new(p).run(&ts).unwrap();
        let finishes: Vec<Time> = res.rank_finish().to_vec();
        // One message lands at 11 us, the other waits for the shared link
        // and lands at 21 us.
        let mut arrivals = vec![finishes[2], finishes[3]];
        arrivals.sort();
        assert_eq!(arrivals, vec![Time::from_us(11), Time::from_us(21)]);
    }

    #[test]
    fn packing_ranks_onto_nodes_relieves_a_constrained_bus() {
        // Pairs (0,1) and (2,3) exchange under a single shared bus. With
        // one rank per node every message crosses the bus and serializes;
        // with two ranks per node both messages are intra-node, bypass the
        // bus/NIC fabric entirely, and the run finishes faster. Naive and
        // prepared replay stay bit-identical on both topologies.
        let ts = trace(vec![
            vec![Record::Send {
                to: Rank::new(1),
                bytes: 100_000,
                tag: Tag::new(0),
            }],
            vec![Record::Recv {
                from: Rank::new(0),
                bytes: 100_000,
                tag: Tag::new(0),
            }],
            vec![Record::Send {
                to: Rank::new(3),
                bytes: 100_000,
                tag: Tag::new(0),
            }],
            vec![Record::Recv {
                from: Rank::new(2),
                bytes: 100_000,
                tag: Tag::new(0),
            }],
        ]);
        let index = ovlsim_core::TraceIndex::build(&ts).expect("valid");
        let platform_with_rpn = |rpn: u32| {
            Platform::builder()
                .latency(Time::from_us(1))
                .bandwidth_bytes_per_sec(1.0e9)
                .unwrap()
                .buses(Some(1))
                .ranks_per_node(rpn)
                .expect("positive packing")
                .build()
        };
        let mut totals = Vec::new();
        for rpn in [1u32, 2] {
            let p = platform_with_rpn(rpn);
            let sim = Simulator::new(p.clone());
            let run = sim.run(&ts).unwrap();
            let prepared = sim.run_prepared(&ts, &index).unwrap();
            let naive = crate::naive::replay_naive(&p, &ts).unwrap();
            assert_eq!(run, prepared, "prepared diverged at rpn={rpn}");
            assert_eq!(run, naive, "naive diverged at rpn={rpn}");
            totals.push(run.total_time());
        }
        // rpn=1: the two 100 us transmissions serialize on the one bus.
        // rpn=2: both messages use the 10 GB/s intra path concurrently.
        assert!(
            totals[1] < totals[0],
            "2 ranks/node ({}) should beat 1 rank/node ({}) under a constrained bus",
            totals[1],
            totals[0],
        );
    }

    #[test]
    fn finite_intra_node_ports_serialize_sibling_messages() {
        // Ranks 0 and 1 share a node and exchange 0->1 and 1->0
        // simultaneously: with a single shared-memory port the two
        // transmissions serialize; with unlimited ports they overlap.
        let ts = trace(vec![
            vec![
                Record::Send {
                    to: Rank::new(1),
                    bytes: 10_000,
                    tag: Tag::new(0),
                },
                Record::Recv {
                    from: Rank::new(1),
                    bytes: 10_000,
                    tag: Tag::new(1),
                },
            ],
            vec![
                Record::Send {
                    to: Rank::new(0),
                    bytes: 10_000,
                    tag: Tag::new(1),
                },
                Record::Recv {
                    from: Rank::new(0),
                    bytes: 10_000,
                    tag: Tag::new(0),
                },
            ],
        ]);
        let base = |ports: Option<u32>| {
            Platform::builder()
                .latency(Time::from_us(1))
                .bandwidth_bytes_per_sec(1.0e9)
                .unwrap()
                .ranks_per_node(2)
                .expect("positive packing")
                .intra_node_latency(Time::from_ns(500))
                .intra_node_bandwidth(ovlsim_core::Bandwidth::from_bytes_per_sec(10.0e9).unwrap())
                .intra_node_links(ports)
                .build()
        };
        // Unlimited: both 1 us transmissions overlap; done at 1.5 us.
        let free = Simulator::new(base(None)).run(&ts).unwrap();
        assert_eq!(free.total_time(), Time::from_ns(1500));
        // One port: the second transmission waits; done at 2.5 us. The
        // queueing is visible in the waiting-transfer statistic.
        let p = base(Some(1));
        let ported = Simulator::new(p.clone()).run(&ts).unwrap();
        assert_eq!(ported.total_time(), Time::from_ns(2500));
        assert!(ported.peak_waiting_transfers() >= 1);
        assert_eq!(free.peak_waiting_transfers(), 0);
        // Differential: naive and prepared agree on the ported topology.
        let index = ovlsim_core::TraceIndex::build(&ts).expect("valid");
        let sim = Simulator::new(p.clone());
        assert_eq!(ported, sim.run_prepared(&ts, &index).unwrap());
        assert_eq!(ported, crate::naive::replay_naive(&p, &ts).unwrap());
    }

    #[test]
    fn empty_trace_finishes_at_zero() {
        let ts = trace(vec![vec![], vec![]]);
        let res = Simulator::new(platform_1us_1gb()).run(&ts).unwrap();
        assert_eq!(res.total_time(), Time::ZERO);
    }

    #[test]
    fn result_display_mentions_name() {
        let ts = trace(vec![vec![]]);
        let res = Simulator::new(platform_1us_1gb()).run(&ts).unwrap();
        assert!(format!("{res}").contains("test"));
    }

    #[test]
    fn run_prepared_matches_run_across_bandwidths() {
        // The index depends only on the trace: build once, replay on many
        // platforms, bit-identical to the validating path.
        let ts = trace(vec![
            vec![
                Record::Burst {
                    instr: Instr::new(2000),
                },
                Record::Send {
                    to: Rank::new(1),
                    bytes: 50_000,
                    tag: Tag::new(0),
                },
                Record::Recv {
                    from: Rank::new(1),
                    bytes: 1000,
                    tag: Tag::new(1),
                },
            ],
            vec![
                Record::Recv {
                    from: Rank::new(0),
                    bytes: 50_000,
                    tag: Tag::new(0),
                },
                Record::Burst {
                    instr: Instr::new(500),
                },
                Record::Send {
                    to: Rank::new(0),
                    bytes: 1000,
                    tag: Tag::new(1),
                },
            ],
        ]);
        let index = ovlsim_core::TraceIndex::build(&ts).expect("valid");
        for bw in [1.0e6, 1.0e8, 1.0e10] {
            let p = Platform::builder()
                .latency(Time::from_us(1))
                .bandwidth_bytes_per_sec(bw)
                .unwrap()
                .build();
            let sim = Simulator::new(p);
            let validated = sim.run(&ts).unwrap();
            let prepared = sim.run_prepared(&ts, &index).unwrap();
            assert_eq!(validated, prepared, "prepared replay diverged at {bw} B/s");
        }
    }

    #[test]
    fn perturbed_noise_stretches_bursts_deterministically() {
        use ovlsim_core::PerturbationModel;
        let ts = trace(vec![vec![
            Record::Burst {
                instr: Instr::new(5000),
            },
            Record::Burst {
                instr: Instr::new(5000),
            },
        ]]);
        let clean = Simulator::new(platform_1us_1gb()).run(&ts).unwrap();
        let noisy = platform_1us_1gb()
            .with_perturbation(PerturbationModel::new(42).with_noise(0.2).unwrap());
        let a = Simulator::new(noisy.clone()).run(&ts).unwrap();
        let b = Simulator::new(noisy).run(&ts).unwrap();
        assert_eq!(a, b, "same seed replays bit-identically");
        assert!(a.total_time() > clean.total_time());
        // Bounded: at most (1 + level) times the clean duration.
        assert!(a.total_time() <= clean.total_time().scale_f64(1.2));
        // A zero-noise model is the identity.
        let ident = platform_1us_1gb().with_perturbation(PerturbationModel::new(42));
        assert_eq!(Simulator::new(ident).run(&ts).unwrap(), clean);
    }

    #[test]
    fn perturbed_stragglers_and_node_speeds_slow_ranks() {
        use ovlsim_core::PerturbationModel;
        let ts = trace(vec![
            vec![Record::Burst {
                instr: Instr::new(1000),
            }],
            vec![Record::Burst {
                instr: Instr::new(1000),
            }],
        ]);
        let model = PerturbationModel::new(0)
            .with_stragglers(&[1], 3.0)
            .unwrap();
        let p = platform_1us_1gb().with_perturbation(model);
        let res = Simulator::new(p).run(&ts).unwrap();
        assert_eq!(res.rank_finish()[0], Time::from_us(1));
        assert_eq!(res.rank_finish()[1], Time::from_us(3));
        // Heterogeneous nodes: rank 1 is node 1 at half speed (rpn = 1).
        let model = PerturbationModel::new(0)
            .with_node_speeds(&[1.0, 0.5])
            .unwrap();
        let p = platform_1us_1gb().with_perturbation(model);
        let res = Simulator::new(p).run(&ts).unwrap();
        assert_eq!(res.rank_finish()[0], Time::from_us(1));
        assert_eq!(res.rank_finish()[1], Time::from_us(2));
    }

    #[test]
    fn perturbed_faults_hold_transfers_and_surface_link_down() {
        use crate::observer::DepEdge;
        use ovlsim_core::PerturbationModel;

        #[derive(Default)]
        struct Causes(Vec<(Time, Time, WaitCause)>);
        impl ReplayObserver for Causes {
            fn attributed(
                &mut self,
                _r: Rank,
                s: Time,
                e: Time,
                cause: WaitCause,
                _edge: Option<DepEdge>,
            ) {
                self.0.push((s, e, cause));
            }
        }

        let ts = trace(vec![
            vec![Record::Send {
                to: Rank::new(1),
                bytes: 1000,
                tag: Tag::new(0),
            }],
            vec![Record::Recv {
                from: Rank::new(0),
                bytes: 1000,
                tag: Tag::new(0),
            }],
        ]);
        let clean = Simulator::new(platform_1us_1gb()).run(&ts).unwrap();
        // Find a seed whose 0 -> 1 outage window covers t = 0: the send is
        // posted at time zero, so the transfer must be held back.
        let period = Time::from_us(100);
        let down = Time::from_us(30);
        let seed = (0..64)
            .find(|&s| {
                PerturbationModel::new(s)
                    .with_faults(period, down)
                    .unwrap()
                    .outage_end(0, 1, Time::ZERO)
                    .is_some()
            })
            .expect("some seed puts the link down at t=0");
        let model = PerturbationModel::new(seed)
            .with_faults(period, down)
            .unwrap();
        let up = model.outage_end(0, 1, Time::ZERO).unwrap();
        let p = platform_1us_1gb().with_perturbation(model);
        let mut causes = Causes::default();
        let faulty = Simulator::new(p).run_observed(&ts, &mut causes).unwrap();
        // The whole execution is delayed by exactly the outage remainder.
        assert_eq!(faulty.total_time(), clean.total_time() + (up - Time::ZERO));
        // The receiver's blocked window contains a link-down segment
        // covering the hold.
        let downs: Vec<_> = causes
            .0
            .iter()
            .filter(|(_, _, c)| matches!(c, WaitCause::LinkDown { .. }))
            .collect();
        assert_eq!(downs.len(), 1);
        assert_eq!(downs[0].0, Time::ZERO);
        assert_eq!(downs[0].1, up);
    }

    #[test]
    fn run_prepared_rejects_name_mismatch() {
        let ts = trace(vec![vec![]]);
        let other = TraceSet::new("other", mips(), vec![RankTrace::new()]);
        let index = ovlsim_core::TraceIndex::build(&other).expect("valid");
        match Simulator::new(platform_1us_1gb()).run_prepared(&ts, &index) {
            Err(SimError::IndexMismatch { reason }) => {
                assert!(reason.contains("name mismatch"), "got: {reason}");
            }
            other => panic!("expected IndexMismatch, got {other:?}"),
        }
    }

    #[test]
    fn run_prepared_rejects_rank_count_mismatch() {
        // Same name ("test" via the helper), different rank counts.
        let ts = trace(vec![vec![Record::Burst {
            instr: Instr::new(10),
        }]]);
        let other = trace(vec![vec![], vec![]]);
        let index = ovlsim_core::TraceIndex::build(&other).expect("valid");
        match Simulator::new(platform_1us_1gb()).run_prepared(&ts, &index) {
            Err(SimError::IndexMismatch { reason }) => {
                assert!(reason.contains("rank count mismatch"), "got: {reason}");
            }
            other => panic!("expected IndexMismatch, got {other:?}"),
        }
    }

    #[test]
    fn run_prepared_rejects_record_count_mismatch() {
        // Same name, same rank count, different records per rank.
        let ts = trace(vec![vec![Record::Burst {
            instr: Instr::new(10),
        }]]);
        let other = trace(vec![vec![]]);
        let index = ovlsim_core::TraceIndex::build(&other).expect("valid");
        match Simulator::new(platform_1us_1gb()).run_prepared(&ts, &index) {
            Err(SimError::IndexMismatch { reason }) => {
                assert!(
                    reason.contains("rank 0 record count mismatch"),
                    "got: {reason}"
                );
            }
            other => panic!("expected IndexMismatch, got {other:?}"),
        }
    }

    #[test]
    fn optimized_matches_naive_reference() {
        // Direct spot-check of the differential property (the exhaustive
        // version lives in tests/props.rs).
        let ts = trace(vec![
            vec![
                Record::ISend {
                    to: Rank::new(1),
                    bytes: 200_000,
                    tag: Tag::new(0),
                    req: RequestId::new(0),
                },
                Record::Burst {
                    instr: Instr::new(5000),
                },
                Record::Wait {
                    req: RequestId::new(0),
                },
                Record::Barrier,
            ],
            vec![
                Record::IRecv {
                    from: Rank::new(0),
                    bytes: 200_000,
                    tag: Tag::new(0),
                    req: RequestId::new(1),
                },
                Record::Burst {
                    instr: Instr::new(1000),
                },
                Record::WaitAll {
                    reqs: vec![RequestId::new(1)],
                },
                Record::Barrier,
            ],
        ]);
        let p = Platform::builder()
            .latency(Time::from_us(3))
            .bandwidth_bytes_per_sec(2.5e8)
            .unwrap()
            .eager_threshold(4096)
            .build();
        let optimized = Simulator::new(p.clone()).run(&ts).unwrap();
        let naive = crate::naive::replay_naive(&p, &ts).unwrap();
        assert_eq!(optimized, naive);
    }
}
