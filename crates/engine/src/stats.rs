//! Simulation statistics: time-weighted utilization and scalar
//! accumulators.

use ovlsim_core::Time;

/// Accumulates the time-weighted average of a piecewise-constant quantity
/// (e.g. number of busy links over time).
///
/// # Example
///
/// ```
/// use ovlsim_core::Time;
/// use ovlsim_engine::stats::TimeWeighted;
///
/// let mut u = TimeWeighted::new();
/// u.record(Time::ZERO, 0.0);
/// u.record(Time::from_ns(10), 1.0);   // value was 0 during [0,10)
/// u.record(Time::from_ns(30), 0.0);   // value was 1 during [10,30)
/// assert_eq!(u.mean(Time::from_ns(40)), 0.5); // 20 ns busy out of 40
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimeWeighted {
    last_time: Time,
    last_value: f64,
    weighted_sum: f64, // value × picoseconds
    peak: f64,
}

impl TimeWeighted {
    /// Creates an accumulator at time zero with value zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the quantity changed to `value` at time `at`.
    ///
    /// The peak statistic tracks *persisted* values only: a value that is
    /// overwritten within the same instant occupied zero width of the
    /// timeline and is invisible to both [`TimeWeighted::mean`] and
    /// [`TimeWeighted::peak`]. This makes both statistics independent of
    /// the order in which same-instant records arrive, which is what lets
    /// replay engines with different internal event orderings agree
    /// bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the previous record (time must be
    /// monotone).
    pub fn record(&mut self, at: Time, value: f64) {
        assert!(
            at >= self.last_time,
            "time-weighted samples must be monotone"
        );
        if at > self.last_time {
            let dt = (at - self.last_time).as_ps() as f64;
            self.weighted_sum += self.last_value * dt;
            self.peak = self.peak.max(self.last_value);
            self.last_time = at;
        }
        self.last_value = value;
    }

    /// Time-weighted mean over `[0, end]`.
    ///
    /// Returns 0 for an empty interval.
    pub fn mean(&self, end: Time) -> f64 {
        if end.is_zero() {
            return 0.0;
        }
        let mut sum = self.weighted_sum;
        if end > self.last_time {
            sum += self.last_value * (end - self.last_time).as_ps() as f64;
        }
        sum / end.as_ps() as f64
    }

    /// Highest value that persisted for any nonzero width of the
    /// timeline (the current value counts: it persists to the horizon).
    pub fn peak(&self) -> f64 {
        self.peak.max(self.last_value)
    }

    /// The current (most recently recorded) value.
    pub fn current(&self) -> f64 {
        self.last_value
    }
}

/// A streaming scalar accumulator (count / sum / min / max / mean).
///
/// # Example
///
/// ```
/// use ovlsim_engine::stats::Scalar;
///
/// let mut s = Scalar::new();
/// s.add(2.0);
/// s.add(4.0);
/// assert_eq!(s.mean(), Some(3.0));
/// assert_eq!(s.min(), Some(2.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Scalar {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Scalar {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn add(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean, or `None` if no samples.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Minimum, or `None` if no samples.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum, or `None` if no samples.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_weighted_mean_simple() {
        let mut u = TimeWeighted::new();
        u.record(Time::from_ns(10), 2.0);
        u.record(Time::from_ns(20), 0.0);
        // [0,10): 0, [10,20): 2, [20,40): 0 => mean = 20/40 = 0.5
        assert_eq!(u.mean(Time::from_ns(40)), 0.5);
        assert_eq!(u.peak(), 2.0);
        assert_eq!(u.current(), 0.0);
    }

    #[test]
    fn time_weighted_extends_last_value() {
        let mut u = TimeWeighted::new();
        u.record(Time::ZERO, 1.0);
        // Constant 1 forever: mean is 1 at any horizon.
        assert_eq!(u.mean(Time::from_secs(1)), 1.0);
    }

    #[test]
    fn time_weighted_empty_interval() {
        let u = TimeWeighted::new();
        assert_eq!(u.mean(Time::ZERO), 0.0);
    }

    #[test]
    fn time_weighted_peak_ignores_zero_width_transients() {
        let mut u = TimeWeighted::new();
        u.record(Time::from_ns(10), 5.0);
        u.record(Time::from_ns(10), 2.0); // 5.0 never persisted
        u.record(Time::from_ns(30), 0.0);
        assert_eq!(u.peak(), 2.0);
        // [0,10): 0, [10,30): 2 => 40/40 = 1.0
        assert_eq!(u.mean(Time::from_ns(40)), 1.0);
    }

    #[test]
    fn time_weighted_peak_includes_current_value() {
        let mut u = TimeWeighted::new();
        u.record(Time::from_ns(10), 3.0);
        // 3.0 persists to any horizon even with no later record.
        assert_eq!(u.peak(), 3.0);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn time_weighted_rejects_backwards_time() {
        let mut u = TimeWeighted::new();
        u.record(Time::from_ns(10), 1.0);
        u.record(Time::from_ns(5), 2.0);
    }

    #[test]
    fn scalar_accumulates() {
        let mut s = Scalar::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        for v in [3.0, 1.0, 2.0] {
            s.add(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum(), 6.0);
        assert_eq!(s.mean(), Some(2.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
    }

    #[test]
    fn scalar_single_negative_sample() {
        let mut s = Scalar::new();
        s.add(-5.0);
        assert_eq!(s.min(), Some(-5.0));
        assert_eq!(s.max(), Some(-5.0));
    }
}
