//! Counted FIFO resources (buses, links).

use std::collections::VecDeque;

/// An opaque token identifying a waiter in a [`FifoResource`] queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceToken(u64);

/// A counted resource with first-come-first-served granting.
///
/// Models a pool of identical units (network buses, node input/output
/// links). Callers `request` a unit: if one is free it is granted
/// immediately, otherwise the caller joins a FIFO queue and is granted a
/// unit when `release` frees one. The resource never calls back — the
/// caller drains granted tokens via [`FifoResource::take_granted`], which
/// keeps control flow explicit inside the replay loop.
///
/// A capacity of `None` means unlimited: every request is granted
/// immediately.
///
/// # Example
///
/// ```
/// use ovlsim_engine::FifoResource;
///
/// let mut bus = FifoResource::new(Some(1));
/// let a = bus.request();
/// let b = bus.request();
/// assert!(bus.is_granted(a));
/// assert!(!bus.is_granted(b));
/// bus.release();
/// assert_eq!(bus.take_granted(), vec![b]);
/// ```
#[derive(Debug)]
pub struct FifoResource {
    capacity: Option<u32>,
    in_use: u32,
    waiting: VecDeque<ResourceToken>,
    newly_granted: Vec<ResourceToken>,
    granted: std::collections::BTreeSet<ResourceToken>,
    next_token: u64,
    peak_in_use: u32,
    total_grants: u64,
}

impl FifoResource {
    /// Creates a resource with `capacity` units (`None` = unlimited).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == Some(0)`.
    pub fn new(capacity: Option<u32>) -> Self {
        if let Some(0) = capacity {
            panic!("resource capacity must be positive; use None for unlimited");
        }
        FifoResource {
            capacity,
            in_use: 0,
            waiting: VecDeque::new(),
            newly_granted: Vec::new(),
            granted: std::collections::BTreeSet::new(),
            next_token: 0,
            peak_in_use: 0,
            total_grants: 0,
        }
    }

    fn fresh_token(&mut self) -> ResourceToken {
        let t = ResourceToken(self.next_token);
        self.next_token += 1;
        t
    }

    /// Requests one unit. The returned token is either granted immediately
    /// (check [`FifoResource::is_granted`]) or queued FIFO.
    pub fn request(&mut self) -> ResourceToken {
        let token = self.fresh_token();
        let has_free = match self.capacity {
            None => true,
            Some(cap) => self.in_use < cap,
        };
        if has_free && self.waiting.is_empty() {
            self.in_use += 1;
            self.peak_in_use = self.peak_in_use.max(self.in_use);
            self.total_grants += 1;
            self.granted.insert(token);
        } else {
            self.waiting.push_back(token);
        }
        token
    }

    /// Releases one unit, granting it to the longest-waiting requester (if
    /// any).
    ///
    /// # Panics
    ///
    /// Panics if no unit is in use (release without matching grant).
    pub fn release(&mut self) {
        assert!(self.in_use > 0, "release called with no unit in use");
        self.in_use -= 1;
        if let Some(next) = self.waiting.pop_front() {
            self.in_use += 1;
            self.peak_in_use = self.peak_in_use.max(self.in_use);
            self.total_grants += 1;
            self.granted.insert(next);
            self.newly_granted.push(next);
        }
    }

    /// True if `token` currently holds (or has been granted) a unit.
    pub fn is_granted(&self, token: ResourceToken) -> bool {
        self.granted.contains(&token)
    }

    /// Drains the tokens granted by `release` calls since the last drain,
    /// in grant order.
    pub fn take_granted(&mut self) -> Vec<ResourceToken> {
        std::mem::take(&mut self.newly_granted)
    }

    /// Abandons a queued request (e.g. the waiter was cancelled). Returns
    /// true if the token was still waiting.
    pub fn abandon(&mut self, token: ResourceToken) -> bool {
        if let Some(pos) = self.waiting.iter().position(|t| *t == token) {
            self.waiting.remove(pos);
            true
        } else {
            false
        }
    }

    /// Units currently in use.
    pub fn in_use(&self) -> u32 {
        self.in_use
    }

    /// Length of the waiting queue.
    pub fn queue_len(&self) -> usize {
        self.waiting.len()
    }

    /// Highest simultaneous occupancy seen.
    pub fn peak_in_use(&self) -> u32 {
        self.peak_in_use
    }

    /// Total units granted over the resource's lifetime.
    pub fn total_grants(&self) -> u64 {
        self.total_grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_grants() {
        let mut r = FifoResource::new(None);
        for _ in 0..1000 {
            let t = r.request();
            assert!(r.is_granted(t));
        }
        assert_eq!(r.queue_len(), 0);
        assert_eq!(r.in_use(), 1000);
    }

    #[test]
    fn capacity_limits_grants() {
        let mut r = FifoResource::new(Some(2));
        let a = r.request();
        let b = r.request();
        let c = r.request();
        assert!(r.is_granted(a) && r.is_granted(b));
        assert!(!r.is_granted(c));
        assert_eq!(r.queue_len(), 1);
        assert_eq!(r.in_use(), 2);
    }

    #[test]
    fn release_grants_fifo() {
        let mut r = FifoResource::new(Some(1));
        let _a = r.request();
        let b = r.request();
        let c = r.request();
        r.release();
        assert_eq!(r.take_granted(), vec![b]);
        r.release();
        assert_eq!(r.take_granted(), vec![c]);
        // Drain is one-shot.
        assert!(r.take_granted().is_empty());
    }

    #[test]
    fn abandon_removes_waiter() {
        let mut r = FifoResource::new(Some(1));
        let _a = r.request();
        let b = r.request();
        let c = r.request();
        assert!(r.abandon(b));
        assert!(!r.abandon(b));
        r.release();
        assert_eq!(r.take_granted(), vec![c]);
    }

    #[test]
    #[should_panic(expected = "no unit in use")]
    fn release_without_grant_panics() {
        let mut r = FifoResource::new(Some(1));
        r.release();
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = FifoResource::new(Some(0));
    }

    #[test]
    fn stats_track_peak_and_totals() {
        let mut r = FifoResource::new(Some(3));
        let _ = r.request();
        let _ = r.request();
        r.release();
        let _ = r.request();
        assert_eq!(r.peak_in_use(), 2);
        assert_eq!(r.total_grants(), 3);
    }

    #[test]
    fn fairness_no_barging() {
        // A unit freed while someone waits must go to the waiter even if a
        // new request arrives in the same instant (request after release).
        let mut r = FifoResource::new(Some(1));
        let _a = r.request();
        let b = r.request();
        r.release();
        let c = r.request(); // arrives after release
        assert!(r.is_granted(b));
        assert!(!r.is_granted(c));
    }
}
