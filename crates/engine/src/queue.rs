//! A deterministic, cancellable event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ovlsim_core::Time;

/// Handle identifying a scheduled event, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventHandle(u64);

#[derive(Debug)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: Option<E>, // None = cancelled (lazily discarded on pop)
}

/// A time-ordered event queue with deterministic tie-breaking.
///
/// Events scheduled for the same instant are delivered in the order they
/// were scheduled (FIFO), which makes whole-simulation results independent
/// of heap internals. Cancellation is lazy: a cancelled event is skipped
/// when it reaches the front.
///
/// # Example
///
/// ```
/// use ovlsim_core::Time;
/// use ovlsim_engine::EventQueue;
///
/// let mut q = EventQueue::new();
/// let h = q.schedule(Time::from_ns(10), 'a');
/// q.schedule(Time::from_ns(10), 'b');
/// q.cancel(h);
/// assert_eq!(q.pop(), Some((Time::from_ns(10), 'b')));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<HeapKey>>,
    entries: Vec<Entry<E>>,
    live: usize,
    now: Time,
}

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct HeapKey {
    time: Time,
    seq: u64,
    slot: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            entries: Vec::new(),
            live: 0,
            now: Time::ZERO,
        }
    }

    /// The time of the most recently popped event (simulation "now").
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `event` at absolute time `at`, returning a cancellation
    /// handle.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time: an event
    /// in the past indicates a logic error in the caller.
    pub fn schedule(&mut self, at: Time, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule event in the past ({} < now {})",
            at,
            self.now
        );
        let slot = self.entries.len();
        let seq = slot as u64;
        self.entries.push(Entry {
            time: at,
            seq,
            event: Some(event),
        });
        self.heap.push(Reverse(HeapKey { time: at, seq, slot }));
        self.live += 1;
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event. Returns the event if it was
    /// still pending, `None` if it already fired or was already cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> Option<E> {
        let slot = handle.0 as usize;
        let entry = self.entries.get_mut(slot)?;
        let ev = entry.event.take();
        if ev.is_some() {
            self.live -= 1;
        }
        ev
    }

    /// Removes and returns the earliest live event, advancing `now`.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        while let Some(Reverse(key)) = self.heap.pop() {
            let entry = &mut self.entries[key.slot];
            debug_assert_eq!(entry.seq, key.seq);
            if let Some(ev) = entry.event.take() {
                self.live -= 1;
                self.now = entry.time;
                return Some((entry.time, ev));
            }
        }
        None
    }

    /// The time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<Time> {
        while let Some(Reverse(key)) = self.heap.peek() {
            if self.entries[key.slot].event.is_some() {
                return Some(key.time);
            }
            self.heap.pop();
        }
        None
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(30), 3);
        q.schedule(Time::from_ns(10), 1);
        q.schedule(Time::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Time::from_ns(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(Time::from_ns(1), 'x');
        q.schedule(Time::from_ns(2), 'y');
        assert_eq!(q.len(), 2);
        assert_eq!(q.cancel(h1), Some('x'));
        assert_eq!(q.len(), 1);
        // Double cancel is a no-op.
        assert_eq!(q.cancel(h1), None);
        assert_eq!(q.pop(), Some((Time::from_ns(2), 'y')));
    }

    #[test]
    fn cancel_after_fire_returns_none() {
        let mut q = EventQueue::new();
        let h = q.schedule(Time::from_ns(1), 'x');
        assert!(q.pop().is_some());
        assert_eq!(q.cancel(h), None);
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(7), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_ns(7));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), ());
        q.pop();
        q.schedule(Time::from_ns(5), ());
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule(Time::from_ns(1), 'a');
        q.schedule(Time::from_ns(2), 'b');
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(Time::from_ns(2)));
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some((Time::from_ns(2), 'b')));
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), 1);
        let (t, _) = q.pop().unwrap();
        q.schedule(t + Time::from_ns(5), 2);
        q.schedule(t + Time::from_ns(1), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
    }
}
