//! A deterministic, cancellable event queue backed by a free-list slab.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ovlsim_core::Time;

/// Handle identifying a scheduled event, usable to cancel it.
///
/// Handles are *generation-tagged*: when a slab slot is recycled for a new
/// event, handles to the slot's previous occupants become stale and
/// [`EventQueue::cancel`] rejects them. A slot's generation wraps after
/// 2³² reuses, at which point an ancient retained handle could alias a live
/// event; don't hold handles across billions of schedules of the same queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventHandle {
    slot: u32,
    gen: u32,
}

/// One slab slot. `seq` identifies the current occupant: heap keys carry
/// the seq they were pushed with, so keys referring to a previous occupant
/// (cancelled, or popped and recycled) are recognised as stale.
#[derive(Debug)]
struct Slot<E> {
    time: Time,
    seq: u32,
    gen: u32,
    event: Option<E>, // None = vacant (popped or cancelled)
}

/// The heap key is deliberately 16 bytes (`time`, `seq`, `slot`) so that
/// sift-up/sift-down moves stay within one or two cache lines; ordering is
/// by `(time, seq)` — `seq` is a monotone schedule counter, giving FIFO
/// delivery at equal times. `slot` never influences the order (seqs are
/// unique); it rides along to locate the payload.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord, Clone, Copy)]
struct HeapKey {
    time: Time,
    seq: u32,
    slot: u32,
}

/// A time-ordered event queue with deterministic tie-breaking.
///
/// Events scheduled for the same instant are delivered in the order they
/// were scheduled (FIFO), which makes whole-simulation results independent
/// of heap internals.
///
/// # Memory model
///
/// Event payloads live in a free-list slab: a slot is recycled as soon as
/// its event is popped or cancelled, so payload memory is bounded by the
/// *peak number of simultaneously live events*, not by the total number of
/// events ever scheduled ([`EventQueue::slot_capacity`] reports the
/// high-water mark). Cancelled entries leave a stale 16-byte key in the
/// heap until it surfaces; stale keys at the front are pruned eagerly so
/// the head of the heap is always a live event.
///
/// # Cost model
///
/// * [`schedule`](EventQueue::schedule): `O(log n)` (heap push).
/// * [`pop`](EventQueue::pop): amortized `O(log n)`; prunes any stale keys
///   that surface, each `O(log n)` but paid at most once per cancellation.
/// * [`cancel`](EventQueue::cancel): `O(1)` unless the cancelled event was
///   at the front, in which case the stale head (plus any stale keys
///   beneath it) is pruned immediately.
/// * [`peek_time`](EventQueue::peek_time): `O(1)`, `&self` — the
///   head-is-live invariant means no lazy cleanup is ever needed to peek.
///
/// # Example
///
/// ```
/// use ovlsim_core::Time;
/// use ovlsim_engine::EventQueue;
///
/// let mut q = EventQueue::new();
/// let h = q.schedule(Time::from_ns(10), 'a');
/// q.schedule(Time::from_ns(10), 'b');
/// q.cancel(h);
/// assert_eq!(q.peek_time(), Some(Time::from_ns(10)));
/// assert_eq!(q.pop(), Some((Time::from_ns(10), 'b')));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<HeapKey>>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    live: usize,
    next_seq: u32,
    now: Time,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_seq: 0,
            now: Time::ZERO,
        }
    }

    /// The time of the most recently popped event (simulation "now").
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of slab slots ever allocated: the high-water mark of
    /// simultaneously pending events (popped and cancelled slots are
    /// recycled, so this does *not* grow with total events scheduled).
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Schedules `event` at absolute time `at`, returning a cancellation
    /// handle.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time (an event
    /// in the past indicates a logic error in the caller), or if more than
    /// `u32::MAX` events are scheduled without the queue ever draining (the
    /// FIFO tie-break counter resets whenever the queue empties).
    pub fn schedule(&mut self, at: Time, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule event in the past ({} < now {})",
            at,
            self.now
        );
        if self.heap.is_empty() {
            // No key can coexist with the new one, so FIFO order restarts.
            self.next_seq = 0;
        }
        let seq = self.next_seq;
        self.next_seq = self
            .next_seq
            .checked_add(1)
            .expect("more than u32::MAX events scheduled without a drain");
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(s.event.is_none());
                s.time = at;
                s.seq = seq;
                s.gen = s.gen.wrapping_add(1);
                s.event = Some(event);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("slab slots fit in u32");
                self.slots.push(Slot {
                    time: at,
                    seq,
                    gen: 0,
                    event: Some(event),
                });
                slot
            }
        };
        self.heap.push(Reverse(HeapKey {
            time: at,
            seq,
            slot,
        }));
        self.live += 1;
        EventHandle {
            slot,
            gen: self.slots[slot as usize].gen,
        }
    }

    /// Cancels a previously scheduled event. Returns the event if it was
    /// still pending, `None` if it already fired, was already cancelled, or
    /// the handle is stale (its slot was recycled).
    pub fn cancel(&mut self, handle: EventHandle) -> Option<E> {
        let slot = self.slots.get_mut(handle.slot as usize)?;
        if slot.gen != handle.gen {
            return None; // stale handle: the slot moved on
        }
        let ev = slot.event.take()?;
        self.live -= 1;
        self.free.push(handle.slot);
        // If the cancelled event was the heap head, restore the
        // head-is-live invariant right away (this is what keeps peek_time
        // `O(1)` and `&self`).
        self.prune_stale_head();
        Some(ev)
    }

    /// Removes and returns the earliest live event, advancing `now`.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        while let Some(Reverse(key)) = self.heap.pop() {
            let slot = &mut self.slots[key.slot as usize];
            if slot.seq != key.seq {
                continue; // stale key: slot was recycled since
            }
            if let Some(ev) = slot.event.take() {
                let at = slot.time;
                self.live -= 1;
                self.now = at;
                self.free.push(key.slot);
                self.prune_stale_head();
                return Some((at, ev));
            }
        }
        None
    }

    /// The time of the earliest live event without removing it.
    ///
    /// `O(1)` and read-only: the queue maintains the invariant that the
    /// heap head is always live (stale keys are pruned when they surface in
    /// [`pop`](EventQueue::pop) / [`cancel`](EventQueue::cancel)), so
    /// peeking never has to clean anything up.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(key)| {
            debug_assert!(self.key_is_live(key), "head-is-live invariant broken");
            key.time
        })
    }

    fn key_is_live(&self, key: &HeapKey) -> bool {
        let slot = &self.slots[key.slot as usize];
        slot.seq == key.seq && slot.event.is_some()
    }

    /// Pops stale keys off the heap until the head refers to a live event
    /// (or the heap is empty).
    fn prune_stale_head(&mut self) {
        while let Some(Reverse(key)) = self.heap.peek() {
            if self.key_is_live(key) {
                return;
            }
            self.heap.pop();
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(30), 3);
        q.schedule(Time::from_ns(10), 1);
        q.schedule(Time::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Time::from_ns(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fifo_order_survives_slot_recycling() {
        // Recycled slots get fresh seqs: an event scheduled later but into
        // a lower slot index must still be delivered later at equal times.
        let mut q = EventQueue::new();
        let h = q.schedule(Time::from_ns(5), 0);
        q.schedule(Time::from_ns(5), 1);
        q.cancel(h); // frees slot 0
        q.schedule(Time::from_ns(5), 2); // recycles slot 0, scheduled last
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(Time::from_ns(1), 'x');
        q.schedule(Time::from_ns(2), 'y');
        assert_eq!(q.len(), 2);
        assert_eq!(q.cancel(h1), Some('x'));
        assert_eq!(q.len(), 1);
        // Double cancel is a no-op.
        assert_eq!(q.cancel(h1), None);
        assert_eq!(q.pop(), Some((Time::from_ns(2), 'y')));
    }

    #[test]
    fn cancel_after_fire_returns_none() {
        let mut q = EventQueue::new();
        let h = q.schedule(Time::from_ns(1), 'x');
        assert!(q.pop().is_some());
        assert_eq!(q.cancel(h), None);
    }

    #[test]
    fn stale_handle_cannot_cancel_recycled_slot() {
        // The slab-reuse regression: a handle to a fired event must not
        // cancel the unrelated event that now occupies the same slot.
        let mut q = EventQueue::new();
        let h_old = q.schedule(Time::from_ns(1), "first");
        assert_eq!(q.pop(), Some((Time::from_ns(1), "first")));
        // "second" recycles the freed slot (same index, new generation).
        let h_new = q.schedule(Time::from_ns(2), "second");
        assert_eq!(h_old.slot, h_new.slot, "slot must be recycled");
        assert_ne!(h_old.gen, h_new.gen);
        assert_eq!(q.cancel(h_old), None, "stale handle must be rejected");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Time::from_ns(2), "second")));
        // And a cancelled slot's stale handle can't cancel its successor.
        let h1 = q.schedule(Time::from_ns(3), "a");
        assert_eq!(q.cancel(h1), Some("a"));
        let _h2 = q.schedule(Time::from_ns(4), "b");
        assert_eq!(q.cancel(h1), None);
        assert_eq!(q.pop(), Some((Time::from_ns(4), "b")));
    }

    #[test]
    fn slab_memory_is_bounded_by_live_events() {
        // Schedule/pop one million events through a queue that never holds
        // more than `width` at once: the slab must stay at `width` slots.
        let width = 8;
        let mut q = EventQueue::new();
        let mut t = 0;
        for i in 0..width {
            q.schedule(Time::from_ns(i), i);
        }
        for i in 0..1_000_000u64 {
            let (at, _) = q.pop().expect("queue stays primed");
            t = t.max(at.as_ps());
            q.schedule(Time::from_ps(t + 1 + (i % 7)), i);
        }
        assert_eq!(q.len(), width as usize);
        assert!(
            q.slot_capacity() <= width as usize + 1,
            "slab grew to {} slots for {} live events",
            q.slot_capacity(),
            width
        );
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(7), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_ns(7));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), ());
        q.pop();
        q.schedule(Time::from_ns(5), ());
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule(Time::from_ns(1), 'a');
        q.schedule(Time::from_ns(2), 'b');
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(Time::from_ns(2)));
        assert!(!q.is_empty());
        assert_eq!(q.pop(), Some((Time::from_ns(2), 'b')));
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_is_read_only() {
        // peek_time takes &self: it must observe a live head even when
        // cancelled entries are buried below it.
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(1), 'a');
        let h = q.schedule(Time::from_ns(2), 'b');
        q.schedule(Time::from_ns(3), 'c');
        q.cancel(h);
        let r = &q;
        assert_eq!(r.peek_time(), Some(Time::from_ns(1)));
        assert_eq!(r.peek_time(), Some(Time::from_ns(1)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), 1);
        let (t, _) = q.pop().unwrap();
        q.schedule(t + Time::from_ns(5), 2);
        q.schedule(t + Time::from_ns(1), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn heap_key_is_16_bytes() {
        assert_eq!(std::mem::size_of::<HeapKey>(), 16);
    }
}
