//! Deterministic discrete-event simulation kernel for `ovlsim`.
//!
//! The replay simulator (`ovlsim-dimemas`) is built on three small
//! primitives provided here:
//!
//! * [`EventQueue`] — a time-ordered queue with deterministic FIFO
//!   tie-breaking and O(log n) cancellation,
//! * [`FifoResource`] — a counted resource (network buses, node links) with
//!   first-come-first-served granting,
//! * [`stats`] — time-weighted utilization and scalar accumulators used for
//!   replay statistics.
//!
//! # Determinism
//!
//! Every structure in this crate is strictly deterministic: ties in event
//! time are broken by insertion order, resources grant strictly FIFO, and no
//! hashing or wall-clock is involved anywhere.
//!
//! # Example
//!
//! ```
//! use ovlsim_core::Time;
//! use ovlsim_engine::EventQueue;
//!
//! let mut q = EventQueue::new();
//! q.schedule(Time::from_ns(5), "late");
//! q.schedule(Time::from_ns(1), "early");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (Time::from_ns(1), "early"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod queue;
mod resource;
pub mod stats;

pub use queue::{EventHandle, EventQueue};
pub use resource::{FifoResource, ResourceToken};
