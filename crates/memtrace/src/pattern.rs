//! Element-visit orders for kernel buffer accesses.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The order in which a kernel visits the elements of a buffer.
///
/// The order determines the *production pattern* (for writes) or
/// *consumption pattern* (for reads) observed by the instrumentation — the
/// application property the paper identifies as the main limiter of
/// automatic overlap.
///
/// # Example
///
/// ```
/// use ovlsim_memtrace::IndexPattern;
///
/// assert_eq!(IndexPattern::Reverse.order(4), vec![3, 2, 1, 0]);
/// assert_eq!(IndexPattern::Strided { stride: 2 }.order(5), vec![0, 2, 4, 1, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexPattern {
    /// 0, 1, 2, … — the ideal sequential order assumed by Sancho et al.
    Sequential,
    /// n−1, n−2, … — worst case for chunked early sends.
    Reverse,
    /// 0, s, 2s, …, 1, s+1, … — column-major access of a row-major array.
    Strided {
        /// The stride between consecutive visits (≥ 1).
        stride: usize,
    },
    /// A deterministic pseudo-random permutation.
    Shuffled {
        /// RNG seed (same seed ⇒ same order).
        seed: u64,
    },
    /// An explicit order; indices must form a permutation of `0..n` when
    /// materialized for length `n` (validated by [`IndexPattern::order`]).
    Explicit(Vec<u32>),
}

impl IndexPattern {
    /// Materializes the visit order for a buffer of `n` elements.
    ///
    /// # Panics
    ///
    /// Panics if `Strided` has `stride == 0`, or if an `Explicit` order is
    /// not a permutation of `0..n`.
    pub fn order(&self, n: usize) -> Vec<usize> {
        match self {
            IndexPattern::Sequential => (0..n).collect(),
            IndexPattern::Reverse => (0..n).rev().collect(),
            IndexPattern::Strided { stride } => {
                assert!(*stride >= 1, "stride must be >= 1");
                let mut out = Vec::with_capacity(n);
                for start in 0..*stride {
                    let mut i = start;
                    while i < n {
                        out.push(i);
                        i += stride;
                    }
                }
                out
            }
            IndexPattern::Shuffled { seed } => {
                let mut out: Vec<usize> = (0..n).collect();
                let mut rng = StdRng::seed_from_u64(*seed);
                out.shuffle(&mut rng);
                out
            }
            IndexPattern::Explicit(indices) => {
                assert_eq!(
                    indices.len(),
                    n,
                    "explicit order has {} entries for {} elements",
                    indices.len(),
                    n
                );
                let mut seen = vec![false; n];
                let out: Vec<usize> = indices.iter().map(|&i| i as usize).collect();
                for &i in &out {
                    assert!(i < n, "explicit index {i} out of range for {n} elements");
                    assert!(!seen[i], "explicit order visits element {i} twice");
                    seen[i] = true;
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_permutation(v: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        v.len() == n
            && v.iter().all(|&i| {
                if i < n && !seen[i] {
                    seen[i] = true;
                    true
                } else {
                    false
                }
            })
    }

    #[test]
    fn sequential_and_reverse() {
        assert_eq!(IndexPattern::Sequential.order(3), vec![0, 1, 2]);
        assert_eq!(IndexPattern::Reverse.order(3), vec![2, 1, 0]);
        assert!(IndexPattern::Sequential.order(0).is_empty());
    }

    #[test]
    fn strided_is_permutation() {
        for stride in 1..8 {
            for n in [0, 1, 5, 16, 17] {
                let o = IndexPattern::Strided { stride }.order(n);
                assert!(is_permutation(&o, n), "stride {stride} n {n}");
            }
        }
    }

    #[test]
    fn strided_order_matches_column_major() {
        // 2 strides of a 6-element buffer: evens then odds.
        assert_eq!(
            IndexPattern::Strided { stride: 2 }.order(6),
            vec![0, 2, 4, 1, 3, 5]
        );
    }

    #[test]
    fn shuffled_deterministic_and_permutation() {
        let a = IndexPattern::Shuffled { seed: 42 }.order(100);
        let b = IndexPattern::Shuffled { seed: 42 }.order(100);
        let c = IndexPattern::Shuffled { seed: 43 }.order(100);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(is_permutation(&a, 100));
    }

    #[test]
    fn explicit_valid() {
        let o = IndexPattern::Explicit(vec![2, 0, 1]).order(3);
        assert_eq!(o, vec![2, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn explicit_duplicate_rejected() {
        IndexPattern::Explicit(vec![0, 0, 1]).order(3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn explicit_out_of_range_rejected() {
        IndexPattern::Explicit(vec![0, 3, 1]).order(3);
    }

    #[test]
    #[should_panic(expected = "entries")]
    fn explicit_wrong_length_rejected() {
        IndexPattern::Explicit(vec![0, 1]).order(3);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        IndexPattern::Strided { stride: 0 }.order(3);
    }
}
