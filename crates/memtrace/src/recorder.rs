//! The virtual instrumentation recorder.

use std::error::Error;
use std::fmt;

use ovlsim_core::{BufferId, Instr};

use crate::kernel::{AccessKind, Kernel};
use crate::profile::{ConsumptionProfile, ProductionProfile};

/// Errors produced by the [`MemTracer`] recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RecorderError {
    /// An operation referenced a buffer id that was never registered with
    /// this recorder (e.g. a handle from a different [`MemTracer`]).
    UnregisteredBuffer {
        /// The offending buffer id.
        buf: BufferId,
    },
}

impl fmt::Display for RecorderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecorderError::UnregisteredBuffer { buf } => {
                write!(f, "{buf} was not registered with this recorder")
            }
        }
    }
}

impl Error for RecorderError {}

/// Metadata for a registered communication buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferInfo {
    name: String,
    bytes: u64,
    elem_bytes: u32,
}

impl BufferInfo {
    /// Human-readable buffer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Element size in bytes.
    pub fn elem_bytes(&self) -> u32 {
        self.elem_bytes
    }

    /// Number of elements.
    pub fn elements(&self) -> usize {
        (self.bytes / self.elem_bytes as u64) as usize
    }
}

/// Handle for a pending "first write after this instant" observation.
///
/// The tracing tool arms a watch on a send buffer right after a send; the
/// first subsequent write marks where the buffer is reused, which is where
/// the overlap transform must wait for the chunked sends to complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteWatch(usize);

#[derive(Debug)]
struct BufferState {
    info: BufferInfo,
    last_write: Vec<Option<Instr>>,
    first_read: Vec<Option<Instr>>,
}

#[derive(Debug)]
struct WatchState {
    buffer: BufferId,
    first_write: Option<Instr>,
}

/// The virtual instruction clock plus per-buffer load/store recording —
/// `ovlsim`'s stand-in for "each process running on its own Valgrind
/// virtual machine".
///
/// # Example
///
/// ```
/// use ovlsim_core::Instr;
/// use ovlsim_memtrace::{AccessKind, IndexPattern, Kernel, MemTracer};
///
/// let mut mt = MemTracer::new();
/// let buf = mt.register("face", 64, 8);
/// mt.advance(Instr::new(100)); // opaque compute
/// let k = Kernel::builder()
///     .phase(Instr::new(80))
///     .access(buf, AccessKind::Write, IndexPattern::Sequential)
///     .build();
/// mt.execute(&k);
/// assert_eq!(mt.now(), Instr::new(180));
/// let prof = mt.snapshot_production(buf);
/// assert_eq!(prof.fully_ready_at(), Instr::new(180));
/// ```
#[derive(Debug, Default)]
pub struct MemTracer {
    buffers: Vec<BufferState>,
    watches: Vec<WatchState>,
    clock: Instr,
}

impl MemTracer {
    /// Creates a recorder with clock at zero and no buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a communication buffer of `bytes` bytes with elements of
    /// `elem_bytes` bytes (the recording granularity).
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`, `elem_bytes == 0`, or `bytes` is not a
    /// multiple of `elem_bytes`.
    pub fn register(&mut self, name: impl Into<String>, bytes: u64, elem_bytes: u32) -> BufferId {
        assert!(bytes > 0, "buffer size must be positive");
        assert!(elem_bytes > 0, "element size must be positive");
        assert!(
            bytes.is_multiple_of(elem_bytes as u64),
            "buffer size {bytes} is not a multiple of element size {elem_bytes}"
        );
        let id = BufferId::new(self.buffers.len() as u32);
        let elements = (bytes / elem_bytes as u64) as usize;
        self.buffers.push(BufferState {
            info: BufferInfo {
                name: name.into(),
                bytes,
                elem_bytes,
            },
            last_write: vec![None; elements],
            first_read: vec![None; elements],
        });
        id
    }

    /// Metadata of a registered buffer.
    ///
    /// # Panics
    ///
    /// Panics if `buf` was not registered with this recorder.
    pub fn buffer_info(&self, buf: BufferId) -> &BufferInfo {
        &self.state(buf).info
    }

    /// Fallible [`MemTracer::buffer_info`].
    ///
    /// # Errors
    ///
    /// Returns [`RecorderError::UnregisteredBuffer`] if `buf` was not
    /// registered with this recorder.
    pub fn try_buffer_info(&self, buf: BufferId) -> Result<&BufferInfo, RecorderError> {
        Ok(&self.try_state(buf)?.info)
    }

    /// Number of registered buffers.
    pub fn buffer_count(&self) -> usize {
        self.buffers.len()
    }

    /// The current virtual instruction instant.
    pub fn now(&self) -> Instr {
        self.clock
    }

    /// Advances the clock by `instr` without touching any buffer (opaque
    /// computation).
    pub fn advance(&mut self, instr: Instr) {
        self.clock += instr;
    }

    /// Executes a kernel: advances the clock phase by phase and records
    /// each access stream's element timestamps, uniformly spread over the
    /// owning phase.
    ///
    /// # Panics
    ///
    /// Panics if the kernel touches an unregistered buffer or an element
    /// range outside a buffer.
    pub fn execute(&mut self, kernel: &Kernel) {
        for phase in kernel.phases() {
            let phase_start = self.clock;
            let phase_instr = phase.instr;
            for access in &phase.accesses {
                let idx = access.buffer.index();
                assert!(
                    idx < self.buffers.len(),
                    "kernel touches unregistered {}",
                    access.buffer
                );
                let elements = self.buffers[idx].info.elements();
                let range = access.elements.clone().unwrap_or(0..elements);
                assert!(
                    range.end <= elements,
                    "access range {}..{} exceeds {} of {} elements",
                    range.start,
                    range.end,
                    access.buffer,
                    elements
                );
                if range.is_empty() {
                    continue;
                }
                let n = range.len() as u128;
                let order = access.pattern.order(range.len());
                let state = &mut self.buffers[idx];
                for (k, rel) in order.into_iter().enumerate() {
                    let e = range.start + rel;
                    let offset = ((k as u128 + 1) * phase_instr.get() as u128 / n) as u64;
                    let t = phase_start + Instr::new(offset);
                    match access.kind {
                        AccessKind::Write => {
                            state.last_write[e] = Some(t);
                        }
                        AccessKind::Read => {
                            if state.first_read[e].is_none() {
                                state.first_read[e] = Some(t);
                            }
                        }
                    }
                }
                if access.kind == AccessKind::Write {
                    // A single write in the phase suffices to trip watches;
                    // use the earliest element timestamp in this stream.
                    let earliest =
                        phase_start + Instr::new(((phase_instr.get() as u128) / n) as u64);
                    for w in &mut self.watches {
                        if w.buffer == access.buffer && w.first_write.is_none() {
                            w.first_write = Some(earliest);
                        }
                    }
                }
            }
            self.clock += phase_instr;
        }
    }

    /// Snapshots the production profile (last-write instants) of a buffer.
    ///
    /// # Panics
    ///
    /// Panics if `buf` was not registered.
    pub fn snapshot_production(&self, buf: BufferId) -> ProductionProfile {
        let s = self.state(buf);
        ProductionProfile::new(s.info.elem_bytes, s.last_write.clone())
    }

    /// Fallible [`MemTracer::snapshot_production`].
    ///
    /// # Errors
    ///
    /// Returns [`RecorderError::UnregisteredBuffer`] if `buf` was not
    /// registered.
    pub fn try_snapshot_production(
        &self,
        buf: BufferId,
    ) -> Result<ProductionProfile, RecorderError> {
        let s = self.try_state(buf)?;
        Ok(ProductionProfile::new(
            s.info.elem_bytes,
            s.last_write.clone(),
        ))
    }

    /// Clears the first-read tracking of a buffer; called by the tracer at
    /// each receive so the next snapshot reflects consumption *of this
    /// message*.
    ///
    /// # Panics
    ///
    /// Panics if `buf` was not registered.
    pub fn reset_consumption(&mut self, buf: BufferId) {
        self.try_reset_consumption(buf)
            .unwrap_or_else(|_| panic!("unregistered {buf}"));
    }

    /// Fallible [`MemTracer::reset_consumption`].
    ///
    /// # Errors
    ///
    /// Returns [`RecorderError::UnregisteredBuffer`] if `buf` was not
    /// registered.
    pub fn try_reset_consumption(&mut self, buf: BufferId) -> Result<(), RecorderError> {
        let idx = buf.index();
        if idx >= self.buffers.len() {
            return Err(RecorderError::UnregisteredBuffer { buf });
        }
        self.buffers[idx].first_read.fill(None);
        Ok(())
    }

    /// Snapshots the consumption profile (first-read instants since the
    /// last [`MemTracer::reset_consumption`]) of a buffer.
    ///
    /// # Panics
    ///
    /// Panics if `buf` was not registered.
    pub fn snapshot_consumption(&self, buf: BufferId) -> ConsumptionProfile {
        let s = self.state(buf);
        ConsumptionProfile::new(s.info.elem_bytes, s.first_read.clone())
    }

    /// Fallible [`MemTracer::snapshot_consumption`].
    ///
    /// # Errors
    ///
    /// Returns [`RecorderError::UnregisteredBuffer`] if `buf` was not
    /// registered.
    pub fn try_snapshot_consumption(
        &self,
        buf: BufferId,
    ) -> Result<ConsumptionProfile, RecorderError> {
        let s = self.try_state(buf)?;
        Ok(ConsumptionProfile::new(
            s.info.elem_bytes,
            s.first_read.clone(),
        ))
    }

    /// Arms a watch that reports the first write to `buf` from now on.
    ///
    /// # Panics
    ///
    /// Panics if `buf` was not registered.
    pub fn watch_first_write(&mut self, buf: BufferId) -> WriteWatch {
        self.try_watch_first_write(buf)
            .unwrap_or_else(|_| panic!("unregistered {buf}"))
    }

    /// Fallible [`MemTracer::watch_first_write`].
    ///
    /// # Errors
    ///
    /// Returns [`RecorderError::UnregisteredBuffer`] if `buf` was not
    /// registered.
    pub fn try_watch_first_write(&mut self, buf: BufferId) -> Result<WriteWatch, RecorderError> {
        if buf.index() >= self.buffers.len() {
            return Err(RecorderError::UnregisteredBuffer { buf });
        }
        let id = WriteWatch(self.watches.len());
        self.watches.push(WatchState {
            buffer: buf,
            first_write: None,
        });
        Ok(id)
    }

    /// The instant of the first write observed by `watch`, if any yet.
    pub fn watch_result(&self, watch: WriteWatch) -> Option<Instr> {
        self.watches[watch.0].first_write
    }

    fn try_state(&self, buf: BufferId) -> Result<&BufferState, RecorderError> {
        self.buffers
            .get(buf.index())
            .ok_or(RecorderError::UnregisteredBuffer { buf })
    }

    fn state(&self, buf: BufferId) -> &BufferState {
        self.try_state(buf)
            .unwrap_or_else(|_| panic!("unregistered {buf}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::IndexPattern;

    #[test]
    fn register_validates() {
        let mut mt = MemTracer::new();
        let b = mt.register("a", 64, 8);
        assert_eq!(mt.buffer_info(b).elements(), 8);
        assert_eq!(mt.buffer_info(b).name(), "a");
        assert_eq!(mt.buffer_info(b).bytes(), 64);
        assert_eq!(mt.buffer_info(b).elem_bytes(), 8);
        assert_eq!(mt.buffer_count(), 1);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn misaligned_buffer_rejected() {
        MemTracer::new().register("a", 65, 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_buffer_rejected() {
        MemTracer::new().register("a", 0, 8);
    }

    #[test]
    fn sequential_write_timestamps_spread_over_phase() {
        let mut mt = MemTracer::new();
        let b = mt.register("a", 40, 10); // 4 elements
        let k = Kernel::builder()
            .phase(Instr::new(100))
            .access(b, AccessKind::Write, IndexPattern::Sequential)
            .build();
        mt.execute(&k);
        let p = mt.snapshot_production(b);
        assert_eq!(p.element_timestamp(0), Some(Instr::new(25)));
        assert_eq!(p.element_timestamp(1), Some(Instr::new(50)));
        assert_eq!(p.element_timestamp(2), Some(Instr::new(75)));
        assert_eq!(p.element_timestamp(3), Some(Instr::new(100)));
        assert_eq!(mt.now(), Instr::new(100));
    }

    #[test]
    fn reverse_write_means_first_element_done_last() {
        let mut mt = MemTracer::new();
        let b = mt.register("a", 4, 1);
        let k = Kernel::builder()
            .phase(Instr::new(100))
            .access(b, AccessKind::Write, IndexPattern::Reverse)
            .build();
        mt.execute(&k);
        let p = mt.snapshot_production(b);
        // Element 3 visited first (t=25), element 0 last (t=100).
        assert_eq!(p.element_timestamp(3), Some(Instr::new(25)));
        assert_eq!(p.element_timestamp(0), Some(Instr::new(100)));
        // First chunk (bytes 0..2) not ready until t=100.
        assert_eq!(p.ready_at(0..2), Instr::new(100));
    }

    #[test]
    fn first_read_sticks_until_reset() {
        let mut mt = MemTracer::new();
        let b = mt.register("a", 4, 1);
        let read = Kernel::builder()
            .phase(Instr::new(10))
            .access(b, AccessKind::Read, IndexPattern::Sequential)
            .build();
        mt.execute(&read);
        let first = mt.snapshot_consumption(b);
        mt.execute(&read); // second read at later times
        let again = mt.snapshot_consumption(b);
        assert_eq!(first, again, "first read is sticky");
        mt.reset_consumption(b);
        mt.execute(&read);
        let after = mt.snapshot_consumption(b);
        assert!(after.first_needed_at().unwrap() > first.first_needed_at().unwrap());
    }

    #[test]
    fn later_write_overwrites_production_time() {
        let mut mt = MemTracer::new();
        let b = mt.register("a", 4, 1);
        let w = Kernel::builder()
            .phase(Instr::new(100))
            .access(b, AccessKind::Write, IndexPattern::Sequential)
            .build();
        mt.execute(&w);
        mt.execute(&w);
        let p = mt.snapshot_production(b);
        // Second execution: element 0 written at 100 + 25.
        assert_eq!(p.element_timestamp(0), Some(Instr::new(125)));
    }

    #[test]
    fn subrange_access_only_touches_range() {
        let mut mt = MemTracer::new();
        let b = mt.register("a", 8, 1);
        let k = Kernel::builder()
            .phase(Instr::new(40))
            .access_range(b, AccessKind::Write, IndexPattern::Sequential, Some(2..6))
            .build();
        mt.execute(&k);
        let p = mt.snapshot_production(b);
        assert_eq!(p.element_timestamp(0), None);
        assert_eq!(p.element_timestamp(2), Some(Instr::new(10)));
        assert_eq!(p.element_timestamp(5), Some(Instr::new(40)));
        assert_eq!(p.element_timestamp(7), None);
    }

    #[test]
    fn watch_reports_first_write_only_after_arming() {
        let mut mt = MemTracer::new();
        let b = mt.register("a", 4, 1);
        let w = Kernel::builder()
            .phase(Instr::new(100))
            .access(b, AccessKind::Write, IndexPattern::Sequential)
            .build();
        mt.execute(&w);
        let watch = mt.watch_first_write(b);
        assert_eq!(mt.watch_result(watch), None);
        mt.execute(&w);
        // First write of the second execution happens at 100 + 25.
        assert_eq!(mt.watch_result(watch), Some(Instr::new(125)));
        // Result is sticky: further writes don't move it.
        mt.execute(&w);
        assert_eq!(mt.watch_result(watch), Some(Instr::new(125)));
    }

    #[test]
    fn opaque_advance_moves_clock_only() {
        let mut mt = MemTracer::new();
        let b = mt.register("a", 4, 1);
        mt.advance(Instr::new(500));
        assert_eq!(mt.now(), Instr::new(500));
        assert_eq!(mt.snapshot_production(b).fully_ready_at(), Instr::ZERO);
    }

    #[test]
    fn zero_instruction_phase_timestamps_at_phase_start() {
        let mut mt = MemTracer::new();
        let b = mt.register("a", 4, 1);
        mt.advance(Instr::new(10));
        let k = Kernel::builder()
            .phase(Instr::ZERO)
            .access(b, AccessKind::Write, IndexPattern::Sequential)
            .build();
        mt.execute(&k);
        let p = mt.snapshot_production(b);
        assert_eq!(p.fully_ready_at(), Instr::new(10));
    }

    #[test]
    #[should_panic(expected = "unregistered")]
    fn unknown_buffer_panics() {
        let mt = MemTracer::new();
        mt.buffer_info(BufferId::new(3));
    }

    #[test]
    fn unknown_buffer_surfaces_as_recorder_error() {
        let mut mt = MemTracer::new();
        let ghost = BufferId::new(3);
        let expected = RecorderError::UnregisteredBuffer { buf: ghost };
        assert_eq!(mt.try_buffer_info(ghost).unwrap_err(), expected);
        assert_eq!(mt.try_snapshot_production(ghost).unwrap_err(), expected);
        assert_eq!(mt.try_snapshot_consumption(ghost).unwrap_err(), expected);
        assert_eq!(mt.try_reset_consumption(ghost).unwrap_err(), expected);
        assert_eq!(mt.try_watch_first_write(ghost).unwrap_err(), expected);
        let msg = format!("{expected}");
        assert!(msg.contains("not registered"), "got: {msg}");
        // A registered buffer goes through the fallible paths cleanly.
        let b = mt.register("a", 8, 4);
        assert_eq!(mt.try_buffer_info(b).unwrap().elements(), 2);
        assert!(mt.try_snapshot_production(b).is_ok());
        assert!(mt.try_snapshot_consumption(b).is_ok());
        assert!(mt.try_reset_consumption(b).is_ok());
        let watch = mt.try_watch_first_write(b).unwrap();
        assert_eq!(mt.watch_result(watch), None);
    }
}
