//! Production and consumption profiles.
//!
//! A *production profile* snapshots, for every element of a send buffer,
//! the instruction instant at which it was last written before the send —
//! i.e. when that element's final value was *produced*. A *consumption
//! profile* records for every element of a receive buffer the instant of
//! its first read after the receive — when the data is first *needed*.
//! The overlap transform queries these at chunk granularity: a chunk can be
//! sent once its latest-produced element is ready, and must have arrived by
//! the time its earliest-consumed element is read.

use ovlsim_core::Instr;

/// Per-element last-write instants for a send buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProductionProfile {
    elem_bytes: u32,
    timestamps: Vec<Option<Instr>>,
}

impl ProductionProfile {
    /// Creates a profile from raw per-element timestamps.
    pub fn new(elem_bytes: u32, timestamps: Vec<Option<Instr>>) -> Self {
        assert!(elem_bytes > 0, "element size must be positive");
        ProductionProfile {
            elem_bytes,
            timestamps,
        }
    }

    /// Element size in bytes.
    pub fn elem_bytes(&self) -> u32 {
        self.elem_bytes
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.timestamps.len()
    }

    /// Buffer size in bytes.
    pub fn byte_len(&self) -> u64 {
        self.timestamps.len() as u64 * self.elem_bytes as u64
    }

    /// Last-write instant of one element (`None` = never written, i.e. the
    /// data pre-existed and is ready from the start).
    pub fn element_timestamp(&self, element: usize) -> Option<Instr> {
        self.timestamps.get(element).copied().flatten()
    }

    /// The instant at which the byte range `[start, end)` is fully
    /// produced: the max last-write instant over its elements, or
    /// `Instr::ZERO` if no element in the range was ever written.
    ///
    /// # Panics
    ///
    /// Panics if the byte range exceeds the buffer or is empty.
    pub fn ready_at(&self, byte_range: std::ops::Range<u64>) -> Instr {
        let (lo, hi) = self.element_span(byte_range);
        self.timestamps[lo..hi]
            .iter()
            .filter_map(|t| *t)
            .max()
            .unwrap_or(Instr::ZERO)
    }

    /// The instant at which the whole buffer is fully produced.
    pub fn fully_ready_at(&self) -> Instr {
        self.ready_at(0..self.byte_len())
    }

    fn element_span(&self, byte_range: std::ops::Range<u64>) -> (usize, usize) {
        assert!(
            byte_range.start < byte_range.end,
            "byte range must be non-empty"
        );
        assert!(
            byte_range.end <= self.byte_len(),
            "byte range {}..{} exceeds buffer of {} bytes",
            byte_range.start,
            byte_range.end,
            self.byte_len()
        );
        let lo = (byte_range.start / self.elem_bytes as u64) as usize;
        let hi = byte_range.end.div_ceil(self.elem_bytes as u64) as usize;
        (lo, hi)
    }

    /// Cumulative readiness: for each of `points` evenly spaced byte
    /// prefixes, the fraction of the interval `[start, end]` by which that
    /// prefix is fully produced. Used to plot production CDFs (experiment
    /// E7).
    pub fn readiness_cdf(&self, start: Instr, end: Instr, points: usize) -> Vec<f64> {
        assert!(points >= 1, "need at least one point");
        let span = end.get().saturating_sub(start.get()).max(1);
        (1..=points)
            .map(|i| {
                let bytes = self.byte_len() * i as u64 / points as u64;
                if bytes == 0 {
                    return 0.0;
                }
                let t = self.ready_at(0..bytes);
                let rel = t.get().saturating_sub(start.get());
                (rel as f64 / span as f64).min(1.0)
            })
            .collect()
    }
}

/// Per-element first-read instants for a receive buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsumptionProfile {
    elem_bytes: u32,
    timestamps: Vec<Option<Instr>>,
}

impl ConsumptionProfile {
    /// Creates a profile from raw per-element timestamps.
    pub fn new(elem_bytes: u32, timestamps: Vec<Option<Instr>>) -> Self {
        assert!(elem_bytes > 0, "element size must be positive");
        ConsumptionProfile {
            elem_bytes,
            timestamps,
        }
    }

    /// Element size in bytes.
    pub fn elem_bytes(&self) -> u32 {
        self.elem_bytes
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.timestamps.len()
    }

    /// Buffer size in bytes.
    pub fn byte_len(&self) -> u64 {
        self.timestamps.len() as u64 * self.elem_bytes as u64
    }

    /// First-read instant of one element (`None` = never read).
    pub fn element_timestamp(&self, element: usize) -> Option<Instr> {
        self.timestamps.get(element).copied().flatten()
    }

    /// The instant at which the byte range `[start, end)` is first needed:
    /// the min first-read instant over its elements, or `None` if the range
    /// is never read (its wait can be deferred arbitrarily).
    ///
    /// # Panics
    ///
    /// Panics if the byte range exceeds the buffer or is empty.
    pub fn needed_at(&self, byte_range: std::ops::Range<u64>) -> Option<Instr> {
        let (lo, hi) = self.element_span(byte_range);
        self.timestamps[lo..hi].iter().filter_map(|t| *t).min()
    }

    /// The earliest instant any element of the buffer is read.
    pub fn first_needed_at(&self) -> Option<Instr> {
        self.needed_at(0..self.byte_len())
    }

    fn element_span(&self, byte_range: std::ops::Range<u64>) -> (usize, usize) {
        assert!(
            byte_range.start < byte_range.end,
            "byte range must be non-empty"
        );
        assert!(
            byte_range.end <= self.byte_len(),
            "byte range {}..{} exceeds buffer of {} bytes",
            byte_range.start,
            byte_range.end,
            self.byte_len()
        );
        let lo = (byte_range.start / self.elem_bytes as u64) as usize;
        let hi = byte_range.end.div_ceil(self.elem_bytes as u64) as usize;
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[u64]) -> Vec<Option<Instr>> {
        v.iter().map(|&x| Some(Instr::new(x))).collect()
    }

    #[test]
    fn production_ready_at_is_max_over_range() {
        let p = ProductionProfile::new(4, ts(&[10, 40, 20, 30]));
        // Elements are 4 bytes each.
        assert_eq!(p.ready_at(0..4), Instr::new(10));
        assert_eq!(p.ready_at(0..8), Instr::new(40));
        assert_eq!(p.ready_at(8..16), Instr::new(30));
        assert_eq!(p.fully_ready_at(), Instr::new(40));
        assert_eq!(p.byte_len(), 16);
        assert_eq!(p.element_count(), 4);
    }

    #[test]
    fn production_partial_element_rounds_out() {
        let p = ProductionProfile::new(4, ts(&[10, 40]));
        // Bytes 0..5 touch element 1, so readiness includes it.
        assert_eq!(p.ready_at(0..5), Instr::new(40));
        // Bytes 2..4 lie within element 0.
        assert_eq!(p.ready_at(2..4), Instr::new(10));
    }

    #[test]
    fn never_written_is_ready_from_start() {
        let p = ProductionProfile::new(4, vec![None, Some(Instr::new(9))]);
        assert_eq!(p.ready_at(0..4), Instr::ZERO);
        assert_eq!(p.ready_at(0..8), Instr::new(9));
        assert_eq!(p.element_timestamp(0), None);
    }

    #[test]
    #[should_panic(expected = "exceeds buffer")]
    fn out_of_range_query_panics() {
        let p = ProductionProfile::new(4, ts(&[1]));
        p.ready_at(0..5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_panics() {
        let p = ProductionProfile::new(4, ts(&[1]));
        p.ready_at(2..2);
    }

    #[test]
    fn consumption_needed_at_is_min_over_range() {
        let c = ConsumptionProfile::new(8, ts(&[100, 50, 70]));
        assert_eq!(c.needed_at(0..8), Some(Instr::new(100)));
        assert_eq!(c.needed_at(0..24), Some(Instr::new(50)));
        assert_eq!(c.first_needed_at(), Some(Instr::new(50)));
    }

    #[test]
    fn never_read_range_is_none() {
        let c = ConsumptionProfile::new(8, vec![None, None, Some(Instr::new(5))]);
        assert_eq!(c.needed_at(0..16), None);
        assert_eq!(c.needed_at(0..24), Some(Instr::new(5)));
    }

    #[test]
    fn readiness_cdf_sequential() {
        // 4 elements produced at 25/50/75/100 over interval [0,100]:
        // sequential production gives a linear CDF.
        let p = ProductionProfile::new(1, ts(&[25, 50, 75, 100]));
        let cdf = p.readiness_cdf(Instr::ZERO, Instr::new(100), 4);
        assert_eq!(cdf, vec![0.25, 0.50, 0.75, 1.00]);
    }

    #[test]
    fn readiness_cdf_packed_tail() {
        // All elements produced at the very end: CDF pinned near 1.
        let p = ProductionProfile::new(1, ts(&[99, 99, 100, 100]));
        let cdf = p.readiness_cdf(Instr::ZERO, Instr::new(100), 2);
        assert!(cdf.iter().all(|&f| f >= 0.99));
    }

    #[test]
    fn readiness_cdf_clamps_outside_interval() {
        let p = ProductionProfile::new(1, ts(&[500]));
        let cdf = p.readiness_cdf(Instr::ZERO, Instr::new(100), 1);
        assert_eq!(cdf, vec![1.0]);
    }
}
