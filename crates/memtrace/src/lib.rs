//! Virtual memory-access instrumentation for `ovlsim` — the environment's
//! substitute for the paper's Valgrind-based tracing machinery.
//!
//! The paper's tool "leverages two key Valgrind functionalities …: wrapping
//! function calls and tracking memory activities (loads and stores)" and
//! "needs additional data structures to keep track of the transfer's state
//! and of the production/consumption progress of every chunk". This crate
//! provides those observations for the synthetic application models:
//!
//! * [`MemTracer`] — a virtual instruction clock plus per-buffer recording
//!   of *last write* (production) and *first read* (consumption) instants,
//! * [`Kernel`]/[`Phase`]/[`BufferAccess`] — a declarative description of a
//!   compute loop and the element order in which it touches communication
//!   buffers,
//! * [`IndexPattern`] — reusable element orders (sequential, reverse,
//!   strided, shuffled, explicit),
//! * [`ProductionProfile`]/[`ConsumptionProfile`] — per-element timestamp
//!   snapshots with chunk-level queries used by the overlap transform.
//!
//! # Example
//!
//! ```
//! use ovlsim_core::Instr;
//! use ovlsim_memtrace::{AccessKind, IndexPattern, Kernel, MemTracer};
//!
//! let mut mt = MemTracer::new();
//! let buf = mt.register("halo", 1024, 8); // 1024 bytes, 8-byte elements
//!
//! // A kernel that writes the buffer sequentially over 1000 instructions.
//! let kernel = Kernel::builder()
//!     .phase(Instr::new(1000))
//!     .access(buf, AccessKind::Write, IndexPattern::Sequential)
//!     .build();
//! mt.execute(&kernel);
//!
//! let prof = mt.snapshot_production(buf);
//! // The first element completes early, the last at the end of the phase.
//! assert!(prof.element_timestamp(0).unwrap() < prof.element_timestamp(127).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernel;
mod pattern;
mod profile;
mod recorder;

pub use kernel::{AccessKind, BufferAccess, Kernel, KernelBuilder, Phase};
pub use pattern::IndexPattern;
pub use profile::{ConsumptionProfile, ProductionProfile};
pub use recorder::{BufferInfo, MemTracer, RecorderError, WriteWatch};
