//! Declarative compute-kernel descriptions.
//!
//! An application model does not execute real arithmetic; it *describes*
//! each compute loop as a [`Kernel`]: an ordered list of [`Phase`]s, each
//! with an instruction cost and a set of buffer accesses whose elements are
//! visited in a given [`IndexPattern`] order, uniformly spread over the
//! phase's instructions. The recorder turns these descriptions into
//! per-element production/consumption timestamps — the same information the
//! paper extracts with Valgrind load/store tracking.

use ovlsim_core::{BufferId, Instr};

use crate::pattern::IndexPattern;

/// Whether an access reads or writes the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// The kernel reads the buffer (consumption).
    Read,
    /// The kernel writes the buffer (production).
    Write,
}

/// One buffer access stream within a phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferAccess {
    /// Which buffer is touched.
    pub buffer: BufferId,
    /// Read or write.
    pub kind: AccessKind,
    /// Element visit order.
    pub pattern: IndexPattern,
    /// Optional sub-range of elements touched (`None` = whole buffer).
    pub elements: Option<std::ops::Range<usize>>,
}

/// A contiguous stretch of computation with uniform buffer-access streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Instruction cost of this phase.
    pub instr: Instr,
    /// Buffer accesses performed during the phase.
    pub accesses: Vec<BufferAccess>,
}

/// A compute kernel: an ordered list of phases.
///
/// Build with [`Kernel::builder`]:
///
/// ```
/// use ovlsim_core::{BufferId, Instr};
/// use ovlsim_memtrace::{AccessKind, IndexPattern, Kernel};
///
/// let buf = BufferId::new(0);
/// let k = Kernel::builder()
///     .phase(Instr::new(900)) // main loop: writes spread over the phase
///     .access(buf, AccessKind::Write, IndexPattern::Sequential)
///     .phase(Instr::new(100)) // trailing fix-up pass
///     .access(buf, AccessKind::Write, IndexPattern::Sequential)
///     .build();
/// assert_eq!(k.total_instr(), Instr::new(1000));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Kernel {
    phases: Vec<Phase>,
}

impl Kernel {
    /// Starts building a kernel.
    pub fn builder() -> KernelBuilder {
        KernelBuilder::default()
    }

    /// A kernel with a single access-free phase (opaque compute).
    pub fn opaque(instr: Instr) -> Kernel {
        Kernel {
            phases: vec![Phase {
                instr,
                accesses: Vec::new(),
            }],
        }
    }

    /// The phases in execution order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total instruction cost over all phases.
    pub fn total_instr(&self) -> Instr {
        self.phases.iter().map(|p| p.instr).sum()
    }

    /// True if the kernel has no phases.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }
}

/// Builder for [`Kernel`]; see [`Kernel::builder`].
#[derive(Debug, Clone, Default)]
pub struct KernelBuilder {
    phases: Vec<Phase>,
}

impl KernelBuilder {
    /// Appends a phase of `instr` instructions; subsequent
    /// [`KernelBuilder::access`] calls attach to this phase.
    pub fn phase(mut self, instr: Instr) -> Self {
        self.phases.push(Phase {
            instr,
            accesses: Vec::new(),
        });
        self
    }

    /// Attaches a whole-buffer access stream to the current phase.
    ///
    /// # Panics
    ///
    /// Panics if called before any [`KernelBuilder::phase`].
    pub fn access(self, buffer: BufferId, kind: AccessKind, pattern: IndexPattern) -> Self {
        self.access_range(buffer, kind, pattern, None)
    }

    /// Attaches an access stream over an element sub-range to the current
    /// phase (`None` = whole buffer).
    ///
    /// # Panics
    ///
    /// Panics if called before any [`KernelBuilder::phase`].
    pub fn access_range(
        mut self,
        buffer: BufferId,
        kind: AccessKind,
        pattern: IndexPattern,
        elements: Option<std::ops::Range<usize>>,
    ) -> Self {
        let phase = self
            .phases
            .last_mut()
            .expect("call .phase(..) before .access(..)");
        phase.accesses.push(BufferAccess {
            buffer,
            kind,
            pattern,
            elements,
        });
        self
    }

    /// Finishes the kernel.
    pub fn build(self) -> Kernel {
        Kernel {
            phases: self.phases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_attaches_accesses_to_last_phase() {
        let buf = BufferId::new(1);
        let k = Kernel::builder()
            .phase(Instr::new(10))
            .phase(Instr::new(20))
            .access(buf, AccessKind::Read, IndexPattern::Sequential)
            .build();
        assert_eq!(k.phases().len(), 2);
        assert!(k.phases()[0].accesses.is_empty());
        assert_eq!(k.phases()[1].accesses.len(), 1);
        assert_eq!(k.total_instr(), Instr::new(30));
    }

    #[test]
    #[should_panic(expected = "before .access")]
    fn access_without_phase_panics() {
        let _ =
            Kernel::builder().access(BufferId::new(0), AccessKind::Read, IndexPattern::Sequential);
    }

    #[test]
    fn opaque_kernel() {
        let k = Kernel::opaque(Instr::new(500));
        assert_eq!(k.total_instr(), Instr::new(500));
        assert_eq!(k.phases().len(), 1);
        assert!(k.phases()[0].accesses.is_empty());
        assert!(!k.is_empty());
        assert!(Kernel::default().is_empty());
    }

    #[test]
    fn access_range_stored() {
        let buf = BufferId::new(0);
        let k = Kernel::builder()
            .phase(Instr::new(10))
            .access_range(buf, AccessKind::Write, IndexPattern::Reverse, Some(2..5))
            .build();
        assert_eq!(k.phases()[0].accesses[0].elements, Some(2..5));
    }
}
