//! Property tests for access patterns and profile recording.

use ovlsim_core::Instr;
use ovlsim_memtrace::{AccessKind, IndexPattern, Kernel, MemTracer};
use proptest::prelude::*;

fn arb_pattern() -> impl Strategy<Value = IndexPattern> {
    prop_oneof![
        Just(IndexPattern::Sequential),
        Just(IndexPattern::Reverse),
        (1usize..64).prop_map(|stride| IndexPattern::Strided { stride }),
        any::<u64>().prop_map(|seed| IndexPattern::Shuffled { seed }),
    ]
}

proptest! {
    /// Every pattern materializes to a permutation of 0..n.
    #[test]
    fn patterns_are_permutations(pattern in arb_pattern(), n in 0usize..2_000) {
        let order = pattern.order(n);
        prop_assert_eq!(order.len(), n);
        let mut seen = vec![false; n];
        for i in order {
            prop_assert!(i < n);
            prop_assert!(!seen[i], "index {i} visited twice");
            seen[i] = true;
        }
    }

    /// Recording a full-buffer write stamps every element within the
    /// phase, with the k-th visited element at offset (k+1)·I/n, so all
    /// timestamps lie in (start, start+I] and the max equals start+I.
    #[test]
    fn write_timestamps_bounded(
        pattern in arb_pattern(),
        elements in 1usize..500,
        instr in 1u64..10_000_000,
        lead in 0u64..1_000_000,
    ) {
        let mut mt = MemTracer::new();
        let buf = mt.register("b", elements as u64 * 8, 8);
        mt.advance(Instr::new(lead));
        let k = Kernel::builder()
            .phase(Instr::new(instr))
            .access(buf, AccessKind::Write, pattern)
            .build();
        mt.execute(&k);
        let prof = mt.snapshot_production(buf);
        let mut max_seen = 0;
        for e in 0..elements {
            let t = prof.element_timestamp(e).expect("written").get();
            prop_assert!(t > lead, "element {e} stamped at {t} before phase start {lead}");
            prop_assert!(t <= lead + instr);
            max_seen = max_seen.max(t);
        }
        prop_assert_eq!(max_seen, lead + instr, "last visit must land at phase end");
        prop_assert_eq!(prof.fully_ready_at(), Instr::new(lead + instr));
    }

    /// The readiness CDF is monotone non-decreasing and ends at 1 when
    /// production finishes exactly at the interval end.
    #[test]
    fn readiness_cdf_monotone(
        pattern in arb_pattern(),
        elements in 1usize..300,
        instr in 1u64..1_000_000,
        points in 1usize..20,
    ) {
        let mut mt = MemTracer::new();
        let buf = mt.register("b", elements as u64 * 8, 8);
        let k = Kernel::builder()
            .phase(Instr::new(instr))
            .access(buf, AccessKind::Write, pattern)
            .build();
        mt.execute(&k);
        let prof = mt.snapshot_production(buf);
        let cdf = prof.readiness_cdf(Instr::ZERO, Instr::new(instr), points);
        prop_assert_eq!(cdf.len(), points);
        for w in cdf.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12, "CDF not monotone: {cdf:?}");
        }
        prop_assert!((cdf[points - 1] - 1.0).abs() < 1e-9, "CDF must end at 1: {cdf:?}");
    }

    /// First-read consumption: the minimum over any byte range equals the
    /// minimum over its element timestamps.
    #[test]
    fn consumption_min_consistent(
        pattern in arb_pattern(),
        elements in 1usize..300,
        instr in 1u64..1_000_000,
    ) {
        let mut mt = MemTracer::new();
        let bytes = elements as u64 * 8;
        let buf = mt.register("b", bytes, 8);
        let k = Kernel::builder()
            .phase(Instr::new(instr))
            .access(buf, AccessKind::Read, pattern)
            .build();
        mt.execute(&k);
        let prof = mt.snapshot_consumption(buf);
        let whole = prof.needed_at(0..bytes).expect("all read");
        let per_element_min = (0..elements)
            .filter_map(|e| prof.element_timestamp(e))
            .min()
            .expect("all read");
        prop_assert_eq!(whole, per_element_min);
    }
}
