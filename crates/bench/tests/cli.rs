//! End-to-end tests of the `trace_tool` command-line binary.

use std::process::Command;

fn trace_tool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_trace_tool"))
}

#[test]
fn gen_stats_validate_replay_roundtrip() {
    let dir = std::env::temp_dir().join("ovlsim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let prefix = dir.join("cg");
    let prefix_str = prefix.to_str().unwrap();

    // gen
    let out = trace_tool()
        .args(["gen", "nas-cg", prefix_str])
        .output()
        .expect("trace_tool runs");
    assert!(out.status.success(), "gen failed: {out:?}");
    let original = format!("{prefix_str}.original.dim");
    let linear = format!("{prefix_str}.ovl-linear.dim");
    assert!(std::path::Path::new(&original).exists());
    assert!(std::path::Path::new(&linear).exists());

    // stats
    let out = trace_tool().args(["stats", &original]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("validation: ok"));
    assert!(stdout.contains("rank 0"));

    // validate
    let out = trace_tool().args(["validate", &linear]).output().unwrap();
    assert!(out.status.success());

    // replay
    let out = trace_tool()
        .args(["replay", &linear, "100e6", "5"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("legend"), "replay should render a gantt");
}

#[test]
fn validate_rejects_broken_trace() {
    let dir = std::env::temp_dir().join("ovlsim-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("broken.dim");
    // Unmatched send: structurally invalid.
    std::fs::write(
        &path,
        "name broken\nmips 1000\nranks 2\nrank 0\nsend r1 100 t0\nend\nrank 1\nend\n",
    )
    .unwrap();
    let out = trace_tool()
        .args(["validate", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success(), "broken trace must fail validation");
}

#[test]
fn unknown_app_is_reported() {
    let out = trace_tool()
        .args(["gen", "no-such-app", "/tmp/x"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown app"));
}

#[test]
fn bad_usage_prints_help() {
    let out = trace_tool().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
