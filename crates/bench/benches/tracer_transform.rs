//! Overlap-transform cost: tracing an application and synthesizing the
//! overlapped trace variants.

use criterion::{criterion_group, criterion_main, Criterion};
use ovlsim_apps::NasBt;
use ovlsim_tracer::{ChunkingPolicy, OverlapMode, TracingSession};
use std::hint::black_box;

fn bench_transform(c: &mut Criterion) {
    let app = NasBt::builder()
        .ranks(16)
        .iterations(2)
        .build()
        .expect("valid NAS-BT");

    c.bench_function("trace_nas_bt", |b| {
        b.iter(|| black_box(TracingSession::new(&app).run().expect("traces")));
    });

    let bundle = TracingSession::new(&app)
        .policy(ChunkingPolicy::fixed_count(16).with_min_chunk_bytes(512))
        .run()
        .expect("traces");

    c.bench_function("transform_real", |b| {
        b.iter(|| black_box(bundle.overlapped(OverlapMode::real()).expect("validates")));
    });
    c.bench_function("transform_linear", |b| {
        b.iter(|| black_box(bundle.overlapped(OverlapMode::linear()).expect("validates")));
    });
}

fn bench_chunking(c: &mut Criterion) {
    let policy = ChunkingPolicy::fixed_count(64).with_min_chunk_bytes(64);
    c.bench_function("chunk_ranges_1mb", |b| {
        b.iter(|| black_box(policy.chunk_ranges(1 << 20)));
    });
}

criterion_group!(benches, bench_transform, bench_chunking);
criterion_main!(benches);
