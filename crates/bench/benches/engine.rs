//! Micro-benchmarks for the discrete-event kernel: the replay simulator's
//! hot path is schedule/pop on the event queue.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ovlsim_core::Time;
use ovlsim_engine::{EventQueue, FifoResource};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("schedule_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    // Pseudo-random but deterministic times.
                    let t = Time::from_ns(((i as u64).wrapping_mul(2654435761)) % 1_000_000);
                    q.schedule(t, i);
                }
                let mut sum = 0usize;
                while let Some((_, e)) = q.pop() {
                    sum += e;
                }
                black_box(sum)
            });
        });
    }
    group.finish();
}

fn bench_resource(c: &mut Criterion) {
    c.bench_function("fifo_resource_grant_release", |b| {
        b.iter(|| {
            let mut r = FifoResource::new(Some(4));
            let mut tokens = Vec::with_capacity(64);
            for _ in 0..64 {
                tokens.push(r.request());
            }
            for _ in 0..60 {
                r.release();
                black_box(r.take_granted());
            }
            black_box(r.in_use())
        });
    });
}

criterion_group!(benches, bench_event_queue, bench_resource);
criterion_main!(benches);
