//! Instrumentation-overhead benchmarks: recording kernel access streams
//! (the Valgrind-substitute hot path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ovlsim_core::Instr;
use ovlsim_memtrace::{AccessKind, IndexPattern, Kernel, MemTracer};
use std::hint::black_box;

fn bench_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("memtrace");
    for elements in [1_000usize, 10_000, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("sequential_write", elements),
            &elements,
            |b, &n| {
                b.iter(|| {
                    let mut mt = MemTracer::new();
                    let buf = mt.register("b", n as u64 * 8, 8);
                    let k = Kernel::builder()
                        .phase(Instr::new(1_000_000))
                        .access(buf, AccessKind::Write, IndexPattern::Sequential)
                        .build();
                    mt.execute(&k);
                    black_box(mt.snapshot_production(buf))
                });
            },
        );
    }
    group.bench_function("shuffled_write_10k", |b| {
        b.iter(|| {
            let mut mt = MemTracer::new();
            let buf = mt.register("b", 80_000, 8);
            let k = Kernel::builder()
                .phase(Instr::new(1_000_000))
                .access(buf, AccessKind::Write, IndexPattern::Shuffled { seed: 7 })
                .build();
            mt.execute(&k);
            black_box(mt.snapshot_production(buf))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_record);
criterion_main!(benches);
