//! End-to-end experiment benchmarks: the cost of regenerating each paper
//! artefact (tracing + synthesis + sweep). These document that the
//! environment itself is fast enough for interactive studies.

use criterion::{criterion_group, criterion_main, Criterion};
use ovlsim_apps::{calibration::reference_platform, NasCg, Sweep3d};
use ovlsim_lab::{log_bandwidths, sweep_bundle};
use ovlsim_tracer::{OverlapMode, TracingSession};
use std::hint::black_box;

fn bench_sweeps(c: &mut Criterion) {
    let base = reference_platform();

    let cg = NasCg::builder()
        .ranks(8)
        .iterations(3)
        .build()
        .expect("valid NAS-CG");
    let bundle = TracingSession::new(&cg).run().expect("traces");
    let bws = log_bandwidths(1.0e6, 1.0e11, 7);
    c.bench_function("sweep_nas_cg_7pts", |b| {
        b.iter(|| {
            black_box(sweep_bundle(&bundle, &base, OverlapMode::linear(), &bws).expect("sweeps"))
        });
    });

    let sweep = Sweep3d::builder().ranks(9).build().expect("valid Sweep3D");
    let bundle = TracingSession::new(&sweep).run().expect("traces");
    c.bench_function("sweep_sweep3d_7pts", |b| {
        b.iter(|| {
            black_box(sweep_bundle(&bundle, &base, OverlapMode::linear(), &bws).expect("sweeps"))
        });
    });
}

criterion_group!(benches, bench_sweeps);
criterion_main!(benches);
