//! Replay-throughput benchmarks: how fast the Dimemas substrate
//! reconstructs time behaviour (records/second), for original and
//! overlapped traces — and how the optimized hot path (interned channels,
//! slab event queue, prepared indexes) compares to the pre-optimization
//! reference engine kept in `ovlsim_dimemas::replay_naive`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ovlsim_apps::{calibration::reference_platform, NasBt, Sweep3d};
use ovlsim_core::{CompiledTrace, TraceIndex};
use ovlsim_dimemas::{replay_naive, Simulator};
use ovlsim_tracer::TracingSession;
use std::hint::black_box;

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay");
    let platform = reference_platform();

    let bt = NasBt::builder()
        .ranks(16)
        .iterations(2)
        .build()
        .expect("valid NAS-BT");
    let bundle = TracingSession::new(&bt).run().expect("traces");
    let original = bundle.original().clone();
    let overlapped = bundle.overlapped_linear();

    group.throughput(Throughput::Elements(original.total_records() as u64));
    group.bench_with_input(
        BenchmarkId::new("nas_bt_original", original.total_records()),
        &original,
        |b, trace| {
            let sim = Simulator::new(platform.clone());
            b.iter(|| black_box(sim.run(trace).expect("replays")));
        },
    );
    group.throughput(Throughput::Elements(overlapped.total_records() as u64));
    group.bench_with_input(
        BenchmarkId::new("nas_bt_overlapped", overlapped.total_records()),
        &overlapped,
        |b, trace| {
            let sim = Simulator::new(platform.clone());
            b.iter(|| black_box(sim.run(trace).expect("replays")));
        },
    );

    // The sweep hot path: index once, replay prepared. This is what every
    // bandwidth sweep point pays.
    let index = TraceIndex::build(&overlapped).expect("valid trace");
    group.throughput(Throughput::Elements(overlapped.total_records() as u64));
    group.bench_with_input(
        BenchmarkId::new("nas_bt_overlapped_prepared", overlapped.total_records()),
        &overlapped,
        |b, trace| {
            let sim = Simulator::new(platform.clone());
            b.iter(|| black_box(sim.run_prepared(trace, &index).expect("replays")));
        },
    );

    // The compiled sweep hot path: validate + index + compile once, then
    // execute the flat SoA program per point. This is what sweeps and the
    // iso-bisection pay after the trace-compilation layer.
    let program = CompiledTrace::compile(&overlapped, &index).expect("compiles");
    group.throughput(Throughput::Elements(overlapped.total_records() as u64));
    group.bench_with_input(
        BenchmarkId::new("nas_bt_overlapped_compiled", overlapped.total_records()),
        &overlapped,
        |b, _trace| {
            let sim = Simulator::new(platform.clone());
            b.iter(|| black_box(sim.run_compiled(&program).expect("replays")));
        },
    );

    // Pre-optimization baseline: BTreeMap channels, BTreeSet wait groups,
    // revalidation per run (the seed's only entry point).
    group.throughput(Throughput::Elements(overlapped.total_records() as u64));
    group.bench_with_input(
        BenchmarkId::new("nas_bt_overlapped_naive", overlapped.total_records()),
        &overlapped,
        |b, trace| {
            b.iter(|| black_box(replay_naive(&platform, trace).expect("replays")));
        },
    );

    // Hierarchical platform: the same trace packed 4 ranks per node, so a
    // large share of the messages takes the intra-node fast path while the
    // rest contends for shared NICs. Measures the node-aware routing cost
    // on the prepared hot path.
    let multicore = ovlsim_apps::calibration::multicore_platform(4);
    group.throughput(Throughput::Elements(overlapped.total_records() as u64));
    group.bench_with_input(
        BenchmarkId::new("nas_bt_overlapped_multicore", overlapped.total_records()),
        &overlapped,
        |b, trace| {
            let sim = Simulator::new(multicore.clone());
            b.iter(|| black_box(sim.run_prepared(trace, &index).expect("replays")));
        },
    );
    group.throughput(Throughput::Elements(overlapped.total_records() as u64));
    group.bench_with_input(
        BenchmarkId::new(
            "nas_bt_overlapped_multicore_compiled",
            overlapped.total_records(),
        ),
        &overlapped,
        |b, _trace| {
            let sim = Simulator::new(multicore.clone());
            b.iter(|| black_box(sim.run_compiled(&program).expect("replays")));
        },
    );

    let sweep = Sweep3d::builder().ranks(16).build().expect("valid Sweep3D");
    let bundle = TracingSession::new(&sweep).run().expect("traces");
    let overlapped = bundle.overlapped_linear();
    group.throughput(Throughput::Elements(overlapped.total_records() as u64));
    group.bench_with_input(
        BenchmarkId::new("sweep3d_overlapped", overlapped.total_records()),
        &overlapped,
        |b, trace| {
            let sim = Simulator::new(platform.clone());
            b.iter(|| black_box(sim.run(trace).expect("replays")));
        },
    );
    group.throughput(Throughput::Elements(overlapped.total_records() as u64));
    group.bench_with_input(
        BenchmarkId::new("sweep3d_overlapped_naive", overlapped.total_records()),
        &overlapped,
        |b, trace| {
            b.iter(|| black_box(replay_naive(&platform, trace).expect("replays")));
        },
    );
    group.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
