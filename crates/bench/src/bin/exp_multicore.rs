//! E10 (extension) — multi-core nodes: NIC sharing and the intra-node
//! fast path (paper §IV future work: "state-of-the-art network ...
//! properties").

use ovlsim_apps::NasBt;

fn main() {
    let app = NasBt::builder()
        .ranks(16)
        .iterations(2)
        .build()
        .expect("valid NAS-BT");
    let report = ovlsim_lab::e10_multicore(&app).expect("experiment runs");
    ovlsim_bench::emit(&report);
}
