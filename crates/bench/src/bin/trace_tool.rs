//! `trace_tool` — command-line utility for `.dim` traces.
//!
//! ```text
//! trace_tool gen <app> <out-prefix>        write <prefix>.original.dim,
//!                                          <prefix>.ovl-real.dim and
//!                                          <prefix>.ovl-linear.dim
//!                                          (apps: nas-bt nas-cg pop alya
//!                                           specfem sweep3d)
//! trace_tool stats <file.dim>              validate + per-rank summary
//! trace_tool validate <file.dim>           exit 1 if structurally invalid
//! trace_tool replay <file.dim> [bw] [lat]  replay (bytes/s, us) + Gantt
//! ```

use std::fs;
use std::process::ExitCode;

use ovlsim_core::{format_bytes, format_time, validate_trace_set, Platform, Rank, Time, TraceSet};
use ovlsim_dimemas::{emit_trace_set, parse_trace_set};
use ovlsim_paraver::{render_gantt, GanttOptions, Timeline};
use ovlsim_tracer::{Application, TracingSession};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  trace_tool gen <app> <out-prefix>\n  trace_tool stats <file.dim>\n  \
         trace_tool validate <file.dim>\n  trace_tool replay <file.dim> [bytes-per-sec] [latency-us]"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<TraceSet, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_trace_set(&text).map_err(|e| format!("{path}: {e}"))
}

fn app_by_name(name: &str) -> Option<Box<dyn Application>> {
    ovlsim_apps::paper_apps()
        .into_iter()
        .find(|a| a.name() == name)
}

fn cmd_gen(app_name: &str, prefix: &str) -> Result<(), String> {
    let app = app_by_name(app_name).ok_or_else(|| {
        format!("unknown app `{app_name}` (expected one of nas-bt nas-cg pop alya specfem sweep3d)")
    })?;
    let bundle = TracingSession::new(app.as_ref())
        .run()
        .map_err(|e| e.to_string())?;
    let variants = [
        ("original", bundle.original().clone()),
        ("ovl-real", bundle.overlapped_real()),
        ("ovl-linear", bundle.overlapped_linear()),
    ];
    for (label, trace) in variants {
        let path = format!("{prefix}.{label}.dim");
        fs::write(&path, emit_trace_set(&trace)).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path} ({} records)", trace.total_records());
    }
    Ok(())
}

fn cmd_stats(path: &str) -> Result<(), String> {
    let trace = load(path)?;
    let issues = validate_trace_set(&trace);
    println!("{trace}");
    println!(
        "total: {} instr, {} p2p",
        trace.total_instr().get(),
        format_bytes(trace.total_p2p_send_bytes())
    );
    for (r, rank_trace) in trace.ranks().iter().enumerate() {
        let sends = rank_trace
            .iter()
            .filter(|rec| {
                matches!(
                    rec,
                    ovlsim_core::Record::Send { .. } | ovlsim_core::Record::ISend { .. }
                )
            })
            .count();
        let collectives = rank_trace.iter().filter(|rec| rec.is_collective()).count();
        println!(
            "  rank {r}: {} records, {} instr, {} sends ({}), {} collectives",
            rank_trace.len(),
            rank_trace.total_instr().get(),
            sends,
            format_bytes(rank_trace.total_p2p_send_bytes()),
            collectives
        );
    }
    if issues.is_empty() {
        println!("validation: ok");
        Ok(())
    } else {
        for issue in &issues {
            eprintln!("issue: {issue}");
        }
        Err(format!("{} validation issues", issues.len()))
    }
}

fn cmd_validate(path: &str) -> Result<(), String> {
    let trace = load(path)?;
    let issues = validate_trace_set(&trace);
    if issues.is_empty() {
        println!("{path}: ok");
        Ok(())
    } else {
        for issue in &issues {
            eprintln!("{path}: {issue}");
        }
        Err(format!("{} issues", issues.len()))
    }
}

fn cmd_replay(path: &str, bw: Option<&str>, lat: Option<&str>) -> Result<(), String> {
    let trace = load(path)?;
    let bw: f64 = bw.unwrap_or("250e6").parse().map_err(|_| "bad bandwidth")?;
    let lat: u64 = lat.unwrap_or("5").parse().map_err(|_| "bad latency")?;
    let mut b = Platform::builder();
    b.latency(Time::from_us(lat))
        .bandwidth_bytes_per_sec(bw)
        .map_err(|e| e.to_string())?;
    let platform = b.build();
    let (timeline, result) = Timeline::capture(&platform, &trace).map_err(|e| e.to_string())?;
    println!("{result}");
    for r in 0..result.rank_finish().len() {
        println!(
            "  rank {r}: finish {}, compute {}",
            format_time(result.rank_finish()[r]),
            format_time(result.rank_compute()[Rank::new(r as u32).index()])
        );
    }
    println!(
        "\n{}",
        render_gantt(
            &timeline,
            &GanttOptions {
                width: 72,
                legend: true
            }
        )
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["gen", app, prefix] => cmd_gen(app, prefix),
        ["stats", path] => cmd_stats(path),
        ["validate", path] => cmd_validate(path),
        ["replay", path] => cmd_replay(path, None, None),
        ["replay", path, bw] => cmd_replay(path, Some(bw), None),
        ["replay", path, bw, lat] => cmd_replay(path, Some(bw), Some(lat)),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
