//! Records a machine-readable performance snapshot of the replay hot path
//! and the parallel sweep driver.
//!
//! Usage: `cargo run --release -p ovlsim-bench --bin perf_snapshot [label]`
//!
//! Writes `BENCH_<label>.json` (default label `snapshot`) in the current
//! directory with:
//!
//! * replay throughput (records/s) on a large synthetic trace for the
//!   naive reference engine, the optimized validating entry point, the
//!   optimized prepared (sweep) path and the compiled (flat SoA program)
//!   path, plus the naive→prepared and prepared→compiled speedups,
//! * perturbed replay throughput (seeded noise + straggler + link
//!   degradation/jitter) on the same compiled program, plus a hot-path
//!   gate: an epsilon-magnitude model (perturbation code paths live,
//!   every draw evaluating to the clean duration, replay asserted
//!   bit-identical to clean) must cost <10% over the clean compiled
//!   replay — isolating the machinery cost from the legitimately
//!   different schedule a really-noisy machine simulates,
//! * replay throughput on an intra-node-heavy scenario (the same trace
//!   packed 4 ranks per node under a constrained bus), so the node-aware
//!   routing path is tracked by every snapshot — prepared and compiled,
//! * fast-forward replay throughput on a contention-heavy NAS-BT corpus
//!   (196 ranks, capacity-1 links), clean and perturbed, asserted
//!   bit-identical to the compiled engine and reported as a speedup over
//!   it — the number `ci/check_snapshot.py` gates,
//! * wall-clock of a multi-point bandwidth sweep at 1/2/4 worker threads
//!   and the resulting scaling factors, with a byte-identity check between
//!   the sequential and parallel results.
//!
//! Every reported speedup is asserted finite and positive before the
//! snapshot is written — a zero/NaN/∞ ratio means a timer or engine
//! regression, and CI treats it as a failure, not a data point.
//!
//! Snapshots are committed next to the README so perf regressions are
//! visible in review diffs; see README.md §Benchmarks.

use std::fmt::Write as _;
use std::time::Instant;

use ovlsim_apps::{calibration::reference_platform, NasBt};
use ovlsim_core::{CompiledTrace, TraceIndex, TraceSet};
use ovlsim_dimemas::{replay_naive, Simulator};
use ovlsim_lab::{log_bandwidths, sweep_traces_threaded};
use ovlsim_tracer::{ChunkingPolicy, TracingSession};

/// Times `f` over enough iterations to fill ~0.5 s, returning the mean
/// seconds per call.
fn time_call<F: FnMut()>(mut f: F) -> f64 {
    f(); // warmup
    let probe = Instant::now();
    f();
    let one = probe.elapsed().as_secs_f64();
    let iters = (0.5 / one.max(1e-9)).clamp(1.0, 10_000.0) as u32;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

fn main() {
    let label = std::env::args().nth(1).unwrap_or_else(|| "snapshot".into());
    let platform = reference_platform();

    // The "large synthetic trace": NAS-BT with an aggressive chunk count,
    // so the overlapped variant carries a deep isend/waitall fan-out.
    let app = NasBt::builder()
        .ranks(16)
        .iterations(4)
        .build()
        .expect("valid NAS-BT");
    let bundle = TracingSession::new(&app)
        .policy(ChunkingPolicy::fixed_count(16).with_min_chunk_bytes(512))
        .run()
        .expect("traces");
    let trace: &TraceSet = &bundle.overlapped_linear();
    let records = trace.total_records() as f64;

    let naive_s = time_call(|| {
        std::hint::black_box(replay_naive(&platform, trace).expect("replays"));
    });
    let sim = Simulator::new(platform.clone());
    let run_s = time_call(|| {
        std::hint::black_box(sim.run(trace).expect("replays"));
    });
    let index = TraceIndex::build(trace).expect("valid trace");
    let prepared_s = time_call(|| {
        std::hint::black_box(sim.run_prepared(trace, &index).expect("replays"));
    });

    // The compiled path: lower once into the flat SoA program (coalesced
    // bursts, pre-resolved request slots), then execute it per point. The
    // result must stay bit-identical to the naive oracle.
    let program = CompiledTrace::compile(trace, &index).expect("compiles");
    assert_eq!(
        sim.run_compiled(&program).expect("replays"),
        replay_naive(&platform, trace).expect("replays"),
        "compiled replay diverged from the naive oracle"
    );
    let compiled_s = time_call(|| {
        std::hint::black_box(sim.run_compiled(&program).expect("replays"));
    });

    // Perturbed replay: seeded OS noise, a straggler and link
    // degradation/jitter on the *same* compiled program (perturbation is
    // applied at replay time, nothing is recompiled). Its throughput is
    // recorded for tracking, but it is NOT the hot-path gate: a noisy,
    // straggling schedule desynchronizes ranks, which legitimately
    // shrinks the coalesced-jump windows — that cost belongs to the
    // simulated machine, not to the perturbation code.
    let model = ovlsim_core::PerturbationModel::new(42)
        .with_noise(0.1)
        .expect("valid noise")
        .with_stragglers(&[3], 1.3)
        .expect("valid stragglers")
        .with_link_degradation(0.1)
        .expect("valid degradation")
        .with_latency_jitter(ovlsim_core::Time::from_ns(200));
    let perturbed = platform.with_perturbation(model);
    let sim_pert = Simulator::new(perturbed.clone());
    assert_eq!(
        sim_pert.run_compiled(&program).expect("replays"),
        replay_naive(&perturbed, trace).expect("replays"),
        "perturbed compiled replay diverged from the naive oracle"
    );
    let perturbed_compiled_s = time_call(|| {
        std::hint::black_box(sim_pert.run_compiled(&program).expect("replays"));
    });

    // Hot-path cost gate: an epsilon-magnitude model keeps the
    // perturbation code paths live — per-sub-burst noise hash, hoisted
    // straggler/node prefactors, per-channel degradation factors — while
    // every draw evaluates to exactly 1.0, so the simulated schedule is
    // bit-identical to clean (asserted below) and the wall-clock delta is
    // pure perturbation machinery. Latency jitter is deliberately absent:
    // even a 1 ps jitter bound breaks arrival-time ties, which shrinks
    // the coalesced-jump windows — a (micro-)different schedule, not
    // machinery cost; its per-message draw is covered by the perturbed
    // throughput above. Clean and epsilon-perturbed runs are timed in
    // interleaved pairs and the best-of ratio is gated, which catches a
    // hash landing on the wrong path (per-event rehashing, a lost memo)
    // without flaking on shared 1-CPU runner noise.
    let eps_model = ovlsim_core::PerturbationModel::new(42)
        .with_noise(1e-300)
        .expect("valid noise")
        .with_stragglers(&[u32::MAX], 1.5)
        .expect("valid stragglers")
        .with_node_speeds(&[1.0])
        .expect("valid node speeds")
        .with_link_degradation(1e-300)
        .expect("valid degradation");
    let sim_eps = Simulator::new(platform.with_perturbation(eps_model));
    assert_eq!(
        sim_eps.run_compiled(&program).expect("replays"),
        sim.run_compiled(&program).expect("replays"),
        "epsilon-perturbed replay must be bit-identical to clean \
         (otherwise the gate times a different schedule)"
    );
    let mut hotpath_overhead = f64::INFINITY;
    for _ in 0..3 {
        let clean = time_call(|| {
            std::hint::black_box(sim.run_compiled(&program).expect("replays"));
        });
        let eps = time_call(|| {
            std::hint::black_box(sim_eps.run_compiled(&program).expect("replays"));
        });
        hotpath_overhead = hotpath_overhead.min(eps / clean);
    }

    // Intra-node-heavy scenario: same trace, 4 ranks per node under a
    // constrained bus — most NAS-BT neighbour traffic becomes same-node and
    // takes the shared-memory path, exercising the node-aware routing. The
    // naive engine must agree bit for bit on this platform too.
    let multicore = ovlsim_core::Platform::builder()
        .latency(platform.latency())
        .bandwidth(platform.bandwidth())
        .buses(Some(4))
        .ranks_per_node(4)
        .expect("positive packing")
        .build();
    let sim_mc = Simulator::new(multicore.clone());
    let naive_mc = replay_naive(&multicore, trace).expect("replays");
    assert_eq!(
        sim_mc.run_prepared(trace, &index).expect("replays"),
        naive_mc,
        "node-aware routing diverged between engines"
    );
    assert_eq!(
        sim_mc.run_compiled(&program).expect("replays"),
        naive_mc,
        "compiled replay diverged from the naive oracle on the multicore platform"
    );
    let multicore_prepared_s = time_call(|| {
        std::hint::black_box(sim_mc.run_prepared(trace, &index).expect("replays"));
    });
    let multicore_naive_s = time_call(|| {
        std::hint::black_box(replay_naive(&multicore, trace).expect("replays"));
    });
    let multicore_compiled_s = time_call(|| {
        std::hint::black_box(sim_mc.run_compiled(&program).expect("replays"));
    });

    // Fast-forward engine: the per-node waiter queues only pay off where
    // the compiled engine's full-FIFO rescans hurt, so the corpus is a
    // contention-heavy NAS-BT (196 ranks on capacity-1 links piles the
    // waiter queues deep). Bit-identity against the compiled engine is
    // asserted clean and perturbed before anything is timed, and the two
    // engines are timed in interleaved best-of-3 pairs (like the hot-path
    // gate) so shared-runner noise cannot flake the ratio.
    let ff_app = NasBt::builder()
        .ranks(196)
        .iterations(1)
        .build()
        .expect("valid NAS-BT");
    let ff_bundle = TracingSession::new(&ff_app)
        .policy(ChunkingPolicy::fixed_count(16).with_min_chunk_bytes(512))
        .run()
        .expect("traces");
    let ff_trace: &TraceSet = &ff_bundle.overlapped_linear();
    let ff_records = ff_trace.total_records() as f64;
    let ff_index = TraceIndex::build(ff_trace).expect("valid trace");
    let ff_program = CompiledTrace::compile(ff_trace, &ff_index).expect("compiles");
    assert_eq!(
        sim.run_fastforward(&ff_program).expect("replays"),
        sim.run_compiled(&ff_program).expect("replays"),
        "fastforward replay diverged from the compiled engine"
    );
    let ff_perturbed = Simulator::new(perturbed.clone());
    assert_eq!(
        ff_perturbed.run_fastforward(&ff_program).expect("replays"),
        ff_perturbed.run_compiled(&ff_program).expect("replays"),
        "perturbed fastforward replay diverged from the compiled engine"
    );
    let mut ff_s = f64::INFINITY;
    let mut ff_compiled_s = f64::INFINITY;
    for _ in 0..3 {
        ff_compiled_s = ff_compiled_s.min(time_call(|| {
            std::hint::black_box(sim.run_compiled(&ff_program).expect("replays"));
        }));
        ff_s = ff_s.min(time_call(|| {
            std::hint::black_box(sim.run_fastforward(&ff_program).expect("replays"));
        }));
    }
    let ff_perturbed_s = time_call(|| {
        std::hint::black_box(ff_perturbed.run_fastforward(&ff_program).expect("replays"));
    });
    let ff_perturbed_compiled_s = time_call(|| {
        std::hint::black_box(ff_perturbed.run_compiled(&ff_program).expect("replays"));
    });

    // Session-layer cache overhead: replaying through a warmed
    // `ovlsim_session::Session` (content-keyed lookups for trace, index
    // and compiled program, then `run_compiled`) must cost within 5% of
    // calling `run_compiled` directly on the same program. Clean and
    // session-routed runs are timed in interleaved best-of-3 pairs, same
    // as the perturbation hot-path gate, so shared-runner noise cannot
    // flake the ratio.
    let session = ovlsim_session::Session::with_threads(1);
    let session_req = ovlsim_session::ReplayRequest {
        source: ovlsim_session::TraceSource::Generated {
            app: "nas-bt".to_string(),
            class: ovlsim_apps::ProblemClass::A,
            ranks: Some(16),
            iterations: Some(4),
            mode: Some(ovlsim_tracer::OverlapMode::linear()),
        },
        platform: ovlsim_session::PlatformSpec::default(),
        perturb: ovlsim_session::PerturbSpec::default(),
        engine: ovlsim_lab::Engine::Compiled,
    };
    let warm = session.replay(&session_req).expect("session replays");
    let strace = session.trace(&session_req.source).expect("cached trace");
    let sindex = ovlsim_lab::ArtifactPipeline::index(&session, &strace).expect("cached index");
    let sprog =
        ovlsim_lab::ArtifactPipeline::compiled(&session, &strace, &sindex).expect("cached program");
    assert_eq!(
        session.stats().compiles(),
        1,
        "a warmed session must have compiled its one trace exactly once"
    );
    let session_platform = ovlsim_session::PlatformSpec::default()
        .build()
        .expect("default platform");
    let ssim = Simulator::new(session_platform);
    let direct = ssim.run_compiled(&sprog).expect("replays");
    assert_eq!(
        (direct.total_time(), direct.rank_finish()),
        (warm.total, warm.rank_finish.as_slice()),
        "session-routed replay diverged from direct run_compiled"
    );
    let mut session_cached_overhead = f64::INFINITY;
    for _ in 0..3 {
        let direct_s = time_call(|| {
            std::hint::black_box(ssim.run_compiled(&sprog).expect("replays"));
        });
        let cached_s = time_call(|| {
            std::hint::black_box(session.replay(&session_req).expect("session replays"));
        });
        session_cached_overhead = session_cached_overhead.min(cached_s / direct_s);
    }

    // Persistent-cache payoff gate: decoding a cached `.ovlb` artifact
    // must be cheaper than rebuilding it from the trace (index build +
    // compile for programs). If decode ever costs more than the work it
    // replaces, the disk cache is a pessimization and the snapshot fails
    // rather than commit it as a baseline. Both decodes are asserted
    // bit-identical to the live artifacts first — a fast-but-wrong codec
    // must never pass the gate.
    let trace_blob = ovlsim_core::codec::encode_trace_set(trace);
    let prog_blob = ovlsim_core::codec::encode_compiled_trace(&program);
    assert_eq!(
        &ovlsim_core::codec::decode_trace_set(&trace_blob).expect("decodes"),
        trace,
        "trace round-trip through the codec diverged"
    );
    assert_eq!(
        ovlsim_core::codec::decode_compiled_trace(&prog_blob).expect("decodes"),
        program,
        "program round-trip through the codec diverged"
    );
    let decode_trace_s = time_call(|| {
        std::hint::black_box(ovlsim_core::codec::decode_trace_set(&trace_blob).expect("decodes"));
    });
    let decode_prog_s = time_call(|| {
        std::hint::black_box(
            ovlsim_core::codec::decode_compiled_trace(&prog_blob).expect("decodes"),
        );
    });
    let rebuild_prog_s = time_call(|| {
        let index = TraceIndex::build(trace).expect("valid trace");
        std::hint::black_box(CompiledTrace::compile(trace, &index).expect("compiles"));
    });
    let disk_cache_payoff = rebuild_prog_s / decode_prog_s;

    // Multi-point sweep scaling. Points chosen so a run takes long enough
    // to measure but the snapshot stays quick. Thread counts are capped at
    // the host's parallelism: measuring 4 workers on a 1-core container
    // would only record scheduler noise.
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let original = bundle.original();
    let bws = log_bandwidths(1.0e6, 1.0e11, 24);
    let mut sweep_secs = Vec::new();
    let mut reference = None;
    for threads in [1usize, 2, 4] {
        if threads > 1 && threads > available {
            break;
        }
        let start = Instant::now();
        let points =
            sweep_traces_threaded(original, trace, &platform, &bws, threads).expect("sweeps");
        sweep_secs.push((threads, start.elapsed().as_secs_f64()));
        match &reference {
            None => reference = Some(points),
            Some(seq) => assert_eq!(
                seq, &points,
                "parallel sweep diverged from sequential at {threads} threads"
            ),
        }
    }

    // Each published ratio is computed exactly once here and used by both
    // the sanity gate and the JSON below, so the gated value is always
    // the published value.
    let sp_run_vs_naive = naive_s / run_s;
    let sp_prepared_vs_naive = naive_s / prepared_s;
    let sp_compiled_vs_naive = naive_s / compiled_s;
    let sp_compiled_vs_prepared = prepared_s / compiled_s;
    let sp_mc_prepared_vs_naive = multicore_naive_s / multicore_prepared_s;
    let sp_mc_compiled_vs_prepared = multicore_prepared_s / multicore_compiled_s;
    let perturbed_overhead = perturbed_compiled_s / compiled_s;
    let sp_ff_vs_compiled = ff_compiled_s / ff_s;
    let sp_ff_perturbed_vs_compiled = ff_perturbed_compiled_s / ff_perturbed_s;

    // Sanity gate: every ratio the snapshot publishes must be a real,
    // positive number. A NaN/∞/0 here means a timer returned zero or an
    // engine stopped doing work — fail the snapshot instead of committing
    // a nonsense baseline.
    let speedups = [
        ("run_vs_naive", sp_run_vs_naive),
        ("prepared_vs_naive", sp_prepared_vs_naive),
        ("compiled_vs_naive", sp_compiled_vs_naive),
        ("compiled_vs_prepared", sp_compiled_vs_prepared),
        ("multicore_prepared_vs_naive", sp_mc_prepared_vs_naive),
        ("multicore_compiled_vs_prepared", sp_mc_compiled_vs_prepared),
        ("fastforward_vs_compiled", sp_ff_vs_compiled),
        (
            "fastforward_perturbed_vs_compiled",
            sp_ff_perturbed_vs_compiled,
        ),
    ];
    for (what, value) in speedups {
        assert!(
            value.is_finite() && value > 0.0,
            "speedup {what} is {value}: expected a finite, positive ratio"
        );
    }
    assert!(
        perturbed_overhead.is_finite() && perturbed_overhead > 0.0,
        "perturbed overhead is {perturbed_overhead}: expected a finite, positive ratio"
    );
    assert!(
        hotpath_overhead.is_finite() && hotpath_overhead > 0.0,
        "hot-path overhead is {hotpath_overhead}: expected a finite, positive ratio"
    );
    assert!(
        hotpath_overhead < 1.10,
        "perturbation hot path costs {:.1}% over clean compiled replay (budget: <10%)",
        (hotpath_overhead - 1.0) * 100.0
    );
    assert!(
        session_cached_overhead.is_finite() && session_cached_overhead > 0.0,
        "session cache overhead is {session_cached_overhead}: expected a finite, positive ratio"
    );
    assert!(
        session_cached_overhead < 1.05,
        "session-cached replay costs {:.1}% over direct run_compiled (budget: <5%)",
        (session_cached_overhead - 1.0) * 100.0
    );
    assert!(
        disk_cache_payoff.is_finite() && disk_cache_payoff > 0.0,
        "disk cache payoff is {disk_cache_payoff}: expected a finite, positive ratio"
    );
    assert!(
        disk_cache_payoff > 1.0,
        "decoding a cached program ({decode_prog_s:.6}s) costs more than rebuilding it \
         ({rebuild_prog_s:.6}s): the persistent cache is a pessimization"
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"label\": \"{label}\",");
    let _ = writeln!(json, "  \"trace\": {{");
    let _ = writeln!(json, "    \"name\": \"{}\",", trace.name());
    let _ = writeln!(json, "    \"ranks\": {},", trace.rank_count());
    let _ = writeln!(json, "    \"records\": {}", trace.total_records());
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"replay\": {{");
    let _ = writeln!(
        json,
        "    \"naive_records_per_sec\": {:.0},",
        records / naive_s
    );
    let _ = writeln!(
        json,
        "    \"optimized_run_records_per_sec\": {:.0},",
        records / run_s
    );
    let _ = writeln!(
        json,
        "    \"optimized_prepared_records_per_sec\": {:.0},",
        records / prepared_s
    );
    let _ = writeln!(
        json,
        "    \"speedup_run_vs_naive\": {:.2},",
        sp_run_vs_naive
    );
    let _ = writeln!(
        json,
        "    \"speedup_prepared_vs_naive\": {:.2}",
        sp_prepared_vs_naive
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"replay_compiled\": {{");
    let _ = writeln!(
        json,
        "    \"records_per_sec\": {:.0},",
        records / compiled_s
    );
    let _ = writeln!(
        json,
        "    \"speedup_vs_naive\": {:.2},",
        sp_compiled_vs_naive
    );
    let _ = writeln!(
        json,
        "    \"speedup_vs_prepared\": {:.2},",
        sp_compiled_vs_prepared
    );
    let _ = writeln!(
        json,
        "    \"multicore_records_per_sec\": {:.0},",
        records / multicore_compiled_s
    );
    let _ = writeln!(
        json,
        "    \"multicore_speedup_vs_prepared\": {:.2}",
        sp_mc_compiled_vs_prepared
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"replay_perturbed\": {{");
    let _ = writeln!(
        json,
        "    \"records_per_sec\": {:.0},",
        records / perturbed_compiled_s
    );
    let _ = writeln!(
        json,
        "    \"overhead_vs_clean\": {:.3},",
        perturbed_overhead
    );
    let _ = writeln!(
        json,
        "    \"hotpath_overhead_vs_clean\": {:.3}",
        hotpath_overhead
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"replay_multicore_4rpn\": {{");
    let _ = writeln!(
        json,
        "    \"naive_records_per_sec\": {:.0},",
        records / multicore_naive_s
    );
    let _ = writeln!(
        json,
        "    \"optimized_prepared_records_per_sec\": {:.0},",
        records / multicore_prepared_s
    );
    let _ = writeln!(
        json,
        "    \"speedup_prepared_vs_naive\": {:.2}",
        sp_mc_prepared_vs_naive
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"replay_fastforward\": {{");
    let _ = writeln!(json, "    \"corpus_ranks\": {},", ff_trace.rank_count());
    let _ = writeln!(
        json,
        "    \"corpus_records\": {},",
        ff_trace.total_records()
    );
    let _ = writeln!(json, "    \"records_per_sec\": {:.0},", ff_records / ff_s);
    let _ = writeln!(
        json,
        "    \"compiled_records_per_sec\": {:.0},",
        ff_records / ff_compiled_s
    );
    let _ = writeln!(
        json,
        "    \"speedup_vs_compiled\": {:.2},",
        sp_ff_vs_compiled
    );
    let _ = writeln!(
        json,
        "    \"perturbed_records_per_sec\": {:.0},",
        ff_records / ff_perturbed_s
    );
    let _ = writeln!(
        json,
        "    \"perturbed_speedup_vs_compiled\": {:.2}",
        sp_ff_perturbed_vs_compiled
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"session_cache\": {{");
    let _ = writeln!(
        json,
        "    \"cached_replay_overhead_vs_direct\": {:.3},",
        session_cached_overhead
    );
    let _ = writeln!(json, "    \"compiles\": 1");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"disk_cache\": {{");
    let _ = writeln!(
        json,
        "    \"decode_trace_records_per_sec\": {:.0},",
        records / decode_trace_s
    );
    let _ = writeln!(
        json,
        "    \"decode_program_records_per_sec\": {:.0},",
        records / decode_prog_s
    );
    let _ = writeln!(
        json,
        "    \"program_decode_payoff_vs_rebuild\": {:.2}",
        disk_cache_payoff
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"sweep\": {{");
    let mut lines: Vec<String> = Vec::new();
    lines.push(format!("    \"points\": {}", bws.len()));
    lines.push(format!("    \"available_parallelism\": {available}"));
    for (threads, secs) in &sweep_secs {
        lines.push(format!("    \"wall_secs_{threads}_threads\": {secs:.4}"));
    }
    let base = sweep_secs[0].1;
    for (threads, secs) in &sweep_secs[1..] {
        lines.push(format!(
            "    \"scaling_{threads}_threads\": {:.2}",
            base / secs
        ));
    }
    if available < 4 {
        lines.push(format!(
            "    \"scaling_note\": \"host exposes {available} CPU(s); \
             scaling up to 4 threads needs a >=4-core host (e.g. CI)\""
        ));
    }
    let _ = writeln!(json, "{}", lines.join(",\n"));
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    let path = format!("BENCH_{label}.json");
    std::fs::write(&path, &json).expect("write snapshot");
    print!("{json}");
    eprintln!("wrote {path}");
}
