//! E1 — the environment pipeline (paper Fig. 1): app → tracing tool →
//! original + overlapped traces → Dimemas replay → Paraver timelines.

use ovlsim_apps::NasBt;

fn main() {
    let app = NasBt::builder()
        .ranks(16)
        .iterations(2)
        .build()
        .expect("default NAS-BT configuration is valid");
    let report = ovlsim_lab::e1_pipeline(&app).expect("pipeline experiment runs");
    ovlsim_bench::emit(&report);
}
