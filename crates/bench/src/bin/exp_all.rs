//! Runs the complete experiment suite (E1–E10) and writes each report to
//! `results/` — the one-command reproduction of every paper artefact.
//!
//! Usage: `cargo run -p ovlsim-bench --release --bin exp_all [out-dir]`

use std::fs;
use std::path::PathBuf;

use ovlsim_apps::{NasBt, Sweep3d};
use ovlsim_lab::ExperimentReport;

type Experiment = (&'static str, Box<dyn Fn() -> ExperimentReport>);

fn main() {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results".to_string())
        .into();
    fs::create_dir_all(&out_dir).expect("create output directory");

    let apps = ovlsim_apps::paper_apps;
    let bt = || {
        NasBt::builder()
            .ranks(16)
            .iterations(2)
            .build()
            .expect("valid NAS-BT")
    };

    let experiments: Vec<Experiment> = vec![
        (
            "exp_pipeline",
            Box::new(move || ovlsim_lab::e1_pipeline(&bt()).expect("E1 runs")),
        ),
        (
            "exp_real_patterns",
            Box::new(move || ovlsim_lab::e2_real_patterns(&apps(), 13).expect("E2 runs")),
        ),
        (
            "exp_ideal_speedup",
            Box::new(move || ovlsim_lab::e3_ideal_speedup(&apps()).expect("E3 runs")),
        ),
        (
            "exp_speedup_curves",
            Box::new(move || ovlsim_lab::e4_speedup_curves(&apps(), 13).expect("E4 runs")),
        ),
        (
            "exp_bandwidth_relaxation",
            Box::new(move || {
                ovlsim_lab::e5_bandwidth_relaxation(&apps(), 1.0e10).expect("E5 runs")
            }),
        ),
        (
            "exp_mechanisms",
            Box::new(move || ovlsim_lab::e6_mechanisms(&apps()).expect("E6 runs")),
        ),
        (
            "exp_pattern_cdf",
            Box::new(move || ovlsim_lab::e7_pattern_cdf(&apps()).expect("E7 runs")),
        ),
        (
            "exp_platform_sensitivity",
            Box::new(move || ovlsim_lab::e8_platform_sensitivity(&bt()).expect("E8 runs")),
        ),
        (
            "exp_chunk_overhead",
            Box::new(move || {
                ovlsim_lab::e9_chunk_overhead(&bt(), &[1, 2, 4, 8, 16, 32, 64], &[0, 1, 5, 20])
                    .expect("E9 runs")
            }),
        ),
        (
            "exp_multicore",
            Box::new(move || ovlsim_lab::e10_multicore(&bt()).expect("E10 runs")),
        ),
    ];

    for (name, run) in experiments {
        let report = run();
        let rendered = report.render();
        println!("{rendered}");
        fs::write(out_dir.join(format!("{name}.txt")), &rendered).expect("write report");
        fs::write(out_dir.join(format!("{name}.csv")), report.table.to_csv()).expect("write csv");
    }

    // E8 additionally on Sweep3D (the pipeline-shaped code).
    let sweep = Sweep3d::builder().ranks(16).build().expect("valid Sweep3D");
    let report = ovlsim_lab::e8_platform_sensitivity(&sweep).expect("E8 sweep3d runs");
    let mut existing =
        fs::read_to_string(out_dir.join("exp_platform_sensitivity.txt")).unwrap_or_default();
    existing.push('\n');
    existing.push_str(&report.render());
    fs::write(out_dir.join("exp_platform_sensitivity.txt"), existing).expect("append report");

    println!("wrote reports + CSVs to {}", out_dir.display());
}
