//! E4 — §III claim 2 (curve form): speedup vs bandwidth for every app,
//! linear patterns; the benefit concentrates in the intermediate band.

fn main() {
    let apps = ovlsim_apps::paper_apps();
    let report = ovlsim_lab::e4_speedup_curves(&apps, 13).expect("experiment runs");
    ovlsim_bench::emit(&report);
}
