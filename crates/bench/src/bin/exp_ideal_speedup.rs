//! E3 — §III claim 2: ideal-pattern speedups at intermediate bandwidth
//! (paper: BT 30%, CG 10%, POP 10%, Alya 40%, SPECFEM 65%, Sweep3D 160%).

fn main() {
    let apps = ovlsim_apps::paper_apps();
    let report = ovlsim_lab::e3_ideal_speedup(&apps).expect("experiment runs");
    ovlsim_bench::emit(&report);
}
