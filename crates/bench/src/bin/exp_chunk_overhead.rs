//! E9 (extension) — the chunking trade-off: speedup vs chunk count under
//! per-message CPU overhead (paper §IV future work: "model more
//! state-of-the-art network and MPI properties").

use ovlsim_apps::NasBt;

fn main() {
    let app = NasBt::builder()
        .ranks(16)
        .iterations(2)
        .build()
        .expect("valid NAS-BT");
    let report = ovlsim_lab::e9_chunk_overhead(&app, &[1, 2, 4, 8, 16, 32, 64], &[0, 1, 5, 20])
        .expect("experiment runs");
    ovlsim_bench::emit(&report);
}
