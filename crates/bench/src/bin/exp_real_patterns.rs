//! E2 — §III claim 1: with real (measured) computation patterns the
//! potential for automatic overlap is negligible.

fn main() {
    let apps = ovlsim_apps::paper_apps();
    let report = ovlsim_lab::e2_real_patterns(&apps, 13).expect("experiment runs");
    ovlsim_bench::emit(&report);
}
