//! E7 — §II: the measured production patterns that challenge Sancho's
//! ideal-sequential assumption (readiness quartiles per app).

fn main() {
    let apps = ovlsim_apps::paper_apps();
    let report = ovlsim_lab::e7_pattern_cdf(&apps).expect("experiment runs");
    ovlsim_bench::emit(&report);
}
