//! E5 — §III claim 3: at high bandwidth, the overlapped execution matches
//! the original's performance with orders of magnitude less bandwidth.

fn main() {
    let apps = ovlsim_apps::paper_apps();
    let report = ovlsim_lab::e5_bandwidth_relaxation(&apps, 1.0e10).expect("experiment runs");
    ovlsim_bench::emit(&report);
}
