//! E8 — the "configurable platform": sensitivity of overlap benefit to
//! latency and bus counts, on NAS-BT and Sweep3D.

use ovlsim_apps::{NasBt, Sweep3d};

fn main() {
    let bt = NasBt::builder()
        .ranks(16)
        .iterations(2)
        .build()
        .expect("valid NAS-BT");
    let report = ovlsim_lab::e8_platform_sensitivity(&bt).expect("experiment runs");
    ovlsim_bench::emit(&report);

    let sweep = Sweep3d::builder().ranks(16).build().expect("valid Sweep3D");
    let report = ovlsim_lab::e8_platform_sensitivity(&sweep).expect("experiment runs");
    ovlsim_bench::emit(&report);
}
