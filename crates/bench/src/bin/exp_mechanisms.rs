//! E6 — §II-B: traces that enforce only a subset of the overlapping
//! mechanisms, so each mechanism can be studied separately.

fn main() {
    let apps = ovlsim_apps::paper_apps();
    let report = ovlsim_lab::e6_mechanisms(&apps).expect("experiment runs");
    ovlsim_bench::emit(&report);
}
