//! Benchmark and experiment entry points for `ovlsim`.
//!
//! * `src/bin/exp_*.rs` — one binary per paper artefact (see DESIGN.md §4);
//!   each prints the regenerated table to stdout and, with `--csv`, the raw
//!   CSV to stderr.
//! * `benches/*.rs` — Criterion micro-benchmarks documenting the
//!   environment's own performance (event throughput, replay speed,
//!   transform cost).
//!
//! Run an experiment with e.g.
//! `cargo run -p ovlsim-bench --release --bin exp_ideal_speedup`.

#![forbid(unsafe_code)]

use ovlsim_lab::ExperimentReport;

/// Prints a report to stdout; with `--csv` in `args`, also emits the raw
/// CSV on stderr (so tables and data can be captured separately).
pub fn emit(report: &ExperimentReport) {
    println!("{report}");
    if std::env::args().any(|a| a == "--csv") {
        eprintln!("{}", report.table.to_csv());
    }
}
