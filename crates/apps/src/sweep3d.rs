//! Sweep3D: a wavefront (pipelined) discrete-ordinates transport kernel.
//!
//! # Model
//!
//! The 3-D grid is decomposed over a 2-D process grid; each rank owns a
//! column of `planes` k-planes. For each of the four octant pairs the sweep
//! travels diagonally across the process grid: a rank receives its upstream
//! x/y faces, computes plane by plane, and forwards downstream faces — the
//! classic software pipeline whose fill time dominates at scale.
//!
//! # Access patterns
//!
//! * **Consumption** looks plane-by-plane, but the implementation copies
//!   the received faces into working arrays before the sweep begins, so
//!   the measured first-read of every byte is immediate (head).
//! * **Production** is plane-by-plane too, *but* Sweep3D ends each block
//!   with a flux-fixup pass that rewrites the outgoing faces; with the
//!   fix-up enabled (the measured, real behaviour) every face byte's last
//!   write lands in the final few percent of the kernel, so chunks only
//!   become ready at the end — automatic overlap gets nothing. The linear
//!   (ideal) pattern instead lets the transform forward each plane as it is
//!   produced, collapsing the pipeline fill and yielding the paper's
//!   largest speedups (≈160% at intermediate bandwidth).

use ovlsim_core::{Instr, Rank, Tag};
use ovlsim_memtrace::{AccessKind, IndexPattern, Kernel};
use ovlsim_tracer::{Application, TraceContext, TraceError};

use crate::class::ProblemClass;
use crate::decomp::Grid2d;
use crate::error::AppConfigError;

/// The Sweep3D application model. Build with [`Sweep3d::builder`].
///
/// # Example
///
/// ```
/// use ovlsim_apps::Sweep3d;
/// use ovlsim_tracer::{Application, TracingSession};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let app = Sweep3d::builder().ranks(4).planes(8).build()?;
/// let bundle = TracingSession::new(&app).run()?;
/// assert_eq!(bundle.original().rank_count(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Sweep3d {
    grid: Grid2d,
    iterations: usize,
    planes: usize,
    plane_instr: u64,
    plane_face_bytes: u64,
    source_instr: u64,
    fixup_fraction: f64,
    flux_fixup: bool,
}

impl Sweep3d {
    /// Starts building a Sweep3D model.
    pub fn builder() -> Sweep3dBuilder {
        Sweep3dBuilder::default()
    }

    /// The process grid.
    pub fn grid(&self) -> Grid2d {
        self.grid
    }

    /// Face bytes per message (planes × per-plane slice).
    pub fn message_bytes(&self) -> u64 {
        self.planes as u64 * self.plane_face_bytes
    }

    fn octants() -> [(i32, i32); 4] {
        [(1, 1), (-1, 1), (1, -1), (-1, -1)]
    }

    fn upstream(&self, rank: Rank, dx: i32, dy: i32) -> (Option<Rank>, Option<Rank>) {
        let x = if dx > 0 {
            self.grid.west(rank)
        } else {
            self.grid.east(rank)
        };
        let y = if dy > 0 {
            self.grid.north(rank)
        } else {
            self.grid.south(rank)
        };
        (x, y)
    }

    fn downstream(&self, rank: Rank, dx: i32, dy: i32) -> (Option<Rank>, Option<Rank>) {
        let x = if dx > 0 {
            self.grid.east(rank)
        } else {
            self.grid.west(rank)
        };
        let y = if dy > 0 {
            self.grid.south(rank)
        } else {
            self.grid.north(rank)
        };
        (x, y)
    }
}

impl Application for Sweep3d {
    fn name(&self) -> &str {
        "sweep3d"
    }

    fn ranks(&self) -> usize {
        self.grid.ranks()
    }

    fn run(&self, rank: Rank, ctx: &mut TraceContext) -> Result<(), TraceError> {
        let k = self.planes;
        let face = self.plane_face_bytes;
        let msg_bytes = self.message_bytes();
        let elem = u32::try_from(face).expect("validated plane slice fits u32");

        // One buffer set per direction; reused across octants/iterations.
        let in_x = ctx.register_buffer("in-x", msg_bytes, elem);
        let in_y = ctx.register_buffer("in-y", msg_bytes, elem);
        let out_x = ctx.register_buffer("out-x", msg_bytes, elem);
        let out_y = ctx.register_buffer("out-y", msg_bytes, elem);

        for _iter in 0..self.iterations {
            for (oct, (dx, dy)) in Self::octants().iter().enumerate() {
                let tag_x = Tag::new((oct * 2) as u64);
                let tag_y = Tag::new((oct * 2 + 1) as u64);
                let (up_x, up_y) = self.upstream(rank, *dx, *dy);
                let (down_x, down_y) = self.downstream(rank, *dx, *dy);

                // Source/scattering update: per-octant work every rank
                // performs before its sweep can start (not pipelined).
                ctx.compute(Instr::new(self.source_instr));

                if let Some(peer) = up_x {
                    ctx.recv(peer, in_x, tag_x)?;
                }
                if let Some(peer) = up_y {
                    ctx.recv(peer, in_y, tag_y)?;
                }

                // The real code first copies the received faces into its
                // working arrays (PHIIB/PHJIB unpack) — an immediate,
                // whole-buffer consumption that defeats late chunk waits.
                let unpack = ((k as u64 * self.plane_instr) as f64 * 0.03)
                    .round()
                    .max(1.0) as u64;
                let mut b = Kernel::builder()
                    .phase(Instr::new(unpack))
                    .access(in_x, AccessKind::Read, IndexPattern::Sequential)
                    .access(in_y, AccessKind::Read, IndexPattern::Sequential);
                // Plane-by-plane sweep: plane p writes slice p of the
                // outgoing faces as it completes.
                for p in 0..k {
                    b = b
                        .phase(Instr::new(self.plane_instr))
                        .access_range(
                            out_x,
                            AccessKind::Write,
                            IndexPattern::Sequential,
                            Some(p..p + 1),
                        )
                        .access_range(
                            out_y,
                            AccessKind::Write,
                            IndexPattern::Sequential,
                            Some(p..p + 1),
                        );
                }
                if self.flux_fixup {
                    // The fix-up pass rewrites both outgoing faces at the
                    // very end of the block: the real production pattern.
                    let fixup =
                        ((k as u64 * self.plane_instr) as f64 * self.fixup_fraction).round() as u64;
                    b = b
                        .phase(Instr::new(fixup.max(1)))
                        .access(out_x, AccessKind::Write, IndexPattern::Sequential)
                        .access(out_y, AccessKind::Write, IndexPattern::Sequential);
                }
                ctx.kernel(&b.build());

                // Downstream forwarding: post both sends, then wait — the
                // sender blocks here until the faces have left the node
                // (the real code's blocking-send semantics).
                let hx = match down_x {
                    Some(peer) => Some(ctx.isend(peer, out_x, tag_x)?),
                    None => None,
                };
                let hy = match down_y {
                    Some(peer) => Some(ctx.isend(peer, out_y, tag_y)?),
                    None => None,
                };
                if let Some(h) = hx {
                    ctx.wait_send(h)?;
                }
                if let Some(h) = hy {
                    ctx.wait_send(h)?;
                }
            }
            // Convergence check.
            ctx.allreduce(8);
        }
        Ok(())
    }
}

/// Builder for [`Sweep3d`].
///
/// Defaults: 16 ranks (4×4), 1 iteration, 16 planes of 50 000 instructions
/// each, 8 KiB face slice per plane (128 KiB messages), a 3 400 000
/// instruction per-octant source update, 5% flux fix-up enabled.
#[derive(Debug, Clone)]
pub struct Sweep3dBuilder {
    class: ProblemClass,
    ranks: usize,
    iterations: usize,
    planes: usize,
    plane_instr: u64,
    plane_face_bytes: u64,
    source_instr: u64,
    fixup_fraction: f64,
    flux_fixup: bool,
}

impl Default for Sweep3dBuilder {
    fn default() -> Self {
        Sweep3dBuilder {
            class: ProblemClass::default(),
            ranks: 16,
            iterations: 1,
            planes: 16,
            plane_instr: 50_000,
            plane_face_bytes: 8_192,
            source_instr: 3_400_000,
            fixup_fraction: 0.05,
            flux_fixup: true,
        }
    }
}

impl Sweep3dBuilder {
    /// Sets the rank count (any positive count; the grid is the most
    /// nearly square factorization).
    pub fn ranks(&mut self, ranks: usize) -> &mut Self {
        self.ranks = ranks;
        self
    }

    /// Sets the number of full sweep iterations.
    pub fn iterations(&mut self, iterations: usize) -> &mut Self {
        self.iterations = iterations;
        self
    }

    /// Sets the k-planes per block (also the natural chunk count).
    pub fn planes(&mut self, planes: usize) -> &mut Self {
        self.planes = planes;
        self
    }

    /// Sets the instructions per plane.
    pub fn plane_instr(&mut self, instr: u64) -> &mut Self {
        self.plane_instr = instr;
        self
    }

    /// Sets the outgoing face bytes per plane.
    pub fn plane_face_bytes(&mut self, bytes: u64) -> &mut Self {
        self.plane_face_bytes = bytes;
        self
    }

    /// Sets the per-octant source/scattering compute (not pipelined).
    pub fn source_instr(&mut self, instr: u64) -> &mut Self {
        self.source_instr = instr;
        self
    }

    /// Enables or disables the flux fix-up pass (the real-pattern tail).
    pub fn flux_fixup(&mut self, enabled: bool) -> &mut Self {
        self.flux_fixup = enabled;
        self
    }

    /// Sets the fix-up pass size as a fraction of the block kernel.
    pub fn fixup_fraction(&mut self, fraction: f64) -> &mut Self {
        self.fixup_fraction = fraction;
        self
    }

    /// Applies a NAS-style problem class: scales compute volume and
    /// message sizes together (class A = the calibrated defaults).
    pub fn class(&mut self, class: ProblemClass) -> &mut Self {
        self.class = class;
        self
    }

    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Fails if any parameter is zero / out of range.
    pub fn build(&self) -> Result<Sweep3d, AppConfigError> {
        if self.ranks == 0 {
            return Err(AppConfigError::BadRankCount {
                ranks: self.ranks,
                requirement: "must be positive",
            });
        }
        if self.planes == 0 || self.plane_instr == 0 || self.plane_face_bytes == 0 {
            return Err(AppConfigError::BadParameter {
                name: "planes/plane_instr/plane_face_bytes",
                requirement: "must be positive",
            });
        }
        if self.plane_face_bytes > u32::MAX as u64 {
            return Err(AppConfigError::BadParameter {
                name: "plane_face_bytes",
                requirement: "must fit in u32",
            });
        }
        if !(0.0..1.0).contains(&self.fixup_fraction) || self.fixup_fraction <= 0.0 {
            return Err(AppConfigError::BadParameter {
                name: "fixup_fraction",
                requirement: "must be in (0, 1)",
            });
        }
        if self.iterations == 0 {
            return Err(AppConfigError::BadParameter {
                name: "iterations",
                requirement: "must be positive",
            });
        }
        Ok(Sweep3d {
            grid: Grid2d::near_square(self.ranks),
            iterations: self.iterations,
            planes: self.planes,
            plane_instr: self.class.scale_instr(self.plane_instr),
            plane_face_bytes: self.class.scale_bytes(self.plane_face_bytes),
            source_instr: self.class.scale_instr(self.source_instr),
            fixup_fraction: self.fixup_fraction,
            flux_fixup: self.flux_fixup,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlsim_tracer::TracingSession;

    #[test]
    fn traces_and_validates() {
        let app = Sweep3d::builder().ranks(4).planes(4).build().unwrap();
        let bundle = TracingSession::new(&app).run().unwrap();
        assert_eq!(bundle.original().rank_count(), 4);
        // Interior comms exist: total p2p bytes > 0.
        assert!(bundle.original().total_p2p_send_bytes() > 0);
        // Both overlapped variants validate.
        bundle.overlapped_real();
        bundle.overlapped_linear();
    }

    #[test]
    fn corner_rank_has_no_upstream_in_first_octant() {
        let app = Sweep3d::builder().ranks(9).build().unwrap();
        // Rank 0 is the NW corner: octant (+1,+1) has no upstream.
        let (ux, uy) = app.upstream(Rank::new(0), 1, 1);
        assert_eq!((ux, uy), (None, None));
        let (dx, dy) = app.downstream(Rank::new(0), 1, 1);
        assert!(dx.is_some() && dy.is_some());
    }

    #[test]
    fn fixup_makes_production_late() {
        use ovlsim_tracer::TracingSession;
        let app = Sweep3d::builder().ranks(4).planes(8).build().unwrap();
        let bundle = TracingSession::new(&app).run().unwrap();
        // Find a send with a production profile and confirm the first
        // chunk is only ready near the end of its window.
        let meta = &bundle.metas()[0];
        let send = meta.sends.first().expect("rank 0 sends");
        let prof = send.production.as_ref().unwrap();
        let first_plane_ready = prof.ready_at(0..app.plane_face_bytes);
        let full_ready = prof.fully_ready_at();
        // With fix-up, the first plane's slice is rewritten at the end:
        // within 6% of the full production instant.
        assert!(
            first_plane_ready.get() as f64 >= full_ready.get() as f64 * 0.94,
            "first plane ready at {first_plane_ready}, full at {full_ready}"
        );
    }

    #[test]
    fn no_fixup_production_is_spread() {
        let app = Sweep3d::builder()
            .ranks(4)
            .planes(8)
            .flux_fixup(false)
            .build()
            .unwrap();
        let bundle = TracingSession::new(&app).run().unwrap();
        let meta = &bundle.metas()[0];
        let send = meta.sends.first().expect("rank 0 sends");
        let prof = send.production.as_ref().unwrap();
        let first = prof.ready_at(0..app.plane_face_bytes).get();
        let full = prof.fully_ready_at().get();
        // Without the fix-up, plane 0's slice is final after the first
        // plane: roughly (planes-1) plane-times before full production.
        let spread = full - first;
        assert!(
            spread >= 7 * 50_000 * 9 / 10,
            "first plane should be ready ~7 planes early, spread = {spread}"
        );
    }

    #[test]
    fn builder_validation() {
        assert!(Sweep3d::builder().ranks(0).build().is_err());
        assert!(Sweep3d::builder().planes(0).build().is_err());
        assert!(Sweep3d::builder().iterations(0).build().is_err());
        assert!(Sweep3d::builder().fixup_fraction(1.5).build().is_err());
        assert!(Sweep3d::builder().ranks(6).build().is_ok()); // 3x2 grid
    }

    #[test]
    fn message_bytes_consistent() {
        let app = Sweep3d::builder()
            .planes(10)
            .plane_face_bytes(1000)
            .build()
            .unwrap();
        assert_eq!(app.message_bytes(), 10_000);
    }
}
