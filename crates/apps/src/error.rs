//! Application-model configuration errors.

use std::error::Error;
use std::fmt;

/// Errors produced while building an application model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AppConfigError {
    /// The rank count does not fit the application's topology.
    BadRankCount {
        /// Requested rank count.
        ranks: usize,
        /// What the topology requires.
        requirement: &'static str,
    },
    /// A size or count parameter was zero or out of range.
    BadParameter {
        /// The parameter's name.
        name: &'static str,
        /// Description of the violated constraint.
        requirement: &'static str,
    },
}

impl fmt::Display for AppConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppConfigError::BadRankCount { ranks, requirement } => {
                write!(f, "rank count {ranks} invalid: {requirement}")
            }
            AppConfigError::BadParameter { name, requirement } => {
                write!(f, "parameter `{name}` invalid: {requirement}")
            }
        }
    }
}

impl Error for AppConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field() {
        let e = AppConfigError::BadRankCount {
            ranks: 3,
            requirement: "must be a perfect square",
        };
        assert!(format!("{e}").contains("perfect square"));
        fn check<E: Error + Send + Sync>() {}
        check::<AppConfigError>();
    }
}
