//! Calibration targets and the reference platform.
//!
//! The paper reports ideal-pattern (linear) speedups *"for intermediate
//! bandwidths, where time spent in communication is comparable to time
//! spent in computation"*: NAS-BT 30%, NAS-CG 10%, POP 10%, Alya 40%,
//! SPECFEM 65%, Sweep3D 160%. The application defaults in this crate are
//! calibrated so that, on the [`reference_platform`] at each app's
//! intermediate bandwidth, the linear-mode speedup lands in the same band.
//! EXPERIMENTS.md records paper-vs-measured for every app.

use ovlsim_core::{Platform, Time};

/// Paper-reported ideal-pattern speedup at intermediate bandwidth, as a
/// fraction (0.30 = "30%").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupTarget {
    /// Application name (matches `Application::name`).
    pub app: &'static str,
    /// The paper's reported speedup fraction.
    pub paper: f64,
    /// Acceptance band for our reproduction (± around `paper`, absolute).
    pub tolerance: f64,
}

/// The six paper targets (§III).
pub const PAPER_TARGETS: [SpeedupTarget; 6] = [
    SpeedupTarget {
        app: "nas-bt",
        paper: 0.30,
        tolerance: 0.15,
    },
    SpeedupTarget {
        app: "nas-cg",
        paper: 0.10,
        tolerance: 0.08,
    },
    SpeedupTarget {
        app: "pop",
        paper: 0.10,
        tolerance: 0.08,
    },
    SpeedupTarget {
        app: "alya",
        paper: 0.40,
        tolerance: 0.20,
    },
    SpeedupTarget {
        app: "specfem",
        paper: 0.65,
        tolerance: 0.30,
    },
    SpeedupTarget {
        app: "sweep3d",
        paper: 1.60,
        tolerance: 0.80,
    },
];

/// Looks up the paper target for an application name.
pub fn target_for(app: &str) -> Option<SpeedupTarget> {
    PAPER_TARGETS.iter().copied().find(|t| t.app == app)
}

/// The reference platform used by the calibration and the experiment
/// suite: 5 µs latency, unlimited buses, single full-duplex link pair per
/// node, 64 KiB eager threshold — a MareNostrum-era Myrinet-like fabric.
/// Bandwidth is the swept variable; the default here (250 MB/s) is the
/// "realistic" point.
pub fn reference_platform() -> Platform {
    Platform::builder()
        .latency(Time::from_us(5))
        .bandwidth_bytes_per_sec(250.0e6)
        .expect("reference bandwidth is valid")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_cover_all_six_apps() {
        let names: Vec<&str> = PAPER_TARGETS.iter().map(|t| t.app).collect();
        for app in ["nas-bt", "nas-cg", "pop", "alya", "specfem", "sweep3d"] {
            assert!(names.contains(&app), "missing target for {app}");
        }
        assert!(target_for("nas-bt").is_some());
        assert!(target_for("nope").is_none());
    }

    #[test]
    fn reference_platform_parameters() {
        let p = reference_platform();
        assert_eq!(p.latency(), Time::from_us(5));
        assert_eq!(p.buses(), None);
        assert_eq!(p.eager_threshold(), 64 * 1024);
    }
}
