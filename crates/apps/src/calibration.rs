//! Calibration targets and the reference platform.
//!
//! The paper reports ideal-pattern (linear) speedups *"for intermediate
//! bandwidths, where time spent in communication is comparable to time
//! spent in computation"*: NAS-BT 30%, NAS-CG 10%, POP 10%, Alya 40%,
//! SPECFEM 65%, Sweep3D 160%. The application defaults in this crate are
//! calibrated so that, on the [`reference_platform`] at each app's
//! intermediate bandwidth, the linear-mode speedup lands in the same band.
//! EXPERIMENTS.md records paper-vs-measured for every app.

use ovlsim_core::{Bandwidth, Platform, Time};

/// Paper-reported ideal-pattern speedup at intermediate bandwidth, as a
/// fraction (0.30 = "30%").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupTarget {
    /// Application name (matches `Application::name`).
    pub app: &'static str,
    /// The paper's reported speedup fraction.
    pub paper: f64,
    /// Acceptance band for our reproduction (± around `paper`, absolute).
    pub tolerance: f64,
}

/// The six paper targets (§III).
pub const PAPER_TARGETS: [SpeedupTarget; 6] = [
    SpeedupTarget {
        app: "nas-bt",
        paper: 0.30,
        tolerance: 0.15,
    },
    SpeedupTarget {
        app: "nas-cg",
        paper: 0.10,
        tolerance: 0.08,
    },
    SpeedupTarget {
        app: "pop",
        paper: 0.10,
        tolerance: 0.08,
    },
    SpeedupTarget {
        app: "alya",
        paper: 0.40,
        tolerance: 0.20,
    },
    SpeedupTarget {
        app: "specfem",
        paper: 0.65,
        tolerance: 0.30,
    },
    SpeedupTarget {
        app: "sweep3d",
        paper: 1.60,
        tolerance: 0.80,
    },
];

/// Looks up the paper target for an application name.
pub fn target_for(app: &str) -> Option<SpeedupTarget> {
    PAPER_TARGETS.iter().copied().find(|t| t.app == app)
}

/// The reference platform used by the calibration and the experiment
/// suite: 5 µs latency, unlimited buses, single full-duplex link pair per
/// node, 64 KiB eager threshold — a MareNostrum-era Myrinet-like fabric.
/// Bandwidth is the swept variable; the default here (250 MB/s) is the
/// "realistic" point.
pub fn reference_platform() -> Platform {
    Platform::builder()
        .latency(Time::from_us(5))
        .bandwidth_bytes_per_sec(250.0e6)
        .expect("reference bandwidth is valid")
        .build()
}

/// The reference fabric with `ranks_per_node` ranks packed onto each
/// multicore node: same 5 µs / 250 MB/s inter-node network, but sibling
/// ranks share their node's NIC links while exchanging through shared
/// memory (500 ns, 10 GB/s) — a MareNostrum-style SMP blade. This is the
/// base point of the `ranks_per_node × intra-node bandwidth` sweeps.
///
/// # Panics
///
/// Panics if `ranks_per_node == 0`.
pub fn multicore_platform(ranks_per_node: u32) -> Platform {
    Platform::builder()
        .latency(Time::from_us(5))
        .bandwidth_bytes_per_sec(250.0e6)
        .expect("reference bandwidth is valid")
        .ranks_per_node(ranks_per_node)
        .expect("positive ranks per node")
        .intra_node_latency(Time::from_ns(500))
        .intra_node_bandwidth(
            Bandwidth::from_bytes_per_sec(10.0e9).expect("intra-node bandwidth is valid"),
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_cover_all_six_apps() {
        let names: Vec<&str> = PAPER_TARGETS.iter().map(|t| t.app).collect();
        for app in ["nas-bt", "nas-cg", "pop", "alya", "specfem", "sweep3d"] {
            assert!(names.contains(&app), "missing target for {app}");
        }
        assert!(target_for("nas-bt").is_some());
        assert!(target_for("nope").is_none());
    }

    #[test]
    fn reference_platform_parameters() {
        let p = reference_platform();
        assert_eq!(p.latency(), Time::from_us(5));
        assert_eq!(p.buses(), None);
        assert_eq!(p.eager_threshold(), 64 * 1024);
    }

    #[test]
    fn multicore_platform_packs_ranks() {
        let p = multicore_platform(4);
        // Same inter-node fabric as the reference...
        assert_eq!(p.latency(), reference_platform().latency());
        assert_eq!(p.bandwidth(), reference_platform().bandwidth());
        // ...plus the node hierarchy.
        assert_eq!(p.ranks_per_node(), 4);
        assert_eq!(p.intra_node_latency(), Time::from_ns(500));
        assert_eq!(p.intra_node_bandwidth().bytes_per_sec(), 10.0e9);
        assert!(p.topology(16).spans_nodes());
        assert!(!p.topology(4).spans_nodes());
    }
}
