//! SPECFEM3D: spectral-element seismic wave propagation.
//!
//! # Model
//!
//! A spectral-element wavefield update per time step: a large element
//! kernel, then an exchange of assembled boundary degrees of freedom with
//! the four mesh neighbors, then a light Newmark time-integration kernel.
//! Boundary interfaces are large relative to the compute (the paper
//! reports the second-largest ideal-pattern speedup, ≈65%, i.e. a high
//! communication fraction at intermediate bandwidth).
//!
//! # Access patterns
//!
//! Boundary accelerations are accumulated across all elements touching the
//! interface and are gathered into contiguous MPI buffers at the end of
//! the element loop (tail ≈4%); received contributions are scatter-added
//! into the wavefield right after the waits (head ≈4%).

use ovlsim_core::{Instr, Rank, Tag};
use ovlsim_tracer::{Application, TraceContext, TraceError};

use crate::class::ProblemClass;
use crate::decomp::Grid2d;
use crate::error::AppConfigError;
use crate::halo::{exchange, HaloLeg};
use crate::kernels::{consumer_kernel, producer_kernel, ConsumptionShape, ProductionShape};

/// The SPECFEM application model. Build with [`Specfem::builder`].
///
/// # Example
///
/// ```
/// use ovlsim_apps::Specfem;
/// use ovlsim_tracer::{Application, TracingSession};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let app = Specfem::builder().ranks(4).iterations(2).build()?;
/// let bundle = TracingSession::new(&app).run()?;
/// assert_eq!(bundle.original().rank_count(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Specfem {
    grid: Grid2d,
    iterations: usize,
    element_instr: u64,
    newmark_instr: u64,
    boundary_bytes: u64,
    pack_fraction: f64,
    unpack_fraction: f64,
}

impl Specfem {
    /// Starts building a SPECFEM model.
    pub fn builder() -> SpecfemBuilder {
        SpecfemBuilder::default()
    }

    /// The process grid.
    pub fn grid(&self) -> Grid2d {
        self.grid
    }
}

impl Application for Specfem {
    fn name(&self) -> &str {
        "specfem"
    }

    fn ranks(&self) -> usize {
        self.grid.ranks()
    }

    fn run(&self, rank: Rank, ctx: &mut TraceContext) -> Result<(), TraceError> {
        let neighbors = self.grid.neighbors(rank);
        let mut outs = Vec::with_capacity(neighbors.len());
        let mut ins = Vec::with_capacity(neighbors.len());
        for peer in &neighbors {
            outs.push(ctx.register_buffer(format!("bdry-out-{peer}"), self.boundary_bytes, 8));
            ins.push(ctx.register_buffer(format!("bdry-in-{peer}"), self.boundary_bytes, 8));
        }

        for _step in 0..self.iterations {
            // Element kernel: internal forces; boundary DOFs are gathered
            // into the MPI buffers at the end of the element loop (tail).
            let unpack_instr = ((self.element_instr as f64) * self.unpack_fraction)
                .round()
                .max(1.0) as u64;
            let kernel = producer_kernel(
                Instr::new(self.element_instr - unpack_instr),
                &outs,
                ProductionShape::Tail {
                    fraction: self.pack_fraction,
                },
            );
            ctx.kernel(&kernel);

            let sends: Vec<HaloLeg> = neighbors
                .iter()
                .zip(&outs)
                .map(|(peer, buf)| HaloLeg {
                    peer: *peer,
                    buffer: *buf,
                    tag: Tag::new(0),
                })
                .collect();
            let recvs: Vec<HaloLeg> = neighbors
                .iter()
                .zip(&ins)
                .map(|(peer, buf)| HaloLeg {
                    peer: *peer,
                    buffer: *buf,
                    tag: Tag::new(0),
                })
                .collect();
            exchange(ctx, &sends, &recvs)?;

            // Received contributions are scatter-added immediately.
            ctx.kernel(&consumer_kernel(
                Instr::new(unpack_instr),
                &ins,
                ConsumptionShape::Spread,
            ));

            // Newmark time integration.
            ctx.compute(Instr::new(self.newmark_instr));
        }
        // Final seismogram norm.
        ctx.allreduce(8);
        Ok(())
    }
}

/// Builder for [`Specfem`].
///
/// Defaults: 16 ranks, 4 time steps, 3 000 000-instruction element
/// kernel, 400 000-instruction Newmark kernel, 122 880-byte interfaces,
/// 4% pack/unpack passes.
#[derive(Debug, Clone)]
pub struct SpecfemBuilder {
    class: ProblemClass,
    ranks: usize,
    iterations: usize,
    element_instr: u64,
    newmark_instr: u64,
    boundary_bytes: u64,
    pack_fraction: f64,
    unpack_fraction: f64,
}

impl Default for SpecfemBuilder {
    fn default() -> Self {
        SpecfemBuilder {
            class: ProblemClass::default(),
            ranks: 16,
            iterations: 4,
            element_instr: 3_000_000,
            newmark_instr: 400_000,
            boundary_bytes: 122_880,
            pack_fraction: 0.04,
            unpack_fraction: 0.04,
        }
    }
}

impl SpecfemBuilder {
    /// Sets the rank count.
    pub fn ranks(&mut self, ranks: usize) -> &mut Self {
        self.ranks = ranks;
        self
    }

    /// Sets the number of time steps.
    pub fn iterations(&mut self, iterations: usize) -> &mut Self {
        self.iterations = iterations;
        self
    }

    /// Sets the element kernel instruction count.
    pub fn element_instr(&mut self, instr: u64) -> &mut Self {
        self.element_instr = instr;
        self
    }

    /// Sets the boundary interface size in bytes (multiple of 8).
    pub fn boundary_bytes(&mut self, bytes: u64) -> &mut Self {
        self.boundary_bytes = bytes;
        self
    }

    /// Applies a NAS-style problem class: scales compute volume and
    /// message sizes together (class A = the calibrated defaults).
    pub fn class(&mut self, class: ProblemClass) -> &mut Self {
        self.class = class;
        self
    }

    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Fails on zero counts or misaligned sizes.
    pub fn build(&self) -> Result<Specfem, AppConfigError> {
        if self.ranks == 0 {
            return Err(AppConfigError::BadRankCount {
                ranks: self.ranks,
                requirement: "must be positive",
            });
        }
        if self.iterations == 0 || self.element_instr == 0 {
            return Err(AppConfigError::BadParameter {
                name: "iterations/element_instr",
                requirement: "must be positive",
            });
        }
        if self.boundary_bytes == 0 || !self.boundary_bytes.is_multiple_of(8) {
            return Err(AppConfigError::BadParameter {
                name: "boundary_bytes",
                requirement: "must be a positive multiple of 8",
            });
        }
        Ok(Specfem {
            grid: Grid2d::near_square(self.ranks),
            iterations: self.iterations,
            element_instr: self.class.scale_instr(self.element_instr),
            newmark_instr: self.class.scale_instr(self.newmark_instr),
            boundary_bytes: self.class.scale_bytes(self.boundary_bytes),
            pack_fraction: self.pack_fraction,
            unpack_fraction: self.unpack_fraction,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlsim_tracer::TracingSession;

    #[test]
    fn traces_and_validates() {
        let app = Specfem::builder().ranks(4).iterations(2).build().unwrap();
        let bundle = TracingSession::new(&app).run().unwrap();
        bundle.overlapped_real();
        bundle.overlapped_linear();
    }

    #[test]
    fn interior_rank_has_four_interfaces() {
        let app = Specfem::builder().ranks(9).iterations(1).build().unwrap();
        let bundle = TracingSession::new(&app).run().unwrap();
        // Rank 4 = center of 3x3.
        assert_eq!(bundle.metas()[4].sends.len(), 4);
        // Corner rank has two.
        assert_eq!(bundle.metas()[0].sends.len(), 2);
    }

    #[test]
    fn validation() {
        assert!(Specfem::builder().ranks(0).build().is_err());
        assert!(Specfem::builder().boundary_bytes(7).build().is_err());
        assert!(Specfem::builder().iterations(0).build().is_err());
    }
}
