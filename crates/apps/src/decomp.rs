//! Process-grid decompositions.

use ovlsim_core::Rank;

/// A 2-D logical process grid of `px × py` ranks, row-major.
///
/// # Example
///
/// ```
/// use ovlsim_apps::Grid2d;
/// use ovlsim_core::Rank;
///
/// let g = Grid2d::near_square(6); // 3 x 2
/// assert_eq!((g.px(), g.py()), (3, 2));
/// assert_eq!(g.coords(Rank::new(4)), (1, 1));
/// assert_eq!(g.east(Rank::new(4)), Some(Rank::new(5)));
/// assert_eq!(g.east(Rank::new(5)), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid2d {
    px: usize,
    py: usize,
}

impl Grid2d {
    /// A `px × py` grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(px: usize, py: usize) -> Self {
        assert!(px > 0 && py > 0, "grid dimensions must be positive");
        Grid2d { px, py }
    }

    /// A square grid, if `ranks` is a perfect square.
    pub fn square(ranks: usize) -> Option<Self> {
        let side = (ranks as f64).sqrt().round() as usize;
        (side * side == ranks && side > 0).then(|| Grid2d::new(side, side))
    }

    /// The most nearly square factorization of `ranks` (`px ≥ py`).
    ///
    /// # Panics
    ///
    /// Panics if `ranks == 0`.
    pub fn near_square(ranks: usize) -> Self {
        assert!(ranks > 0, "need at least one rank");
        let mut best = (ranks, 1);
        let mut d = 1;
        while d * d <= ranks {
            if ranks.is_multiple_of(d) {
                best = (ranks / d, d);
            }
            d += 1;
        }
        Grid2d::new(best.0, best.1)
    }

    /// Grid width (x dimension).
    pub fn px(&self) -> usize {
        self.px
    }

    /// Grid height (y dimension).
    pub fn py(&self) -> usize {
        self.py
    }

    /// Total ranks.
    pub fn ranks(&self) -> usize {
        self.px * self.py
    }

    /// `(x, y)` coordinates of a rank.
    ///
    /// # Panics
    ///
    /// Panics if the rank is outside the grid.
    pub fn coords(&self, rank: Rank) -> (usize, usize) {
        let i = rank.index();
        assert!(
            i < self.ranks(),
            "{rank} outside {}x{} grid",
            self.px,
            self.py
        );
        (i % self.px, i / self.px)
    }

    /// The rank at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the grid.
    pub fn rank_at(&self, x: usize, y: usize) -> Rank {
        assert!(x < self.px && y < self.py, "({x},{y}) outside grid");
        Rank::new((y * self.px + x) as u32)
    }

    /// Western neighbor (smaller x), if any.
    pub fn west(&self, rank: Rank) -> Option<Rank> {
        let (x, y) = self.coords(rank);
        (x > 0).then(|| self.rank_at(x - 1, y))
    }

    /// Eastern neighbor (larger x), if any.
    pub fn east(&self, rank: Rank) -> Option<Rank> {
        let (x, y) = self.coords(rank);
        (x + 1 < self.px).then(|| self.rank_at(x + 1, y))
    }

    /// Northern neighbor (smaller y), if any.
    pub fn north(&self, rank: Rank) -> Option<Rank> {
        let (x, y) = self.coords(rank);
        (y > 0).then(|| self.rank_at(x, y - 1))
    }

    /// Southern neighbor (larger y), if any.
    pub fn south(&self, rank: Rank) -> Option<Rank> {
        let (x, y) = self.coords(rank);
        (y + 1 < self.py).then(|| self.rank_at(x, y + 1))
    }

    /// All existing von-Neumann neighbors in W, E, N, S order.
    pub fn neighbors(&self, rank: Rank) -> Vec<Rank> {
        [
            self.west(rank),
            self.east(rank),
            self.north(rank),
            self.south(rank),
        ]
        .into_iter()
        .flatten()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_detection() {
        assert_eq!(Grid2d::square(16), Some(Grid2d::new(4, 4)));
        assert_eq!(Grid2d::square(15), None);
        assert_eq!(Grid2d::square(1), Some(Grid2d::new(1, 1)));
    }

    #[test]
    fn near_square_factorization() {
        assert_eq!(Grid2d::near_square(12), Grid2d::new(4, 3));
        assert_eq!(Grid2d::near_square(7), Grid2d::new(7, 1));
        assert_eq!(Grid2d::near_square(16), Grid2d::new(4, 4));
    }

    #[test]
    fn coords_roundtrip() {
        let g = Grid2d::new(4, 3);
        for r in 0..12u32 {
            let rank = Rank::new(r);
            let (x, y) = g.coords(rank);
            assert_eq!(g.rank_at(x, y), rank);
        }
    }

    #[test]
    fn boundary_neighbors_absent() {
        let g = Grid2d::new(3, 3);
        let corner = g.rank_at(0, 0);
        assert_eq!(g.west(corner), None);
        assert_eq!(g.north(corner), None);
        assert_eq!(g.east(corner), Some(g.rank_at(1, 0)));
        assert_eq!(g.south(corner), Some(g.rank_at(0, 1)));
        assert_eq!(g.neighbors(corner).len(), 2);
        let center = g.rank_at(1, 1);
        assert_eq!(g.neighbors(center).len(), 4);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_grid_coords_panic() {
        Grid2d::new(2, 2).coords(Rank::new(4));
    }
}
