//! NAS Parallel Benchmarks CG: conjugate-gradient solver.
//!
//! # Model
//!
//! CG iterates a sparse matrix-vector product whose partial result vectors
//! are exchanged with a transpose partner, followed by two scalar
//! all-reduces (the `rho` and `alpha` dot products). Communication is a
//! small fraction of each iteration (the paper reports only ≈10% ideal
//! speedup at intermediate bandwidth).
//!
//! # Access patterns
//!
//! The exchanged vector is the tail of a running accumulation: every
//! element receives its final value only in the last ~1.5% of the matvec
//! (reduction epilogue). The received vector is consumed whole at the
//! start of the following dot-product/matvec (gather head). Both ends are
//! therefore hostile to automatic overlap in the real trace.

use ovlsim_core::{Instr, Rank, Tag};
use ovlsim_tracer::{Application, TraceContext, TraceError};

use crate::class::ProblemClass;
use crate::error::AppConfigError;
use crate::halo::{exchange, HaloLeg};
use crate::kernels::{consumer_kernel, producer_kernel, ConsumptionShape, ProductionShape};

/// The NAS-CG application model. Build with [`NasCg::builder`].
///
/// # Example
///
/// ```
/// use ovlsim_apps::NasCg;
/// use ovlsim_tracer::{Application, TracingSession};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let app = NasCg::builder().ranks(8).iterations(3).build()?;
/// let bundle = TracingSession::new(&app).run()?;
/// assert_eq!(bundle.original().rank_count(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NasCg {
    ranks: usize,
    iterations: usize,
    matvec_instr: u64,
    vector_bytes: u64,
    accumulate_fraction: f64,
    gather_fraction: f64,
}

impl NasCg {
    /// Starts building a NAS-CG model.
    pub fn builder() -> NasCgBuilder {
        NasCgBuilder::default()
    }

    /// The transpose partner of `rank`.
    pub fn partner(&self, rank: Rank) -> Rank {
        Rank::new(((rank.index() + self.ranks / 2) % self.ranks) as u32)
    }
}

impl Application for NasCg {
    fn name(&self) -> &str {
        "nas-cg"
    }

    fn ranks(&self) -> usize {
        self.ranks
    }

    fn run(&self, rank: Rank, ctx: &mut TraceContext) -> Result<(), TraceError> {
        let partner = self.partner(rank);
        let send_vec = ctx.register_buffer("w-out", self.vector_bytes, 8);
        let recv_vec = ctx.register_buffer("w-in", self.vector_bytes, 8);
        let tag = Tag::new(0);

        for _iter in 0..self.iterations {
            // Matvec: w = A·p. The outgoing partial-sum vector receives its
            // final values only in the reduction epilogue (production tail).
            let gather_instr = ((self.matvec_instr as f64) * self.gather_fraction).round() as u64;
            let matvec = producer_kernel(
                Instr::new(self.matvec_instr - gather_instr),
                &[send_vec],
                ProductionShape::Tail {
                    fraction: self.accumulate_fraction,
                },
            );
            ctx.kernel(&matvec);

            exchange(
                ctx,
                &[HaloLeg {
                    peer: partner,
                    buffer: send_vec,
                    tag,
                }],
                &[HaloLeg {
                    peer: partner,
                    buffer: recv_vec,
                    tag,
                }],
            )?;

            // The local dot-product contribution reads the whole received
            // vector right after the exchange (immediate consumption).
            let dot = consumer_kernel(
                Instr::new(gather_instr.max(1)),
                &[recv_vec],
                ConsumptionShape::Spread,
            );
            ctx.kernel(&dot);

            // rho and alpha dot products.
            ctx.allreduce(8);
            ctx.allreduce(8);
        }
        Ok(())
    }
}

/// Builder for [`NasCg`].
///
/// Defaults: 16 ranks, 10 iterations, 4 000 000-instruction matvec,
/// 102 400-byte vectors, 1.5% accumulation tail, 2% dot-product pass.
#[derive(Debug, Clone)]
pub struct NasCgBuilder {
    class: ProblemClass,
    ranks: usize,
    iterations: usize,
    matvec_instr: u64,
    vector_bytes: u64,
    accumulate_fraction: f64,
    gather_fraction: f64,
}

impl Default for NasCgBuilder {
    fn default() -> Self {
        NasCgBuilder {
            class: ProblemClass::default(),
            ranks: 16,
            iterations: 10,
            matvec_instr: 4_000_000,
            vector_bytes: 102_400,
            accumulate_fraction: 0.015,
            gather_fraction: 0.02,
        }
    }
}

impl NasCgBuilder {
    /// Sets the rank count (must be even, for the transpose pairing).
    pub fn ranks(&mut self, ranks: usize) -> &mut Self {
        self.ranks = ranks;
        self
    }

    /// Sets the iteration count.
    pub fn iterations(&mut self, iterations: usize) -> &mut Self {
        self.iterations = iterations;
        self
    }

    /// Sets the matvec instruction count.
    pub fn matvec_instr(&mut self, instr: u64) -> &mut Self {
        self.matvec_instr = instr;
        self
    }

    /// Sets the exchanged vector size in bytes (multiple of 8).
    pub fn vector_bytes(&mut self, bytes: u64) -> &mut Self {
        self.vector_bytes = bytes;
        self
    }

    /// Applies a NAS-style problem class: scales compute volume and
    /// message sizes together (class A = the calibrated defaults).
    pub fn class(&mut self, class: ProblemClass) -> &mut Self {
        self.class = class;
        self
    }

    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Fails unless `ranks` is even and ≥ 2 and sizes are valid.
    pub fn build(&self) -> Result<NasCg, AppConfigError> {
        if self.ranks < 2 || !self.ranks.is_multiple_of(2) {
            return Err(AppConfigError::BadRankCount {
                ranks: self.ranks,
                requirement: "NAS CG pairing requires an even rank count >= 2",
            });
        }
        if self.matvec_instr == 0 || self.iterations == 0 {
            return Err(AppConfigError::BadParameter {
                name: "matvec_instr/iterations",
                requirement: "must be positive",
            });
        }
        if self.vector_bytes == 0 || !self.vector_bytes.is_multiple_of(8) {
            return Err(AppConfigError::BadParameter {
                name: "vector_bytes",
                requirement: "must be a positive multiple of 8",
            });
        }
        Ok(NasCg {
            ranks: self.ranks,
            iterations: self.iterations,
            matvec_instr: self.class.scale_instr(self.matvec_instr),
            vector_bytes: self.class.scale_bytes(self.vector_bytes),
            accumulate_fraction: self.accumulate_fraction,
            gather_fraction: self.gather_fraction,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlsim_tracer::TracingSession;

    #[test]
    fn partner_is_symmetric() {
        let app = NasCg::builder().ranks(8).build().unwrap();
        for r in 0..8u32 {
            let rank = Rank::new(r);
            assert_eq!(app.partner(app.partner(rank)), rank);
            assert_ne!(app.partner(rank), rank);
        }
    }

    #[test]
    fn traces_and_validates() {
        let app = NasCg::builder().ranks(4).iterations(2).build().unwrap();
        let bundle = TracingSession::new(&app).run().unwrap();
        bundle.overlapped_real();
        bundle.overlapped_linear();
        // 2 allreduces per iteration.
        assert_eq!(
            bundle.original().ranks()[0]
                .iter()
                .filter(|r| r.is_collective())
                .count(),
            4
        );
    }

    #[test]
    fn odd_ranks_rejected() {
        assert!(NasCg::builder().ranks(5).build().is_err());
        assert!(NasCg::builder().ranks(1).build().is_err());
    }
}
