//! Non-blocking halo-exchange idiom shared by the application models.
//!
//! Real stencil codes exchange boundaries with the canonical
//! `MPI_Irecv* / MPI_Isend* / MPI_Waitall` sequence; this helper issues the
//! same pattern through the tracing context.

use ovlsim_core::{BufferId, Rank, Tag};
use ovlsim_tracer::{TraceContext, TraceError};

/// One direction of a halo exchange.
#[derive(Debug, Clone, Copy)]
pub struct HaloLeg {
    /// The peer rank.
    pub peer: Rank,
    /// Buffer sent to (or received from) the peer.
    pub buffer: BufferId,
    /// Message tag.
    pub tag: Tag,
}

/// Performs an `irecv* / isend* / waitall` exchange: posts all receives,
/// then all sends, then completes receives and sends in posting order.
///
/// # Errors
///
/// Propagates any [`TraceError`] from the context (bad peer, empty
/// buffer, …).
pub fn exchange(
    ctx: &mut TraceContext,
    sends: &[HaloLeg],
    recvs: &[HaloLeg],
) -> Result<(), TraceError> {
    let mut recv_handles = Vec::with_capacity(recvs.len());
    for leg in recvs {
        recv_handles.push(ctx.irecv(leg.peer, leg.buffer, leg.tag)?);
    }
    let mut send_handles = Vec::with_capacity(sends.len());
    for leg in sends {
        send_handles.push(ctx.isend(leg.peer, leg.buffer, leg.tag)?);
    }
    for h in recv_handles {
        ctx.wait_recv(h)?;
    }
    for h in send_handles {
        ctx.wait_send(h)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlsim_core::{Instr, RecordKind};

    #[test]
    fn exchange_emits_canonical_sequence() {
        let mut ctx = TraceContext::new(Rank::new(0), 3);
        let to_east = ctx.register_buffer("east-out", 256, 8);
        let from_west = ctx.register_buffer("west-in", 256, 8);
        ctx.compute(Instr::new(100));
        exchange(
            &mut ctx,
            &[HaloLeg {
                peer: Rank::new(1),
                buffer: to_east,
                tag: Tag::new(0),
            }],
            &[HaloLeg {
                peer: Rank::new(2),
                buffer: from_west,
                tag: Tag::new(0),
            }],
        )
        .unwrap();
        let (records, _) = ctx.finish().unwrap();
        let kinds: Vec<RecordKind> = records.iter().map(|r| r.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                RecordKind::Burst,
                RecordKind::IRecv,
                RecordKind::ISend,
                RecordKind::Wait,
                RecordKind::Wait,
            ]
        );
    }

    #[test]
    fn empty_exchange_is_noop() {
        let mut ctx = TraceContext::new(Rank::new(0), 2);
        exchange(&mut ctx, &[], &[]).unwrap();
        let (records, _) = ctx.finish().unwrap();
        assert!(records.is_empty());
    }
}
