//! A fully parameterized synthetic application for controlled studies.
//!
//! The six application models fix their structure to match the codes in
//! the paper; [`Synthetic`] instead exposes every knob — topology,
//! compute/communication ratio, production and consumption shapes — so
//! the environment itself can be studied (sensitivity analyses, property
//! tests, ablations of the overlap mechanisms).

use ovlsim_core::{Instr, Rank, Tag};
use ovlsim_tracer::{Application, TraceContext, TraceError};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::decomp::Grid2d;
use crate::error::AppConfigError;
use crate::halo::{exchange, HaloLeg};
use crate::kernels::{stencil_kernel, ConsumptionShape, ProductionShape};

/// Communication topology of the synthetic app.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Each rank exchanges with its ring successor and predecessor.
    Ring,
    /// 4-neighbor halo on the most nearly square 2-D grid.
    Grid,
    /// Pairwise partner exchange (`rank ^ 1`); requires even ranks.
    Pairs,
}

/// The synthetic application. Build with [`Synthetic::builder`].
///
/// # Example
///
/// ```
/// use ovlsim_apps::{ProductionShape, Synthetic, Topology};
/// use ovlsim_tracer::{Application, TracingSession};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let app = Synthetic::builder()
///     .ranks(4)
///     .topology(Topology::Ring)
///     .compute_instr(100_000)
///     .message_bytes(32_768)
///     .production(ProductionShape::Spread)
///     .build()?;
/// let bundle = TracingSession::new(&app).run()?;
/// assert_eq!(bundle.original().rank_count(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Synthetic {
    ranks: usize,
    topology: Topology,
    iterations: usize,
    compute_instr: u64,
    message_bytes: u64,
    production: ProductionShape,
    consumption: ConsumptionShape,
    allreduce_bytes: Option<u64>,
    imbalance: f64,
    seed: u64,
}

impl Synthetic {
    /// Starts building a synthetic app.
    pub fn builder() -> SyntheticBuilder {
        SyntheticBuilder::default()
    }

    fn peers(&self, rank: Rank) -> Vec<Rank> {
        match self.topology {
            Topology::Ring => {
                let n = self.ranks as u32;
                if n == 1 {
                    return Vec::new();
                }
                if n == 2 {
                    return vec![Rank::new((rank.get() + 1) % 2)];
                }
                vec![
                    Rank::new((rank.get() + 1) % n),
                    Rank::new((rank.get() + n - 1) % n),
                ]
            }
            Topology::Grid => Grid2d::near_square(self.ranks).neighbors(rank),
            Topology::Pairs => vec![Rank::new(rank.get() ^ 1)],
        }
    }
}

impl Application for Synthetic {
    fn name(&self) -> &str {
        "synthetic"
    }

    fn ranks(&self) -> usize {
        self.ranks
    }

    fn run(&self, rank: Rank, ctx: &mut TraceContext) -> Result<(), TraceError> {
        // Deterministic per-rank load factor in [1-imbalance, 1+imbalance].
        let mut rng = StdRng::seed_from_u64(self.seed ^ rank.get() as u64);
        let factor = 1.0 + self.imbalance * (2.0 * rng.random::<f64>() - 1.0);
        let compute_instr = ((self.compute_instr as f64 * factor) as u64).max(1);
        let peers = self.peers(rank);
        let mut outs = Vec::with_capacity(peers.len());
        let mut ins = Vec::with_capacity(peers.len());
        for peer in &peers {
            outs.push(ctx.register_buffer(format!("out-{peer}"), self.message_bytes, 8));
            ins.push(ctx.register_buffer(format!("in-{peer}"), self.message_bytes, 8));
        }
        for _iter in 0..self.iterations {
            let kernel = stencil_kernel(
                Instr::new(compute_instr),
                &ins,
                self.consumption,
                &outs,
                self.production,
            );
            ctx.kernel(&kernel);
            let sends: Vec<HaloLeg> = peers
                .iter()
                .zip(&outs)
                .map(|(peer, buf)| HaloLeg {
                    peer: *peer,
                    buffer: *buf,
                    tag: Tag::new(0),
                })
                .collect();
            let recvs: Vec<HaloLeg> = peers
                .iter()
                .zip(&ins)
                .map(|(peer, buf)| HaloLeg {
                    peer: *peer,
                    buffer: *buf,
                    tag: Tag::new(0),
                })
                .collect();
            exchange(ctx, &sends, &recvs)?;
            if let Some(bytes) = self.allreduce_bytes {
                ctx.allreduce(bytes);
            }
        }
        Ok(())
    }
}

/// Builder for [`Synthetic`].
///
/// Defaults: 8 ranks, ring topology, 4 iterations, 1 000 000-instruction
/// kernels, 65 536-byte messages, spread production/consumption, no
/// all-reduce.
#[derive(Debug, Clone)]
pub struct SyntheticBuilder {
    ranks: usize,
    topology: Topology,
    iterations: usize,
    compute_instr: u64,
    message_bytes: u64,
    production: ProductionShape,
    consumption: ConsumptionShape,
    allreduce_bytes: Option<u64>,
    imbalance: f64,
    seed: u64,
}

impl Default for SyntheticBuilder {
    fn default() -> Self {
        SyntheticBuilder {
            ranks: 8,
            topology: Topology::Ring,
            iterations: 4,
            compute_instr: 1_000_000,
            message_bytes: 65_536,
            production: ProductionShape::Spread,
            consumption: ConsumptionShape::Spread,
            allreduce_bytes: None,
            imbalance: 0.0,
            seed: 1,
        }
    }
}

impl SyntheticBuilder {
    /// Sets the rank count.
    pub fn ranks(&mut self, ranks: usize) -> &mut Self {
        self.ranks = ranks;
        self
    }

    /// Sets the topology.
    pub fn topology(&mut self, topology: Topology) -> &mut Self {
        self.topology = topology;
        self
    }

    /// Sets the iteration count.
    pub fn iterations(&mut self, iterations: usize) -> &mut Self {
        self.iterations = iterations;
        self
    }

    /// Sets the per-iteration kernel instruction count.
    pub fn compute_instr(&mut self, instr: u64) -> &mut Self {
        self.compute_instr = instr;
        self
    }

    /// Sets the per-peer message size in bytes (multiple of 8).
    pub fn message_bytes(&mut self, bytes: u64) -> &mut Self {
        self.message_bytes = bytes;
        self
    }

    /// Sets the production shape.
    pub fn production(&mut self, shape: ProductionShape) -> &mut Self {
        self.production = shape;
        self
    }

    /// Sets the consumption shape.
    pub fn consumption(&mut self, shape: ConsumptionShape) -> &mut Self {
        self.consumption = shape;
        self
    }

    /// Adds a per-iteration all-reduce of `bytes`.
    pub fn allreduce_bytes(&mut self, bytes: Option<u64>) -> &mut Self {
        self.allreduce_bytes = bytes;
        self
    }

    /// Sets the per-rank load imbalance: each rank's kernel size is drawn
    /// deterministically from `[1-f, 1+f] × compute_instr`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= f < 1.0`.
    pub fn imbalance(&mut self, f: f64) -> &mut Self {
        assert!((0.0..1.0).contains(&f), "imbalance must be in [0, 1)");
        self.imbalance = f;
        self
    }

    /// Sets the seed for the imbalance draw.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Builds the synthetic app.
    ///
    /// # Errors
    ///
    /// Fails on invalid sizes or a `Pairs` topology with odd ranks.
    pub fn build(&self) -> Result<Synthetic, AppConfigError> {
        if self.ranks == 0 {
            return Err(AppConfigError::BadRankCount {
                ranks: self.ranks,
                requirement: "must be positive",
            });
        }
        if self.topology == Topology::Pairs && !self.ranks.is_multiple_of(2) {
            return Err(AppConfigError::BadRankCount {
                ranks: self.ranks,
                requirement: "pairs topology requires an even rank count",
            });
        }
        if self.iterations == 0 || self.compute_instr == 0 {
            return Err(AppConfigError::BadParameter {
                name: "iterations/compute_instr",
                requirement: "must be positive",
            });
        }
        if self.message_bytes == 0 || !self.message_bytes.is_multiple_of(8) {
            return Err(AppConfigError::BadParameter {
                name: "message_bytes",
                requirement: "must be a positive multiple of 8",
            });
        }
        Ok(Synthetic {
            ranks: self.ranks,
            topology: self.topology,
            iterations: self.iterations,
            compute_instr: self.compute_instr,
            message_bytes: self.message_bytes,
            production: self.production,
            consumption: self.consumption,
            allreduce_bytes: self.allreduce_bytes,
            imbalance: self.imbalance,
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlsim_tracer::TracingSession;

    #[test]
    fn all_topologies_trace() {
        for topo in [Topology::Ring, Topology::Grid, Topology::Pairs] {
            let app = Synthetic::builder()
                .ranks(4)
                .topology(topo)
                .iterations(2)
                .build()
                .unwrap();
            let bundle = TracingSession::new(&app).run().unwrap();
            bundle.overlapped_real();
            bundle.overlapped_linear();
        }
    }

    #[test]
    fn two_rank_ring_has_single_peer() {
        let app = Synthetic::builder().ranks(2).build().unwrap();
        assert_eq!(app.peers(Rank::new(0)), vec![Rank::new(1)]);
    }

    #[test]
    fn pairs_requires_even() {
        assert!(Synthetic::builder()
            .ranks(5)
            .topology(Topology::Pairs)
            .build()
            .is_err());
    }

    #[test]
    fn single_rank_ring_is_quiet() {
        let app = Synthetic::builder().ranks(1).build().unwrap();
        let bundle = TracingSession::new(&app).run().unwrap();
        assert_eq!(bundle.original().total_p2p_send_bytes(), 0);
    }

    #[test]
    fn imbalance_varies_rank_compute() {
        let app = Synthetic::builder()
            .ranks(8)
            .imbalance(0.4)
            .iterations(1)
            .build()
            .unwrap();
        let bundle = ovlsim_tracer::TracingSession::new(&app).run().unwrap();
        let totals: Vec<u64> = bundle
            .original()
            .ranks()
            .iter()
            .map(|t| t.total_instr().get())
            .collect();
        let min = *totals.iter().min().unwrap();
        let max = *totals.iter().max().unwrap();
        assert!(
            max > min,
            "imbalance should differentiate ranks: {totals:?}"
        );
        // Deterministic across builds.
        let again = Synthetic::builder()
            .ranks(8)
            .imbalance(0.4)
            .iterations(1)
            .build()
            .unwrap();
        let bundle2 = ovlsim_tracer::TracingSession::new(&again).run().unwrap();
        assert_eq!(
            totals,
            bundle2
                .original()
                .ranks()
                .iter()
                .map(|t| t.total_instr().get())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn balanced_by_default() {
        let app = Synthetic::builder().ranks(4).iterations(1).build().unwrap();
        let bundle = ovlsim_tracer::TracingSession::new(&app).run().unwrap();
        let totals: Vec<u64> = bundle
            .original()
            .ranks()
            .iter()
            .map(|t| t.total_instr().get())
            .collect();
        assert!(totals.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn allreduce_option_recorded() {
        let app = Synthetic::builder()
            .ranks(2)
            .iterations(3)
            .allreduce_bytes(Some(16))
            .build()
            .unwrap();
        let bundle = TracingSession::new(&app).run().unwrap();
        let collectives = bundle.original().ranks()[0]
            .iter()
            .filter(|r| r.is_collective())
            .count();
        assert_eq!(collectives, 3);
    }
}
