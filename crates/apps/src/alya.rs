//! Alya: an unstructured finite-element multiphysics code (BSC).
//!
//! # Model
//!
//! Alya partitions an unstructured mesh, so each rank talks to an
//! irregular set of neighbors with heterogeneous interface sizes. Per
//! iteration: an element-assembly kernel, an interface exchange with every
//! mesh neighbor, a solver kernel, and two dot-product all-reduces.
//!
//! The neighbor graph and interface sizes are generated deterministically
//! from a seed (every rank computes the same graph), standing in for a
//! METIS-style partition of a real mesh.
//!
//! # Access patterns
//!
//! Interface values are *accumulated* during element assembly: a boundary
//! node's value is final only after its last contributing element, and
//! Alya then gathers the interface nodes into contiguous exchange buffers.
//! Production therefore lands in the trailing ~10% of assembly.
//! Consumption is a scatter-add performed immediately after the waits
//! (leading ~5%).

use ovlsim_core::{BufferId, Instr, Rank, Tag};
use ovlsim_tracer::{Application, TraceContext, TraceError};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::class::ProblemClass;
use crate::error::AppConfigError;
use crate::halo::{exchange, HaloLeg};
use crate::kernels::{consumer_kernel, producer_kernel, ConsumptionShape, ProductionShape};

/// The Alya application model. Build with [`Alya::builder`].
///
/// # Example
///
/// ```
/// use ovlsim_apps::Alya;
/// use ovlsim_tracer::{Application, TracingSession};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let app = Alya::builder().ranks(8).seed(7).build()?;
/// let bundle = TracingSession::new(&app).run()?;
/// assert_eq!(bundle.original().rank_count(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Alya {
    ranks: usize,
    iterations: usize,
    assembly_instr: u64,
    solve_instr: u64,
    assembly_fraction: f64,
    scatter_fraction: f64,
    /// `neighbors[r]` = sorted `(peer, interface_bytes)` pairs.
    neighbors: Vec<Vec<(Rank, u64)>>,
}

impl Alya {
    /// Starts building an Alya model.
    pub fn builder() -> AlyaBuilder {
        AlyaBuilder::default()
    }

    /// The (deterministic) neighbor list of a rank.
    pub fn neighbors(&self, rank: Rank) -> &[(Rank, u64)] {
        &self.neighbors[rank.index()]
    }
}

/// Builds a symmetric random neighbor graph with expected degree
/// `degree` and interface sizes in `[base/2, 3·base/2]`, rounded to 8.
fn build_graph(ranks: usize, degree: usize, base_bytes: u64, seed: u64) -> Vec<Vec<(Rank, u64)>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut neighbors: Vec<Vec<(Rank, u64)>> = vec![Vec::new(); ranks];
    if ranks < 2 {
        return neighbors;
    }
    // A ring backbone guarantees everyone has at least two neighbors.
    for r in 0..ranks {
        let next = (r + 1) % ranks;
        let bytes = sized(&mut rng, base_bytes);
        neighbors[r].push((Rank::new(next as u32), bytes));
        neighbors[next].push((Rank::new(r as u32), bytes));
    }
    // Extra random edges up to the requested expected degree.
    let p = (degree.saturating_sub(2)) as f64 / (ranks.saturating_sub(1)) as f64;
    for i in 0..ranks {
        for j in (i + 2)..ranks {
            if (i == 0 && j == ranks - 1) || ranks == 2 {
                continue; // already a ring edge
            }
            if rng.random::<f64>() < p {
                let bytes = sized(&mut rng, base_bytes);
                neighbors[i].push((Rank::new(j as u32), bytes));
                neighbors[j].push((Rank::new(i as u32), bytes));
            }
        }
    }
    for list in &mut neighbors {
        list.sort_by_key(|(r, _)| *r);
    }
    neighbors
}

fn sized(rng: &mut StdRng, base: u64) -> u64 {
    let f = 0.5 + rng.random::<f64>();
    (((base as f64 * f) as u64) / 8).max(1) * 8
}

impl Application for Alya {
    fn name(&self) -> &str {
        "alya"
    }

    fn ranks(&self) -> usize {
        self.ranks
    }

    fn run(&self, rank: Rank, ctx: &mut TraceContext) -> Result<(), TraceError> {
        let peers = self.neighbors(rank);
        let mut outs: Vec<BufferId> = Vec::with_capacity(peers.len());
        let mut ins: Vec<BufferId> = Vec::with_capacity(peers.len());
        for (peer, bytes) in peers {
            outs.push(ctx.register_buffer(format!("iface-out-{peer}"), *bytes, 8));
            ins.push(ctx.register_buffer(format!("iface-in-{peer}"), *bytes, 8));
        }

        for _iter in 0..self.iterations {
            // Element assembly: interface values are accumulated across
            // contributing elements, so they finalize late (tail).
            let scatter_instr = ((self.assembly_instr as f64) * self.scatter_fraction)
                .round()
                .max(1.0) as u64;
            let kernel = producer_kernel(
                Instr::new(self.assembly_instr - scatter_instr),
                &outs,
                ProductionShape::Tail {
                    fraction: self.assembly_fraction,
                },
            );
            ctx.kernel(&kernel);

            let sends: Vec<HaloLeg> = peers
                .iter()
                .zip(&outs)
                .map(|((peer, _), buf)| HaloLeg {
                    peer: *peer,
                    buffer: *buf,
                    tag: Tag::new(0),
                })
                .collect();
            let recvs: Vec<HaloLeg> = peers
                .iter()
                .zip(&ins)
                .map(|((peer, _), buf)| HaloLeg {
                    peer: *peer,
                    buffer: *buf,
                    tag: Tag::new(0),
                })
                .collect();
            exchange(ctx, &sends, &recvs)?;

            // Scatter-add of received contributions right after the waits.
            ctx.kernel(&consumer_kernel(
                Instr::new(scatter_instr),
                &ins,
                ConsumptionShape::Spread,
            ));

            // Krylov solver step + dot products.
            ctx.compute(Instr::new(self.solve_instr));
            ctx.allreduce(8);
            ctx.allreduce(8);
        }
        Ok(())
    }
}

/// Builder for [`Alya`].
///
/// Defaults: 16 ranks, 3 iterations, 4 000 000-instruction assembly,
/// 2 000 000-instruction solve, expected degree 5, 61 440-byte base
/// interfaces, seed 42.
#[derive(Debug, Clone)]
pub struct AlyaBuilder {
    class: ProblemClass,
    ranks: usize,
    iterations: usize,
    assembly_instr: u64,
    solve_instr: u64,
    degree: usize,
    base_bytes: u64,
    seed: u64,
    assembly_fraction: f64,
    scatter_fraction: f64,
}

impl Default for AlyaBuilder {
    fn default() -> Self {
        AlyaBuilder {
            class: ProblemClass::default(),
            ranks: 16,
            iterations: 3,
            assembly_instr: 4_000_000,
            solve_instr: 2_000_000,
            degree: 5,
            base_bytes: 61_440,
            seed: 42,
            assembly_fraction: 0.10,
            scatter_fraction: 0.05,
        }
    }
}

impl AlyaBuilder {
    /// Sets the rank count.
    pub fn ranks(&mut self, ranks: usize) -> &mut Self {
        self.ranks = ranks;
        self
    }

    /// Sets the iteration count.
    pub fn iterations(&mut self, iterations: usize) -> &mut Self {
        self.iterations = iterations;
        self
    }

    /// Sets the partition seed (same seed ⇒ same mesh graph).
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the expected neighbor degree.
    pub fn degree(&mut self, degree: usize) -> &mut Self {
        self.degree = degree;
        self
    }

    /// Sets the base interface size in bytes.
    pub fn base_bytes(&mut self, bytes: u64) -> &mut Self {
        self.base_bytes = bytes;
        self
    }

    /// Sets the assembly kernel instruction count.
    pub fn assembly_instr(&mut self, instr: u64) -> &mut Self {
        self.assembly_instr = instr;
        self
    }

    /// Applies a NAS-style problem class: scales compute volume and
    /// message sizes together (class A = the calibrated defaults).
    pub fn class(&mut self, class: ProblemClass) -> &mut Self {
        self.class = class;
        self
    }

    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Fails on degenerate parameters (fewer than 2 ranks, zero sizes).
    pub fn build(&self) -> Result<Alya, AppConfigError> {
        if self.ranks < 2 {
            return Err(AppConfigError::BadRankCount {
                ranks: self.ranks,
                requirement: "unstructured mesh needs at least 2 ranks",
            });
        }
        if self.iterations == 0 || self.assembly_instr == 0 {
            return Err(AppConfigError::BadParameter {
                name: "iterations/assembly_instr",
                requirement: "must be positive",
            });
        }
        if self.base_bytes < 8 {
            return Err(AppConfigError::BadParameter {
                name: "base_bytes",
                requirement: "must be at least 8",
            });
        }
        Ok(Alya {
            ranks: self.ranks,
            iterations: self.iterations,
            assembly_instr: self.class.scale_instr(self.assembly_instr),
            solve_instr: self.class.scale_instr(self.solve_instr),
            assembly_fraction: self.assembly_fraction,
            scatter_fraction: self.scatter_fraction,
            neighbors: build_graph(
                self.ranks,
                self.degree,
                self.class.scale_bytes(self.base_bytes),
                self.seed,
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlsim_tracer::TracingSession;

    #[test]
    fn graph_is_symmetric_and_deterministic() {
        let a = Alya::builder().ranks(12).seed(7).build().unwrap();
        let b = Alya::builder().ranks(12).seed(7).build().unwrap();
        let c = Alya::builder().ranks(12).seed(8).build().unwrap();
        for r in 0..12u32 {
            let rank = Rank::new(r);
            assert_eq!(a.neighbors(rank), b.neighbors(rank));
            // Symmetry: if (r -> p, bytes) then (p -> r, bytes).
            for (peer, bytes) in a.neighbors(rank) {
                assert!(a
                    .neighbors(*peer)
                    .iter()
                    .any(|(q, b2)| *q == rank && b2 == bytes));
            }
            // Everyone has at least the ring neighbors.
            assert!(a.neighbors(rank).len() >= 2);
        }
        // Different seeds give different graphs (with high probability).
        let differs = (0..12u32).any(|r| a.neighbors(Rank::new(r)) != c.neighbors(Rank::new(r)));
        assert!(differs);
    }

    #[test]
    fn interface_sizes_are_aligned() {
        let a = Alya::builder().ranks(8).build().unwrap();
        for r in 0..8u32 {
            for (_, bytes) in a.neighbors(Rank::new(r)) {
                assert_eq!(bytes % 8, 0);
                assert!(*bytes > 0);
            }
        }
    }

    #[test]
    fn traces_and_validates() {
        let app = Alya::builder().ranks(6).iterations(2).build().unwrap();
        let bundle = TracingSession::new(&app).run().unwrap();
        bundle.overlapped_real();
        bundle.overlapped_linear();
    }

    #[test]
    fn two_rank_mesh_works() {
        let app = Alya::builder().ranks(2).build().unwrap();
        let bundle = TracingSession::new(&app).run().unwrap();
        assert!(bundle.original().total_p2p_send_bytes() > 0);
    }
}
