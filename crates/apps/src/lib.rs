//! Application models for `ovlsim`: the six codes the paper evaluates plus
//! a fully parameterized synthetic app.
//!
//! The paper traces real MPI applications under Valgrind; this crate
//! substitutes deterministic *models* of the same codes. Each model
//! reproduces the three properties the environment actually consumes:
//!
//! 1. the communication topology and per-message sizes,
//! 2. the per-iteration computation volume (instruction counts), and
//! 3. the **memory access order** over communication buffers — when each
//!    byte of a send buffer receives its final value (production) and when
//!    each byte of a receive buffer is first read (consumption).
//!
//! Property 3 is the paper's central subject: legacy codes pack send
//! buffers immediately before the send and unpack immediately after the
//! receive, which concentrates production at the end and consumption at
//! the beginning of the adjacent bursts and defeats automatic overlap.
//! Each model documents its measured shape in its module docs.
//!
//! | Model | Topology | Real pattern | Paper ideal speedup |
//! |---|---|---|---|
//! | [`NasBt`] | square grid, 3 ADI sweeps | pack/unpack ≈3% | ≈30% |
//! | [`NasCg`] | transpose pairs + allreduce | accumulate tail 15%, gather head 10% | ≈10% |
//! | [`Pop`] | 4-halo + frequent allreduce | pack/unpack ≈4% | ≈10% |
//! | [`Alya`] | random mesh graph | assembly tail 25%, scatter head 5% | ≈40% |
//! | [`Specfem`] | 4-halo, large interfaces | pack/unpack ≈4% | ≈65% |
//! | [`Sweep3d`] | 2-D wavefront pipeline | flux fix-up tail 5% | ≈160% |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alya;
pub mod calibration;
mod class;
mod decomp;
mod error;
mod halo;
mod kernels;
mod nas_bt;
mod nas_cg;
mod pop;
pub mod registry;
mod specfem;
mod sweep3d;
mod synthetic;

pub use alya::{Alya, AlyaBuilder};
pub use class::{ProblemClass, UnknownClassError};
pub use decomp::Grid2d;
pub use error::AppConfigError;
pub use halo::{exchange, HaloLeg};
pub use kernels::{
    consumer_kernel, producer_kernel, stencil_kernel, ConsumptionShape, ProductionShape,
};
pub use nas_bt::{NasBt, NasBtBuilder};
pub use nas_cg::{NasCg, NasCgBuilder};
pub use pop::{Pop, PopBuilder};
pub use specfem::{Specfem, SpecfemBuilder};
pub use sweep3d::{Sweep3d, Sweep3dBuilder};
pub use synthetic::{Synthetic, SyntheticBuilder, Topology};

use ovlsim_tracer::Application;

/// Constructs every paper application with its default (calibrated)
/// parameters, for use by the experiment suite.
pub fn paper_apps() -> Vec<Box<dyn Application>> {
    vec![
        Box::new(NasBt::builder().build().expect("default NAS-BT is valid")),
        Box::new(NasCg::builder().build().expect("default NAS-CG is valid")),
        Box::new(Pop::builder().build().expect("default POP is valid")),
        Box::new(Alya::builder().build().expect("default Alya is valid")),
        Box::new(
            Specfem::builder()
                .build()
                .expect("default SPECFEM is valid"),
        ),
        Box::new(
            Sweep3d::builder()
                .build()
                .expect("default Sweep3D is valid"),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_apps_match_calibration_targets() {
        let apps = paper_apps();
        assert_eq!(apps.len(), 6);
        for app in &apps {
            assert!(
                calibration::target_for(app.name()).is_some(),
                "no calibration target for {}",
                app.name()
            );
            assert!(app.ranks() >= 2);
        }
    }
}
