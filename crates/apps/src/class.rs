//! NAS-style problem classes: named size presets for the application
//! models.
//!
//! The NAS Parallel Benchmarks ship with problem classes (S, W, A, B, …)
//! that scale grid sizes; the paper evaluates the full codes at
//! MareNostrum-relevant sizes. [`ProblemClass`] provides the same
//! convention for every model in this crate: the default builders
//! correspond to [`ProblemClass::A`] (the calibrated size), and the other
//! classes scale compute volume and message sizes together so the
//! comm/comp ratio — and therefore the overlap behaviour — is preserved
//! while total cost changes.

/// A named problem-size preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProblemClass {
    /// Sample size: ~8× smaller than A (fast unit tests).
    S,
    /// Workstation size: ~2× smaller than A.
    W,
    /// The calibrated reference size (the builders' default).
    #[default]
    A,
    /// ~4× larger than A.
    B,
}

impl ProblemClass {
    /// Multiplier applied to per-kernel instruction counts.
    pub fn compute_scale(self) -> f64 {
        match self {
            ProblemClass::S => 0.125,
            ProblemClass::W => 0.5,
            ProblemClass::A => 1.0,
            ProblemClass::B => 4.0,
        }
    }

    /// Multiplier applied to message sizes. Surface-to-volume scaling:
    /// messages grow as the 2/3 power of compute.
    pub fn message_scale(self) -> f64 {
        self.compute_scale().powf(2.0 / 3.0)
    }

    /// Scales an instruction count, keeping it positive.
    pub fn scale_instr(self, instr: u64) -> u64 {
        ((instr as f64 * self.compute_scale()).round() as u64).max(1)
    }

    /// Scales a byte count, keeping it a positive multiple of 8.
    pub fn scale_bytes(self, bytes: u64) -> u64 {
        (((bytes as f64 * self.message_scale()) as u64) / 8).max(1) * 8
    }
}

/// Error from parsing a [`ProblemClass`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownClassError(String);

impl std::fmt::Display for UnknownClassError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown problem class `{}` (want S, W, A or B)", self.0)
    }
}

impl std::error::Error for UnknownClassError {}

impl std::str::FromStr for ProblemClass {
    type Err = UnknownClassError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "S" => Ok(ProblemClass::S),
            "W" => Ok(ProblemClass::W),
            "A" => Ok(ProblemClass::A),
            "B" => Ok(ProblemClass::B),
            other => Err(UnknownClassError(other.to_string())),
        }
    }
}

impl std::fmt::Display for ProblemClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = match self {
            ProblemClass::S => 'S',
            ProblemClass::W => 'W',
            ProblemClass::A => 'A',
            ProblemClass::B => 'B',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_a_is_identity() {
        assert_eq!(ProblemClass::A.scale_instr(1_000_000), 1_000_000);
        assert_eq!(ProblemClass::A.scale_bytes(76_800), 76_800);
        assert_eq!(ProblemClass::default(), ProblemClass::A);
    }

    #[test]
    fn classes_order_by_size() {
        let classes = [
            ProblemClass::S,
            ProblemClass::W,
            ProblemClass::A,
            ProblemClass::B,
        ];
        for w in classes.windows(2) {
            assert!(w[0].compute_scale() < w[1].compute_scale());
            assert!(w[0].message_scale() < w[1].message_scale());
        }
    }

    #[test]
    fn surface_to_volume_scaling() {
        // Messages grow slower than compute: class B has 4x compute but
        // only ~2.5x messages.
        let b = ProblemClass::B;
        assert_eq!(b.scale_instr(100), 400);
        let msg = b.scale_bytes(80_000);
        assert!(msg > 160_000 && msg < 220_000, "got {msg}");
    }

    #[test]
    fn scaled_bytes_stay_aligned_and_positive() {
        for class in [ProblemClass::S, ProblemClass::W, ProblemClass::B] {
            for bytes in [8u64, 64, 1000, 76_800] {
                let s = class.scale_bytes(bytes);
                assert!(s >= 8);
                assert_eq!(s % 8, 0);
            }
            assert!(class.scale_instr(1) >= 1);
        }
    }

    #[test]
    fn display_single_letter() {
        assert_eq!(format!("{}", ProblemClass::S), "S");
        assert_eq!(format!("{}", ProblemClass::B), "B");
    }

    #[test]
    fn parse_roundtrips_display() {
        for class in [
            ProblemClass::S,
            ProblemClass::W,
            ProblemClass::A,
            ProblemClass::B,
        ] {
            assert_eq!(class.to_string().parse::<ProblemClass>(), Ok(class));
        }
        let err = "C".parse::<ProblemClass>().unwrap_err();
        assert!(err.to_string().contains("unknown problem class `C`"));
        assert!("a".parse::<ProblemClass>().is_err());
    }
}
