//! NAS Parallel Benchmarks BT: block-tridiagonal ADI solver.
//!
//! # Model
//!
//! BT runs on a square process grid and performs, per time step, three
//! alternating-direction implicit (ADI) sweeps (x, y, z). Each sweep is a
//! large block-tridiagonal solve followed by a boundary exchange with the
//! two neighbors in the sweep direction (the z sweep is mapped onto the x
//! neighbors with distinct tags, matching the multi-partition layout's
//! communication volume).
//!
//! # Access patterns
//!
//! The real code copies each outgoing face into a contiguous send buffer
//! with a tight pack loop immediately before `MPI_Isend`, and unpacks the
//! received halo right after the wait — so production concentrates in the
//! trailing ~3% of each sweep and consumption in the leading ~3% of the
//! next. That is exactly the pattern the paper finds to make real-trace
//! automatic overlap "negligible"; the linear mode recovers the ideal
//! spread and the paper's ≈30% intermediate-bandwidth speedup.

use ovlsim_core::{Instr, Rank, Tag};
use ovlsim_tracer::{Application, TraceContext, TraceError};

use crate::class::ProblemClass;
use crate::decomp::Grid2d;
use crate::error::AppConfigError;
use crate::halo::{exchange, HaloLeg};
use crate::kernels::{consumer_kernel, producer_kernel, ConsumptionShape, ProductionShape};

/// The NAS-BT application model. Build with [`NasBt::builder`].
///
/// # Example
///
/// ```
/// use ovlsim_apps::NasBt;
/// use ovlsim_tracer::{Application, TracingSession};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let app = NasBt::builder().ranks(4).iterations(2).build()?;
/// let bundle = TracingSession::new(&app).run()?;
/// assert!(bundle.original().total_p2p_send_bytes() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NasBt {
    grid: Grid2d,
    iterations: usize,
    sweep_instr: u64,
    face_bytes: u64,
    pack_fraction: f64,
    unpack_fraction: f64,
}

impl NasBt {
    /// Starts building a NAS-BT model.
    pub fn builder() -> NasBtBuilder {
        NasBtBuilder::default()
    }

    /// The process grid.
    pub fn grid(&self) -> Grid2d {
        self.grid
    }

    /// Bytes per face message.
    pub fn face_bytes(&self) -> u64 {
        self.face_bytes
    }
}

impl Application for NasBt {
    fn name(&self) -> &str {
        "nas-bt"
    }

    fn ranks(&self) -> usize {
        self.grid.ranks()
    }

    fn run(&self, rank: Rank, ctx: &mut TraceContext) -> Result<(), TraceError> {
        // Per sweep direction: outgoing and incoming halo buffers toward
        // the two neighbors of that direction.
        let mut bufs = Vec::new();
        for sweep in ["x", "y", "z"] {
            let mk = |ctx: &mut TraceContext, what: &str, side: &str| {
                ctx.register_buffer(format!("{sweep}-{what}-{side}"), self.face_bytes, 8)
            };
            bufs.push((
                [mk(ctx, "out", "lo"), mk(ctx, "out", "hi")],
                [mk(ctx, "in", "lo"), mk(ctx, "in", "hi")],
            ));
        }

        for _iter in 0..self.iterations {
            for (sweep_idx, (outs, ins)) in bufs.iter().enumerate() {
                // z sweep reuses the x-direction neighbors (multi-partition
                // communication volume) under distinct tags.
                let (lo, hi) = match sweep_idx {
                    1 => (self.grid.north(rank), self.grid.south(rank)),
                    _ => (self.grid.west(rank), self.grid.east(rank)),
                };
                let tag = Tag::new(sweep_idx as u64);

                // The ADI solve for this direction produces the outgoing
                // faces; the real code fills the contiguous send buffers
                // with a pack loop at the very end (production tail).
                let unpack_instr =
                    ((self.sweep_instr as f64) * self.unpack_fraction).round() as u64;
                let solve = producer_kernel(
                    Instr::new(self.sweep_instr - unpack_instr),
                    &outs[..],
                    ProductionShape::Tail {
                        fraction: self.pack_fraction,
                    },
                );
                ctx.kernel(&solve);

                let mut sends = Vec::new();
                let mut recvs = Vec::new();
                if let Some(peer) = lo {
                    sends.push(HaloLeg {
                        peer,
                        buffer: outs[0],
                        tag,
                    });
                    recvs.push(HaloLeg {
                        peer,
                        buffer: ins[0],
                        tag,
                    });
                }
                if let Some(peer) = hi {
                    sends.push(HaloLeg {
                        peer,
                        buffer: outs[1],
                        tag,
                    });
                    recvs.push(HaloLeg {
                        peer,
                        buffer: ins[1],
                        tag,
                    });
                }
                exchange(ctx, &sends, &recvs)?;

                // The unpack loop drains the receive buffers immediately
                // after the waits — the consumption pattern that defeats
                // late chunk waits in the real trace.
                let unpack = consumer_kernel(
                    Instr::new(unpack_instr.max(1)),
                    &ins[..],
                    ConsumptionShape::Spread,
                );
                ctx.kernel(&unpack);
            }
            // Residual norm.
            ctx.allreduce(8);
        }
        Ok(())
    }
}

/// Builder for [`NasBt`].
///
/// Defaults: 16 ranks (4×4), 4 iterations, 2 000 000 instructions per
/// sweep, 76 800-byte faces, 3% pack/unpack passes.
#[derive(Debug, Clone)]
pub struct NasBtBuilder {
    class: ProblemClass,
    ranks: usize,
    iterations: usize,
    sweep_instr: u64,
    face_bytes: u64,
    pack_fraction: f64,
    unpack_fraction: f64,
}

impl Default for NasBtBuilder {
    fn default() -> Self {
        NasBtBuilder {
            class: ProblemClass::default(),
            ranks: 16,
            iterations: 4,
            sweep_instr: 2_000_000,
            face_bytes: 76_800,
            pack_fraction: 0.03,
            unpack_fraction: 0.03,
        }
    }
}

impl NasBtBuilder {
    /// Sets the rank count (must be a perfect square, as in NAS BT).
    pub fn ranks(&mut self, ranks: usize) -> &mut Self {
        self.ranks = ranks;
        self
    }

    /// Sets the number of time steps.
    pub fn iterations(&mut self, iterations: usize) -> &mut Self {
        self.iterations = iterations;
        self
    }

    /// Sets the instructions per ADI sweep.
    pub fn sweep_instr(&mut self, instr: u64) -> &mut Self {
        self.sweep_instr = instr;
        self
    }

    /// Sets the face message size in bytes (must be a multiple of 8).
    pub fn face_bytes(&mut self, bytes: u64) -> &mut Self {
        self.face_bytes = bytes;
        self
    }

    /// Sets the pack-pass fraction.
    pub fn pack_fraction(&mut self, fraction: f64) -> &mut Self {
        self.pack_fraction = fraction;
        self
    }

    /// Sets the unpack-pass fraction.
    pub fn unpack_fraction(&mut self, fraction: f64) -> &mut Self {
        self.unpack_fraction = fraction;
        self
    }

    /// Applies a NAS-style problem class: scales compute volume and
    /// message sizes together (class A = the calibrated defaults).
    pub fn class(&mut self, class: ProblemClass) -> &mut Self {
        self.class = class;
        self
    }

    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Fails unless `ranks` is a perfect square and all parameters are in
    /// range.
    pub fn build(&self) -> Result<NasBt, AppConfigError> {
        let grid = Grid2d::square(self.ranks).ok_or(AppConfigError::BadRankCount {
            ranks: self.ranks,
            requirement: "NAS BT requires a perfect-square rank count",
        })?;
        if self.sweep_instr == 0 || self.iterations == 0 {
            return Err(AppConfigError::BadParameter {
                name: "sweep_instr/iterations",
                requirement: "must be positive",
            });
        }
        if self.face_bytes == 0 || !self.face_bytes.is_multiple_of(8) {
            return Err(AppConfigError::BadParameter {
                name: "face_bytes",
                requirement: "must be a positive multiple of 8",
            });
        }
        for (name, f) in [
            ("pack_fraction", self.pack_fraction),
            ("unpack_fraction", self.unpack_fraction),
        ] {
            if !(f > 0.0 && f < 1.0) {
                return Err(AppConfigError::BadParameter {
                    name: if name == "pack_fraction" {
                        "pack_fraction"
                    } else {
                        "unpack_fraction"
                    },
                    requirement: "must be in (0, 1)",
                });
            }
        }
        Ok(NasBt {
            grid,
            iterations: self.iterations,
            sweep_instr: self.class.scale_instr(self.sweep_instr),
            face_bytes: self.class.scale_bytes(self.face_bytes),
            pack_fraction: self.pack_fraction,
            unpack_fraction: self.unpack_fraction,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlsim_tracer::TracingSession;

    #[test]
    fn requires_square_rank_count() {
        assert!(NasBt::builder().ranks(15).build().is_err());
        assert!(NasBt::builder().ranks(16).build().is_ok());
        assert!(NasBt::builder().ranks(1).build().is_ok());
    }

    #[test]
    fn traces_all_modes() {
        let app = NasBt::builder().ranks(4).iterations(2).build().unwrap();
        let bundle = TracingSession::new(&app).run().unwrap();
        bundle.overlapped_real();
        bundle.overlapped_linear();
    }

    #[test]
    fn production_is_packed_tail() {
        let app = NasBt::builder().ranks(4).iterations(1).build().unwrap();
        let bundle = TracingSession::new(&app).run().unwrap();
        let send = bundle.metas()[0].sends.first().expect("sends exist");
        let prof = send.production.as_ref().unwrap();
        // First chunk only ready in the last ~3% of the sweep window: its
        // ready instant is within 4% of the full-production instant.
        let first = prof.ready_at(0..1024).get() as f64;
        let full = prof.fully_ready_at().get() as f64;
        assert!(first >= full * 0.96, "pack loop should finalize late");
    }

    #[test]
    fn parameter_validation() {
        assert!(NasBt::builder().face_bytes(100).build().is_err()); // not /8
        assert!(NasBt::builder().sweep_instr(0).build().is_err());
        assert!(NasBt::builder().pack_fraction(0.0).build().is_err());
    }

    #[test]
    fn interior_rank_exchanges_in_three_directions() {
        let app = NasBt::builder().ranks(16).iterations(1).build().unwrap();
        let bundle = TracingSession::new(&app).run().unwrap();
        // Rank 5 = (1,1) interior on a 4x4 grid: x sweep 2 msgs, y sweep
        // 2 msgs, z sweep 2 msgs.
        let sends = &bundle.metas()[5].sends;
        assert_eq!(sends.len(), 6);
    }
}
