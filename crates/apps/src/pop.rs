//! POP: the Parallel Ocean Program.
//!
//! # Model
//!
//! Each time step couples a compute-heavy *baroclinic* stage (3-D physics,
//! one 4-neighbor halo exchange of moderate size) with a latency-sensitive
//! *barotropic* solver: several iterations of a small 2-D stencil, a thin
//! halo exchange, and a global 8-byte all-reduce (the conjugate-gradient
//! dot product of the free-surface solver). The frequent all-reduces and
//! thin halos leave little room for overlap — the paper reports ≈10%
//! ideal-pattern speedup.
//!
//! # Access patterns
//!
//! POP packs ghost-cell columns into contiguous buffers right before the
//! sends and unpacks immediately after the waits (`boundary_2d` routines):
//! production tail / consumption head, as with the other legacy codes.

use ovlsim_core::{Instr, Rank, Tag};
use ovlsim_tracer::{Application, TraceContext, TraceError};

use crate::class::ProblemClass;
use crate::decomp::Grid2d;
use crate::error::AppConfigError;
use crate::halo::{exchange, HaloLeg};
use crate::kernels::{consumer_kernel, producer_kernel, ConsumptionShape, ProductionShape};

/// The POP application model. Build with [`Pop::builder`].
///
/// # Example
///
/// ```
/// use ovlsim_apps::Pop;
/// use ovlsim_tracer::{Application, TracingSession};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let app = Pop::builder().ranks(4).iterations(1).build()?;
/// let bundle = TracingSession::new(&app).run()?;
/// assert!(bundle.original().total_p2p_send_bytes() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Pop {
    grid: Grid2d,
    iterations: usize,
    baroclinic_instr: u64,
    baroclinic_halo_bytes: u64,
    barotropic_iters: usize,
    barotropic_instr: u64,
    barotropic_halo_bytes: u64,
    pack_fraction: f64,
    unpack_fraction: f64,
}

impl Pop {
    /// Starts building a POP model.
    pub fn builder() -> PopBuilder {
        PopBuilder::default()
    }

    /// The process grid.
    pub fn grid(&self) -> Grid2d {
        self.grid
    }

    /// Performs one 4-neighbor halo exchange over dedicated buffers.
    fn halo(
        &self,
        ctx: &mut TraceContext,
        rank: Rank,
        outs: &[ovlsim_core::BufferId; 4],
        ins: &[ovlsim_core::BufferId; 4],
        tag: Tag,
    ) -> Result<(), TraceError> {
        let neighbors = [
            self.grid.west(rank),
            self.grid.east(rank),
            self.grid.north(rank),
            self.grid.south(rank),
        ];
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for (i, peer) in neighbors.iter().enumerate() {
            if let Some(peer) = *peer {
                sends.push(HaloLeg {
                    peer,
                    buffer: outs[i],
                    tag,
                });
                recvs.push(HaloLeg {
                    peer,
                    buffer: ins[i],
                    tag,
                });
            }
        }
        exchange(ctx, &sends, &recvs)
    }
}

impl Application for Pop {
    fn name(&self) -> &str {
        "pop"
    }

    fn ranks(&self) -> usize {
        self.grid.ranks()
    }

    fn run(&self, rank: Rank, ctx: &mut TraceContext) -> Result<(), TraceError> {
        let mk4 = |ctx: &mut TraceContext, label: &str, bytes: u64| {
            [
                ctx.register_buffer(format!("{label}-w"), bytes, 8),
                ctx.register_buffer(format!("{label}-e"), bytes, 8),
                ctx.register_buffer(format!("{label}-n"), bytes, 8),
                ctx.register_buffer(format!("{label}-s"), bytes, 8),
            ]
        };
        let bc_out = mk4(ctx, "bc-out", self.baroclinic_halo_bytes);
        let bc_in = mk4(ctx, "bc-in", self.baroclinic_halo_bytes);
        let bt_out = mk4(ctx, "bt-out", self.barotropic_halo_bytes);
        let bt_in = mk4(ctx, "bt-in", self.barotropic_halo_bytes);

        let unpack_of = |instr: u64, f: f64| ((instr as f64) * f).round().max(1.0) as u64;
        for _step in 0..self.iterations {
            // Baroclinic stage: heavy 3-D physics; ghost columns are
            // packed at the end (`boundary_2d` pack loop).
            let unpack = unpack_of(self.baroclinic_instr, self.unpack_fraction);
            let kernel = producer_kernel(
                Instr::new(self.baroclinic_instr - unpack),
                &bc_out[..],
                ProductionShape::Tail {
                    fraction: self.pack_fraction,
                },
            );
            ctx.kernel(&kernel);
            self.halo(ctx, rank, &bc_out, &bc_in, Tag::new(0))?;
            // … and unpacked immediately after the waits.
            ctx.kernel(&consumer_kernel(
                Instr::new(unpack),
                &bc_in[..],
                ConsumptionShape::Spread,
            ));

            // Barotropic solver: thin stencils, thin halos, dot products.
            for _it in 0..self.barotropic_iters {
                let unpack = unpack_of(self.barotropic_instr, self.unpack_fraction);
                let kernel = producer_kernel(
                    Instr::new(self.barotropic_instr - unpack),
                    &bt_out[..],
                    ProductionShape::Tail {
                        fraction: self.pack_fraction,
                    },
                );
                ctx.kernel(&kernel);
                self.halo(ctx, rank, &bt_out, &bt_in, Tag::new(1))?;
                ctx.kernel(&consumer_kernel(
                    Instr::new(unpack),
                    &bt_in[..],
                    ConsumptionShape::Spread,
                ));
                ctx.allreduce(8);
            }
        }
        Ok(())
    }
}

/// Builder for [`Pop`].
///
/// Defaults: 16 ranks, 2 time steps, 6 000 000-instruction baroclinic
/// stage with 12 288-byte halos, 8 barotropic iterations of 150 000
/// instructions with 4 096-byte halos, 4% pack/unpack passes.
#[derive(Debug, Clone)]
pub struct PopBuilder {
    class: ProblemClass,
    ranks: usize,
    iterations: usize,
    baroclinic_instr: u64,
    baroclinic_halo_bytes: u64,
    barotropic_iters: usize,
    barotropic_instr: u64,
    barotropic_halo_bytes: u64,
    pack_fraction: f64,
    unpack_fraction: f64,
}

impl Default for PopBuilder {
    fn default() -> Self {
        PopBuilder {
            class: ProblemClass::default(),
            ranks: 16,
            iterations: 2,
            baroclinic_instr: 6_000_000,
            baroclinic_halo_bytes: 12_288,
            barotropic_iters: 8,
            barotropic_instr: 150_000,
            barotropic_halo_bytes: 4_096,
            pack_fraction: 0.04,
            unpack_fraction: 0.04,
        }
    }
}

impl PopBuilder {
    /// Sets the rank count.
    pub fn ranks(&mut self, ranks: usize) -> &mut Self {
        self.ranks = ranks;
        self
    }

    /// Sets the number of time steps.
    pub fn iterations(&mut self, iterations: usize) -> &mut Self {
        self.iterations = iterations;
        self
    }

    /// Sets the baroclinic-stage instruction count.
    pub fn baroclinic_instr(&mut self, instr: u64) -> &mut Self {
        self.baroclinic_instr = instr;
        self
    }

    /// Sets the barotropic iterations per step.
    pub fn barotropic_iters(&mut self, iters: usize) -> &mut Self {
        self.barotropic_iters = iters;
        self
    }

    /// Sets the baroclinic halo size in bytes (multiple of 8).
    pub fn baroclinic_halo_bytes(&mut self, bytes: u64) -> &mut Self {
        self.baroclinic_halo_bytes = bytes;
        self
    }

    /// Applies a NAS-style problem class: scales compute volume and
    /// message sizes together (class A = the calibrated defaults).
    pub fn class(&mut self, class: ProblemClass) -> &mut Self {
        self.class = class;
        self
    }

    /// Builds the model.
    ///
    /// # Errors
    ///
    /// Fails on zero counts or misaligned sizes.
    pub fn build(&self) -> Result<Pop, AppConfigError> {
        if self.ranks == 0 {
            return Err(AppConfigError::BadRankCount {
                ranks: self.ranks,
                requirement: "must be positive",
            });
        }
        if self.iterations == 0 || self.baroclinic_instr == 0 || self.barotropic_instr == 0 {
            return Err(AppConfigError::BadParameter {
                name: "iterations/instr",
                requirement: "must be positive",
            });
        }
        for b in [self.baroclinic_halo_bytes, self.barotropic_halo_bytes] {
            if b == 0 || !b.is_multiple_of(8) {
                return Err(AppConfigError::BadParameter {
                    name: "halo_bytes",
                    requirement: "must be a positive multiple of 8",
                });
            }
        }
        Ok(Pop {
            grid: Grid2d::near_square(self.ranks),
            iterations: self.iterations,
            baroclinic_instr: self.class.scale_instr(self.baroclinic_instr),
            baroclinic_halo_bytes: self.class.scale_bytes(self.baroclinic_halo_bytes),
            barotropic_iters: self.barotropic_iters,
            barotropic_instr: self.class.scale_instr(self.barotropic_instr),
            barotropic_halo_bytes: self.class.scale_bytes(self.barotropic_halo_bytes),
            pack_fraction: self.pack_fraction,
            unpack_fraction: self.unpack_fraction,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlsim_tracer::TracingSession;

    #[test]
    fn traces_and_validates() {
        let app = Pop::builder().ranks(4).iterations(1).build().unwrap();
        let bundle = TracingSession::new(&app).run().unwrap();
        bundle.overlapped_real();
        bundle.overlapped_linear();
    }

    #[test]
    fn allreduce_per_barotropic_iteration() {
        let app = Pop::builder().ranks(4).iterations(2).build().unwrap();
        let bundle = TracingSession::new(&app).run().unwrap();
        let collectives = bundle.original().ranks()[0]
            .iter()
            .filter(|r| r.is_collective())
            .count();
        // 8 barotropic iters × 2 steps.
        assert_eq!(collectives, 16);
    }

    #[test]
    fn validation_rejects_bad_sizes() {
        assert!(Pop::builder().ranks(0).build().is_err());
        assert!(Pop::builder().baroclinic_halo_bytes(100).build().is_err());
        assert!(Pop::builder().iterations(0).build().is_err());
    }
}
