//! Name-based construction of the paper's application models.
//!
//! The campaign runner and the `ovlsim` CLI refer to applications by the
//! short names their [`Application::name`] methods report (`nas-bt`,
//! `nas-cg`, `pop`, `alya`, `specfem`, `sweep3d`). This module is the
//! single place that maps those names back to builders, so a scenario can
//! live in a spec file instead of a hand-rolled binary.

use ovlsim_tracer::Application;

use crate::class::ProblemClass;
use crate::error::AppConfigError;
use crate::{Alya, NasBt, NasCg, Pop, Specfem, Sweep3d};

/// The registered application names, in canonical (paper) order.
pub const APP_NAMES: [&str; 6] = ["nas-bt", "nas-cg", "pop", "alya", "specfem", "sweep3d"];

/// Overrides applied uniformly to whichever application is being built.
///
/// `None` fields keep the model's calibrated default. Rank counts must
/// still satisfy the application's topology (e.g. NAS-BT requires a
/// perfect square); violations surface as [`AppConfigError`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppOverrides {
    /// Communicator size, or `None` for the model default.
    pub ranks: Option<usize>,
    /// Iteration count, or `None` for the model default.
    pub iterations: Option<usize>,
}

/// Builds a registered application by name at the given problem class.
///
/// # Errors
///
/// Returns [`AppConfigError::BadParameter`] for an unregistered name
/// (listing the valid ones is the caller's job via [`APP_NAMES`]), or
/// whatever the model's builder reports for invalid overrides.
pub fn build_app(
    name: &str,
    class: ProblemClass,
    overrides: AppOverrides,
) -> Result<Box<dyn Application>, AppConfigError> {
    macro_rules! build {
        ($builder:expr) => {{
            let mut b = $builder;
            b.class(class);
            if let Some(r) = overrides.ranks {
                b.ranks(r);
            }
            if let Some(it) = overrides.iterations {
                b.iterations(it);
            }
            Ok(Box::new(b.build()?) as Box<dyn Application>)
        }};
    }
    match name {
        "nas-bt" => build!(NasBt::builder()),
        "nas-cg" => build!(NasCg::builder()),
        "pop" => build!(Pop::builder()),
        "alya" => build!(Alya::builder()),
        "specfem" => build!(Specfem::builder()),
        "sweep3d" => build!(Sweep3d::builder()),
        _ => Err(AppConfigError::BadParameter {
            name: "app",
            requirement: "must be one of: nas-bt nas-cg pop alya specfem sweep3d",
        }),
    }
}

/// Whether `name` is a registered application.
pub fn is_registered(name: &str) -> bool {
    APP_NAMES.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_name_builds_and_matches() {
        for name in APP_NAMES {
            let app = build_app(name, ProblemClass::S, AppOverrides::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(app.name(), name);
            assert!(app.ranks() >= 2);
            assert!(is_registered(name));
        }
    }

    #[test]
    fn registry_agrees_with_paper_apps() {
        let from_registry: Vec<String> = APP_NAMES
            .iter()
            .map(|n| {
                build_app(n, ProblemClass::A, AppOverrides::default())
                    .unwrap()
                    .name()
                    .to_string()
            })
            .collect();
        let from_suite: Vec<String> = crate::paper_apps()
            .iter()
            .map(|a| a.name().to_string())
            .collect();
        assert_eq!(from_registry, from_suite);
    }

    #[test]
    fn unknown_name_is_rejected() {
        assert!(!is_registered("hpl"));
        let err = build_app("hpl", ProblemClass::A, AppOverrides::default())
            .err()
            .expect("unknown name must not build");
        assert!(format!("{err}").contains("nas-bt"));
    }

    #[test]
    fn bad_override_propagates_the_builder_error() {
        // NAS-BT needs a perfect-square rank count.
        let err = build_app(
            "nas-bt",
            ProblemClass::A,
            AppOverrides {
                ranks: Some(7),
                iterations: None,
            },
        )
        .err()
        .expect("non-square rank count must not build");
        assert!(matches!(err, AppConfigError::BadRankCount { ranks: 7, .. }));
    }

    #[test]
    fn overrides_apply() {
        let app = build_app(
            "sweep3d",
            ProblemClass::S,
            AppOverrides {
                ranks: Some(9),
                iterations: Some(1),
            },
        )
        .unwrap();
        assert_eq!(app.ranks(), 9);
    }
}
