//! Reusable kernel shapes capturing how real codes touch their
//! communication buffers.
//!
//! The central finding of the paper is that *when* an application produces
//! and consumes communicated data decides how much automatic overlap can
//! help. Legacy MPI codes overwhelmingly:
//!
//! * **pack late** — the send buffer is filled by a tight pack/copy loop
//!   (or a final assembly/fix-up pass) immediately before the send, even
//!   though the underlying values were computed throughout the kernel, and
//! * **unpack early** — the receive buffer is drained by an unpack loop
//!   (or consumed whole by a gather/dot) right after the receive.
//!
//! These helpers build kernels with an explicit *production tail* and
//! *consumption head* so each application model can state its measured
//! pattern precisely.

use ovlsim_core::{BufferId, Instr};
use ovlsim_memtrace::{AccessKind, IndexPattern, Kernel, KernelBuilder};

/// How a kernel produces its send buffers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProductionShape {
    /// Values land in their final place as the main loop progresses
    /// (the ideal sequential pattern).
    Spread,
    /// The buffer is filled by a pack/assembly pass occupying the trailing
    /// `fraction` of the kernel (the legacy pattern).
    Tail {
        /// Fraction of the kernel spent in the pack pass, in `(0, 1)`.
        fraction: f64,
    },
}

/// How a kernel consumes its receive buffers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConsumptionShape {
    /// Values are read as the main loop progresses.
    Spread,
    /// The buffer is drained by an unpack/gather pass occupying the
    /// leading `fraction` of the kernel (the legacy pattern).
    Head {
        /// Fraction of the kernel spent in the unpack pass, in `(0, 1)`.
        fraction: f64,
    },
}

fn split(total: Instr, fraction: f64) -> (Instr, Instr) {
    assert!(
        (0.0..1.0).contains(&fraction) && fraction > 0.0,
        "fraction must be in (0, 1), got {fraction}"
    );
    let part = Instr::new(((total.get() as f64) * fraction).round().max(1.0) as u64);
    let rest = total.saturating_sub(part);
    (rest, part)
}

/// A kernel of `instr` instructions that *produces* `buffers` according to
/// `shape` (writes only; no reads tracked).
///
/// # Example
///
/// ```
/// use ovlsim_core::{BufferId, Instr};
/// use ovlsim_apps::{producer_kernel, ProductionShape};
///
/// let k = producer_kernel(
///     Instr::new(1000),
///     &[BufferId::new(0)],
///     ProductionShape::Tail { fraction: 0.05 },
/// );
/// assert_eq!(k.total_instr(), Instr::new(1000));
/// assert_eq!(k.phases().len(), 2); // main loop + pack pass
/// ```
pub fn producer_kernel(instr: Instr, buffers: &[BufferId], shape: ProductionShape) -> Kernel {
    match shape {
        ProductionShape::Spread => {
            let mut b = Kernel::builder().phase(instr);
            for &buf in buffers {
                b = b.access(buf, AccessKind::Write, IndexPattern::Sequential);
            }
            b.build()
        }
        ProductionShape::Tail { fraction } => {
            let (main, pack) = split(instr, fraction);
            let mut b = Kernel::builder().phase(main).phase(pack);
            for &buf in buffers {
                b = b.access(buf, AccessKind::Write, IndexPattern::Sequential);
            }
            b.build()
        }
    }
}

/// A kernel of `instr` instructions that *consumes* `buffers` according to
/// `shape` (reads only).
pub fn consumer_kernel(instr: Instr, buffers: &[BufferId], shape: ConsumptionShape) -> Kernel {
    match shape {
        ConsumptionShape::Spread => {
            let mut b = Kernel::builder().phase(instr);
            for &buf in buffers {
                b = b.access(buf, AccessKind::Read, IndexPattern::Sequential);
            }
            b.build()
        }
        ConsumptionShape::Head { fraction } => {
            let (main, unpack) = split(instr, fraction);
            let mut b = Kernel::builder().phase(unpack);
            for &buf in buffers {
                b = b.access(buf, AccessKind::Read, IndexPattern::Sequential);
            }
            b.phase(main).build()
        }
    }
}

/// A kernel that consumes `reads` (per `consume`) and produces `writes`
/// (per `produce`) within the same `instr` instructions: the unpack pass
/// leads, the pack pass trails, the main loop sits between.
pub fn stencil_kernel(
    instr: Instr,
    reads: &[BufferId],
    consume: ConsumptionShape,
    writes: &[BufferId],
    produce: ProductionShape,
) -> Kernel {
    let (after_unpack, unpack) = match consume {
        ConsumptionShape::Spread => (instr, Instr::ZERO),
        ConsumptionShape::Head { fraction } => split(instr, fraction),
    };
    let (main, pack) = match produce {
        ProductionShape::Spread => (after_unpack, Instr::ZERO),
        ProductionShape::Tail { fraction } => {
            // Fraction is of the whole kernel, bounded by what remains.
            let want = Instr::new(((instr.get() as f64) * fraction).round().max(1.0) as u64);
            let pack = want.min(after_unpack);
            (after_unpack.saturating_sub(pack), pack)
        }
    };

    let mut b: KernelBuilder = Kernel::builder();
    // Leading unpack (reads).
    if matches!(consume, ConsumptionShape::Head { .. }) {
        b = b.phase(unpack);
        for &buf in reads {
            b = b.access(buf, AccessKind::Read, IndexPattern::Sequential);
        }
    }
    // Main loop: spread accesses live here.
    b = b.phase(main);
    if matches!(consume, ConsumptionShape::Spread) {
        for &buf in reads {
            b = b.access(buf, AccessKind::Read, IndexPattern::Sequential);
        }
    }
    if matches!(produce, ProductionShape::Spread) {
        for &buf in writes {
            b = b.access(buf, AccessKind::Write, IndexPattern::Sequential);
        }
    }
    // Trailing pack (writes).
    if matches!(produce, ProductionShape::Tail { .. }) {
        b = b.phase(pack);
        for &buf in writes {
            b = b.access(buf, AccessKind::Write, IndexPattern::Sequential);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlsim_memtrace::MemTracer;

    #[test]
    fn tail_production_concentrates_at_end() {
        let mut mt = MemTracer::new();
        let buf = mt.register("b", 1000, 10);
        let k = producer_kernel(
            Instr::new(10_000),
            &[buf],
            ProductionShape::Tail { fraction: 0.05 },
        );
        mt.execute(&k);
        let p = mt.snapshot_production(buf);
        // Even the first chunk is not ready before 95% of the kernel.
        assert!(p.ready_at(0..100).get() >= 9_500);
        assert_eq!(p.fully_ready_at(), Instr::new(10_000));
    }

    #[test]
    fn spread_production_is_linearish() {
        let mut mt = MemTracer::new();
        let buf = mt.register("b", 1000, 10);
        let k = producer_kernel(Instr::new(10_000), &[buf], ProductionShape::Spread);
        mt.execute(&k);
        let p = mt.snapshot_production(buf);
        // First quarter ready near 25% of the kernel.
        let q1 = p.ready_at(0..250).get() as f64 / 10_000.0;
        assert!((q1 - 0.25).abs() < 0.01, "q1 = {q1}");
    }

    #[test]
    fn head_consumption_reads_everything_early() {
        let mut mt = MemTracer::new();
        let buf = mt.register("b", 1000, 10);
        let k = consumer_kernel(
            Instr::new(10_000),
            &[buf],
            ConsumptionShape::Head { fraction: 0.02 },
        );
        mt.execute(&k);
        let c = mt.snapshot_consumption(buf);
        // The last chunk is needed within the first 2% of the kernel.
        assert!(c.needed_at(900..1000).unwrap().get() <= 200);
    }

    #[test]
    fn stencil_kernel_orders_unpack_main_pack() {
        let mut mt = MemTracer::new();
        let rin = mt.register("in", 1000, 10);
        let out = mt.register("out", 1000, 10);
        let k = stencil_kernel(
            Instr::new(10_000),
            &[rin],
            ConsumptionShape::Head { fraction: 0.02 },
            &[out],
            ProductionShape::Tail { fraction: 0.02 },
        );
        assert_eq!(k.total_instr(), Instr::new(10_000));
        mt.execute(&k);
        let c = mt.snapshot_consumption(rin);
        let p = mt.snapshot_production(out);
        assert!(c.needed_at(0..1000).unwrap().get() <= 200);
        assert!(p.ready_at(0..100).get() >= 9_700);
    }

    #[test]
    fn stencil_kernel_spread_spread() {
        let mut mt = MemTracer::new();
        let rin = mt.register("in", 1000, 10);
        let out = mt.register("out", 1000, 10);
        let k = stencil_kernel(
            Instr::new(10_000),
            &[rin],
            ConsumptionShape::Spread,
            &[out],
            ProductionShape::Spread,
        );
        assert_eq!(k.total_instr(), Instr::new(10_000));
        mt.execute(&k);
        let p = mt.snapshot_production(out);
        let mid = p.ready_at(0..500).get() as f64 / 10_000.0;
        assert!((mid - 0.5).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_rejected() {
        producer_kernel(
            Instr::new(100),
            &[BufferId::new(0)],
            ProductionShape::Tail { fraction: 1.5 },
        );
    }

    #[test]
    fn instruction_totals_preserved() {
        for shape in [
            ProductionShape::Spread,
            ProductionShape::Tail { fraction: 0.1 },
        ] {
            let k = producer_kernel(Instr::new(12_345), &[BufferId::new(0)], shape);
            assert_eq!(k.total_instr(), Instr::new(12_345));
        }
        for shape in [
            ConsumptionShape::Spread,
            ConsumptionShape::Head { fraction: 0.1 },
        ] {
            let k = consumer_kernel(Instr::new(12_345), &[BufferId::new(0)], shape);
            assert_eq!(k.total_instr(), Instr::new(12_345));
        }
    }
}
