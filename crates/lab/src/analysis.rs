//! Speedup analysis: intermediate-bandwidth location and peak extraction.

use ovlsim_core::{Bandwidth, Platform};
use ovlsim_dimemas::Simulator;
use ovlsim_tracer::TraceBundle;

use crate::error::LabError;
use crate::sweep::SweepPoint;

/// The sweep point with the highest overlapped-vs-original speedup.
///
/// Returns `None` for an empty sweep.
pub fn peak_speedup(points: &[SweepPoint]) -> Option<&SweepPoint> {
    points.iter().max_by(|a, b| {
        a.speedup()
            .partial_cmp(&b.speedup())
            .expect("speedups are finite")
    })
}

/// The sweep point whose original execution has a communication fraction
/// closest to `target` (0.5 ≈ "time spent in communication comparable to
/// time spent in computation", the paper's intermediate-bandwidth
/// definition).
///
/// Returns `None` for an empty sweep.
pub fn point_nearest_comm_fraction(points: &[SweepPoint], target: f64) -> Option<&SweepPoint> {
    points.iter().min_by(|a, b| {
        (a.comm_fraction - target)
            .abs()
            .partial_cmp(&(b.comm_fraction - target).abs())
            .expect("fractions are finite")
    })
}

/// Finds, by bisection, the bandwidth at which the *original* execution's
/// communication fraction equals `target` (within `tol`). Communication
/// fraction decreases monotonically with bandwidth.
///
/// # Errors
///
/// Returns [`LabError::SearchFailed`] if the target fraction is not
/// bracketed by `[lo, hi]`.
pub fn intermediate_bandwidth(
    bundle: &TraceBundle,
    base: &Platform,
    lo: f64,
    hi: f64,
    target: f64,
    tol: f64,
) -> Result<Bandwidth, LabError> {
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    let frac_at = |bps: f64| -> Result<f64, LabError> {
        let bw = Bandwidth::from_bytes_per_sec(bps)?;
        let sim = Simulator::new(base.with_bandwidth(bw));
        Ok(sim.run(bundle.original())?.comm_fraction())
    };
    let f_lo = frac_at(lo)?;
    let f_hi = frac_at(hi)?;
    if f_lo < target || f_hi > target {
        return Err(LabError::SearchFailed {
            what: format!(
                "comm fraction {target} not bracketed: f({lo:.3e})={f_lo:.3}, f({hi:.3e})={f_hi:.3}"
            ),
        });
    }
    let (mut a, mut b) = (lo, hi);
    for _ in 0..60 {
        let m = (a * b).sqrt(); // geometric midpoint for a log-scaled knob
        let fm = frac_at(m)?;
        if (fm - target).abs() <= tol {
            return Ok(Bandwidth::from_bytes_per_sec(m)?);
        }
        if fm > target {
            a = m; // too slow: comm fraction too high => raise bandwidth
        } else {
            b = m;
        }
        if b / a < 1.0 + 1e-6 {
            break;
        }
    }
    Ok(Bandwidth::from_bytes_per_sec((a * b).sqrt())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{log_bandwidths, sweep_bundle};
    use ovlsim_apps::Synthetic;
    use ovlsim_core::Time;
    use ovlsim_tracer::{OverlapMode, TracingSession};

    fn bundle() -> TraceBundle {
        let app = Synthetic::builder()
            .ranks(4)
            .compute_instr(1_000_000)
            .message_bytes(262_144)
            .iterations(2)
            .build()
            .unwrap();
        TracingSession::new(&app).run().unwrap()
    }

    fn mk_point(bw: f64, orig_us: u64, ovl_us: u64, frac: f64) -> SweepPoint {
        SweepPoint {
            bandwidth: Bandwidth::from_bytes_per_sec(bw).unwrap(),
            original: Time::from_us(orig_us),
            overlapped: Time::from_us(ovl_us),
            comm_fraction: frac,
        }
    }

    #[test]
    fn peak_and_nearest_selectors() {
        let pts = vec![
            mk_point(1e6, 100, 90, 0.8),
            mk_point(1e7, 100, 60, 0.5),
            mk_point(1e8, 100, 95, 0.1),
        ];
        assert_eq!(peak_speedup(&pts).unwrap().comm_fraction, 0.5);
        assert_eq!(
            point_nearest_comm_fraction(&pts, 0.45)
                .unwrap()
                .comm_fraction,
            0.5
        );
        assert!(peak_speedup(&[]).is_none());
    }

    #[test]
    fn intermediate_bandwidth_bisection_converges() {
        let b = bundle();
        let base = ovlsim_apps::calibration::reference_platform();
        let bw = intermediate_bandwidth(&b, &base, 1.0e5, 1.0e11, 0.5, 0.02).unwrap();
        // Verify: the found bandwidth indeed yields ~50% comm fraction.
        let sim = Simulator::new(base.with_bandwidth(bw));
        let frac = sim.run(b.original()).unwrap().comm_fraction();
        assert!(
            (frac - 0.5).abs() < 0.05,
            "comm fraction {frac} at {bw} not near 0.5"
        );
    }

    #[test]
    fn unbracketed_target_reported() {
        let b = bundle();
        let base = ovlsim_apps::calibration::reference_platform();
        // Target comm fraction 0.99999 is not reachable at these speeds.
        let err = intermediate_bandwidth(&b, &base, 1.0e9, 1.0e10, 0.99999, 0.001);
        assert!(matches!(err, Err(LabError::SearchFailed { .. })));
    }

    #[test]
    fn sweep_plus_peak_integration() {
        let b = bundle();
        let base = ovlsim_apps::calibration::reference_platform();
        let bws = log_bandwidths(1.0e6, 1.0e10, 9);
        let pts = sweep_bundle(&b, &base, OverlapMode::linear(), &bws).unwrap();
        let peak = peak_speedup(&pts).unwrap();
        // The peak should beat the endpoints (interior maximum).
        assert!(peak.speedup() >= pts.first().unwrap().speedup() - 1e-12);
        assert!(peak.speedup() >= pts.last().unwrap().speedup() - 1e-12);
    }
}
