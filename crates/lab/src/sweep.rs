//! Bandwidth sweeps: the x-axis of every figure in the paper.

use ovlsim_core::{Bandwidth, Platform, Time, TraceSet};
use ovlsim_dimemas::Simulator;
use ovlsim_tracer::{OverlapMode, TraceBundle};

use crate::error::LabError;

/// `points` logarithmically spaced bandwidths covering `[lo, hi]` bytes/s
/// inclusive.
///
/// # Panics
///
/// Panics unless `0 < lo <= hi` and `points >= 2` (or `points == 1` with
/// `lo == hi`).
pub fn log_bandwidths(lo: f64, hi: f64, points: usize) -> Vec<Bandwidth> {
    assert!(lo > 0.0 && hi >= lo, "need 0 < lo <= hi");
    assert!(points >= 1, "need at least one point");
    if points == 1 {
        return vec![Bandwidth::from_bytes_per_sec(lo).expect("validated")];
    }
    let llo = lo.ln();
    let lhi = hi.ln();
    (0..points)
        .map(|i| {
            let f = i as f64 / (points - 1) as f64;
            let bps = (llo + f * (lhi - llo)).exp();
            Bandwidth::from_bytes_per_sec(bps).expect("interpolated bandwidth is positive")
        })
        .collect()
}

/// One measurement of original vs overlapped at a single bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The bandwidth of this measurement.
    pub bandwidth: Bandwidth,
    /// Makespan of the original (non-overlapped) execution.
    pub original: Time,
    /// Makespan of the overlapped execution.
    pub overlapped: Time,
    /// Fraction of rank-time the original execution spends communicating.
    pub comm_fraction: f64,
}

impl SweepPoint {
    /// Speedup of the overlapped over the original execution
    /// (`original / overlapped`; > 1 means overlap wins).
    pub fn speedup(&self) -> f64 {
        if self.overlapped.is_zero() {
            return 1.0;
        }
        self.original.as_secs_f64() / self.overlapped.as_secs_f64()
    }

    /// Speedup expressed as the paper does ("30%" = 0.30).
    pub fn speedup_percent(&self) -> f64 {
        (self.speedup() - 1.0) * 100.0
    }
}

/// Replays two already-synthesized traces over a bandwidth range.
///
/// The traces are bandwidth-independent (the transform works in the
/// instruction domain), so they are synthesized once by the caller and
/// replayed per point here.
///
/// # Errors
///
/// Propagates replay errors.
pub fn sweep_traces(
    original: &TraceSet,
    overlapped: &TraceSet,
    base: &Platform,
    bandwidths: &[Bandwidth],
) -> Result<Vec<SweepPoint>, LabError> {
    let mut out = Vec::with_capacity(bandwidths.len());
    for &bw in bandwidths {
        let platform = base.with_bandwidth(bw);
        let sim = Simulator::new(platform);
        let orig = sim.run(original)?;
        let ovl = sim.run(overlapped)?;
        out.push(SweepPoint {
            bandwidth: bw,
            original: orig.total_time(),
            overlapped: ovl.total_time(),
            comm_fraction: orig.comm_fraction(),
        });
    }
    Ok(out)
}

/// Traces nothing — synthesizes the overlapped variant for `mode` from the
/// bundle and sweeps it against the original.
///
/// # Errors
///
/// Propagates synthesis and replay errors.
pub fn sweep_bundle(
    bundle: &TraceBundle,
    base: &Platform,
    mode: OverlapMode,
    bandwidths: &[Bandwidth],
) -> Result<Vec<SweepPoint>, LabError> {
    let overlapped = bundle.overlapped(mode)?;
    sweep_traces(bundle.original(), &overlapped, base, bandwidths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlsim_apps::{ProductionShape, Synthetic};
    use ovlsim_tracer::TracingSession;

    #[test]
    fn log_bandwidths_cover_range() {
        let bws = log_bandwidths(1.0e6, 1.0e9, 4);
        assert_eq!(bws.len(), 4);
        assert!((bws[0].bytes_per_sec() - 1.0e6).abs() < 1.0);
        assert!((bws[3].bytes_per_sec() - 1.0e9).abs() / 1.0e9 < 1e-9);
        // Log spacing: successive ratios equal.
        let r1 = bws[1].bytes_per_sec() / bws[0].bytes_per_sec();
        let r2 = bws[2].bytes_per_sec() / bws[1].bytes_per_sec();
        assert!((r1 - r2).abs() / r1 < 1e-9);
    }

    #[test]
    fn single_point_sweep() {
        let bws = log_bandwidths(5.0e6, 5.0e6, 1);
        assert_eq!(bws.len(), 1);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn inverted_range_rejected() {
        log_bandwidths(1.0e9, 1.0e6, 4);
    }

    #[test]
    fn sweep_reports_monotone_comm_fraction() {
        // Higher bandwidth => lower communication fraction.
        let app = Synthetic::builder()
            .ranks(4)
            .compute_instr(500_000)
            .message_bytes(262_144)
            .production(ProductionShape::Spread)
            .iterations(2)
            .build()
            .unwrap();
        let bundle = TracingSession::new(&app).run().unwrap();
        let base = ovlsim_apps::calibration::reference_platform();
        let bws = log_bandwidths(1.0e7, 1.0e10, 5);
        let points =
            sweep_bundle(&bundle, &base, ovlsim_tracer::OverlapMode::linear(), &bws).unwrap();
        for w in points.windows(2) {
            assert!(
                w[1].comm_fraction <= w[0].comm_fraction + 1e-9,
                "comm fraction should fall with bandwidth"
            );
            assert!(w[1].original <= w[0].original);
        }
        // Speedup sane.
        for p in &points {
            assert!(p.speedup() > 0.5 && p.speedup() < 10.0);
        }
    }
}
