//! Bandwidth sweeps (the x-axis of every figure in the paper) and the
//! hierarchical-platform sweep over node packing × intra-node bandwidth.

use ovlsim_core::{Bandwidth, CompiledTrace, PerturbationModel, Platform, Time, TraceSet};
use ovlsim_dimemas::Simulator;
use ovlsim_tracer::{OverlapMode, TraceBundle};

use crate::error::LabError;
use crate::par;

/// `points` logarithmically spaced bandwidths covering `[lo, hi]` bytes/s
/// inclusive.
///
/// # Panics
///
/// Panics unless `0 < lo <= hi` and `points >= 2` (or `points == 1` with
/// `lo == hi`).
pub fn log_bandwidths(lo: f64, hi: f64, points: usize) -> Vec<Bandwidth> {
    assert!(lo > 0.0 && hi >= lo, "need 0 < lo <= hi");
    assert!(points >= 1, "need at least one point");
    if points == 1 {
        return vec![Bandwidth::from_bytes_per_sec(lo).expect("validated")];
    }
    let llo = lo.ln();
    let lhi = hi.ln();
    (0..points)
        .map(|i| {
            let f = i as f64 / (points - 1) as f64;
            let bps = (llo + f * (lhi - llo)).exp();
            Bandwidth::from_bytes_per_sec(bps).expect("interpolated bandwidth is positive")
        })
        .collect()
}

/// Validates, channel-indexes and compiles a trace in one step — the
/// once-per-trace cost every sweep and bisection pays before fanning its
/// points out over the shared [`CompiledTrace`].
///
/// # Errors
///
/// Propagates validation and compilation errors.
pub fn compile_trace(ts: &TraceSet) -> Result<CompiledTrace, LabError> {
    let index = crate::pipeline::build_index(ts)?;
    Ok(CompiledTrace::compile(ts, &index)?)
}

/// One measurement of original vs overlapped at a single bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The bandwidth of this measurement.
    pub bandwidth: Bandwidth,
    /// Makespan of the original (non-overlapped) execution.
    pub original: Time,
    /// Makespan of the overlapped execution.
    pub overlapped: Time,
    /// Fraction of rank-time the original execution spends communicating.
    pub comm_fraction: f64,
}

/// `original / overlapped` makespan ratio, treating a zero overlapped
/// makespan (degenerate empty trace) as parity.
fn speedup_of(original: Time, overlapped: Time) -> f64 {
    if overlapped.is_zero() {
        return 1.0;
    }
    original.as_secs_f64() / overlapped.as_secs_f64()
}

impl SweepPoint {
    /// Speedup of the overlapped over the original execution
    /// (`original / overlapped`; > 1 means overlap wins).
    pub fn speedup(&self) -> f64 {
        speedup_of(self.original, self.overlapped)
    }

    /// Speedup expressed as the paper does ("30%" = 0.30).
    pub fn speedup_percent(&self) -> f64 {
        (self.speedup() - 1.0) * 100.0
    }
}

/// Replays two already-synthesized traces over a bandwidth range.
///
/// The traces are bandwidth-independent (the transform works in the
/// instruction domain), so they are synthesized once by the caller and
/// replayed per point here. Each trace is validated, channel-indexed and
/// **compiled** once ([`CompiledTrace::compile`]); every point then
/// executes the shared flat program via [`Simulator::run_compiled`], and
/// with the `parallel` feature the points fan out across threads (each
/// point is an independent `Simulator` over the shared `&CompiledTrace`).
/// Results are byte-identical to the sequential path — and to the
/// uncompiled engines — and come back in bandwidth order regardless of
/// scheduling.
///
/// # Errors
///
/// Propagates validation, compilation and replay errors, and rejects a
/// malformed `OVLSIM_THREADS` ([`LabError::InvalidThreadConfig`]).
pub fn sweep_traces(
    original: &TraceSet,
    overlapped: &TraceSet,
    base: &Platform,
    bandwidths: &[Bandwidth],
) -> Result<Vec<SweepPoint>, LabError> {
    sweep_traces_threaded(
        original,
        overlapped,
        base,
        bandwidths,
        par::configured_threads()?,
    )
}

/// [`sweep_traces`] with an explicit worker cap (exposed for scaling
/// measurements and the sequential-equivalence tests).
#[doc(hidden)]
pub fn sweep_traces_threaded(
    original: &TraceSet,
    overlapped: &TraceSet,
    base: &Platform,
    bandwidths: &[Bandwidth],
    threads: usize,
) -> Result<Vec<SweepPoint>, LabError> {
    // Compile once: every point shares the same flat programs.
    let orig_prog = compile_trace(original)?;
    let ovl_prog = compile_trace(overlapped)?;
    sweep_compiled_threaded(&orig_prog, &ovl_prog, base, bandwidths, threads)
}

/// [`sweep_traces`] over already-compiled programs — the entry point for
/// callers (the session layer) that cache [`CompiledTrace`]s and replay
/// them many times without re-paying validation or compilation.
///
/// # Errors
///
/// Propagates replay errors and rejects a malformed `OVLSIM_THREADS`.
pub fn sweep_compiled(
    orig_prog: &CompiledTrace,
    ovl_prog: &CompiledTrace,
    base: &Platform,
    bandwidths: &[Bandwidth],
) -> Result<Vec<SweepPoint>, LabError> {
    sweep_compiled_threaded(
        orig_prog,
        ovl_prog,
        base,
        bandwidths,
        par::configured_threads()?,
    )
}

/// [`sweep_compiled`] with an explicit worker cap.
#[doc(hidden)]
pub fn sweep_compiled_threaded(
    orig_prog: &CompiledTrace,
    ovl_prog: &CompiledTrace,
    base: &Platform,
    bandwidths: &[Bandwidth],
    threads: usize,
) -> Result<Vec<SweepPoint>, LabError> {
    let point_at = |bw: Bandwidth| -> Result<SweepPoint, LabError> {
        let sim = Simulator::new(base.with_bandwidth(bw));
        let orig = sim.run_compiled(orig_prog)?;
        let ovl = sim.run_compiled(ovl_prog)?;
        Ok(SweepPoint {
            bandwidth: bw,
            original: orig.total_time(),
            overlapped: ovl.total_time(),
            comm_fraction: orig.comm_fraction(),
        })
    };
    if threads <= 1 {
        // Sequential path: stop at the first failing point.
        return bandwidths.iter().map(|&bw| point_at(bw)).collect();
    }
    // Parallel path: in-flight points drain before the error surfaces —
    // the first error in bandwidth order is reported, independent of
    // which worker hit it.
    par::par_map_with(bandwidths, threads, |&bw| point_at(bw))
        .into_iter()
        .collect()
}

/// One measurement of original vs overlapped on a hierarchical platform
/// point: a `ranks_per_node` packing combined with an intra-node
/// bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct NodePackingPoint {
    /// Ranks packed onto each node at this point.
    pub ranks_per_node: u32,
    /// Intra-node (shared-memory) bandwidth at this point.
    pub intra_bandwidth: Bandwidth,
    /// Makespan of the original (non-overlapped) execution.
    pub original: Time,
    /// Makespan of the overlapped execution.
    pub overlapped: Time,
    /// Time-weighted mean busy buses of the original execution — how much
    /// packing relieved the inter-node fabric.
    pub mean_busy_buses: f64,
}

impl NodePackingPoint {
    /// Speedup of the overlapped over the original execution.
    pub fn speedup(&self) -> f64 {
        speedup_of(self.original, self.overlapped)
    }
}

/// Replays two traces over the hierarchical-platform grid
/// `ranks_per_node × intra-node bandwidth` (the multicore-node scenario
/// space the paper's Dimemas setup supports).
///
/// Each grid point keeps `base`'s inter-node fabric and varies only where
/// ranks live and how fast their shared-memory path is: packing more ranks
/// per node converts traffic from the bus/NIC domain into the intra-node
/// domain. The traces are validated, channel-indexed and **compiled**
/// once; every point executes the shared program via
/// [`Simulator::run_compiled`] (the program depends only on the trace,
/// never on where ranks live — routing is re-derived per run), and with
/// the `parallel` feature the points fan out across threads with
/// byte-identical, grid-ordered results (`ranks_per_node` major,
/// intra-bandwidth minor).
///
/// # Errors
///
/// Propagates validation, compilation and replay errors, and rejects a
/// malformed `OVLSIM_THREADS` ([`LabError::InvalidThreadConfig`]).
pub fn sweep_node_packing(
    original: &TraceSet,
    overlapped: &TraceSet,
    base: &Platform,
    ranks_per_node: &[u32],
    intra_bandwidths: &[Bandwidth],
) -> Result<Vec<NodePackingPoint>, LabError> {
    sweep_node_packing_threaded(
        original,
        overlapped,
        base,
        ranks_per_node,
        intra_bandwidths,
        par::configured_threads()?,
    )
}

/// [`sweep_node_packing`] with an explicit worker cap (exposed for the
/// sequential-equivalence tests).
#[doc(hidden)]
pub fn sweep_node_packing_threaded(
    original: &TraceSet,
    overlapped: &TraceSet,
    base: &Platform,
    ranks_per_node: &[u32],
    intra_bandwidths: &[Bandwidth],
    threads: usize,
) -> Result<Vec<NodePackingPoint>, LabError> {
    // Compile once: the program depends only on the trace, never on where
    // ranks live, so every packing point shares it.
    let orig_prog = compile_trace(original)?;
    let ovl_prog = compile_trace(overlapped)?;
    let grid: Vec<(u32, Bandwidth)> = ranks_per_node
        .iter()
        .flat_map(|&rpn| intra_bandwidths.iter().map(move |&bw| (rpn, bw)))
        .collect();
    let point_at = |&(rpn, intra_bw): &(u32, Bandwidth)| -> Result<NodePackingPoint, LabError> {
        let platform = base
            .with_ranks_per_node(rpn)
            .with_intra_node_bandwidth(intra_bw);
        let sim = Simulator::new(platform);
        let orig = sim.run_compiled(&orig_prog)?;
        let ovl = sim.run_compiled(&ovl_prog)?;
        Ok(NodePackingPoint {
            ranks_per_node: rpn,
            intra_bandwidth: intra_bw,
            original: orig.total_time(),
            overlapped: ovl.total_time(),
            mean_busy_buses: orig.mean_busy_buses(),
        })
    };
    if threads <= 1 {
        return grid.iter().map(point_at).collect();
    }
    par::par_map_with(&grid, threads, point_at)
        .into_iter()
        .collect()
}

/// One measurement of original vs overlapped under a given OS-noise
/// level.
#[derive(Debug, Clone, PartialEq)]
pub struct NoisePoint {
    /// OS-noise level of this measurement's perturbation model.
    pub noise_level: f64,
    /// Makespan of the original (non-overlapped) execution.
    pub original: Time,
    /// Makespan of the overlapped execution.
    pub overlapped: Time,
}

impl NoisePoint {
    /// Speedup of the overlapped over the original execution.
    pub fn speedup(&self) -> f64 {
        speedup_of(self.original, self.overlapped)
    }
}

/// Overlap-gain retention of each point relative to the first: `(speedup
/// − 1) / (speedup₀ − 1)`. Callers put the clean (zero-noise) point
/// first; a baseline without gain retains 1.0 by convention (there is
/// nothing to lose). Empty input gives an empty vec.
pub fn noise_retention(points: &[NoisePoint]) -> Vec<f64> {
    let Some(base) = points.first() else {
        return Vec::new();
    };
    let base_gain = base.speedup() - 1.0;
    points
        .iter()
        .map(|p| {
            if base_gain <= 0.0 {
                1.0
            } else {
                (p.speedup() - 1.0) / base_gain
            }
        })
        .collect()
}

/// Replays two traces under a sweep of OS-noise levels on a fixed
/// platform — the "how much of the overlap win survives a realistic
/// machine" axis.
///
/// Each level extends `model` (which may already carry stragglers,
/// heterogeneous nodes, link effects or faults) with
/// [`PerturbationModel::with_noise`]. The traces are validated,
/// channel-indexed and **compiled** exactly once: perturbation factors
/// are applied at replay time, never baked into the shared
/// [`CompiledTrace`], so one flat program serves every noise level. With
/// the `parallel` feature the levels fan out across threads with
/// byte-identical, level-ordered results.
///
/// # Errors
///
/// Rejects a non-finite or negative noise level
/// ([`LabError::Core`]), and propagates validation, compilation and
/// replay errors plus a malformed `OVLSIM_THREADS`.
pub fn sweep_noise(
    original: &TraceSet,
    overlapped: &TraceSet,
    base: &Platform,
    model: &PerturbationModel,
    noise_levels: &[f64],
) -> Result<Vec<NoisePoint>, LabError> {
    sweep_noise_threaded(
        original,
        overlapped,
        base,
        model,
        noise_levels,
        par::configured_threads()?,
    )
}

/// [`sweep_noise`] with an explicit worker cap (exposed for the
/// sequential-equivalence tests).
#[doc(hidden)]
pub fn sweep_noise_threaded(
    original: &TraceSet,
    overlapped: &TraceSet,
    base: &Platform,
    model: &PerturbationModel,
    noise_levels: &[f64],
    threads: usize,
) -> Result<Vec<NoisePoint>, LabError> {
    // Compile once: perturbations act at replay time, so the flat
    // programs are shared by every level.
    let orig_prog = compile_trace(original)?;
    let ovl_prog = compile_trace(overlapped)?;
    // Validate every level up front so the parallel path cannot observe
    // a partially-swept error set.
    let platforms: Result<Vec<(f64, Platform)>, LabError> = noise_levels
        .iter()
        .map(|&level| {
            let m = model.clone().with_noise(level)?;
            let platform = if m.is_identity() {
                base.clone()
            } else {
                base.with_perturbation(m)
            };
            Ok((level, platform))
        })
        .collect();
    let platforms = platforms?;
    let point_at = |(level, platform): &(f64, Platform)| -> Result<NoisePoint, LabError> {
        let sim = Simulator::new(platform.clone());
        let orig = sim.run_compiled(&orig_prog)?;
        let ovl = sim.run_compiled(&ovl_prog)?;
        Ok(NoisePoint {
            noise_level: *level,
            original: orig.total_time(),
            overlapped: ovl.total_time(),
        })
    };
    if threads <= 1 {
        return platforms.iter().map(point_at).collect();
    }
    par::par_map_with(&platforms, threads, point_at)
        .into_iter()
        .collect()
}

/// Traces nothing — synthesizes the overlapped variant for `mode` from the
/// bundle and sweeps it against the original.
///
/// # Errors
///
/// Propagates synthesis and replay errors.
pub fn sweep_bundle(
    bundle: &TraceBundle,
    base: &Platform,
    mode: OverlapMode,
    bandwidths: &[Bandwidth],
) -> Result<Vec<SweepPoint>, LabError> {
    let overlapped = bundle.overlapped(mode)?;
    sweep_traces(bundle.original(), &overlapped, base, bandwidths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlsim_apps::{ProductionShape, Synthetic};
    use ovlsim_tracer::TracingSession;

    #[test]
    fn log_bandwidths_cover_range() {
        let bws = log_bandwidths(1.0e6, 1.0e9, 4);
        assert_eq!(bws.len(), 4);
        assert!((bws[0].bytes_per_sec() - 1.0e6).abs() < 1.0);
        assert!((bws[3].bytes_per_sec() - 1.0e9).abs() / 1.0e9 < 1e-9);
        // Log spacing: successive ratios equal.
        let r1 = bws[1].bytes_per_sec() / bws[0].bytes_per_sec();
        let r2 = bws[2].bytes_per_sec() / bws[1].bytes_per_sec();
        assert!((r1 - r2).abs() / r1 < 1e-9);
    }

    #[test]
    fn single_point_sweep() {
        let bws = log_bandwidths(5.0e6, 5.0e6, 1);
        assert_eq!(bws.len(), 1);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn inverted_range_rejected() {
        log_bandwidths(1.0e9, 1.0e6, 4);
    }

    #[test]
    fn sweep_reports_monotone_comm_fraction() {
        // Higher bandwidth => lower communication fraction.
        let app = Synthetic::builder()
            .ranks(4)
            .compute_instr(500_000)
            .message_bytes(262_144)
            .production(ProductionShape::Spread)
            .iterations(2)
            .build()
            .unwrap();
        let bundle = TracingSession::new(&app).run().unwrap();
        let base = ovlsim_apps::calibration::reference_platform();
        let bws = log_bandwidths(1.0e7, 1.0e10, 5);
        let points =
            sweep_bundle(&bundle, &base, ovlsim_tracer::OverlapMode::linear(), &bws).unwrap();
        for w in points.windows(2) {
            assert!(
                w[1].comm_fraction <= w[0].comm_fraction + 1e-9,
                "comm fraction should fall with bandwidth"
            );
            assert!(w[1].original <= w[0].original);
        }
        // Speedup sane.
        for p in &points {
            assert!(p.speedup() > 0.5 && p.speedup() < 10.0);
        }
    }

    #[test]
    fn node_packing_sweep_covers_grid_and_relieves_the_bus() {
        // A bus-constrained platform: packing ranks onto nodes moves
        // traffic into the intra-node domain, so makespan never worsens
        // and mean busy buses never rise as ranks_per_node grows.
        let app = Synthetic::builder()
            .ranks(4)
            .compute_instr(200_000)
            .message_bytes(131_072)
            .iterations(2)
            .build()
            .unwrap();
        let bundle = TracingSession::new(&app).run().unwrap();
        let overlapped = bundle.overlapped_linear();
        let base = ovlsim_apps::calibration::reference_platform();
        let rpns = [1u32, 2, 4];
        let intra_bws: Vec<Bandwidth> = [1.0e9, 1.0e10]
            .iter()
            .map(|&b| Bandwidth::from_bytes_per_sec(b).unwrap())
            .collect();
        let points =
            sweep_node_packing(bundle.original(), &overlapped, &base, &rpns, &intra_bws).unwrap();
        assert_eq!(points.len(), rpns.len() * intra_bws.len());
        // Grid order: ranks_per_node major, intra bandwidth minor.
        assert_eq!(points[0].ranks_per_node, 1);
        assert_eq!(points[1].ranks_per_node, 1);
        assert_eq!(points[2].ranks_per_node, 2);
        assert_eq!(points[5].ranks_per_node, 4);
        // With everything on one node (rpn=4) no transfer touches a bus.
        assert_eq!(points[5].mean_busy_buses, 0.0);
        // More intra-node bandwidth at fixed packing never slows things.
        for pair in points.chunks(intra_bws.len()) {
            assert!(pair[1].original <= pair[0].original);
            assert!(pair[1].overlapped <= pair[0].overlapped);
            assert!(pair[0].speedup() > 0.0);
        }
    }

    #[test]
    fn parallel_node_packing_sweep_is_byte_identical_to_sequential() {
        let app = Synthetic::builder()
            .ranks(4)
            .compute_instr(100_000)
            .message_bytes(65_536)
            .iterations(2)
            .build()
            .unwrap();
        let bundle = TracingSession::new(&app).run().unwrap();
        let overlapped = bundle.overlapped_linear();
        let base = ovlsim_apps::calibration::reference_platform();
        let rpns = [1u32, 2, 4];
        let intra_bws: Vec<Bandwidth> = [5.0e9, 2.0e10]
            .iter()
            .map(|&b| Bandwidth::from_bytes_per_sec(b).unwrap())
            .collect();
        let seq = sweep_node_packing_threaded(
            bundle.original(),
            &overlapped,
            &base,
            &rpns,
            &intra_bws,
            1,
        )
        .unwrap();
        for threads in [2, 4] {
            let par = sweep_node_packing_threaded(
                bundle.original(),
                &overlapped,
                &base,
                &rpns,
                &intra_bws,
                threads,
            )
            .unwrap();
            assert_eq!(seq, par, "node-packing sweep diverged at {threads} threads");
        }
    }

    #[test]
    fn noise_sweep_shares_one_compiled_program_across_levels() {
        let app = Synthetic::builder()
            .ranks(4)
            .compute_instr(300_000)
            .message_bytes(131_072)
            .production(ProductionShape::Spread)
            .iterations(2)
            .build()
            .unwrap();
        let bundle = TracingSession::new(&app).run().unwrap();
        let overlapped = bundle.overlapped_linear();
        let base = ovlsim_apps::calibration::reference_platform();
        let model = PerturbationModel::new(42);
        let levels = [0.0, 0.1, 0.4];
        let points = sweep_noise(bundle.original(), &overlapped, &base, &model, &levels).unwrap();
        assert_eq!(points.len(), 3);
        // Level 0 with an otherwise-identity model is the clean replay.
        let clean =
            sweep_traces(bundle.original(), &overlapped, &base, &[base.bandwidth()]).unwrap();
        assert_eq!(points[0].original, clean[0].original);
        assert_eq!(points[0].overlapped, clean[0].overlapped);
        // More noise never shrinks the makespan (stretches are >= 1).
        for w in points.windows(2) {
            assert!(w[1].original >= w[0].original);
        }
        assert!(points[2].original > points[0].original, "noise must bite");
        // Retention is 1 at the baseline and finite everywhere.
        let retention = noise_retention(&points);
        assert_eq!(retention[0], 1.0);
        assert!(retention.iter().all(|r| r.is_finite()));
        assert!(noise_retention(&[]).is_empty());
    }

    #[test]
    fn parallel_noise_sweep_is_byte_identical_to_sequential() {
        let app = Synthetic::builder()
            .ranks(4)
            .compute_instr(100_000)
            .message_bytes(65_536)
            .iterations(2)
            .build()
            .unwrap();
        let bundle = TracingSession::new(&app).run().unwrap();
        let overlapped = bundle.overlapped_linear();
        let base = ovlsim_apps::calibration::reference_platform();
        let model = PerturbationModel::new(7)
            .with_stragglers(&[1], 1.5)
            .unwrap()
            .with_link_degradation(0.2)
            .unwrap();
        let levels = [0.0, 0.05, 0.15, 0.3];
        let seq = sweep_noise_threaded(bundle.original(), &overlapped, &base, &model, &levels, 1)
            .unwrap();
        for threads in [2, 4] {
            let par = sweep_noise_threaded(
                bundle.original(),
                &overlapped,
                &base,
                &model,
                &levels,
                threads,
            )
            .unwrap();
            assert_eq!(seq, par, "noise sweep diverged at {threads} threads");
        }
        // Bad levels are rejected up front.
        assert!(sweep_noise(bundle.original(), &overlapped, &base, &model, &[-0.1]).is_err());
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_sequential() {
        let app = Synthetic::builder()
            .ranks(4)
            .compute_instr(200_000)
            .message_bytes(65_536)
            .iterations(2)
            .build()
            .unwrap();
        let bundle = TracingSession::new(&app).run().unwrap();
        let overlapped = bundle.overlapped_linear();
        let base = ovlsim_apps::calibration::reference_platform();
        let bws = log_bandwidths(1.0e6, 1.0e10, 9);
        let seq = sweep_traces_threaded(bundle.original(), &overlapped, &base, &bws, 1).unwrap();
        for threads in [2, 4, 8] {
            let par = sweep_traces_threaded(bundle.original(), &overlapped, &base, &bws, threads)
                .unwrap();
            assert_eq!(seq, par, "sweep diverged at {threads} threads");
        }
    }
}
