//! The paper's experiment suite (E1–E8).
//!
//! Each function reproduces one artefact of the paper's evaluation (see
//! DESIGN.md §4 for the index) and returns an [`ExperimentReport`] whose
//! table holds the same rows/series the paper reports. The binaries in
//! `ovlsim-bench` print these reports; EXPERIMENTS.md records
//! paper-vs-measured.

use std::fmt;

use ovlsim_apps::calibration::{reference_platform, target_for};
use ovlsim_core::{format_bandwidth, format_time, Bandwidth, Platform, Rank, Time};
use ovlsim_dimemas::Simulator;
use ovlsim_paraver::{render_gantt, GanttOptions, StateProfile, Timeline};
use ovlsim_tracer::{
    Application, ChunkingPolicy, Mechanisms, OverlapMode, PatternSource, TraceBundle,
    TracingSession,
};

use crate::analysis::{intermediate_bandwidth, peak_speedup};
use crate::error::LabError;
use crate::iso::bandwidth_relaxation;
use crate::par;
use crate::sweep::{log_bandwidths, sweep_bundle, sweep_traces};
use crate::table::Table;

/// A rendered experiment outcome.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id (`"E1"` … `"E8"`).
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// The regenerated table/series.
    pub table: Table,
    /// Free-form notes (qualitative observations, Gantt charts, …).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Renders the full report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "== {}: {} ==\n\n{}",
            self.id,
            self.title,
            self.table.render()
        );
        for note in &self.notes {
            out.push('\n');
            out.push_str(note);
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Shared sweep bounds (bytes/s): 1 MB/s … 100 GB/s.
pub const SWEEP_LO: f64 = 1.0e6;
/// Upper sweep bound (bytes/s).
pub const SWEEP_HI: f64 = 1.0e11;

fn trace_app(app: &dyn Application) -> Result<TraceBundle, LabError> {
    Ok(TracingSession::new(app)
        .policy(ChunkingPolicy::fixed_count(16).with_min_chunk_bytes(512))
        .run()?)
}

/// Locates an app's half-comm bandwidth (original comm fraction ≈ 0.5),
/// falling back to the sweep point nearest the target when the bisection
/// cannot bracket it (e.g. wavefront codes whose dependency stalls keep
/// the comm fraction above 0.5 at every bandwidth).
pub fn find_half_comm_bandwidth(
    bundle: &TraceBundle,
    base: &Platform,
) -> Result<Bandwidth, LabError> {
    match intermediate_bandwidth(bundle, base, SWEEP_LO, SWEEP_HI, 0.5, 0.02) {
        Ok(bw) => Ok(bw),
        Err(LabError::SearchFailed { .. }) => {
            // Fall back: scan a coarse sweep for the closest point.
            let bws = log_bandwidths(SWEEP_LO, SWEEP_HI, 21);
            let points = sweep_bundle(bundle, base, OverlapMode::linear(), &bws)?;
            let nearest =
                crate::analysis::point_nearest_comm_fraction(&points, 0.5).ok_or_else(|| {
                    LabError::SearchFailed {
                        what: "empty sweep".into(),
                    }
                })?;
            Ok(nearest.bandwidth)
        }
        Err(e) => Err(e),
    }
}

fn speedup_at(
    bundle: &TraceBundle,
    base: &Platform,
    mode: OverlapMode,
    bw: Bandwidth,
) -> Result<f64, LabError> {
    let points = sweep_bundle(bundle, base, mode, &[bw])?;
    Ok(points[0].speedup())
}

/// E1 — the environment pipeline (paper Fig. 1): traces one application,
/// synthesizes all four standard variants, replays them, and renders the
/// original and overlapped timelines side by side.
///
/// # Errors
///
/// Propagates tracing and replay errors.
pub fn e1_pipeline(app: &dyn Application) -> Result<ExperimentReport, LabError> {
    let base = reference_platform();
    let bundle = trace_app(app)?;
    let mut table = Table::new(vec!["trace", "records", "makespan", "compute%", "speedup"]);
    let mut notes = Vec::new();

    let (orig_tl, orig_res) = Timeline::capture(&base, bundle.original())?;
    let orig_time = orig_res.total_time();
    let orig_profile = StateProfile::of(&orig_tl);
    table.row(vec![
        "original".into(),
        bundle.original().total_records().to_string(),
        format_time(orig_time),
        format!("{:.1}", orig_profile.efficiency() * 100.0),
        "1.000x".into(),
    ]);

    for mode in [
        OverlapMode::real(),
        OverlapMode::linear(),
        OverlapMode {
            pattern: PatternSource::Real,
            mechanisms: Mechanisms::EARLY_SEND_ONLY,
        },
        OverlapMode {
            pattern: PatternSource::Real,
            mechanisms: Mechanisms::LATE_WAIT_ONLY,
        },
    ] {
        let ts = bundle.overlapped(mode)?;
        let (tl, res) = Timeline::capture(&base, &ts)?;
        let profile = StateProfile::of(&tl);
        table.row(vec![
            mode.label(),
            ts.total_records().to_string(),
            format_time(res.total_time()),
            format!("{:.1}", profile.efficiency() * 100.0),
            format!(
                "{:.3}x",
                orig_time.as_secs_f64() / res.total_time().as_secs_f64()
            ),
        ]);
        if mode == OverlapMode::linear() {
            notes.push(format!(
                "original timeline:\n{}\noverlapped (linear) timeline:\n{}",
                render_gantt(
                    &orig_tl,
                    &GanttOptions {
                        width: 72,
                        legend: false
                    }
                ),
                render_gantt(
                    &tl,
                    &GanttOptions {
                        width: 72,
                        legend: true
                    }
                ),
            ));
        }
    }
    // Score the linear overlap against the theoretical bounds.
    let bounds = crate::bounds::OverlapBounds::of(bundle.original(), &base);
    let linear = bundle.overlapped(OverlapMode::linear())?;
    let ovl_time = Simulator::new(base.clone()).run(&linear)?.total_time();
    if let Some(eff) = bounds.efficiency(orig_time, ovl_time) {
        notes.push(format!(
            "bounds: compute {} / network {} -> makespan floor {}; linear overlap \
             recovered {:.0}% of the overlappable gap",
            format_time(bounds.compute_bound()),
            format_time(bounds.network_bound()),
            format_time(bounds.makespan_bound()),
            eff * 100.0
        ));
    }
    Ok(ExperimentReport {
        id: "E1",
        title: format!("environment pipeline on {} (paper Fig. 1)", app.name()),
        table,
        notes,
    })
}

/// E2 — real measured patterns: "the potential for automatic overlap in
/// the applications is negligible" (§III). Reports each app's peak
/// real-pattern speedup over the whole bandwidth sweep.
///
/// # Errors
///
/// Propagates tracing and replay errors.
pub fn e2_real_patterns(
    apps: &[Box<dyn Application>],
    points: usize,
) -> Result<ExperimentReport, LabError> {
    let base = reference_platform();
    let bws = log_bandwidths(SWEEP_LO, SWEEP_HI, points);
    let mut table = Table::new(vec![
        "app",
        "peak speedup (real)",
        "at bandwidth",
        "peak speedup (linear)",
    ]);
    // Each app traces and sweeps independently: fan the apps out, keep
    // the table rows in input order.
    let rows = par::par_map(apps, |app| -> Result<Vec<String>, LabError> {
        let bundle = trace_app(app.as_ref())?;
        let real = sweep_bundle(&bundle, &base, OverlapMode::real(), &bws)?;
        let linear = sweep_bundle(&bundle, &base, OverlapMode::linear(), &bws)?;
        let real_peak = peak_speedup(&real).expect("nonempty sweep");
        let linear_peak = peak_speedup(&linear).expect("nonempty sweep");
        Ok(vec![
            app.name().to_string(),
            format!("{:+.1}%", real_peak.speedup_percent()),
            format_bandwidth(real_peak.bandwidth),
            format!("{:+.1}%", linear_peak.speedup_percent()),
        ])
    })?;
    for row in rows {
        table.row(row?);
    }
    Ok(ExperimentReport {
        id: "E2",
        title: "real vs ideal patterns: real-pattern overlap is negligible (§III claim 1)".into(),
        table,
        notes: vec![
            "paper: \"Considering the real computation patterns, the potential for \
             automatic overlap in the applications is negligible.\""
                .into(),
        ],
    })
}

/// E3 — ideal-pattern speedups at intermediate bandwidth, against the
/// paper's reported values (BT 30%, CG 10%, POP 10%, Alya 40%, SPECFEM
/// 65%, Sweep3D 160%).
///
/// # Errors
///
/// Propagates tracing and replay errors.
pub fn e3_ideal_speedup(apps: &[Box<dyn Application>]) -> Result<ExperimentReport, LabError> {
    let base = reference_platform();
    let bw = base.bandwidth();
    let mut table = Table::new(vec![
        "app",
        "bandwidth",
        "comm fraction",
        "measured",
        "paper",
    ]);
    let rows = par::par_map(apps, |app| -> Result<Vec<String>, LabError> {
        let bundle = trace_app(app.as_ref())?;
        let points = sweep_bundle(&bundle, &base, OverlapMode::linear(), &[bw])?;
        let p = &points[0];
        let paper = target_for(app.name()).map(|t| t.paper);
        Ok(vec![
            app.name().to_string(),
            format_bandwidth(bw),
            format!("{:.2}", p.comm_fraction),
            format!("{:+.0}%", p.speedup_percent()),
            paper
                .map(|v| format!("{:+.0}%", v * 100.0))
                .unwrap_or_else(|| "-".into()),
        ])
    })?;
    for row in rows {
        table.row(row?);
    }
    Ok(ExperimentReport {
        id: "E3",
        title: "ideal-pattern speedup at the intermediate (realistic) bandwidth (§III claim 2)"
            .into(),
        table,
        notes: vec![
            "all apps measured on the reference platform's realistic bandwidth, where \
             communication delays are comparable to computation; each app's own \
             communication fraction there determines its attainable speedup"
                .into(),
        ],
    })
}

/// E4 — speedup-vs-bandwidth curves (linear pattern): the benefit is
/// concentrated in the intermediate band and vanishes at both extremes.
///
/// # Errors
///
/// Propagates tracing and replay errors.
pub fn e4_speedup_curves(
    apps: &[Box<dyn Application>],
    points: usize,
) -> Result<ExperimentReport, LabError> {
    let base = reference_platform();
    let bws = log_bandwidths(SWEEP_LO, SWEEP_HI, points);
    let mut headers = vec!["bandwidth".to_string()];
    headers.extend(apps.iter().map(|a| a.name().to_string()));
    let mut table = Table::new(headers);
    let mut columns: Vec<Vec<f64>> = Vec::new();
    let mut curves = Vec::new();
    let per_app = par::par_map(apps, |app| -> Result<_, LabError> {
        let bundle = trace_app(app.as_ref())?;
        let pts = sweep_bundle(&bundle, &base, OverlapMode::linear(), &bws)?;
        let speedups: Vec<f64> = pts.iter().map(|p| p.speedup()).collect();
        Ok((crate::plot::curve_of(app.name(), &pts), speedups))
    })?;
    for result in per_app {
        let (curve, speedups) = result?;
        curves.push(curve);
        columns.push(speedups);
    }
    for (i, bw) in bws.iter().enumerate() {
        let mut row = vec![format_bandwidth(*bw)];
        for col in &columns {
            row.push(format!("{:.3}x", col[i]));
        }
        table.row(row);
    }
    let figure = crate::plot::render_curves(&bws, &curves, &crate::plot::PlotOptions::default());
    Ok(ExperimentReport {
        id: "E4",
        title: "speedup vs bandwidth, linear patterns (§III claim 2, curve form)".into(),
        table,
        notes: vec![figure],
    })
}

/// E5 — bandwidth relaxation at high bandwidth: the overlapped execution
/// matches the original's performance with "a couple of orders of
/// magnitude" less bandwidth (§III claim 3).
///
/// # Errors
///
/// Propagates tracing, replay and search errors.
pub fn e5_bandwidth_relaxation(
    apps: &[Box<dyn Application>],
    reference: f64,
) -> Result<ExperimentReport, LabError> {
    let base = reference_platform();
    let mut table = Table::new(vec![
        "app",
        "reference BW",
        "original time",
        "iso BW (overlapped)",
        "relaxation",
    ]);
    let rows = par::par_map(apps, |app| -> Result<Vec<String>, LabError> {
        let bundle = trace_app(app.as_ref())?;
        let overlapped = bundle.overlapped(OverlapMode::linear())?;
        let r = bandwidth_relaxation(bundle.original(), &overlapped, &base, reference, 1.0e3)?;
        Ok(vec![
            app.name().to_string(),
            format_bandwidth(r.reference_bandwidth),
            format_time(r.original_time),
            format_bandwidth(r.iso_bandwidth),
            format!(
                "{:.0}x ({:.1} orders)",
                r.relaxation_factor(),
                r.orders_of_magnitude()
            ),
        ])
    })?;
    for row in rows {
        table.row(row?);
    }
    Ok(ExperimentReport {
        id: "E5",
        title: "iso-performance bandwidth relaxation (§III claim 3)".into(),
        table,
        notes: vec![
            "paper: \"for achieving the performance of the original execution on some \
             high bandwidth, the overlapped execution needs bandwidth that is [a] couple \
             of orders of magnitude lower\""
                .into(),
        ],
    })
}

/// E6 — mechanism ablation: early sends only, late waits only, both, and
/// pure chunking, at each app's intermediate bandwidth (§II-B: traces
/// "that enforce only a subset of the overlapping mechanisms").
///
/// # Errors
///
/// Propagates tracing and replay errors.
pub fn e6_mechanisms(apps: &[Box<dyn Application>]) -> Result<ExperimentReport, LabError> {
    let base = reference_platform();
    let bw = base.bandwidth();
    let mut table = Table::new(vec![
        "app",
        "chunked only",
        "early-send only",
        "late-wait only",
        "both",
    ]);
    let rows = par::par_map(apps, |app| -> Result<Vec<String>, LabError> {
        let bundle = trace_app(app.as_ref())?;
        let mut cells = vec![app.name().to_string()];
        for mechanisms in [
            Mechanisms::NONE,
            Mechanisms::EARLY_SEND_ONLY,
            Mechanisms::LATE_WAIT_ONLY,
            Mechanisms::BOTH,
        ] {
            let mode = OverlapMode {
                pattern: PatternSource::Linear,
                mechanisms,
            };
            let s = speedup_at(&bundle, &base, mode, bw)?;
            cells.push(format!("{:+.1}%", (s - 1.0) * 100.0));
        }
        Ok(cells)
    })?;
    for row in rows {
        table.row(row?);
    }
    Ok(ExperimentReport {
        id: "E6",
        title: "overlap mechanism ablation at intermediate bandwidth (§II-B)".into(),
        table,
        notes: Vec::new(),
    })
}

/// E7 — production/consumption pattern CDFs: how much of each message is
/// ready after 25/50/75/100% of the producing burst, real vs linear (the
/// Sancho-assumption check, §II).
///
/// # Errors
///
/// Propagates tracing errors.
pub fn e7_pattern_cdf(apps: &[Box<dyn Application>]) -> Result<ExperimentReport, LabError> {
    let mut table = Table::new(vec![
        "app",
        "q25 ready@",
        "q50 ready@",
        "q75 ready@",
        "q100 ready@",
    ]);
    let rows = par::par_map(apps, |app| -> Result<Option<Vec<String>>, LabError> {
        let bundle = trace_app(app.as_ref())?;
        // Average the readiness CDF over the first-rank sends.
        let meta = bundle
            .metas()
            .iter()
            .find(|m| !m.sends.is_empty())
            .expect("at least one rank sends");
        let mut acc = [0.0f64; 4];
        let mut n = 0;
        for send in &meta.sends {
            if let Some(prof) = &send.production {
                let window_start = ovlsim_core::Instr::ZERO;
                let cdf = prof.readiness_cdf(window_start, send.send_instant, 4);
                for (a, c) in acc.iter_mut().zip(&cdf) {
                    *a += c;
                }
                n += 1;
            }
        }
        if n == 0 {
            return Ok(None);
        }
        let mut row = vec![app.name().to_string()];
        for a in acc {
            row.push(format!("{:.0}%", a / n as f64 * 100.0));
        }
        Ok(Some(row))
    })?;
    for row in rows {
        if let Some(row) = row? {
            table.row(row);
        }
    }
    Ok(ExperimentReport {
        id: "E7",
        title: "measured production patterns: when is each message quartile ready \
                (fraction of the rank's execution; linear would be 25/50/75/100%)"
            .into(),
        table,
        notes: vec![
            "values near 100% for all quartiles = production packed at the end \
             (the legacy pack-loop pattern that defeats automatic overlap)"
                .into(),
        ],
    })
}

/// E8 — platform sensitivity: the environment's "configurable platform"
/// knobs. Ideal-pattern speedup of one app across latencies and bus
/// counts at its intermediate bandwidth.
///
/// # Errors
///
/// Propagates tracing and replay errors.
pub fn e8_platform_sensitivity(app: &dyn Application) -> Result<ExperimentReport, LabError> {
    let bundle = trace_app(app)?;
    let base = reference_platform();
    let bw = base.bandwidth();
    let overlapped = bundle.overlapped(OverlapMode::linear())?;
    let mut table = Table::new(vec![
        "latency",
        "buses",
        "original",
        "overlapped",
        "speedup",
    ]);
    for latency_us in [1u64, 5, 25, 125] {
        for buses in [None, Some(4u32), Some(1)] {
            let mut b = Platform::builder();
            b.latency(Time::from_us(latency_us))
                .bandwidth(bw)
                .buses(buses);
            let platform = b.build();
            let sim = Simulator::new(platform);
            let orig = sim.run(bundle.original())?.total_time();
            let ovl = sim.run(&overlapped)?.total_time();
            table.row(vec![
                format!("{latency_us} us"),
                buses.map(|b| b.to_string()).unwrap_or_else(|| "inf".into()),
                format_time(orig),
                format_time(ovl),
                format!("{:.3}x", orig.as_secs_f64() / ovl.as_secs_f64()),
            ]);
        }
    }
    Ok(ExperimentReport {
        id: "E8",
        title: format!("platform sensitivity on {} (latency × buses)", app.name()),
        table,
        notes: Vec::new(),
    })
}

/// E9 (extension, paper §IV future work) — the chunking trade-off under
/// per-message CPU overhead: speedup vs chunk count for several LogGP-style
/// send/receive overheads. With zero overhead, more chunks monotonically
/// help (up to pattern granularity); with realistic per-message costs an
/// interior optimum appears — the practical limit of automatic overlap.
///
/// # Errors
///
/// Propagates tracing and replay errors.
pub fn e9_chunk_overhead(
    app: &dyn Application,
    chunk_counts: &[usize],
    overheads_us: &[u64],
) -> Result<ExperimentReport, LabError> {
    let base = reference_platform();
    let bw = base.bandwidth();
    let mut headers = vec!["chunks".to_string()];
    headers.extend(overheads_us.iter().map(|o| format!("o={o}us")));
    let mut table = Table::new(headers);
    for &chunks in chunk_counts {
        let bundle = TracingSession::new(app)
            .policy(ChunkingPolicy::fixed_count(chunks).with_min_chunk_bytes(256))
            .run()?;
        let overlapped = bundle.overlapped(OverlapMode::linear())?;
        let mut row = vec![chunks.to_string()];
        for &o in overheads_us {
            let mut b = Platform::builder();
            b.latency(base.latency())
                .bandwidth(bw)
                .send_overhead(Time::from_us(o))
                .recv_overhead(Time::from_us(o));
            let platform = b.build();
            let sim = Simulator::new(platform);
            let orig = sim.run(bundle.original())?.total_time();
            let ovl = sim.run(&overlapped)?.total_time();
            row.push(format!(
                "{:+.1}%",
                (orig.as_secs_f64() / ovl.as_secs_f64() - 1.0) * 100.0
            ));
        }
        table.row(row);
    }
    Ok(ExperimentReport {
        id: "E9",
        title: format!(
            "chunk-count trade-off under per-message overhead on {} (extension)",
            app.name()
        ),
        table,
        notes: vec![
            "extension of the paper's model (\u{a7}IV: \"model more state-of-the-art \
             network and MPI properties\"): each posted/completed message costs the \
             CPU a LogGP-style overhead `o`, bounding useful chunk counts"
                .into(),
        ],
    })
}

/// E10 (extension) — multi-core nodes: ranks sharing a node's NIC contend
/// for its links, while sibling messages use the fast intra-node path.
/// Shows how the overlap benefit changes as the same 16 ranks are packed
/// onto fewer nodes.
///
/// # Errors
///
/// Propagates tracing and replay errors.
pub fn e10_multicore(app: &dyn Application) -> Result<ExperimentReport, LabError> {
    let base = reference_platform();
    let bundle = trace_app(app)?;
    let overlapped = bundle.overlapped(OverlapMode::linear())?;
    let intra_bws: Vec<Bandwidth> = [2.0e9f64, 20.0e9]
        .iter()
        .map(|&b| Bandwidth::from_bytes_per_sec(b))
        .collect::<Result<_, _>>()?;
    let points = crate::sweep::sweep_node_packing(
        bundle.original(),
        &overlapped,
        &base,
        &[1, 2, 4, 8],
        &intra_bws,
    )?;
    let mut table = Table::new(vec![
        "ranks/node",
        "intra BW",
        "original",
        "overlapped",
        "speedup",
        "mean busy buses",
    ]);
    for p in &points {
        table.row(vec![
            p.ranks_per_node.to_string(),
            format_bandwidth(p.intra_bandwidth),
            format_time(p.original),
            format_time(p.overlapped),
            format!("{:.3}x", p.speedup()),
            format!("{:.2}", p.mean_busy_buses),
        ]);
    }
    Ok(ExperimentReport {
        id: "E10",
        title: format!(
            "multi-core nodes on {}: shared NIC contention vs intra-node fast path (extension)",
            app.name()
        ),
        table,
        notes: vec![
            "ranks packed onto fewer nodes share the node's network links but gain a \
             fast shared-memory path for sibling messages; the intra-node bandwidth \
             column shows how sensitive each packing is to the shared-memory speed"
                .into(),
        ],
    })
}

/// Measures the speedup curve of the raw original vs a specific overlapped
/// trace on explicit bandwidths (helper for custom studies).
///
/// # Errors
///
/// Propagates replay errors.
pub fn custom_curve(
    bundle: &TraceBundle,
    mode: OverlapMode,
    bandwidths: &[Bandwidth],
) -> Result<Vec<(Bandwidth, f64)>, LabError> {
    let overlapped = bundle.overlapped(mode)?;
    let pts = sweep_traces(
        bundle.original(),
        &overlapped,
        &reference_platform(),
        bandwidths,
    )?;
    Ok(pts.iter().map(|p| (p.bandwidth, p.speedup())).collect())
}

/// Convenience: rank-0 timeline Gantt of original vs a mode, for
/// qualitative inspection (E1-style, any app).
///
/// # Errors
///
/// Propagates tracing and replay errors.
pub fn side_by_side_gantt(
    app: &dyn Application,
    mode: OverlapMode,
    bandwidth: Bandwidth,
    width: usize,
) -> Result<String, LabError> {
    let bundle = trace_app(app)?;
    let base = reference_platform().with_bandwidth(bandwidth);
    let (orig_tl, _) = Timeline::capture(&base, bundle.original())?;
    let ts = bundle.overlapped(mode)?;
    let (ovl_tl, _) = Timeline::capture(&base, &ts)?;
    let opts = GanttOptions {
        width,
        legend: true,
    };
    let _ = Rank::new(0);
    Ok(format!(
        "{}\n{}",
        render_gantt(
            &orig_tl,
            &GanttOptions {
                width,
                legend: false
            }
        ),
        render_gantt(&ovl_tl, &opts)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlsim_apps::{Synthetic, Topology};

    fn quick_apps() -> Vec<Box<dyn Application>> {
        vec![Box::new(
            Synthetic::builder()
                .ranks(4)
                .topology(Topology::Ring)
                .compute_instr(500_000)
                .message_bytes(131_072)
                .iterations(2)
                .build()
                .unwrap(),
        )]
    }

    #[test]
    fn e1_renders_pipeline() {
        let app = Synthetic::builder().ranks(2).iterations(2).build().unwrap();
        let report = e1_pipeline(&app).unwrap();
        let s = report.render();
        assert!(s.contains("E1"));
        assert!(s.contains("original"));
        assert!(s.contains("ovl-linear"));
        assert!(s.contains("legend"), "gantt note missing");
        assert_eq!(report.table.len(), 5);
    }

    #[test]
    fn e2_reports_peaks() {
        let report = e2_real_patterns(&quick_apps(), 5).unwrap();
        assert_eq!(report.table.len(), 1);
        assert!(report.render().contains("synthetic"));
    }

    #[test]
    fn e3_compares_to_paper() {
        let report = e3_ideal_speedup(&quick_apps()).unwrap();
        assert_eq!(report.table.len(), 1);
        // No paper target for "synthetic": dash in the paper column.
        assert!(report.render().contains('-'));
    }

    #[test]
    fn e4_curve_has_requested_points() {
        let report = e4_speedup_curves(&quick_apps(), 5).unwrap();
        assert_eq!(report.table.len(), 5);
    }

    #[test]
    fn e5_relaxation_runs() {
        let report = e5_bandwidth_relaxation(&quick_apps(), 1.0e10).unwrap();
        assert!(report.render().contains("orders"));
    }

    #[test]
    fn e6_has_four_mechanism_columns() {
        let report = e6_mechanisms(&quick_apps()).unwrap();
        assert_eq!(report.table.len(), 1);
    }

    #[test]
    fn e7_cdf_rows() {
        let report = e7_pattern_cdf(&quick_apps()).unwrap();
        assert_eq!(report.table.len(), 1);
    }

    #[test]
    fn e8_sensitivity_grid() {
        let app = Synthetic::builder().ranks(4).iterations(2).build().unwrap();
        let report = e8_platform_sensitivity(&app).unwrap();
        assert_eq!(report.table.len(), 12); // 4 latencies x 3 bus settings
    }

    #[test]
    fn e10_multicore_grid() {
        let app = Synthetic::builder().ranks(4).iterations(2).build().unwrap();
        let report = e10_multicore(&app).unwrap();
        assert_eq!(report.table.len(), 8); // 4 packings x 2 intra bandwidths
        assert!(report.render().contains("intra BW"));
    }

    #[test]
    fn side_by_side_gantt_renders() {
        let app = Synthetic::builder().ranks(2).iterations(1).build().unwrap();
        let bw = Bandwidth::from_bytes_per_sec(1.0e8).unwrap();
        let g = side_by_side_gantt(&app, OverlapMode::linear(), bw, 40).unwrap();
        assert!(g.contains("legend"));
    }
}
