//! ASCII tables and CSV output for experiment reports.

use std::fmt::Write as _;

/// A simple column-aligned table.
///
/// # Example
///
/// ```
/// use ovlsim_lab::Table;
///
/// let mut t = Table::new(vec!["app", "speedup"]);
/// t.row(vec!["nas-bt".into(), "1.30x".into()]);
/// let s = t.render();
/// assert!(s.contains("nas-bt"));
/// assert!(t.to_csv().starts_with("app,speedup"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a separator line.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders the table as CSV (no quoting; cells must not contain
    /// commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yyyy".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_roundtrip_structure() {
        let mut t = Table::new(vec!["h1", "h2"]);
        t.row(vec!["a".into(), "b".into()]);
        assert_eq!(t.to_csv(), "h1,h2\na,b\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_rejected() {
        Table::new(vec!["only"]).row(vec!["a".into(), "b".into()]);
    }
}
