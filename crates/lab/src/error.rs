//! Experiment-harness errors.

use std::error::Error;
use std::fmt;

use ovlsim_apps::AppConfigError;
use ovlsim_core::{CompileError, CoreError};
use ovlsim_dimemas::SimError;
use ovlsim_tracer::TraceError;

/// Errors produced by the experiment harness.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LabError {
    /// Tracing an application failed.
    Trace(TraceError),
    /// Replaying a trace failed.
    Sim(SimError),
    /// A platform/bandwidth value was invalid.
    Core(CoreError),
    /// A search failed to bracket its target.
    SearchFailed {
        /// What was being searched for.
        what: String,
    },
    /// Compiling a trace into a replay program failed.
    Compile(CompileError),
    /// Building an application model from a campaign spec failed (bad
    /// rank count for the topology, zero iterations, …).
    App(AppConfigError),
    /// `OVLSIM_THREADS` was set to something other than a positive
    /// integer. The run fails loudly instead of silently substituting a
    /// different worker count (which would invalidate any scaling
    /// measurement the setting was meant to pin).
    InvalidThreadConfig {
        /// The offending environment value.
        value: String,
    },
}

impl fmt::Display for LabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabError::Trace(e) => write!(f, "tracing failed: {e}"),
            LabError::Sim(e) => write!(f, "replay failed: {e}"),
            LabError::Core(e) => write!(f, "invalid configuration: {e}"),
            LabError::SearchFailed { what } => write!(f, "search failed: {what}"),
            LabError::Compile(e) => write!(f, "trace compilation failed: {e}"),
            LabError::App(e) => write!(f, "building application failed: {e}"),
            LabError::InvalidThreadConfig { value } => write!(
                f,
                "invalid OVLSIM_THREADS value {value:?}: want a positive integer \
                 (unset the variable to use the machine's available parallelism)"
            ),
        }
    }
}

impl Error for LabError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LabError::Trace(e) => Some(e),
            LabError::Sim(e) => Some(e),
            LabError::Core(e) => Some(e),
            LabError::SearchFailed { .. } => None,
            LabError::Compile(e) => Some(e),
            LabError::App(e) => Some(e),
            LabError::InvalidThreadConfig { .. } => None,
        }
    }
}

impl From<AppConfigError> for LabError {
    fn from(e: AppConfigError) -> Self {
        LabError::App(e)
    }
}

impl From<CompileError> for LabError {
    fn from(e: CompileError) -> Self {
        LabError::Compile(e)
    }
}

impl From<TraceError> for LabError {
    fn from(e: TraceError) -> Self {
        LabError::Trace(e)
    }
}

impl From<SimError> for LabError {
    fn from(e: SimError) -> Self {
        LabError::Sim(e)
    }
}

impl From<CoreError> for LabError {
    fn from(e: CoreError) -> Self {
        LabError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: LabError = CoreError::InvalidMips(0).into();
        assert!(format!("{e}").contains("invalid configuration"));
        let e = LabError::SearchFailed {
            what: "iso bandwidth".into(),
        };
        assert!(format!("{e}").contains("iso bandwidth"));
        assert!(e.source().is_none());
    }
}
