//! Attribution-guided overlap auto-tuner: a deterministic, seeded
//! mutate → replay → score search over per-channel overlap plans.
//!
//! ROADMAP item 1 closes the paper's loop: PR 5's attribution engine ranks
//! channels by clamped overlap-gain potential, and this module *spends* a
//! mutation budget on those channels, in the style of coverage-guided
//! fuzzers (corpus = best plan so far; mutation = one per-channel
//! parameter change; feedback = makespan from a full replay; scheduling =
//! the attribution ranking biases which channel gets mutated).
//!
//! Determinism is structural: every random choice is a counter-based hash
//! of `(seed, round, slot)` — no mutable RNG state — candidate scores come
//! back in slot order from the order-stable parallel map, and acceptance
//! folds over them sequentially. The trajectory report is therefore
//! byte-identical across reruns and `OVLSIM_THREADS` settings, and plans
//! replay bit-identically on every engine (the engines are differential-
//! tested against each other).

use std::fmt::Write as _;
use std::sync::Arc;

use ovlsim_core::rng::{hash_counters, unit_f64};
use ovlsim_core::{Platform, Record, Tag, Time, TraceIndex, TraceSet};
use ovlsim_tracer::{OverlapPlan, TraceBundle, TUNING_SCALE};

use crate::attribution::Attribution;
use crate::campaign::Engine;
use crate::error::LabError;
use crate::par;
use crate::pipeline::{ArtifactPipeline, EngineInput};

/// Default candidate-evaluation budget of a tune run.
pub const DEFAULT_TUNE_BUDGET: usize = 64;

/// Candidates proposed (and scored concurrently) per search round. All
/// proposals of a round mutate the round's incumbent best plan; acceptance
/// folds over their scores in slot order.
const PROPOSALS_PER_ROUND: usize = 4;

/// The chunk-count alphabet mutations draw from.
const CHUNK_CHOICES: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Tuning-run parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneOptions {
    /// Total candidate evaluations, including the uniform-linear baseline
    /// (clamped to at least 1).
    pub budget: usize,
    /// Search seed: all mutation choices derive from it by counter-based
    /// hashing.
    pub seed: u64,
    /// Engine candidates are scored on (all engines produce bit-identical
    /// makespans; this only selects the execution strategy).
    pub engine: Engine,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            budget: DEFAULT_TUNE_BUDGET,
            seed: 0,
            engine: Engine::Compiled,
        }
    }
}

/// One candidate evaluation in the search trajectory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuneStep {
    /// Global evaluation index (0 = the uniform-linear baseline).
    pub iter: usize,
    /// Human-readable mutation, e.g. `"0>1#5 chunks=8"`.
    pub mutation: String,
    /// This candidate's makespan.
    pub makespan: Time,
    /// Whether the candidate strictly improved on the best so far and was
    /// accepted as the new incumbent.
    pub accepted: bool,
    /// Best makespan after resolving this step.
    pub best: Time,
}

/// The full result of a tune run: scores, trajectory, and the winning
/// per-channel plan.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReport {
    /// Application (or trace) name.
    pub app: String,
    /// Search seed used.
    pub seed: u64,
    /// Evaluation budget used.
    pub budget: usize,
    /// Scoring engine.
    pub engine: Engine,
    /// Number of tunable (chunkable) channels.
    pub channels: usize,
    /// Makespan of the original (non-overlapped) execution.
    pub original: Time,
    /// Makespan under the uniform-linear baseline plan.
    pub linear: Time,
    /// Best makespan found.
    pub best: Time,
    /// The winning plan (`None` when tuning a raw trace, which carries no
    /// transform metadata to re-synthesize candidates from).
    pub best_plan: Option<OverlapPlan>,
    /// The search trajectory, one entry per evaluation.
    pub steps: Vec<TuneStep>,
}

impl TuneReport {
    /// `linear / best` makespan ratio: how much the tuned plan gains over
    /// uniform linear overlap (1.0 = no gain; degenerate zero best → 1.0).
    pub fn speedup_vs_linear(&self) -> f64 {
        if self.best.is_zero() {
            return 1.0;
        }
        self.linear.as_secs_f64() / self.best.as_secs_f64()
    }

    /// Byte-stable JSON rendering: header fields, then one line per
    /// trajectory step.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let plan = match &self.best_plan {
            Some(p) => p.render(),
            None => "n/a".to_owned(),
        };
        let _ = writeln!(
            out,
            "{{\"tune\":{{\"app\":\"{}\",\"seed\":{},\"budget\":{},\
             \"engine\":\"{}\",\"channels\":{},\"original_ps\":{},\
             \"linear_ps\":{},\"best_ps\":{},\"speedup_vs_linear\":{},\
             \"best_plan\":\"{}\",\"steps\":[",
            self.app,
            self.seed,
            self.budget,
            self.engine,
            self.channels,
            self.original.as_ps(),
            self.linear.as_ps(),
            self.best.as_ps(),
            self.speedup_vs_linear(),
            plan,
        );
        for (i, s) in self.steps.iter().enumerate() {
            let sep = if i + 1 == self.steps.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "{{\"iter\":{},\"mutation\":\"{}\",\"makespan_ps\":{},\
                 \"accepted\":{},\"best_ps\":{}}}{sep}",
                s.iter,
                s.mutation,
                s.makespan.as_ps(),
                s.accepted,
                s.best.as_ps(),
            );
        }
        out.push_str("]}}\n");
        out
    }

    /// Byte-stable CSV rendering of the trajectory.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("iter,mutation,makespan_ps,accepted,best_ps\n");
        for s in &self.steps {
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                s.iter,
                s.mutation,
                s.makespan.as_ps(),
                s.accepted,
                s.best.as_ps(),
            );
        }
        out
    }
}

/// Scores one candidate plan: synthesize the variant, build what the
/// engine needs through the pipeline (candidate programs are
/// content-addressed there, so re-evaluations hit the cache), replay.
fn score_plan(
    pipeline: &dyn ArtifactPipeline,
    bundle: &TraceBundle,
    platform: &Platform,
    engine: Engine,
    plan: &OverlapPlan,
) -> Result<Time, LabError> {
    let ts = Arc::new(bundle.overlapped_planned(plan)?);
    let input = EngineInput::build(pipeline, ts, &[engine], false)?;
    Ok(input.replay(engine, platform)?.total_time())
}

/// The bundle's tunable channels ranked by the attribution of the
/// *original* replay: clamped overlap-gain potential descending, then
/// total charged wait descending, then `(src, dst, tag)` ascending.
/// Channels the attribution never charged rank last in key order.
fn ranked_tunable_channels(
    bundle: &TraceBundle,
    original: &TraceSet,
    index: &TraceIndex,
    attribution: &Attribution,
) -> Vec<(u32, u32, Tag)> {
    // Recover each dense channel's application tag from the send records.
    let mut tags: Vec<Option<Tag>> = vec![None; index.channel_peers().len()];
    for (r, rank) in original.ranks().iter().enumerate() {
        for (i, rec) in rank.records().iter().enumerate() {
            let tag = match rec {
                Record::Send { tag, .. } | Record::ISend { tag, .. } => *tag,
                _ => continue,
            };
            if let Some(chan) = index.channel_of(r, i) {
                tags[chan.index()].get_or_insert(tag);
            }
        }
    }
    let mut weight: std::collections::HashMap<(u32, u32, u64), (Time, Time)> =
        std::collections::HashMap::new();
    for b in attribution.channels() {
        if let Some(tag) = tags[b.chan as usize] {
            let entry = weight
                .entry((b.src.get(), b.dst.get(), tag.get()))
                .or_insert((Time::ZERO, Time::ZERO));
            entry.0 += b.gain_potential;
            entry.1 += b.total_wait();
        }
    }
    let mut ranked: Vec<((u32, u32, Tag), Time, Time)> = bundle
        .chunkable_channels()
        .into_iter()
        .map(|(src, dst, tag)| {
            let (gain, wait) = weight
                .get(&(src, dst, tag.get()))
                .copied()
                .unwrap_or((Time::ZERO, Time::ZERO));
            ((src, dst, tag), gain, wait)
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then(b.2.cmp(&a.2))
            .then(a.0 .0.cmp(&b.0 .0))
            .then(a.0 .1.cmp(&b.0 .1))
            .then(a.0 .2.cmp(&b.0 .2))
    });
    ranked.into_iter().map(|(c, _, _)| c).collect()
}

/// Derives one mutation of `best`: pick a channel (rank-biased — squaring
/// the uniform draw concentrates picks on the high-gain head of the
/// ranking), pick a parameter, move it to a different value.
fn propose(
    best: &OverlapPlan,
    ranked: &[(u32, u32, Tag)],
    seed: u64,
    round: u64,
    slot: u64,
) -> (OverlapPlan, String) {
    let draw = |salt: u64| hash_counters(seed, &[round, slot, salt]);
    let u = unit_f64(draw(0));
    let idx = ((u * u * ranked.len() as f64) as usize).min(ranked.len() - 1);
    let (src, dst, tag) = ranked[idx];
    let cur = best.tuning_for(src, dst, tag);
    let mut t = cur;
    let desc = match draw(1) % 4 {
        0 => {
            t.enabled = !cur.enabled;
            if t.enabled { "on" } else { "off" }.to_owned()
        }
        1 => {
            let choices: Vec<u32> = CHUNK_CHOICES
                .iter()
                .copied()
                .filter(|&c| c != cur.chunks)
                .collect();
            t.chunks = choices[(draw(2) % choices.len() as u64) as usize];
            t.enabled = true;
            format!("chunks={}", t.chunks)
        }
        2 => {
            let step = 1 + (draw(2) % u64::from(TUNING_SCALE)) as u8;
            t.early = (cur.early + step) % (TUNING_SCALE + 1);
            t.enabled = true;
            format!("early={}", t.early)
        }
        _ => {
            let step = 1 + (draw(2) % u64::from(TUNING_SCALE)) as u8;
            t.late = (cur.late + step) % (TUNING_SCALE + 1);
            t.enabled = true;
            format!("late={}", t.late)
        }
    };
    let mut plan = best.clone();
    plan.set(src, dst, tag, t);
    (plan, format!("{src}>{dst}#{} {desc}", tag.get()))
}

/// Runs the auto-tuner on a traced application bundle.
///
/// Evaluation 0 is always the uniform-linear baseline plan (the plan the
/// acceptance criterion compares against); subsequent rounds propose up to
/// four mutations of the incumbent, score them concurrently, and accept
/// each strict improvement in slot order.
///
/// # Errors
///
/// Propagates synthesis, validation, compilation and replay errors.
pub fn run_tune(
    pipeline: &dyn ArtifactPipeline,
    bundle: &TraceBundle,
    platform: &Platform,
    opts: &TuneOptions,
) -> Result<TuneReport, LabError> {
    run_tune_threaded(
        pipeline,
        bundle,
        platform,
        opts,
        crate::par::configured_threads()?,
    )
}

/// [`run_tune`] with an explicit worker cap (exposed for the determinism
/// tests and scaling measurements).
///
/// # Errors
///
/// Propagates synthesis, validation, compilation and replay errors.
#[doc(hidden)]
pub fn run_tune_threaded(
    pipeline: &dyn ArtifactPipeline,
    bundle: &TraceBundle,
    platform: &Platform,
    opts: &TuneOptions,
    threads: usize,
) -> Result<TuneReport, LabError> {
    let budget = opts.budget.max(1);
    let original = pipeline.variant(bundle, None)?;
    let index = pipeline.index(&original)?;
    let attribution = Attribution::analyze(platform, &original, &index)?;
    let ranked = ranked_tunable_channels(bundle, &original, &index, &attribution);

    let uniform = OverlapPlan::uniform_linear();
    let linear = score_plan(pipeline, bundle, platform, opts.engine, &uniform)?;
    let mut steps = vec![TuneStep {
        iter: 0,
        mutation: "baseline uniform-linear".to_owned(),
        makespan: linear,
        accepted: true,
        best: linear,
    }];
    let mut best_plan = uniform;
    let mut best = linear;
    let mut evals = 1;
    let mut round: u64 = 0;
    while evals < budget && !ranked.is_empty() {
        let width = PROPOSALS_PER_ROUND.min(budget - evals);
        let proposals: Vec<(OverlapPlan, String)> = (0..width)
            .map(|slot| propose(&best_plan, &ranked, opts.seed, round, slot as u64))
            .collect();
        let scores = par::par_map_with(&proposals, threads, |(plan, _)| {
            score_plan(pipeline, bundle, platform, opts.engine, plan)
        });
        for ((plan, mutation), result) in proposals.into_iter().zip(scores) {
            let makespan = result?;
            let accepted = makespan < best;
            if accepted {
                best = makespan;
                best_plan = plan;
            }
            steps.push(TuneStep {
                iter: evals,
                mutation,
                makespan,
                accepted,
                best,
            });
            evals += 1;
        }
        round += 1;
    }

    Ok(TuneReport {
        app: bundle.name().to_owned(),
        seed: opts.seed,
        budget,
        engine: opts.engine,
        channels: ranked.len(),
        original: attribution.makespan(),
        linear,
        best,
        best_plan: Some(best_plan),
        steps,
    })
}

/// The raw-trace fallback: a `.dim`/`.ovlb` trace carries no
/// production/consumption metadata, so no candidate can be synthesized —
/// the report records the baseline replay and an empty search.
///
/// # Errors
///
/// Propagates validation and replay errors.
pub fn run_tune_baseline(
    pipeline: &dyn ArtifactPipeline,
    trace: &Arc<TraceSet>,
    platform: &Platform,
    opts: &TuneOptions,
) -> Result<TuneReport, LabError> {
    let index = pipeline.index(trace)?;
    let attribution = Attribution::analyze(platform, trace, &index)?;
    let makespan = attribution.makespan();
    Ok(TuneReport {
        app: trace.name().to_owned(),
        seed: opts.seed,
        budget: opts.budget.max(1),
        engine: opts.engine,
        channels: 0,
        original: makespan,
        linear: makespan,
        best: makespan,
        best_plan: None,
        steps: vec![TuneStep {
            iter: 0,
            mutation: "baseline original (raw trace: no transform metadata)".to_owned(),
            makespan,
            accepted: true,
            best: makespan,
        }],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DirectPipeline;
    use ovlsim_apps::registry::AppOverrides;
    use ovlsim_apps::ProblemClass;

    fn tune_app(app: &str, opts: &TuneOptions) -> TuneReport {
        let p = DirectPipeline;
        let bundle = p
            .bundle(app, ProblemClass::S, AppOverrides::default())
            .unwrap();
        let platform = ovlsim_apps::calibration::reference_platform();
        run_tune(&p, &bundle, &platform, opts).unwrap()
    }

    #[test]
    fn tune_never_regresses_below_uniform_linear() {
        let report = tune_app(
            "sweep3d",
            &TuneOptions {
                budget: 9,
                ..TuneOptions::default()
            },
        );
        assert!(report.best <= report.linear);
        assert_eq!(report.steps.len(), 9);
        assert_eq!(report.steps[0].makespan, report.linear);
        assert!(report.channels > 0);
        // best-so-far is monotone non-increasing along the trajectory.
        for w in report.steps.windows(2) {
            assert!(w[1].best <= w[0].best);
        }
        // The final best matches the report header.
        assert_eq!(report.steps.last().unwrap().best, report.best);
    }

    #[test]
    fn tune_is_deterministic_for_a_seed() {
        let opts = TuneOptions {
            budget: 5,
            seed: 42,
            ..TuneOptions::default()
        };
        let a = tune_app("sweep3d", &opts);
        let b = tune_app("sweep3d", &opts);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.best_plan, b.best_plan);
        // A different seed explores a different trajectory.
        let c = tune_app("sweep3d", &TuneOptions { seed: 43, ..opts });
        assert_ne!(
            a.steps.iter().map(|s| &s.mutation).collect::<Vec<_>>(),
            c.steps.iter().map(|s| &s.mutation).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn budget_zero_clamps_to_baseline_only() {
        let report = tune_app(
            "sweep3d",
            &TuneOptions {
                budget: 0,
                ..TuneOptions::default()
            },
        );
        assert_eq!(report.steps.len(), 1);
        assert_eq!(report.best, report.linear);
    }

    #[test]
    fn baseline_report_for_raw_trace() {
        let p = DirectPipeline;
        let bundle = p
            .bundle("sweep3d", ProblemClass::S, AppOverrides::default())
            .unwrap();
        let trace = p.variant(&bundle, None).unwrap();
        let platform = ovlsim_apps::calibration::reference_platform();
        let report = run_tune_baseline(&p, &trace, &platform, &TuneOptions::default()).unwrap();
        assert_eq!(report.channels, 0);
        assert!(report.best_plan.is_none());
        assert_eq!(report.steps.len(), 1);
        assert_eq!(report.best, report.original);
        assert!(report.to_json().contains("\"best_plan\":\"n/a\""));
    }

    #[test]
    fn report_renderings_are_byte_stable() {
        let opts = TuneOptions {
            budget: 5,
            ..TuneOptions::default()
        };
        let report = tune_app("sweep3d", &opts);
        assert_eq!(report.to_json(), report.to_json());
        assert_eq!(report.to_csv(), report.to_csv());
        let csv = report.to_csv();
        assert!(csv.starts_with("iter,mutation,makespan_ps,accepted,best_ps\n"));
        assert_eq!(csv.lines().count(), 1 + report.steps.len());
    }
}
