//! Time attribution and critical-path extraction.
//!
//! A replay's makespan says *how fast* an execution was; attribution says
//! *where the time went* and *which communication actually matters*. The
//! attribution-capable engines (`run_prepared_observed`,
//! `run_compiled_observed`) emit cause-tagged intervals
//! ([`WaitCause`]) that tile each rank's `[0, finish)` exactly; this
//! module folds them into:
//!
//! * **per-rank breakdowns** — compute, sender overhead, blocked-on-recv
//!   /-send/-wait, network contention (intra vs inter domain) and
//!   collective time, summing bit-exactly to the rank's finish time,
//! * **per-channel wait breakdowns** — every blocked cause carries the
//!   dense channel id of the gating transfer, so wait time rolls up per
//!   `(source, destination, tag)` channel and per peer,
//! * the **critical path** — a back-walk from the slowest rank's finish
//!   through the *last unblocker* of each blocked interval (the
//!   [`DepEdge`]s the engines attach), yielding a contiguous chain of
//!   cause-tagged segments whose durations sum exactly to the makespan,
//! * an **overlap gain potential** per channel — the channel's wait time
//!   on the critical path, clamped to the overlappable gap
//!   `makespan − OverlapBounds::makespan_bound()`, so the ranking can
//!   never promise more than any schedule could recover.
//!
//! [`Attribution::analyze`] runs the whole pipeline on a validated trace;
//! the `ovlsim analyze` subcommand renders the result as byte-stable JSON
//! and CSV (same determinism contract as campaign reports).

use std::fmt::Write as _;

use ovlsim_core::{Platform, Rank, Time, TraceIndex, TraceSet};
use ovlsim_dimemas::{DepEdge, ReplayObserver, ReplayResult, Simulator, WaitCause};

use crate::bounds::OverlapBounds;
use crate::campaign::json_escape;
use crate::error::LabError;

/// One cause-tagged interval of one rank, as recorded from the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttrInterval {
    /// Interval start (inclusive).
    pub start: Time,
    /// Interval end (exclusive).
    pub end: Time,
    /// What the time is charged to.
    pub cause: WaitCause,
    /// The cross-rank dependency that released the interval, if any.
    pub edge: Option<DepEdge>,
}

/// A [`ReplayObserver`] that records attributed intervals per rank.
///
/// Feed it to `run_prepared_observed` or `run_compiled_observed` (on a
/// program from `CompiledTrace::compile_observed`); then fold the capture
/// with [`Attribution::from_recorded`] or use the one-call
/// [`Attribution::analyze`].
#[derive(Debug, Clone, Default)]
pub struct AttributionRecorder {
    per_rank: Vec<Vec<AttrInterval>>,
    finish: Vec<Time>,
}

impl AttributionRecorder {
    /// Creates a recorder for `ranks` ranks.
    pub fn new(ranks: usize) -> Self {
        AttributionRecorder {
            per_rank: vec![Vec::new(); ranks],
            finish: vec![Time::ZERO; ranks],
        }
    }

    /// The recorded intervals of one rank, in time order.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn intervals(&self, rank: usize) -> &[AttrInterval] {
        &self.per_rank[rank]
    }

    /// Per-rank finish times.
    pub fn finish_times(&self) -> &[Time] {
        &self.finish
    }
}

impl ReplayObserver for AttributionRecorder {
    fn attributed(
        &mut self,
        rank: Rank,
        start: Time,
        end: Time,
        cause: WaitCause,
        edge: Option<DepEdge>,
    ) {
        self.per_rank[rank.index()].push(AttrInterval {
            start,
            end,
            cause,
            edge,
        });
    }

    fn finished(&mut self, rank: Rank, at: Time) {
        self.finish[rank.index()] = at;
    }
}

/// Where one rank's time went, summing bit-exactly to `total` (its finish
/// time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RankBreakdown {
    /// Computation bursts.
    pub compute: Time,
    /// Per-message sender CPU overhead.
    pub send_overhead: Time,
    /// Blocked in blocking receives.
    pub blocked_recv: Time,
    /// Blocked in rendezvous sends.
    pub blocked_send: Time,
    /// Blocked in `Wait`/`WaitAll`.
    pub blocked_wait: Time,
    /// Gating transfer queued in the bus/NIC fabric.
    pub contended_inter: Time,
    /// Gating transfer queued for intra-node ports.
    pub contended_intra: Time,
    /// Gating transfer held back by a transient link outage (fault
    /// injection; always zero on clean platforms).
    pub link_down: Time,
    /// Inside collectives.
    pub collective: Time,
    /// The rank's finish time (sum of all categories).
    pub total: Time,
}

impl RankBreakdown {
    /// Everything except compute and sender overhead: the rank's
    /// communication wait.
    pub fn wait(&self) -> Time {
        self.blocked_recv
            + self.blocked_send
            + self.blocked_wait
            + self.contended_inter
            + self.contended_intra
            + self.link_down
            + self.collective
    }
}

/// Wait time charged to one `(source, destination, tag)` channel, across
/// all ranks, plus its share of the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelBreakdown {
    /// Dense channel id.
    pub chan: u32,
    /// Sending rank.
    pub src: Rank,
    /// Receiving rank.
    pub dst: Rank,
    /// Blocking-receive wait charged to this channel.
    pub blocked_recv: Time,
    /// Rendezvous-send wait charged to this channel.
    pub blocked_send: Time,
    /// Request-wait time charged to this channel (last-unblocker rule).
    pub blocked_wait: Time,
    /// Bus/NIC queue time of this channel's gating transfers.
    pub contended_inter: Time,
    /// Intra-node port queue time of this channel's gating transfers.
    pub contended_intra: Time,
    /// Link-outage hold time of this channel's gating transfers (fault
    /// injection; always zero on clean platforms).
    pub link_down: Time,
    /// Wait time this channel contributes to the critical path.
    pub critical: Time,
    /// [`ChannelBreakdown::critical`] clamped to the overlappable gap
    /// (`makespan − makespan_bound`): hiding this channel's wait can gain
    /// at most this much, and never more than any schedule could.
    pub gain_potential: Time,
}

impl ChannelBreakdown {
    /// Total wait charged to this channel across all causes.
    pub fn total_wait(&self) -> Time {
        self.blocked_recv
            + self.blocked_send
            + self.blocked_wait
            + self.contended_inter
            + self.contended_intra
            + self.link_down
    }
}

/// One segment of the critical path.
///
/// Segments are contiguous in time: each starts where the previous ended,
/// the first starts at zero and the last ends at the makespan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathStep {
    /// The rank whose interval this segment was cut from.
    pub rank: Rank,
    /// Segment start.
    pub start: Time,
    /// Segment end.
    pub end: Time,
    /// The cause the segment's time is charged to.
    pub cause: WaitCause,
    /// For cross-rank segments: the peer whose action released `rank`
    /// (the back-walk continues on it at `start`).
    pub via: Option<Rank>,
}

/// The folded attribution of one replay: per-rank and per-channel
/// breakdowns plus the critical path. Build with
/// [`Attribution::analyze`] or [`Attribution::from_recorded`].
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    trace_name: String,
    makespan: Time,
    makespan_bound: Time,
    ranks: Vec<RankBreakdown>,
    channels: Vec<ChannelBreakdown>,
    path: Vec<PathStep>,
    /// True when the platform injects link faults; gates the
    /// `link_down_ps` report columns so clean reports stay byte-identical
    /// to pre-fault-model versions.
    faulty: bool,
}

impl Attribution {
    /// Replays `trace` on `platform` with attribution capture (through
    /// the prepared engine) and folds the result.
    ///
    /// # Errors
    ///
    /// Propagates replay errors ([`LabError::Sim`]).
    pub fn analyze(
        platform: &Platform,
        trace: &TraceSet,
        index: &TraceIndex,
    ) -> Result<Attribution, LabError> {
        Ok(Self::analyze_with_recorder(platform, trace, index)?.0)
    }

    /// [`Attribution::analyze`], additionally returning the raw recorder
    /// (whose wait intervals the Paraver exporter consumes).
    ///
    /// # Errors
    ///
    /// Propagates replay errors ([`LabError::Sim`]).
    pub fn analyze_with_recorder(
        platform: &Platform,
        trace: &TraceSet,
        index: &TraceIndex,
    ) -> Result<(Attribution, AttributionRecorder), LabError> {
        let mut recorder = AttributionRecorder::new(trace.rank_count());
        let result =
            Simulator::new(platform.clone()).run_prepared_observed(trace, index, &mut recorder)?;
        let attribution = Self::from_recorded(&recorder, &result, trace, index, platform);
        Ok((attribution, recorder))
    }

    /// Folds an already-captured attribution stream. `result` must come
    /// from the same replay that filled `recorder`.
    pub fn from_recorded(
        recorder: &AttributionRecorder,
        result: &ReplayResult,
        trace: &TraceSet,
        index: &TraceIndex,
        platform: &Platform,
    ) -> Attribution {
        let makespan = result.total_time();
        let n = recorder.per_rank.len();

        // Per-rank fold.
        let mut ranks = Vec::with_capacity(n);
        for r in 0..n {
            let mut b = RankBreakdown::default();
            for iv in &recorder.per_rank[r] {
                let dur = iv.end - iv.start;
                match iv.cause {
                    WaitCause::Compute => b.compute += dur,
                    WaitCause::SendOverhead => b.send_overhead += dur,
                    WaitCause::BlockedRecv { .. } => b.blocked_recv += dur,
                    WaitCause::BlockedSend { .. } => b.blocked_send += dur,
                    WaitCause::BlockedWait { .. } => b.blocked_wait += dur,
                    WaitCause::Contended { intra: false, .. } => b.contended_inter += dur,
                    WaitCause::Contended { intra: true, .. } => b.contended_intra += dur,
                    WaitCause::LinkDown { .. } => b.link_down += dur,
                    WaitCause::Collective { .. } => b.collective += dur,
                }
                b.total += dur;
            }
            ranks.push(b);
        }

        // Critical path: back-walk from the slowest rank's finish.
        let slowest = recorder
            .finish
            .iter()
            .enumerate()
            .max_by_key(|&(r, t)| (*t, std::cmp::Reverse(r)))
            .map(|(r, _)| r)
            .unwrap_or(0);
        let path = critical_path(recorder, slowest, makespan);

        // Per-channel fold.
        let peers = index.channel_peers();
        let mut channels: Vec<ChannelBreakdown> = peers
            .iter()
            .enumerate()
            .map(|(c, &(src, dst))| ChannelBreakdown {
                chan: c as u32,
                src: Rank::new(src),
                dst: Rank::new(dst),
                blocked_recv: Time::ZERO,
                blocked_send: Time::ZERO,
                blocked_wait: Time::ZERO,
                contended_inter: Time::ZERO,
                contended_intra: Time::ZERO,
                link_down: Time::ZERO,
                critical: Time::ZERO,
                gain_potential: Time::ZERO,
            })
            .collect();
        for rank_ivs in &recorder.per_rank {
            for iv in rank_ivs {
                let Some(chan) = iv.cause.channel() else {
                    continue;
                };
                let c = &mut channels[chan as usize];
                let dur = iv.end - iv.start;
                match iv.cause {
                    WaitCause::BlockedRecv { .. } => c.blocked_recv += dur,
                    WaitCause::BlockedSend { .. } => c.blocked_send += dur,
                    WaitCause::BlockedWait { .. } => c.blocked_wait += dur,
                    WaitCause::Contended { intra: false, .. } => c.contended_inter += dur,
                    WaitCause::Contended { intra: true, .. } => c.contended_intra += dur,
                    WaitCause::LinkDown { .. } => c.link_down += dur,
                    _ => unreachable!("cause with channel is a wait"),
                }
            }
        }
        for step in &path {
            if let Some(chan) = step.cause.channel() {
                channels[chan as usize].critical += step.end - step.start;
            }
        }
        let bounds = OverlapBounds::of(trace, platform);
        let makespan_bound = bounds.makespan_bound();
        let gap = makespan.saturating_sub(makespan_bound);
        for c in &mut channels {
            c.gain_potential = c.critical.min(gap);
        }

        Attribution {
            trace_name: trace.name().to_string(),
            makespan,
            makespan_bound,
            ranks,
            channels,
            path,
            faulty: platform.perturbation().has_faults(),
        }
    }

    /// Name of the analyzed trace.
    pub fn trace_name(&self) -> &str {
        &self.trace_name
    }

    /// The replay's makespan.
    pub fn makespan(&self) -> Time {
        self.makespan
    }

    /// The theoretical lower bound on the makespan
    /// ([`OverlapBounds::makespan_bound`]).
    pub fn makespan_bound(&self) -> Time {
        self.makespan_bound
    }

    /// Per-rank breakdowns, indexed by rank.
    pub fn ranks(&self) -> &[RankBreakdown] {
        &self.ranks
    }

    /// Per-channel breakdowns, indexed by dense channel id.
    pub fn channels(&self) -> &[ChannelBreakdown] {
        &self.channels
    }

    /// The critical path in chronological order; segment durations sum to
    /// the makespan.
    pub fn critical_path(&self) -> &[PathStep] {
        &self.path
    }

    /// Sum of critical-path segment durations (equals the makespan by the
    /// path invariant).
    pub fn critical_path_len(&self) -> Time {
        self.path.iter().map(|s| s.end - s.start).sum()
    }

    /// Channels ranked by overlap gain potential (descending), breaking
    /// ties by total wait and then channel id — the "which communication
    /// should I overlap first" ordering.
    pub fn ranked_channels(&self) -> Vec<&ChannelBreakdown> {
        let mut out: Vec<&ChannelBreakdown> = self.channels.iter().collect();
        out.sort_by(|a, b| {
            b.gain_potential
                .cmp(&a.gain_potential)
                .then(b.total_wait().cmp(&a.total_wait()))
                .then(a.chan.cmp(&b.chan))
        });
        out
    }

    /// Renders the attribution as deterministic JSON: one row per line,
    /// times as integer picoseconds. Identical replays produce
    /// byte-identical output (the golden-report contract campaign reports
    /// follow).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"trace\": \"{}\",", json_escape(&self.trace_name));
        let _ = writeln!(out, "  \"makespan_ps\": {},", self.makespan.as_ps());
        let _ = writeln!(
            out,
            "  \"makespan_bound_ps\": {},",
            self.makespan_bound.as_ps()
        );
        let _ = writeln!(
            out,
            "  \"critical_path_len_ps\": {},",
            self.critical_path_len().as_ps()
        );
        out.push_str("  \"ranks\": [\n");
        for (r, b) in self.ranks.iter().enumerate() {
            let sep = if r + 1 == self.ranks.len() { "" } else { "," };
            let link_down = if self.faulty {
                format!("\"link_down_ps\":{},", b.link_down.as_ps())
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "    {{\"rank\":{r},\"compute_ps\":{},\"send_overhead_ps\":{},\
                 \"blocked_recv_ps\":{},\"blocked_send_ps\":{},\"blocked_wait_ps\":{},\
                 \"contended_inter_ps\":{},\"contended_intra_ps\":{},{link_down}\
                 \"collective_ps\":{},\"total_ps\":{}}}{sep}",
                b.compute.as_ps(),
                b.send_overhead.as_ps(),
                b.blocked_recv.as_ps(),
                b.blocked_send.as_ps(),
                b.blocked_wait.as_ps(),
                b.contended_inter.as_ps(),
                b.contended_intra.as_ps(),
                b.collective.as_ps(),
                b.total.as_ps(),
            );
        }
        out.push_str("  ],\n");
        out.push_str("  \"channels\": [\n");
        let ranked = self.ranked_channels();
        for (i, c) in ranked.iter().enumerate() {
            let sep = if i + 1 == ranked.len() { "" } else { "," };
            let link_down = if self.faulty {
                format!("\"link_down_ps\":{},", c.link_down.as_ps())
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "    {{\"chan\":{},\"src\":{},\"dst\":{},\"blocked_recv_ps\":{},\
                 \"blocked_send_ps\":{},\"blocked_wait_ps\":{},\"contended_inter_ps\":{},\
                 \"contended_intra_ps\":{},{link_down}\"total_wait_ps\":{},\"critical_ps\":{},\
                 \"gain_potential_ps\":{}}}{sep}",
                c.chan,
                c.src.get(),
                c.dst.get(),
                c.blocked_recv.as_ps(),
                c.blocked_send.as_ps(),
                c.blocked_wait.as_ps(),
                c.contended_inter.as_ps(),
                c.contended_intra.as_ps(),
                c.total_wait().as_ps(),
                c.critical.as_ps(),
                c.gain_potential.as_ps(),
            );
        }
        out.push_str("  ],\n");
        out.push_str("  \"critical_path\": [\n");
        for (i, s) in self.path.iter().enumerate() {
            let sep = if i + 1 == self.path.len() { "" } else { "," };
            let chan = match s.cause.channel() {
                Some(c) => c.to_string(),
                None => "null".to_string(),
            };
            let via = match s.via {
                Some(v) => v.get().to_string(),
                None => "null".to_string(),
            };
            let _ = writeln!(
                out,
                "    {{\"rank\":{},\"start_ps\":{},\"end_ps\":{},\"cause\":\"{}\",\
                 \"chan\":{chan},\"via\":{via}}}{sep}",
                s.rank.get(),
                s.start.as_ps(),
                s.end.as_ps(),
                s.cause.label(),
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders the per-channel table as CSV (ranked order, same columns
    /// as the JSON channel rows).
    pub fn to_csv(&self) -> String {
        let link_down_col = if self.faulty { "link_down_ps," } else { "" };
        let mut out = format!(
            "chan,src,dst,blocked_recv_ps,blocked_send_ps,blocked_wait_ps,\
             contended_inter_ps,contended_intra_ps,{link_down_col}total_wait_ps,\
             critical_ps,gain_potential_ps\n",
        );
        for c in self.ranked_channels() {
            let link_down = if self.faulty {
                format!("{},", c.link_down.as_ps())
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{link_down}{},{},{}",
                c.chan,
                c.src.get(),
                c.dst.get(),
                c.blocked_recv.as_ps(),
                c.blocked_send.as_ps(),
                c.blocked_wait.as_ps(),
                c.contended_inter.as_ps(),
                c.contended_intra.as_ps(),
                c.total_wait().as_ps(),
                c.critical.as_ps(),
                c.gain_potential.as_ps(),
            );
        }
        out
    }
}

/// Back-walks the event dependency chain from `(slowest, makespan)`.
///
/// At each position `(rank, t)` the interval ending at `t` is found (the
/// engines' conservation property makes `t` an interval boundary); if the
/// interval carries a release edge strictly earlier than `t`, the path
/// jumps to the releasing rank at the release time and the segment
/// `[edge.at, t)` is charged to the wait's cause; otherwise the whole
/// interval is a local segment. Either way the cursor strictly
/// decreases, so the walk terminates with segments tiling `[0, makespan)`.
fn critical_path(recorder: &AttributionRecorder, slowest: usize, makespan: Time) -> Vec<PathStep> {
    let mut steps = Vec::new();
    let mut cur_rank = slowest;
    let mut cur = makespan;
    while cur > Time::ZERO {
        let ivs = &recorder.per_rank[cur_rank];
        let Ok(i) = ivs.binary_search_by(|iv| iv.end.cmp(&cur)) else {
            // Unreachable for conserving engines; bail rather than loop.
            debug_assert!(false, "no interval ends at {cur} on rank {cur_rank}");
            break;
        };
        let iv = &ivs[i];
        match iv.edge {
            Some(e) if e.at < cur => {
                steps.push(PathStep {
                    rank: Rank::new(cur_rank as u32),
                    start: e.at,
                    end: cur,
                    cause: iv.cause,
                    via: Some(e.rank),
                });
                cur_rank = e.rank.index();
                cur = e.at;
            }
            _ => {
                steps.push(PathStep {
                    rank: Rank::new(cur_rank as u32),
                    start: iv.start,
                    end: cur,
                    cause: iv.cause,
                    via: None,
                });
                cur = iv.start;
            }
        }
    }
    steps.reverse();
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlsim_core::{Instr, MipsRate, RankTrace, Record, Tag};

    fn platform_1us_1gb() -> Platform {
        Platform::builder()
            .latency(Time::from_us(1))
            .bandwidth_bytes_per_sec(1.0e9)
            .unwrap()
            .build()
    }

    fn pair_trace() -> TraceSet {
        TraceSet::new(
            "pair",
            MipsRate::new(1000).unwrap(),
            vec![
                RankTrace::from_records(vec![
                    Record::Burst {
                        instr: Instr::new(1000),
                    },
                    Record::Send {
                        to: Rank::new(1),
                        bytes: 1000,
                        tag: Tag::new(0),
                    },
                ]),
                RankTrace::from_records(vec![Record::Recv {
                    from: Rank::new(0),
                    bytes: 1000,
                    tag: Tag::new(0),
                }]),
            ],
        )
    }

    fn analyze(trace: &TraceSet, platform: &Platform) -> Attribution {
        let index = TraceIndex::build(trace).expect("valid");
        Attribution::analyze(platform, trace, &index).expect("analyzes")
    }

    #[test]
    fn pair_breakdown_reconciles_with_replay() {
        let trace = pair_trace();
        let platform = platform_1us_1gb();
        let attr = analyze(&trace, &platform);
        let result = Simulator::new(platform).run(&trace).unwrap();
        assert_eq!(attr.makespan(), result.total_time());
        // Rank 0: 1 us compute, rest zero.
        assert_eq!(attr.ranks()[0].compute, Time::from_us(1));
        assert_eq!(attr.ranks()[0].total, result.rank_finish()[0]);
        // Rank 1: blocked in recv the whole 3 us.
        assert_eq!(attr.ranks()[1].blocked_recv, Time::from_us(3));
        assert_eq!(attr.ranks()[1].total, result.rank_finish()[1]);
        // One channel owns all the wait.
        assert_eq!(attr.channels().len(), 1);
        assert_eq!(attr.channels()[0].total_wait(), Time::from_us(3));
    }

    #[test]
    fn pair_critical_path_spans_makespan() {
        let trace = pair_trace();
        let attr = analyze(&trace, &platform_1us_1gb());
        assert_eq!(attr.critical_path_len(), attr.makespan());
        let path = attr.critical_path();
        // Chronological and contiguous from zero to the makespan.
        assert_eq!(path[0].start, Time::ZERO);
        assert_eq!(path.last().unwrap().end, attr.makespan());
        for w in path.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // The path runs through rank 0's compute, then the network edge of
        // the one channel into rank 1's recv.
        assert_eq!(path[0].cause, WaitCause::Compute);
        assert_eq!(path[0].rank, Rank::new(0));
        let last = path.last().unwrap();
        assert_eq!(last.rank, Rank::new(1));
        assert_eq!(last.cause, WaitCause::BlockedRecv { chan: 0 });
        assert_eq!(last.via, Some(Rank::new(0)));
        // The recv wait is critical: hiding it is the gain opportunity.
        assert!(attr.channels()[0].critical > Time::ZERO);
    }

    #[test]
    fn gain_potential_clamped_to_overlappable_gap() {
        let trace = pair_trace();
        let platform = platform_1us_1gb();
        let attr = analyze(&trace, &platform);
        let gap = attr.makespan().saturating_sub(attr.makespan_bound());
        for c in attr.channels() {
            assert!(c.gain_potential <= gap);
            assert!(c.gain_potential <= c.critical);
        }
    }

    #[test]
    fn gain_potential_is_exactly_zero_when_gap_is_zero() {
        // A fully-overlapped point: rank 0 computes 1 us then sends 1000 B
        // to rank 1 (arrival at 1 us compute + 1 us latency + 1 us wire =
        // 3 us), while rank 2 computes exactly 3 us. The makespan equals the
        // compute bound, so the overlappable gap is exactly zero even though
        // the channel into rank 1 carries 3 us of blocked-recv wait. Gain
        // must clamp to exactly zero — never wrap or underflow.
        let trace = TraceSet::new(
            "zero-gap",
            MipsRate::new(1000).unwrap(),
            vec![
                RankTrace::from_records(vec![
                    Record::Burst {
                        instr: Instr::new(1000),
                    },
                    Record::Send {
                        to: Rank::new(1),
                        bytes: 1000,
                        tag: Tag::new(0),
                    },
                ]),
                RankTrace::from_records(vec![Record::Recv {
                    from: Rank::new(0),
                    bytes: 1000,
                    tag: Tag::new(0),
                }]),
                RankTrace::from_records(vec![Record::Burst {
                    instr: Instr::new(3000),
                }]),
            ],
        );
        let attr = analyze(&trace, &platform_1us_1gb());
        // The construction really is zero-gap: makespan == bound.
        assert_eq!(attr.makespan(), Time::from_us(3));
        assert_eq!(attr.makespan(), attr.makespan_bound());
        // The channel still carries real wait...
        assert_eq!(attr.channels().len(), 1);
        assert_eq!(attr.channels()[0].total_wait(), Time::from_us(3));
        // ...but the gain potential clamps to exactly zero (no wrap: a
        // wrapped subtraction would produce a huge non-zero Time here).
        for c in attr.channels() {
            assert_eq!(c.gain_potential, Time::ZERO);
        }
    }

    #[test]
    fn ranked_channels_order_is_deterministic() {
        // Two channels with different wait shares rank by gain potential.
        let trace = TraceSet::new(
            "two-chan",
            MipsRate::new(1000).unwrap(),
            vec![
                RankTrace::from_records(vec![
                    Record::Burst {
                        instr: Instr::new(1000),
                    },
                    Record::Send {
                        to: Rank::new(1),
                        bytes: 500_000,
                        tag: Tag::new(0),
                    },
                    Record::Send {
                        to: Rank::new(1),
                        bytes: 100,
                        tag: Tag::new(1),
                    },
                ]),
                RankTrace::from_records(vec![
                    Record::Recv {
                        from: Rank::new(0),
                        bytes: 500_000,
                        tag: Tag::new(0),
                    },
                    Record::Recv {
                        from: Rank::new(0),
                        bytes: 100,
                        tag: Tag::new(1),
                    },
                ]),
            ],
        );
        let attr = analyze(&trace, &platform_1us_1gb());
        let ranked = attr.ranked_channels();
        assert_eq!(ranked.len(), 2);
        assert!(ranked[0].gain_potential >= ranked[1].gain_potential);
        // The big transfer dominates the wait.
        assert_eq!(ranked[0].chan, 0);
    }

    #[test]
    fn json_and_csv_are_deterministic_and_structured() {
        let trace = pair_trace();
        let platform = platform_1us_1gb();
        let a = analyze(&trace, &platform);
        let b = analyze(&trace, &platform);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_csv(), b.to_csv());
        let json = a.to_json();
        assert!(json.contains("\"trace\": \"pair\""));
        // Clean platforms keep the pre-fault-model schema exactly.
        assert!(!json.contains("link_down_ps"));
        assert!(!a.to_csv().contains("link_down_ps"));
        assert!(json.contains("\"makespan_ps\""));
        assert!(json.contains("\"critical_path\""));
        assert!(json.ends_with("}\n"));
        let csv = a.to_csv();
        assert_eq!(csv.lines().count(), 2, "header + one channel");
        assert!(csv.starts_with("chan,src,dst,"));
    }

    #[test]
    fn fault_injection_surfaces_link_down_and_stays_conserved() {
        use ovlsim_core::PerturbationModel;
        let trace = pair_trace();
        let period = Time::from_us(40);
        let down = Time::from_us(10);
        // Rank 0 posts its send at 1 us (after its burst); pick a seed
        // whose outage window covers that instant so the transfer is held.
        let send_at = Time::from_us(1);
        let model = (0..64)
            .map(|s| PerturbationModel::new(s).with_faults(period, down).unwrap())
            .find(|m| m.outage_end(0, 1, send_at).is_some())
            .expect("some seed puts the send inside an outage window");
        let platform = Platform::builder()
            .latency(Time::from_us(1))
            .bandwidth_bytes_per_sec(1.0e9)
            .unwrap()
            .perturbation(model)
            .build();
        let attr = analyze(&trace, &platform);
        // The held transfer surfaces as link-down time on the blocked
        // receiver and rolls up to its channel.
        assert!(attr.ranks()[1].link_down > Time::ZERO);
        assert_eq!(attr.channels()[0].link_down, attr.ranks()[1].link_down);
        // Conservation still holds bit-exactly per rank.
        for b in attr.ranks() {
            assert_eq!(b.compute + b.send_overhead + b.wait(), b.total);
        }
        // Faulty platforms grow the extra report column.
        assert!(attr.to_json().contains("\"link_down_ps\""));
        assert!(attr.to_csv().contains("link_down_ps,"));
    }

    #[test]
    fn empty_trace_yields_empty_attribution() {
        let trace = TraceSet::new(
            "empty",
            MipsRate::new(1000).unwrap(),
            vec![RankTrace::new(), RankTrace::new()],
        );
        let attr = analyze(&trace, &platform_1us_1gb());
        assert_eq!(attr.makespan(), Time::ZERO);
        assert!(attr.critical_path().is_empty());
        assert_eq!(attr.critical_path_len(), Time::ZERO);
    }
}
