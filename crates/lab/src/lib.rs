//! The experiment harness of `ovlsim`: bandwidth sweeps, speedup analysis,
//! iso-performance bandwidth search, reporting tables, and the paper's
//! experiment suite (E1–E8).
//!
//! The paper's evaluation asks three questions, each answered by a module
//! here:
//!
//! 1. *How much does automatic overlap help with real vs ideal patterns?*
//!    — [`sweep`](crate::sweep_bundle) + [`peak_speedup`] (E2/E3/E4),
//! 2. *Which half of the mechanism matters?* — mechanism ablation
//!    ([`e6_mechanisms`]),
//! 3. *How much network can overlap save?* — [`bandwidth_relaxation`]
//!    (E5).
//!
//! # Example
//!
//! ```
//! use ovlsim_apps::Synthetic;
//! use ovlsim_lab::{log_bandwidths, sweep_bundle, peak_speedup};
//! use ovlsim_tracer::{OverlapMode, TracingSession};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let app = Synthetic::builder().ranks(4).iterations(2).build()?;
//! let bundle = TracingSession::new(&app).run()?;
//! let base = ovlsim_apps::calibration::reference_platform();
//! let points = sweep_bundle(
//!     &bundle,
//!     &base,
//!     OverlapMode::linear(),
//!     &log_bandwidths(1.0e6, 1.0e10, 7),
//! )?;
//! let peak = peak_speedup(&points).expect("nonempty sweep");
//! assert!(peak.speedup() >= 1.0 - 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
pub mod attribution;
mod bounds;
pub mod campaign;
mod error;
mod experiments;
mod iso;
mod par;
pub mod pipeline;
mod plot;
mod sweep;
mod table;
pub mod tune;

pub use analysis::{intermediate_bandwidth, peak_speedup, point_nearest_comm_fraction};
pub use attribution::{
    AttrInterval, Attribution, AttributionRecorder, ChannelBreakdown, PathStep, RankBreakdown,
};
pub use bounds::OverlapBounds;
pub use campaign::{
    diff_reports, parse_mode, run_campaign, run_campaign_with, CampaignReport, CampaignRow,
    CampaignSpec, Engine, RowAttribution, SpecError,
};
pub use error::LabError;
pub use experiments::{
    custom_curve, e10_multicore, e1_pipeline, e2_real_patterns, e3_ideal_speedup,
    e4_speedup_curves, e5_bandwidth_relaxation, e6_mechanisms, e7_pattern_cdf,
    e8_platform_sensitivity, e9_chunk_overhead, find_half_comm_bandwidth, side_by_side_gantt,
    ExperimentReport, SWEEP_HI, SWEEP_LO,
};
pub use iso::{bandwidth_relaxation, min_bandwidth_for, RelaxationResult};
pub use par::configured_threads;
pub use pipeline::{ArtifactPipeline, DirectPipeline, EngineInput};
pub use plot::{curve_of, render_curves, Curve, PlotOptions};
pub use sweep::{
    compile_trace, log_bandwidths, noise_retention, sweep_bundle, sweep_compiled,
    sweep_node_packing, sweep_noise, sweep_traces, NodePackingPoint, NoisePoint, SweepPoint,
};
#[doc(hidden)]
pub use sweep::{
    sweep_compiled_threaded, sweep_node_packing_threaded, sweep_noise_threaded,
    sweep_traces_threaded,
};
pub use table::Table;
#[doc(hidden)]
pub use tune::run_tune_threaded;
pub use tune::{run_tune, run_tune_baseline, TuneOptions, TuneReport, TuneStep};
